// The paper's registry example: "filtering can also be used to provide a
// file-based interface to the Windows system registry, considerably
// simplifying system configuration."  A legacy text editor (simulated
// here as read/modify/write of a plain file) reconfigures the system
// registry without knowing it exists.
#include <cstdio>

#include "afs.hpp"
#include "sentinels/regsent.hpp"

int main() {
  using namespace afs;

  // Populate the "system registry".
  auto& registry = sentinels::DefaultRegistry();
  (void)registry.CreateKey("Software/MediaPlayer");
  (void)registry.SetValue("Software/MediaPlayer", "volume",
                          reg::Value(std::uint32_t{40}));
  (void)registry.SetValue("Software/MediaPlayer", "skin",
                          reg::Value(std::string("dark")));

  vfs::FileApi api("/tmp/afs-registry");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  sentinel::SentinelSpec spec;
  spec.name = "registry";
  spec.config["key"] = "Software/MediaPlayer";
  spec.config["cache"] = "none";
  if (!manager.CreateActiveFile("player-config.af", spec).ok()) return 1;

  // "Open the config file in an editor": read the rendered text.
  auto text = api.ReadWholeFile("player-config.af");
  if (!text.ok()) return 1;
  std::printf("config as seen by the editor:\n%s\n",
              ToString(ByteSpan(*text)).c_str());

  // "Edit and save": write modified text back; close parses it into
  // registry mutations.
  const std::string edited =
      "[]\nvolume = dw:85\nskin = str:light\nmuted = dw:0\n";
  auto handle = api.OpenFile("player-config.af", vfs::OpenMode::kReadWrite);
  if (!handle.ok()) return 1;
  (void)api.WriteFile(*handle, AsBytes(edited));
  (void)api.SetEndOfFile(*handle);
  (void)api.CloseHandle(*handle);

  auto volume = registry.GetValue("Software/MediaPlayer", "volume");
  auto muted = registry.GetValue("Software/MediaPlayer", "muted");
  std::printf("registry after save: volume=%u muted=%u\n",
              std::get<std::uint32_t>(*volume),
              std::get<std::uint32_t>(*muted));
  return 0;
}
