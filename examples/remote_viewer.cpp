// Remote aggregation (paper Section 3): a legacy "viewer" reads reports
// that physically live on a simulated remote server.  One active file
// proxies a single remote file with a local disk cache; another merges
// three remote fragments into one view.  The network is modelled after the
// paper's testbed: 100 Mbps links, sub-millisecond latency.
#include <cstdio>

#include "afs.hpp"

namespace {

// The legacy viewer: opens a path, prints it.  Nothing here knows about
// networks or sentinels.
void LegacyViewer(afs::vfs::FileApi& api, const char* path) {
  auto content = api.ReadWholeFile(path);
  if (!content.ok()) {
    std::fprintf(stderr, "viewer: cannot read %s: %s\n", path,
                 content.status().ToString().c_str());
    return;
  }
  std::printf("---- %s (%zu bytes) ----\n%s\n", path, content->size(),
              afs::ToString(afs::ByteSpan(*content)).c_str());
}

}  // namespace

int main() {
  using namespace afs;

  // A two-node simulated network: "workstation" <-> "fileserver".
  SteadyClock& clock = SteadyClock::Instance();
  net::SimNet net(clock);
  net::LinkConfig link;
  link.latency = Micros(500);                     // 0.5 ms one way
  link.bandwidth_bps = 100 * 1000 * 1000 / 8;     // 100 Mbps
  (void)net.AddLink("workstation", "fileserver", link);

  net::FileServer files;
  (void)files.Put("reports/q1", AsBytes("Q1: revenue up 4%\n"));
  (void)files.Put("reports/q2", AsBytes("Q2: flat quarter\n"));
  (void)files.Put("reports/q3", AsBytes("Q3: strong growth\n"));
  (void)net.Mount("fileserver", "files", files);

  vfs::FileApi api("/tmp/afs-remote-viewer");
  sentinels::RegisterBuiltinSentinels();
  core::EnvironmentResolver resolver(&net, "workstation");
  core::ManagerOptions options;
  options.resolver = &resolver;
  core::ActiveFileManager manager(
      api, sentinel::SentinelRegistry::Global(), options);
  manager.Install();

  // One remote file as a local one, cached on disk and revalidated per
  // open.
  sentinel::SentinelSpec remote;
  remote.name = "remote";
  remote.config["url"] = "sim:fileserver:files";
  remote.config["file"] = "reports/q1";
  remote.config["consistency"] = "open";
  (void)manager.CreateActiveFile("q1.af", remote);

  // Three remote fragments merged into a single report.
  sentinel::SentinelSpec merge;
  merge.name = "merge";
  merge.config["url"] = "sim:fileserver:files";
  merge.config["files"] = "reports/q1,reports/q2,reports/q3";
  (void)manager.CreateActiveFile("year.af", merge);

  LegacyViewer(api, "q1.af");
  LegacyViewer(api, "year.af");

  // The server updates Q1; the viewer's next open sees the new content —
  // the coupling an intermediary-produced snapshot cannot provide
  // (paper Section 1).
  (void)files.Put("reports/q1", AsBytes("Q1 (restated): revenue up 6%\n"));
  std::printf("(server updated reports/q1)\n");
  LegacyViewer(api, "q1.af");

  // Writes flow back: annotate the Q1 report through the file API.
  auto handle = api.OpenFile("q1.af", vfs::OpenMode::kReadWrite);
  if (handle.ok()) {
    (void)api.SetFilePointer(*handle, 0, vfs::SeekOrigin::kEnd);
    (void)api.WriteFile(*handle, AsBytes("note: verified by audit\n"));
    (void)api.CloseHandle(*handle);
  }
  auto server_copy = files.Get("reports/q1");
  if (server_copy.ok()) {
    std::printf("server now stores:\n%s",
                ToString(ByteSpan(*server_copy)).c_str());
  }
  std::printf("simulated network carried %llu bytes\n",
              static_cast<unsigned long long>(net.bytes_carried()));
  return 0;
}
