// Quickstart: the smallest useful active file — a transparently compressed
// notes file.  A "legacy application" (plain file API calls, no knowledge
// of active files) writes and reads plaintext; on disk the data part holds
// an LZ77 image.
#include <cstdio>

#include "afs.hpp"

namespace {

// The legacy side: this function knows nothing about sentinels.  It only
// speaks CreateFile/ReadFile/WriteFile/CloseHandle.
int LegacyNoteTaker(afs::vfs::FileApi& api, const char* path) {
  auto handle = api.OpenFile(path, afs::vfs::OpenMode::kReadWrite);
  if (!handle.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }
  std::string note;
  for (int i = 0; i < 200; ++i) {
    note += "2026-07-04 meeting notes: active files are just files\n";
  }
  if (!api.WriteFile(*handle, afs::AsBytes(note)).ok()) return 1;
  auto size = api.GetFileSize(*handle);
  std::printf("application sees a %llu-byte plain text file\n",
              static_cast<unsigned long long>(size.value_or(0)));
  (void)api.CloseHandle(*handle);

  // Read it back through a fresh open.
  auto again = api.OpenFile(path, afs::vfs::OpenMode::kRead);
  if (!again.ok()) return 1;
  afs::Buffer out(64);
  auto n = api.ReadFile(*again, afs::MutableByteSpan(out));
  std::printf("first line read back: %.*s",
              static_cast<int>(n.value_or(0)), out.data());
  (void)api.CloseHandle(*again);
  return 0;
}

}  // namespace

int main() {
  afs::vfs::FileApi api("/tmp/afs-quickstart");
  afs::sentinels::RegisterBuiltinSentinels();
  afs::core::ActiveFileManager manager(
      api, afs::sentinel::SentinelRegistry::Global());
  manager.Install();  // from here on, .af opens run sentinels

  // Author the active file: sentinel name + per-file configuration.
  afs::sentinel::SentinelSpec spec;
  spec.name = "compress";
  spec.config["codec"] = "lz77";
  if (!manager.CreateActiveFile("notes.af", spec).ok()) return 1;

  if (LegacyNoteTaker(api, "notes.af") != 0) return 1;

  auto stored = manager.ReadDataPart("notes.af");
  if (stored.ok()) {
    std::printf("on disk, the data part is %zu bytes of compressed image\n",
                stored->size());
  }

  // Single-file packaging: a plain copy clones data part AND sentinel.
  (void)api.CopyFile("notes.af", "notes-backup.af");
  auto copy = api.ReadWholeFile("notes-backup.af");
  std::printf("copied active file reads back %zu plaintext bytes\n",
              copy.ok() ? copy->size() : 0);
  return 0;
}
