// The docs/TUTORIAL.md walkthrough, compiled and run: a custom sentinel
// presenting live word-count statistics of another file.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "afs.hpp"

namespace {

class WordCountSentinel final : public afs::sentinel::Sentinel {
 public:
  afs::Status OnOpen(afs::sentinel::SentinelContext& ctx) override {
    target_ = ctx.config_or("target", "");
    if (target_.empty()) {
      return afs::InvalidArgumentError("wordcount: needs 'target'");
    }
    return Refresh(ctx);
  }

  afs::Result<std::size_t> OnRead(afs::sentinel::SentinelContext& ctx,
                                  afs::MutableByteSpan out) override {
    if (ctx.position >= text_.size()) return std::size_t{0};
    const std::size_t n = std::min<std::size_t>(
        out.size(), text_.size() - static_cast<std::size_t>(ctx.position));
    std::memcpy(out.data(), text_.data() + ctx.position, n);
    return n;
  }

  afs::Result<std::uint64_t> OnGetSize(
      afs::sentinel::SentinelContext& ctx) override {
    (void)ctx;
    return std::uint64_t{text_.size()};
  }

  afs::Result<std::size_t> OnWrite(afs::sentinel::SentinelContext&,
                                   afs::ByteSpan) override {
    return afs::PermissionDeniedError("wordcount: statistics are read-only");
  }

  afs::Result<afs::Buffer> OnControl(afs::sentinel::SentinelContext& ctx,
                                     afs::ByteSpan request) override {
    if (afs::ToString(request) == "refresh") {
      AFS_RETURN_IF_ERROR(Refresh(ctx));
      return afs::ToBuffer("ok");
    }
    return afs::UnsupportedError("wordcount: unknown control");
  }

 private:
  afs::Status Refresh(afs::sentinel::SentinelContext& ctx) {
    (void)ctx;
    std::ifstream in(target_);
    if (!in.good()) return afs::NotFoundError("wordcount: no " + target_);
    std::size_t lines = 0;
    std::size_t words = 0;
    std::size_t bytes = 0;
    bool in_word = false;
    for (int c = in.get(); c != EOF; c = in.get()) {
      ++bytes;
      if (c == '\n') ++lines;
      const bool space = std::isspace(c) != 0;
      if (!space && !in_word) ++words;
      in_word = !space;
    }
    text_ = std::to_string(lines) + " " + std::to_string(words) + " " +
            std::to_string(bytes) + "\n";
    return afs::Status::Ok();
  }

  std::string target_;
  std::string text_;
};

}  // namespace

int main() {
  using namespace afs;
  const std::string root = "/tmp/afs-wordcount";
  vfs::FileApi api(root);
  sentinels::RegisterBuiltinSentinels();
  (void)sentinel::SentinelRegistry::Global().Register(
      "wordcount", [](const sentinel::SentinelSpec&) {
        return std::make_unique<WordCountSentinel>();
      });
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  // The file being watched (a plain host file).
  (void)api.WriteWholeFile("report.txt",
                           AsBytes("one two three\nfour five\n"));

  sentinel::SentinelSpec spec;
  spec.name = "wordcount";
  spec.config["target"] = root + "/report.txt";
  spec.config["cache"] = "none";
  spec.config["strategy"] = "thread";
  if (!manager.CreateActiveFile("stats.af", spec).ok()) return 1;

  auto stats = api.ReadWholeFile("stats.af");
  if (!stats.ok()) return 1;
  std::printf("lines words bytes: %s", ToString(ByteSpan(*stats)).c_str());

  // The target grows; a control refresh shows the new counts mid-open.
  (void)api.WriteWholeFile("report.txt",
                           AsBytes("one two three\nfour five\nsix\n"));
  auto handle = api.OpenFile("stats.af", vfs::OpenMode::kRead);
  if (!handle.ok()) return 1;
  (void)manager.Control(*handle, AsBytes("refresh"));
  Buffer out(64);
  auto n = api.ReadFile(*handle, MutableByteSpan(out));
  std::printf("after refresh:     %.*s", static_cast<int>(n.value_or(0)),
              out.data());
  (void)api.CloseHandle(*handle);
  return 0;
}
