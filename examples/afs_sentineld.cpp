// The stock sentinel executable: the "active part" of exec-mode active
// files.  The strategies launch this binary per open (paper Section 2:
// "when an active file is opened, the associated executable is run as a
// sentinel process"); it serves the wire protocol over the inherited pipe
// file descriptors.  It carries all built-in sentinels; a deployment with
// custom sentinels would register them here before delegating.
#include "core/sentineld.hpp"
#include "sentinels/builtin.hpp"

int main(int argc, char** argv) {
  afs::sentinels::RegisterBuiltinSentinels();
  return afs::core::SentineldMain(argc, argv);
}
