// The paper's mail examples: an outbox file that *sends* what is written
// to it (parsing the To: header for recipients), and an inbox file whose
// reads retrieve waiting mail from remote servers.
#include <cstdio>

#include "afs.hpp"

int main() {
  using namespace afs;

  SteadyClock& clock = SteadyClock::Instance();
  net::SimNet net(clock);
  (void)net.AddLink("laptop", "mailhost", {Micros(400), 0});
  (void)net.AddLink("laptop", "mailhost2", {Micros(900), 0});

  net::MailServer primary;
  net::MailServer secondary;
  (void)net.Mount("mailhost", "mail", primary);
  (void)net.Mount("mailhost2", "mail", secondary);

  vfs::FileApi api("/tmp/afs-mail");
  sentinels::RegisterBuiltinSentinels();
  core::EnvironmentResolver resolver(&net, "laptop");
  core::ManagerOptions options;
  options.resolver = &resolver;
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global(),
                                  options);
  manager.Install();

  // The outbox: writing a message file sends it at close.
  sentinel::SentinelSpec outbox;
  outbox.name = "outbox";
  outbox.config["cache"] = "none";
  outbox.config["url"] = "sim:mailhost:mail";
  (void)manager.CreateActiveFile("outbox.af", outbox);

  {
    auto handle = api.OpenFile("outbox.af", vfs::OpenMode::kWrite);
    if (!handle.ok()) return 1;
    const std::string message =
        "From: demo@laptop\n"
        "To: alice@corp, bob@corp\n"
        "Subject: active files demo\n"
        "\n"
        "This mail was sent by writing to a file.\n";
    (void)api.WriteFile(*handle, AsBytes(message));
    (void)api.CloseHandle(*handle);  // <- the send happens here
  }
  std::printf("after closing outbox.af: alice has %zu message(s), bob %zu\n",
              primary.MailboxSize("alice@corp"),
              primary.MailboxSize("bob@corp"));

  // Seed the second server too, so the inbox demonstrates multi-server
  // aggregation ("possibly from multiple remote POP servers").
  (void)secondary.Send(
      net::MailMessage{"eve@other", "", "hello from server two", "hi!"},
      {"alice@corp"});

  sentinel::SentinelSpec inbox;
  inbox.name = "inbox";
  inbox.config["cache"] = "none";
  inbox.config["urls"] = "sim:mailhost:mail;sim:mailhost2:mail";
  inbox.config["user"] = "alice@corp";
  inbox.config["delete"] = "1";
  (void)manager.CreateActiveFile("inbox.af", inbox);

  auto mailbox = api.ReadWholeFile("inbox.af");
  if (mailbox.ok()) {
    std::printf("\nalice's aggregated inbox:\n%s",
                ToString(ByteSpan(*mailbox)).c_str());
  }
  std::printf("after retrieval-with-delete, alice has %zu message(s) left\n",
              primary.MailboxSize("alice@corp") +
                  secondary.MailboxSize("alice@corp"));
  return 0;
}
