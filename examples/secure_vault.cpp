// Composition demo: a "vault" file assembled from three sentinels in a
// pipeline — policy (append-only, quota) over notify (access events) over
// compress (stored as an LZ77 image).  No stage knows about the others,
// and the legacy writer knows about none of them; this is the paper's
// Section 3 claim that "larger applications are constructed by composing
// these actions".
#include <cstdio>

#include "afs.hpp"
#include "sentinels/notify.hpp"

int main() {
  using namespace afs;

  vfs::FileApi api("/tmp/afs-vault");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  sentinel::SentinelSpec spec;
  spec.name = "pipeline";
  spec.config["chain"] = "policy,notify,compress";
  spec.config["0.append_only"] = "1";
  spec.config["0.max_size"] = "4096";
  spec.config["1.topic"] = "vault";
  spec.config["2.codec"] = "lz77";
  (void)api.DeleteFile("ledger.af");
  if (!manager.CreateActiveFile("ledger.af", spec).ok()) return 1;

  // A watcher subscribes to the vault's access events.
  int writes_seen = 0;
  const auto sub = sentinels::NotificationHub::Global().Subscribe(
      "vault", [&](const sentinels::AccessEvent& event) {
        if (event.operation == "write") {
          std::printf("  [watcher] write of %llu bytes at offset %llu\n",
                      static_cast<unsigned long long>(event.bytes),
                      static_cast<unsigned long long>(event.position));
          ++writes_seen;
        }
      });

  // The legacy writer appends ledger entries.
  auto handle = api.OpenFile("ledger.af", vfs::OpenMode::kReadWrite);
  if (!handle.ok()) return 1;
  for (int i = 1; i <= 3; ++i) {
    (void)api.SetFilePointer(*handle, 0, vfs::SeekOrigin::kEnd);
    const std::string entry =
        "entry " + std::to_string(i) + ": credited 100.00 credits\n";
    (void)api.WriteFile(*handle, AsBytes(entry));
  }

  // Tampering with history is refused by the policy stage.
  (void)api.SetFilePointer(*handle, 0, vfs::SeekOrigin::kBegin);
  auto tamper = api.WriteFile(*handle, AsBytes("entry 1: credited 999999"));
  std::printf("attempt to rewrite entry 1: %s\n",
              tamper.status().ToString().c_str());
  (void)api.CloseHandle(*handle);
  sentinels::NotificationHub::Global().Unsubscribe(sub);

  auto content = api.ReadWholeFile("ledger.af");
  auto stored = manager.ReadDataPart("ledger.af");
  if (content.ok() && stored.ok()) {
    std::printf("\nledger (%zu plaintext bytes, %zu on disk):\n%s",
                content->size(), stored->size(),
                ToString(ByteSpan(*content)).c_str());
  }
  std::printf("watcher observed %d appends\n", writes_seen);
  return 0;
}
