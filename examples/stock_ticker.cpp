// The paper's stock-quote example: "an active file that reflects the
// latest stock quotes (downloaded by the sentinel from a server) every
// time the file is opened".  A legacy `cat`-style tool rereads ticker.af
// while the market moves.
#include <cstdio>

#include "afs.hpp"

int main() {
  using namespace afs;

  SteadyClock& clock = SteadyClock::Instance();
  net::SimNet net(clock);
  (void)net.AddLink("desk", "exchange", {Micros(300), 0});

  net::QuoteServer exchange(/*seed=*/2026);
  exchange.AddSymbol("AAPL", 21034);
  exchange.AddSymbol("MSFT", 45990);
  exchange.AddSymbol("NTFS", 1999);
  (void)net.Mount("exchange", "quotes", exchange);

  vfs::FileApi api("/tmp/afs-ticker");
  sentinels::RegisterBuiltinSentinels();
  core::EnvironmentResolver resolver(&net, "desk");
  core::ManagerOptions options;
  options.resolver = &resolver;
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global(),
                                  options);
  manager.Install();

  sentinel::SentinelSpec spec;
  spec.name = "quotes";
  spec.config["cache"] = "none";
  spec.config["url"] = "sim:exchange:quotes";
  spec.config["symbols"] = "AAPL,MSFT,NTFS";
  if (!manager.CreateActiveFile("ticker.af", spec).ok()) return 1;

  for (int session = 0; session < 3; ++session) {
    // The legacy tool: open, read, print, close.  Each open re-downloads.
    auto content = api.ReadWholeFile("ticker.af");
    if (!content.ok()) return 1;
    std::printf("[open %d]\n%s\n", session + 1,
                ToString(ByteSpan(*content)).c_str());
    exchange.Tick(7);  // the market moves between opens
  }

  // A long-lived reader can refresh mid-open through the control channel.
  auto handle = api.OpenFile("ticker.af", vfs::OpenMode::kRead);
  if (!handle.ok()) return 1;
  exchange.Tick(3);
  auto refreshed = manager.Control(*handle, AsBytes("refresh"));
  if (refreshed.ok()) {
    auto size = api.GetFileSize(*handle);
    std::printf("refreshed without reopening: %llu bytes of fresh quotes\n",
                static_cast<unsigned long long>(size.value_or(0)));
  }
  (void)api.CloseHandle(*handle);
  return 0;
}
