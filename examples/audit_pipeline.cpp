// Concurrent logging + auditing (paper Section 3): several worker
// *processes* append to one log active file whose sentinels serialize
// records with a cross-process lock, while an audit sentinel demonstrates
// per-access side effects on a sensitive file.
#include <cstdio>
#include <fstream>
#include <iterator>

#include "afs.hpp"
#include "ipc/process.hpp"
#include "util/strings.hpp"

int main() {
  using namespace afs;

  vfs::FileApi api("/tmp/afs-audit");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  // The shared log.  Client code just writes records; locking, newline
  // framing, and stamping live in the sentinel.
  sentinel::SentinelSpec log;
  log.name = "log";
  log.config["mutex"] = "pipeline";
  log.config["stamp"] = "1";
  (void)manager.CreateActiveFile("pipeline.log.af", log);

  auto worker = [&](int id) {
    return [&, id]() -> int {
      vfs::FileApi worker_api("/tmp/afs-audit");
      core::ActiveFileManager worker_manager(
          worker_api, sentinel::SentinelRegistry::Global());
      worker_manager.Install();
      auto handle =
          worker_api.OpenFile("pipeline.log.af", vfs::OpenMode::kWrite);
      if (!handle.ok()) return 1;
      for (int i = 0; i < 10; ++i) {
        const std::string record = "worker " + std::to_string(id) +
                                   " finished stage " + std::to_string(i);
        if (!worker_api.WriteFile(*handle, AsBytes(record)).ok()) return 2;
      }
      return worker_api.CloseHandle(*handle).ok() ? 0 : 3;
    };
  };

  std::vector<ipc::ChildProcess> children;
  for (int id = 1; id <= 3; ++id) {
    auto child = ipc::SpawnFunction(worker(id));
    if (!child.ok()) return 1;
    children.push_back(std::move(*child));
  }
  for (auto& child : children) (void)child.Wait();

  auto data = manager.ReadDataPart("pipeline.log.af");
  if (data.ok()) {
    const auto lines = SplitLines(ToString(ByteSpan(*data)));
    std::printf("log holds %zu records from 3 worker processes; first 3:\n",
                lines.size());
    for (std::size_t i = 0; i < 3 && i < lines.size(); ++i) {
      std::printf("  %s\n", lines[i].c_str());
    }
  }

  // The audited file: every access leaves a trail record, client unaware.
  sentinel::SentinelSpec audit;
  audit.name = "audit";
  audit.config["audit_file"] = "trail.log";
  (void)manager.CreateActiveFile("payroll.af", audit,
                                 AsBytes("salaries: REDACTED"));
  auto handle = api.OpenFile("payroll.af", vfs::OpenMode::kRead);
  if (handle.ok()) {
    Buffer out(8);
    (void)api.ReadFile(*handle, MutableByteSpan(out));
    (void)api.CloseHandle(*handle);
  }
  std::ifstream trail("/tmp/afs-audit/.afs-locks/trail.log");
  const std::string trail_text((std::istreambuf_iterator<char>(trail)),
                               std::istreambuf_iterator<char>());
  std::printf("\naudit trail for payroll.af:\n%s", trail_text.c_str());
  return 0;
}
