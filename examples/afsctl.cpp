// afsctl: command-line tool for authoring and inspecting active files.
//
//   afsctl <root> create <path> <sentinel> [key=value ...]   author a bundle
//   afsctl <root> spec <path>        show the active part (sentinel+config)
//   afsctl <root> cat <path>         read through the sentinel
//   afsctl <root> write <path> <text>  write through the sentinel
//   afsctl <root> data <path>        dump the raw data part (no sentinel)
//   afsctl <root> ls [dir]           list a directory in the sandbox
//   afsctl <root> sentinels          list registered sentinels
//   afsctl <root> stats [path] [--json]  dump metrics/spans; with a path,
//                                    read it first so its trace shows up
#include <cstdio>
#include <string>
#include <vector>

#include "afs.hpp"
#include "util/strings.hpp"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: afsctl <root> <create|spec|cat|write|data|ls|"
               "sentinels|stats> [args...]\n");
  return 2;
}

void PrintStatus(const afs::Status& status) {
  std::fprintf(stderr, "afsctl: %s\n", status.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afs;
  if (argc < 3) return Usage();
  const std::string root = argv[1];
  const std::string command = argv[2];
  std::vector<std::string> args(argv + 3, argv + argc);

  vfs::FileApi api(root);
  sentinels::RegisterBuiltinSentinels();
  core::SocketResolver resolver;  // sock: urls work out of the box
  core::ManagerOptions options;
  options.resolver = &resolver;
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global(),
                                  options);
  manager.Install();

  if (command == "sentinels") {
    for (const auto& name : sentinel::SentinelRegistry::Global().Names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (command == "ls") {
    auto names = api.ListDirectory(args.empty() ? "" : args[0]);
    if (!names.ok()) {
      PrintStatus(names.status());
      return 1;
    }
    for (const auto& name : *names) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (command == "stats") {
    bool json = false;
    std::string read_path;
    for (const auto& arg : args) {
      if (arg == "--json") {
        json = true;
      } else {
        read_path = arg;
      }
    }
    if (!read_path.empty()) {
      // Read under an armed trace so the dump below carries the full span
      // tree of this one operation: app -> link -> sentinel -> source.
      obs::TraceScope trace("afsctl.stats.read");
      auto content = api.ReadWholeFile(read_path);
      if (!content.ok()) {
        PrintStatus(content.status());
        return 1;
      }
    }
    const std::string body = json ? obs::StatsJson() : obs::StatsText();
    std::fwrite(body.data(), 1, body.size(), stdout);
    return 0;
  }
  if (args.empty()) return Usage();
  const std::string path = args[0];

  if (command == "create") {
    if (args.size() < 2) return Usage();
    sentinel::SentinelSpec spec;
    spec.name = args[1];
    for (std::size_t i = 2; i < args.size(); ++i) {
      auto [key, value] = SplitOnce(args[i], '=');
      if (key.empty()) return Usage();
      spec.config[key] = value;
    }
    const Status status = manager.CreateActiveFile(path, spec);
    if (!status.ok()) {
      PrintStatus(status);
      return 1;
    }
    std::printf("created %s (sentinel '%s', %zu config keys)\n", path.c_str(),
                spec.name.c_str(), spec.config.size());
    return 0;
  }
  if (command == "spec") {
    auto spec = manager.ReadSpec(path);
    if (!spec.ok()) {
      PrintStatus(spec.status());
      return 1;
    }
    std::printf("sentinel: %s\n", spec->name.c_str());
    for (const auto& [key, value] : spec->config) {
      std::printf("  %s = %s\n", key.c_str(), value.c_str());
    }
    return 0;
  }
  if (command == "cat") {
    auto content = api.ReadWholeFile(path);
    if (!content.ok()) {
      PrintStatus(content.status());
      return 1;
    }
    std::fwrite(content->data(), 1, content->size(), stdout);
    return 0;
  }
  if (command == "write") {
    if (args.size() < 2) return Usage();
    auto handle = api.OpenFile(path, vfs::OpenMode::kWrite);
    if (!handle.ok()) {
      PrintStatus(handle.status());
      return 1;
    }
    auto written = api.WriteFile(*handle, AsBytes(args[1]));
    const Status closed = api.CloseHandle(*handle);
    if (!written.ok() || !closed.ok()) {
      PrintStatus(written.ok() ? closed : written.status());
      return 1;
    }
    std::printf("wrote %zu bytes through the sentinel\n", *written);
    return 0;
  }
  if (command == "data") {
    auto data = manager.ReadDataPart(path);
    if (!data.ok()) {
      PrintStatus(data.status());
      return 1;
    }
    std::fwrite(data->data(), 1, data->size(), stdout);
    return 0;
  }
  return Usage();
}
