// Umbrella header: the public API of the active-files library.
//
// Quickstart:
//
//   afs::vfs::FileApi api("/tmp/sandbox");
//   afs::sentinels::RegisterBuiltinSentinels();
//   afs::core::ActiveFileManager manager(
//       api, afs::sentinel::SentinelRegistry::Global());
//   manager.Install();   // the "IAT rewrite": .af opens now spawn sentinels
//
//   afs::sentinel::SentinelSpec spec;
//   spec.name = "compress";
//   spec.config["codec"] = "lz77";
//   manager.CreateActiveFile("notes.af", spec).ok();
//
//   // Legacy code path — indistinguishable from a passive file:
//   auto handle = api.OpenFile("notes.af", afs::vfs::OpenMode::kReadWrite);
//   api.WriteFile(*handle, afs::AsBytes("hello"));
//   api.CloseHandle(*handle);
#pragma once

#include "common/bytes.hpp"      // IWYU pragma: export
#include "common/clock.hpp"      // IWYU pragma: export
#include "common/status.hpp"     // IWYU pragma: export
#include "core/bundle.hpp"       // IWYU pragma: export
#include "core/manager.hpp"      // IWYU pragma: export
#include "core/resolvers.hpp"    // IWYU pragma: export
#include "core/strategies.hpp"   // IWYU pragma: export
#include "net/file_server.hpp"   // IWYU pragma: export
#include "net/mail_server.hpp"   // IWYU pragma: export
#include "net/quote_server.hpp"  // IWYU pragma: export
#include "net/simnet.hpp"        // IWYU pragma: export
#include "net/socket_transport.hpp"  // IWYU pragma: export
#include "obs/metrics.hpp"           // IWYU pragma: export
#include "obs/stats.hpp"             // IWYU pragma: export
#include "obs/trace.hpp"             // IWYU pragma: export
#include "sentinel/registry.hpp"     // IWYU pragma: export
#include "sentinel/sentinel.hpp"     // IWYU pragma: export
#include "sentinels/builtin.hpp"     // IWYU pragma: export
#include "vfs/file_api.hpp"          // IWYU pragma: export
#include "vfs/paths.hpp"             // IWYU pragma: export
