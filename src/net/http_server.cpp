#include "net/http_server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/faultpoint.hpp"
#include "ipc/process.hpp"
#include "obs/metrics.hpp"
#include "obs/stats.hpp"
#include "util/strings.hpp"

namespace afs::net {
namespace {

Status FillSockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

bool WriteAllFd(int fd, ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE,
    // not a process-fatal SIGPIPE (belt to IgnoreSigpipe's suspenders —
    // this path must be safe even in embedders with their own handlers).
    const ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads until the end of headers (\r\n\r\n or \n\n); returns the raw text
// and leaves any body prefix in `overflow`.
bool ReadHead(int fd, std::string& head, Buffer& overflow) {
  head.clear();
  overflow.clear();
  char c = 0;
  while (head.size() < 16 * 1024) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n == 0) return !head.empty();
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    head.push_back(c);
    if (head.size() >= 2 && head.compare(head.size() - 2, 2, "\n\n") == 0) {
      return true;
    }
    if (head.size() >= 4 &&
        head.compare(head.size() - 4, 4, "\r\n\r\n") == 0) {
      return true;
    }
  }
  return false;
}

bool ReadExactFd(int fd, MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::map<std::string, std::string> ParseHeaders(
    const std::vector<std::string>& lines) {
  std::map<std::string, std::string> headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto [name, value] = SplitOnce(lines[i], ':');
    if (!name.empty()) {
      headers[ToLowerAscii(TrimWhitespace(name))] = TrimWhitespace(value);
    }
  }
  return headers;
}

std::string ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void SendResponse(int fd, int code,
                  const std::map<std::string, std::string>& headers,
                  ByteSpan body, bool include_body) {
  std::string head =
      "HTTP/1.0 " + std::to_string(code) + " " + ReasonPhrase(code) + "\r\n";
  for (const auto& [name, value] : headers) {
    head += name + ": " + value + "\r\n";
  }
  head += "content-length: " + std::to_string(body.size()) + "\r\n";
  head += "connection: close\r\n\r\n";
  if (!WriteAllFd(fd, AsBytes(head))) return;
  if (include_body && !body.empty()) (void)WriteAllFd(fd, body);
}

}  // namespace

HttpServer::HttpServer(std::string socket_path, FileServer& store)
    : HttpServer(std::move(socket_path), store, Options{}) {}

HttpServer::HttpServer(std::string socket_path, FileServer& store,
                       Options options)
    : path_(std::move(socket_path)), store_(store), options_(options) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load()) return Status::Ok();
  ipc::IgnoreSigpipe();
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path_.c_str());
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError("bind/listen " + path_ + ": " + std::strerror(err));
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    MutexLock lock(conn_mu_);
    threads.swap(conn_threads_);
    for (auto& finished : finished_threads_) {
      threads.push_back(std::move(finished));
    }
    finished_threads_.clear();
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    MutexLock lock(conn_mu_);
    conn_fds_.clear();
  }
  ::unlink(path_.c_str());
}

void HttpServer::AcceptLoop() {
  std::int64_t backoff_us = 10'000;  // EMFILE recovery: 10ms doubling to 500ms
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0 && !fault::Hit("net.accept.emfile").ok()) {
      // Injected descriptor exhaustion: treat the accept as if it had
      // failed with EMFILE so the backoff path is testable on demand.
      ::close(fd);
      fd = -1;
      errno = EMFILE;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) return;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion is a load condition, not a dead listener:
        // sleep (instead of hot-spinning accept) and retry.  Pending
        // clients wait in the listen backlog meanwhile.
        static obs::Counter& emfile =
            obs::Registry::Global().GetCounter("net.accept.emfile");
        emfile.Add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        if (backoff_us < 500'000) backoff_us *= 2;
        continue;
      }
      return;
    }
    backoff_us = 10'000;
    if (options_.max_connections > 0 &&
        active_conns_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      // Over the concurrency cap: shed with an explicit 503 + Retry-After
      // instead of queueing an unbounded thread per connection.  The reply
      // is tiny (fits the socket buffer), so the inline write cannot park
      // the accept loop behind a slow client.
      static obs::Counter& shed =
          obs::Registry::Global().GetCounter("net.http.shed");
      shed.Add(1);
      std::map<std::string, std::string> headers;
      headers["retry-after"] =
          std::to_string((options_.retry_after_ms + 999) / 1000);
      SendResponse(fd, 503, headers, AsBytes("server at connection capacity"),
                   true);
      ::close(fd);
      continue;
    }
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(conn_mu_);
    ReapFinishedLocked();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ReapFinishedLocked() {
  for (auto& thread : finished_threads_) {
    if (thread.joinable()) thread.join();
  }
  finished_threads_.clear();
}

void HttpServer::ServeConnection(int fd) {
  std::string head;
  Buffer overflow;
  if (ReadHead(fd, head, overflow)) {
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const auto lines = SplitLines(head);
    const auto request_parts = lines.empty()
                                   ? std::vector<std::string>{}
                                   : Split(lines[0], ' ');
    const auto headers = ParseHeaders(lines);
    if (request_parts.size() < 2) {
      SendResponse(fd, 400, {}, AsBytes("bad request line"), true);
    } else {
      const std::string method = ToLowerAscii(request_parts[0]);
      std::string target = request_parts[1];
      if (!target.empty() && target.front() == '/') target.erase(0, 1);

      if ((method == "get" || method == "head") &&
          (target == "stats" || target == "stats.txt")) {
        // Observability endpoint, reserved ahead of the store namespace:
        // GET /stats is the same snapshot afsctl renders (both call into
        // obs::StatsJson), /stats.txt the human form.
        static obs::Counter& stats_requests =
            obs::Registry::Global().GetCounter("net.http.stats_requests");
        stats_requests.Add(1);
        const std::string body =
            target == "stats" ? obs::StatsJson() : obs::StatsText();
        std::map<std::string, std::string> response_headers;
        response_headers["content-type"] =
            target == "stats" ? "application/json" : "text/plain";
        SendResponse(fd, 200, response_headers, AsBytes(body),
                     method == "get");
      } else if (method == "get" || method == "head") {
        auto data = store_.Get(target);
        if (!data.ok()) {
          SendResponse(fd, 404, {}, AsBytes("no such file"), true);
        } else {
          std::map<std::string, std::string> response_headers;
          response_headers["x-revision"] =
              std::to_string(store_.Stat(target).revision);
          auto range = headers.find("range");
          if (method == "get" && range != headers.end() &&
              StartsWith(range->second, "bytes=")) {
            const auto [first_text, last_text] =
                SplitOnce(range->second.substr(6), '-');
            std::uint64_t first = 0;
            std::uint64_t last = 0;
            if (ParseU64(first_text, first) && ParseU64(last_text, last) &&
                first <= last) {
              const std::uint64_t begin =
                  std::min<std::uint64_t>(first, data->size());
              const std::uint64_t end =
                  std::min<std::uint64_t>(last + 1, data->size());
              Buffer part(data->begin() + begin, data->begin() + end);
              SendResponse(fd, 206, response_headers, ByteSpan(part), true);
            } else {
              SendResponse(fd, 400, {}, AsBytes("bad range"), true);
            }
          } else {
            SendResponse(fd, 200, response_headers, ByteSpan(*data),
                         method == "get");
          }
        }
      } else if (method == "put") {
        std::uint64_t length = 0;
        auto it = headers.find("content-length");
        if (it == headers.end() || !ParseU64(it->second, length) ||
            length > 64 * 1024 * 1024) {
          SendResponse(fd, 400, {}, AsBytes("bad content-length"), true);
        } else {
          Buffer body(overflow);
          const std::size_t need = static_cast<std::size_t>(length);
          if (body.size() > need) body.resize(need);
          const std::size_t have = body.size();
          body.resize(need);
          if (need > have &&
              !ReadExactFd(fd, MutableByteSpan(body.data() + have,
                                               need - have))) {
            // connection died mid-body; drop it
          } else {
            const Status stored = store_.Put(target, ByteSpan(body));
            if (stored.ok()) {
              std::map<std::string, std::string> response_headers;
              response_headers["x-revision"] =
                  std::to_string(store_.Stat(target).revision);
              SendResponse(fd, 200, response_headers, AsBytes("stored"),
                           true);
            } else {
              SendResponse(fd, 400, {}, AsBytes(stored.ToString()), true);
            }
          }
        }
      } else {
        SendResponse(fd, 405, {}, AsBytes("method not allowed"), true);
      }
    }
  }
  // Retire this connection's bookkeeping: the fd entry goes away (before
  // the close, so a recycled descriptor number can't alias a new entry)
  // and the thread handle parks in finished_threads_ for the accept loop
  // (or Stop) to join, keeping both tables bounded by the connection cap.
  {
    MutexLock lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
    for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
      if (it->get_id() == std::this_thread::get_id()) {
        finished_threads_.push_back(std::move(*it));
        conn_threads_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

Result<HttpResponse> HttpClient::Request(
    const std::string& method, const std::string& target, ByteSpan body,
    const std::vector<std::string>& extra_headers) {
  ipc::IgnoreSigpipe();
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return IoError(std::string("socket: ") + std::strerror(errno));
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return IoError("connect " + path_ + ": " + std::strerror(err));
  }

  std::string head = method + " /" + target + " HTTP/1.0\r\n";
  for (const auto& header : extra_headers) head += header + "\r\n";
  if (!body.empty() || method == "PUT") {
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  head += "\r\n";
  // An early reply can race the request: a server shedding at accept
  // (503 + close, before reading a byte) leaves the response buffered on
  // the socket while our send hits EPIPE.  A send failure therefore falls
  // through to the read — the failure only stands if no reply arrived.
  const bool sent = WriteAllFd(fd, AsBytes(head)) &&
                    (body.empty() || WriteAllFd(fd, body));

  std::string response_head;
  Buffer overflow;
  if (!ReadHead(fd, response_head, overflow)) {
    ::close(fd);
    return sent ? ProtocolError("http response head unreadable")
                : IoError("http send failed");
  }
  const auto lines = SplitLines(response_head);
  const auto status_parts =
      lines.empty() ? std::vector<std::string>{} : Split(lines[0], ' ');
  HttpResponse response;
  std::uint64_t code = 0;
  if (status_parts.size() < 2 || !ParseU64(status_parts[1], code)) {
    ::close(fd);
    return ProtocolError("bad http status line");
  }
  response.status_code = static_cast<int>(code);
  response.headers = ParseHeaders(lines);

  std::uint64_t length = 0;
  auto it = response.headers.find("content-length");
  if (it != response.headers.end()) (void)ParseU64(it->second, length);
  // HEAD advertises the length but carries no body.
  if (method == "HEAD") length = 0;
  response.body = std::move(overflow);
  const std::size_t have = response.body.size();
  response.body.resize(static_cast<std::size_t>(length));
  if (length > have &&
      !ReadExactFd(fd, MutableByteSpan(response.body.data() + have,
                                       static_cast<std::size_t>(length) -
                                           have))) {
    ::close(fd);
    return ClosedError("http body truncated");
  }
  ::close(fd);
  return response;
}

namespace {
Status FromHttpCode(int code, const HttpResponse& response) {
  if (code == 404) return NotFoundError("http 404: " +
                                        ToString(ByteSpan(response.body)));
  if (code == 503) {
    // Server-side shed: surface as the typed overload code and carry the
    // Retry-After header (delta-seconds per RFC 9110) back as the same
    // retry-after-ms hint the control protocol uses.
    std::uint64_t seconds = 0;
    auto it = response.headers.find("retry-after");
    if (it != response.headers.end()) (void)ParseU64(it->second, seconds);
    return OverloadedError("http 503: " + ToString(ByteSpan(response.body)),
                           static_cast<std::int64_t>(seconds) * 1000);
  }
  return RemoteError("http " + std::to_string(code));
}
}  // namespace

Result<Buffer> HttpClient::Get(const std::string& target) {
  AFS_ASSIGN_OR_RETURN(HttpResponse response, Request("GET", target));
  if (response.status_code != 200) {
    return FromHttpCode(response.status_code, response);
  }
  return std::move(response.body);
}

Result<Buffer> HttpClient::GetRange(const std::string& target,
                                    std::uint64_t first, std::uint64_t last) {
  AFS_ASSIGN_OR_RETURN(
      HttpResponse response,
      Request("GET", target, {},
              {"Range: bytes=" + std::to_string(first) + "-" +
               std::to_string(last)}));
  if (response.status_code != 206) {
    return FromHttpCode(response.status_code, response);
  }
  return std::move(response.body);
}

Result<std::uint64_t> HttpClient::Head(const std::string& target) {
  AFS_ASSIGN_OR_RETURN(HttpResponse response, Request("HEAD", target));
  if (response.status_code != 200) {
    return FromHttpCode(response.status_code, response);
  }
  std::uint64_t size = 0;
  auto it = response.headers.find("content-length");
  if (it == response.headers.end() || !ParseU64(it->second, size)) {
    return ProtocolError("HEAD without content-length");
  }
  return size;
}

Status HttpClient::Put(const std::string& target, ByteSpan body) {
  AFS_ASSIGN_OR_RETURN(HttpResponse response, Request("PUT", target, body));
  if (response.status_code != 200) {
    return FromHttpCode(response.status_code, response);
  }
  return Status::Ok();
}

}  // namespace afs::net
