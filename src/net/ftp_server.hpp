// FTP-like file transfer service.  Paper Section 3: "The sentinel accesses
// the remote file using a standard protocol (e.g., FTP or HTTP), creates a
// local copy, and makes the copy available to the client application."
//
// Unlike the framed RPC services, this speaks a classic line-oriented
// protocol over a raw Unix-socket byte stream (single connection, no
// separate data channel):
//
//   client:  RETR <path>\n
//   server:  150 <size>\n<size raw bytes>          (or "550 <reason>\n")
//   client:  STOR <path> <size>\n<size raw bytes>
//   server:  226 stored\n
//   client:  SIZE <path>\n        -> 213 <size>\n
//   client:  DELE <path>\n        -> 250 deleted\n
//   client:  LIST <prefix>\n      -> 150 <count>\n then one name per line
//   client:  QUIT\n               -> 221 bye\n, connection closes
//
// Replies: 1xx/2xx success, 5xx failure.  The backing store is a
// net::FileServer, so content staged for RPC tests is equally visible
// over FTP.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "net/file_server.hpp"

namespace afs::net {

class FtpServer {
 public:
  // Does not own the store; it must outlive the server.
  FtpServer(std::string socket_path, FileServer& store);
  ~FtpServer();

  FtpServer(const FtpServer&) = delete;
  FtpServer& operator=(const FtpServer&) = delete;

  Status Start();
  void Stop();

  const std::string& socket_path() const noexcept { return path_; }
  std::uint64_t commands_served() const noexcept {
    return commands_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  const std::string path_;
  FileServer& store_;
  // afs-lint: allow(guarded-member: written by Start/Stop on the owner thread)
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> commands_served_{0};
  // afs-lint: allow(guarded-member: Start() spawns, Stop() joins; owner thread only)
  std::thread accept_thread_;
  Mutex conn_mu_;
  std::vector<std::thread> conn_threads_ AFS_GUARDED_BY(conn_mu_);
  std::vector<int> conn_fds_ AFS_GUARDED_BY(conn_mu_);
};

// Blocking single-connection client.
class FtpClient {
 public:
  explicit FtpClient(std::string socket_path);
  ~FtpClient();

  FtpClient(const FtpClient&) = delete;
  FtpClient& operator=(const FtpClient&) = delete;

  Result<Buffer> Retr(const std::string& path);
  Status Stor(const std::string& path, ByteSpan data);
  Result<std::uint64_t> Size(const std::string& path);
  Status Dele(const std::string& path);
  Result<std::vector<std::string>> List(const std::string& prefix);
  Status Quit();

 private:
  Status EnsureConnected();
  void Disconnect() noexcept;
  Status SendLine(const std::string& line);
  // Reads up to '\n' (exclusive); buffers excess bytes.
  Result<std::string> ReadLine();
  Status ReadExact(MutableByteSpan out);
  // Parses "NNN rest"; 5xx codes become kRemoteError.
  Result<std::pair<int, std::string>> ReadReply();

  std::string path_;
  int fd_ = -1;
  // afs-lint: allow(bounded-queue: at most one reply line (4096-byte cap) plus a read chunk)
  Buffer pending_;  // bytes read past the last line boundary
};

}  // namespace afs::net
