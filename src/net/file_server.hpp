// Remote file service ("AFP").  Stands in for the paper's FTP/HTTP-reachable
// remote files (Section 3, "Aggregation"): sentinels GET whole files or
// ranges, PUT/APPEND updates, and revalidate caches with conditional GETs
// against per-file revisions — the mechanism that keeps a sentinel's local
// cache "consistent with any updates performed … at any of the remote
// sources" (Section 1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "net/rpc.hpp"

namespace afs::net {

// Wire opcodes (request: u8 op | lp path | op-specific fields).
enum class FileOp : std::uint8_t {
  kGet = 1,       // -> u64 rev | lp data
  kPut = 2,       // lp data -> u64 rev
  kAppend = 3,    // lp data -> u64 rev
  kStat = 4,      // -> u8 exists | u64 size | u64 rev
  kDelete = 5,    // -> (empty)
  kList = 6,      // path is a prefix -> u32 count | lp name...
  kGetRange = 7,  // u64 offset | u32 length -> u64 rev | lp data
  kGetIf = 8,     // u64 known_rev -> u8 modified | [u64 rev | lp data]
  kPutRange = 9,  // u64 offset | lp data -> u64 rev  (extends as needed)
};

struct FileStat {
  bool exists = false;
  std::uint64_t size = 0;
  std::uint64_t revision = 0;
};

// In-memory versioned file store + RPC handler.
class FileServer final : public RpcHandler {
 public:
  // Change callback: (path, new revision).  Fired synchronously under no
  // internal lock after each successful mutation.  In-process subscribers
  // only (SimNet-side caches); socket clients poll with kGetIf instead.
  using ChangeCallback = std::function<void(const std::string&, std::uint64_t)>;

  FileServer() = default;

  // --- direct (non-RPC) API, used by tests/examples to stage content ----
  Status Put(const std::string& path, ByteSpan data);
  Status Append(const std::string& path, ByteSpan data);
  // Writes at an offset inside the file, zero-extending any gap; creates
  // the file when absent.
  Status PutRange(const std::string& path, std::uint64_t offset,
                  ByteSpan data);
  Result<Buffer> Get(const std::string& path) const;
  FileStat Stat(const std::string& path) const;
  Status Delete(const std::string& path);
  std::vector<std::string> List(const std::string& prefix) const;

  // Returns a subscription id; Unsubscribe with it.
  std::uint64_t Subscribe(ChangeCallback callback);
  void Unsubscribe(std::uint64_t id);

  // --- RpcHandler ------------------------------------------------------
  Result<Buffer> Handle(ByteSpan request) override;

 private:
  struct Entry {
    Buffer data;
    std::uint64_t revision = 0;
  };

  void NotifyChanged(const std::string& path, std::uint64_t revision);

  mutable Mutex mu_;
  std::map<std::string, Entry> files_ AFS_GUARDED_BY(mu_);
  std::uint64_t next_revision_ AFS_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, ChangeCallback> subscribers_ AFS_GUARDED_BY(mu_);
  std::uint64_t next_subscriber_ AFS_GUARDED_BY(mu_) = 1;
};

// Typed client over any Transport.
class FileClient {
 public:
  explicit FileClient(Transport& transport) : transport_(transport) {}

  struct GetResult {
    Buffer data;
    std::uint64_t revision = 0;
  };

  Result<GetResult> Get(const std::string& path);
  Result<GetResult> GetRange(const std::string& path, std::uint64_t offset,
                             std::uint32_t length);
  // nullopt when not modified since known_revision.
  Result<std::optional<GetResult>> GetIfModified(const std::string& path,
                                                 std::uint64_t known_revision);
  Result<std::uint64_t> Put(const std::string& path, ByteSpan data);
  Result<std::uint64_t> Append(const std::string& path, ByteSpan data);
  Result<std::uint64_t> PutRange(const std::string& path,
                                 std::uint64_t offset, ByteSpan data);
  Result<FileStat> Stat(const std::string& path);
  Status Delete(const std::string& path);
  Result<std::vector<std::string>> List(const std::string& prefix);

 private:
  Transport& transport_;
};

}  // namespace afs::net
