// Transport-agnostic request/response plumbing.
//
// Every remote source in this reproduction (file server, quote server, mail
// server) is an RpcHandler.  Handlers can be mounted on either transport:
//   - net::SimNet        — in-process simulated network with latency and
//                          bandwidth modelling (deterministic, laptop-scale
//                          stand-in for the paper's 100 Mbps testbed), or
//   - net::SocketServer  — a real Unix-domain-socket server, reachable from
//                          forked sentinel processes (the process-based
//                          strategies), where in-process delivery threads
//                          do not survive the fork.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace afs::net {

// Server-side: decode a request, do the work, produce a response payload.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;
  virtual Result<Buffer> Handle(ByteSpan request) = 0;
};

// Client-side: send a request, block for the response payload.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<Buffer> Call(ByteSpan request) = 0;
};

// Response envelope carried over every transport:
//   u16 error-code | lp-string message | lp-bytes payload
// A handler failure travels as a first-class Status instead of a broken
// connection, so clients can distinguish remote errors from transport
// errors.
Buffer EncodeResponseEnvelope(const Status& status, ByteSpan payload);
Result<Buffer> DecodeResponseEnvelope(ByteSpan envelope);

// Wraps a handler so its Result<Buffer> travels inside the envelope.
// Always returns an encodable buffer (never a transport-level error).
Buffer RunHandlerToEnvelope(RpcHandler& handler, ByteSpan request);

}  // namespace afs::net
