#include "net/mail_server.hpp"

#include "util/strings.hpp"

namespace afs::net {

std::string RenderMessage(const MailMessage& message) {
  return "From: " + message.from + "\nTo: " + message.to +
         "\nSubject: " + message.subject + "\n\n" + message.body;
}

Result<std::vector<std::string>> ParseRecipients(std::string_view to_header) {
  std::vector<std::string> recipients;
  for (const auto& part : Split(to_header, ',')) {
    std::string name = TrimWhitespace(part);
    if (!name.empty()) recipients.push_back(std::move(name));
  }
  if (recipients.empty()) {
    return ProtocolError("no recipients in To: header");
  }
  return recipients;
}

Result<MailMessage> ParseMessage(std::string_view text,
                                 std::vector<std::string>* recipients) {
  MailMessage message;
  std::size_t pos = 0;
  bool saw_to = false;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        eol == std::string_view::npos ? text.substr(pos)
                                      : text.substr(pos, eol - pos);
    if (line.empty()) {  // blank line: body follows
      if (eol == std::string_view::npos) break;
      message.body = std::string(text.substr(eol + 1));
      break;
    }
    const auto [name, value] = SplitOnce(line, ':');
    const std::string header = ToLowerAscii(TrimWhitespace(name));
    const std::string content = TrimWhitespace(value);
    if (header == "from") {
      message.from = content;
    } else if (header == "to") {
      message.to = content;
      saw_to = true;
    } else if (header == "subject") {
      message.subject = content;
    } else {
      return ProtocolError("unknown mail header: " + header);
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  if (!saw_to) return ProtocolError("missing To: header");
  if (recipients != nullptr) {
    AFS_ASSIGN_OR_RETURN(*recipients, ParseRecipients(message.to));
  }
  return message;
}

Result<std::uint32_t> MailServer::Send(
    const MailMessage& message, const std::vector<std::string>& recipients) {
  if (recipients.empty()) return InvalidArgumentError("no recipients");
  MutexLock lock(mu_);
  for (const auto& recipient : recipients) {
    MailMessage copy = message;
    copy.to = recipient;
    mailboxes_[recipient].push_back(std::move(copy));
  }
  return static_cast<std::uint32_t>(recipients.size());
}

Result<std::vector<MailMessage>> MailServer::Mailbox(
    const std::string& user) const {
  MutexLock lock(mu_);
  auto it = mailboxes_.find(user);
  if (it == mailboxes_.end()) return std::vector<MailMessage>{};
  return it->second;
}

Status MailServer::DeleteMessage(const std::string& user,
                                 std::uint32_t index) {
  MutexLock lock(mu_);
  auto it = mailboxes_.find(user);
  if (it == mailboxes_.end() || index >= it->second.size()) {
    return NotFoundError("no message " + std::to_string(index) + " for " +
                         user);
  }
  it->second.erase(it->second.begin() + index);
  return Status::Ok();
}

std::size_t MailServer::MailboxSize(const std::string& user) const {
  MutexLock lock(mu_);
  auto it = mailboxes_.find(user);
  return it == mailboxes_.end() ? 0 : it->second.size();
}

Result<Buffer> MailServer::Handle(ByteSpan request) {
  ByteReader reader(request);
  std::uint8_t op = 0;
  std::string user;
  if (!reader.ReadU8(op) || !reader.ReadLenPrefixedString(user)) {
    return ProtocolError("malformed mail request");
  }
  Buffer out;
  switch (static_cast<MailOp>(op)) {
    case MailOp::kList: {
      MutexLock lock(mu_);
      auto it = mailboxes_.find(user);
      const std::size_t count =
          it == mailboxes_.end() ? 0 : it->second.size();
      AppendU32(out, static_cast<std::uint32_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        AppendU32(out, static_cast<std::uint32_t>(
                           RenderMessage(it->second[i]).size()));
      }
      return out;
    }
    case MailOp::kRetrieve: {
      std::uint32_t index = 0;
      if (!reader.ReadU32(index)) return ProtocolError("malformed RETR");
      MutexLock lock(mu_);
      auto it = mailboxes_.find(user);
      if (it == mailboxes_.end() || index >= it->second.size()) {
        return NotFoundError("no message " + std::to_string(index));
      }
      AppendLenPrefixed(out, RenderMessage(it->second[index]));
      return out;
    }
    case MailOp::kDelete: {
      std::uint32_t index = 0;
      if (!reader.ReadU32(index)) return ProtocolError("malformed DELE");
      AFS_RETURN_IF_ERROR(DeleteMessage(user, index));
      return out;
    }
    case MailOp::kSend: {
      ByteSpan rendered;
      if (!reader.ReadLenPrefixed(rendered)) {
        return ProtocolError("malformed SEND");
      }
      std::vector<std::string> recipients;
      AFS_ASSIGN_OR_RETURN(MailMessage message,
                           ParseMessage(ToString(rendered), &recipients));
      AFS_ASSIGN_OR_RETURN(std::uint32_t delivered,
                           Send(message, recipients));
      AppendU32(out, delivered);
      return out;
    }
  }
  return ProtocolError("unknown mail opcode " + std::to_string(op));
}

Result<std::vector<std::uint32_t>> MailClient::List(const std::string& user) {
  Buffer req;
  req.push_back(static_cast<std::uint8_t>(MailOp::kList));
  AppendLenPrefixed(req, user);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint32_t count = 0;
  if (!reader.ReadU32(count)) return ProtocolError("malformed LIST response");
  std::vector<std::uint32_t> sizes;
  sizes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t size = 0;
    if (!reader.ReadU32(size)) return ProtocolError("malformed LIST size");
    sizes.push_back(size);
  }
  return sizes;
}

Result<MailMessage> MailClient::Retrieve(const std::string& user,
                                         std::uint32_t index) {
  Buffer req;
  req.push_back(static_cast<std::uint8_t>(MailOp::kRetrieve));
  AppendLenPrefixed(req, user);
  AppendU32(req, index);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  ByteSpan rendered;
  if (!reader.ReadLenPrefixed(rendered)) {
    return ProtocolError("malformed RETR response");
  }
  return ParseMessage(ToString(rendered), nullptr);
}

Status MailClient::Delete(const std::string& user, std::uint32_t index) {
  Buffer req;
  req.push_back(static_cast<std::uint8_t>(MailOp::kDelete));
  AppendLenPrefixed(req, user);
  AppendU32(req, index);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  (void)resp;
  return Status::Ok();
}

Result<std::uint32_t> MailClient::Send(
    const MailMessage& message, const std::vector<std::string>& recipients) {
  MailMessage outgoing = message;
  outgoing.to = JoinStrings(recipients, ", ");
  Buffer req;
  req.push_back(static_cast<std::uint8_t>(MailOp::kSend));
  AppendLenPrefixed(req, std::string_view(""));  // user field unused
  AppendLenPrefixed(req, RenderMessage(outgoing));
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint32_t delivered = 0;
  if (!reader.ReadU32(delivered)) {
    return ProtocolError("malformed SEND response");
  }
  return delivered;
}

}  // namespace afs::net
