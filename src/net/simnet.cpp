#include "net/simnet.hpp"

#include "common/faultpoint.hpp"

namespace afs::net {

std::string SimNet::LinkKey(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}

Status SimNet::AddLink(const std::string& a, const std::string& b,
                       LinkConfig config) {
  if (a == b) return InvalidArgumentError("self link: " + a);
  MutexLock lock(mu_);
  Link& link = links_[LinkKey(a, b)];
  link.config = config;
  if (config.bandwidth_bps > 0) {
    link.forward = std::make_unique<RateLimiter>(clock_, config.bandwidth_bps);
    link.backward =
        std::make_unique<RateLimiter>(clock_, config.bandwidth_bps);
  } else {
    link.forward.reset();
    link.backward.reset();
  }
  return Status::Ok();
}

Status SimNet::Mount(const std::string& node, const std::string& service,
                     RpcHandler& handler) {
  MutexLock lock(mu_);
  const std::string key = node + ":" + service;
  if (services_.count(key) != 0) {
    return AlreadyExistsError("service already mounted: " + key);
  }
  services_[key] = &handler;
  return Status::Ok();
}

Status SimNet::Unmount(const std::string& node, const std::string& service) {
  MutexLock lock(mu_);
  if (services_.erase(node + ":" + service) == 0) {
    return NotFoundError("no service: " + node + ":" + service);
  }
  return Status::Ok();
}

Result<SimNet::Route> SimNet::ResolveRoute(const std::string& from,
                                           const std::string& to) {
  MutexLock lock(mu_);
  auto it = links_.find(LinkKey(from, to));
  if (it == links_.end()) {
    return NotFoundError("no link between " + from + " and " + to);
  }
  Link& link = it->second;
  // The canonical key orders endpoints; forward is lesser->greater.
  const bool forward_dir = from < to;
  RateLimiter* limiter =
      forward_dir ? link.forward.get() : link.backward.get();
  return Route{link.config.latency, limiter};
}

Result<RpcHandler*> SimNet::ResolveService(const std::string& node,
                                           const std::string& service) {
  MutexLock lock(mu_);
  auto it = services_.find(node + ":" + service);
  if (it == services_.end()) {
    return NotFoundError("no service: " + node + ":" + service);
  }
  return it->second;
}

std::uint64_t SimNet::bytes_carried() const {
  MutexLock lock(mu_);
  return bytes_carried_;
}

class SimNet::SimTransport final : public Transport {
 public:
  SimTransport(SimNet& net, std::string client_node, std::string server_node,
               std::string service)
      : net_(net),
        client_node_(std::move(client_node)),
        server_node_(std::move(server_node)),
        service_(std::move(service)) {}

  Result<Buffer> Call(ByteSpan request) override {
    AFS_FAULT_POINT("net.simnet.call");
    AFS_ASSIGN_OR_RETURN(Route out_route,
                         net_.ResolveRoute(client_node_, server_node_));
    AFS_ASSIGN_OR_RETURN(RpcHandler * handler,
                         net_.ResolveService(server_node_, service_));

    Delay(out_route, request.size());
    Buffer envelope = RunHandlerToEnvelope(*handler, request);

    AFS_ASSIGN_OR_RETURN(Route back_route,
                         net_.ResolveRoute(server_node_, client_node_));
    Delay(back_route, envelope.size());

    {
      MutexLock lock(net_.mu_);
      net_.bytes_carried_ += request.size() + envelope.size();
    }
    return DecodeResponseEnvelope(envelope);
  }

 private:
  void Delay(const Route& route, std::size_t bytes) {
    Micros wait = route.latency;
    if (route.limiter != nullptr) {
      wait += route.limiter->ReserveDelay(bytes);
    }
    if (wait.count() > 0) net_.clock_.SleepFor(wait);
  }

  SimNet& net_;
  const std::string client_node_;
  const std::string server_node_;
  const std::string service_;
};

std::unique_ptr<Transport> SimNet::Connect(const std::string& client_node,
                                           const std::string& server_node,
                                           const std::string& service) {
  return std::make_unique<SimTransport>(*this, client_node, server_node,
                                        service);
}

}  // namespace afs::net
