// SimNet: an in-process simulated network.
//
// The paper's evaluation ran against a 2-node PC cluster on 100 Mbps Fast
// Ethernet.  SimNet substitutes a deterministic model: named nodes joined by
// links with one-way latency and byte bandwidth (token bucket).  A client
// call pays latency + serialization delay for the request, executes the
// service handler, then pays the same for the response — giving the remote
// path of Figure 6(a) a stable, configurable cost without real hardware.
//
// Delay accounting runs against an injected Clock, so tests can use
// ManualClock for instant "sleeps" and benches use the steady clock for
// real elapsed time.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "net/rpc.hpp"
#include "util/rate_limiter.hpp"

namespace afs::net {

struct LinkConfig {
  Micros latency{0};                   // one-way propagation delay
  std::uint64_t bandwidth_bps = 0;     // bytes/second; 0 = unlimited
};

class SimNet {
 public:
  explicit SimNet(Clock& clock) : clock_(clock) {}
  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // Nodes spring into existence on first use; AddLink defines the a<->b
  // path (symmetric: one shared bandwidth bucket per direction).
  Status AddLink(const std::string& a, const std::string& b,
                 LinkConfig config);

  // Mounts a service (non-owning; caller keeps the handler alive) at
  // node:service.
  Status Mount(const std::string& node, const std::string& service,
               RpcHandler& handler);

  Status Unmount(const std::string& node, const std::string& service);

  // A Transport whose Call() crosses the simulated network from
  // `client_node` to `server_node`:`service`.  Fails at call time with
  // kNotFound if the service or link is missing.
  std::unique_ptr<Transport> Connect(const std::string& client_node,
                                     const std::string& server_node,
                                     const std::string& service);

  // Total simulated payload bytes carried (both directions), for tests.
  std::uint64_t bytes_carried() const;

 private:
  struct Link {
    LinkConfig config;
    std::unique_ptr<RateLimiter> forward;   // a -> b
    std::unique_ptr<RateLimiter> backward;  // b -> a
  };

  struct Route {
    Micros latency;
    RateLimiter* limiter;  // may be null (unlimited)
  };

  class SimTransport;

  static std::string LinkKey(const std::string& a, const std::string& b);

  // Resolves the a->b direction of the link; kNotFound if absent.
  Result<Route> ResolveRoute(const std::string& from, const std::string& to);

  Result<RpcHandler*> ResolveService(const std::string& node,
                                     const std::string& service);

  Clock& clock_;
  mutable Mutex mu_;
  std::map<std::string, Link> links_ AFS_GUARDED_BY(mu_);
  // "node:service"
  std::map<std::string, RpcHandler*> services_ AFS_GUARDED_BY(mu_);
  std::uint64_t bytes_carried_ AFS_GUARDED_BY(mu_) = 0;
};

}  // namespace afs::net
