#include "net/quote_server.hpp"

namespace afs::net {

void QuoteServer::AddSymbol(const std::string& symbol,
                            std::int64_t price_cents) {
  MutexLock lock(mu_);
  quotes_[symbol] = Quote{symbol, price_cents, now_tick_};
}

void QuoteServer::Tick(std::uint64_t ticks) {
  MutexLock lock(mu_);
  for (std::uint64_t t = 0; t < ticks; ++t) {
    ++now_tick_;
    for (auto& [symbol, quote] : quotes_) {
      // Random walk: ±(0..1%) of the current price, minimum 1 cent move.
      const std::int64_t magnitude =
          std::max<std::int64_t>(1, quote.price_cents / 100);
      const std::int64_t step =
          static_cast<std::int64_t>(prng_.NextBelow(
              static_cast<std::uint64_t>(2 * magnitude + 1))) -
          magnitude;
      quote.price_cents = std::max<std::int64_t>(1, quote.price_cents + step);
      quote.tick = now_tick_;
    }
  }
}

Result<Quote> QuoteServer::GetQuote(const std::string& symbol) const {
  MutexLock lock(mu_);
  auto it = quotes_.find(symbol);
  if (it == quotes_.end()) return NotFoundError("no symbol: " + symbol);
  return it->second;
}

std::vector<std::string> QuoteServer::Symbols() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(quotes_.size());
  for (const auto& [symbol, quote] : quotes_) out.push_back(symbol);
  return out;
}

Result<Buffer> QuoteServer::Handle(ByteSpan request) {
  ByteReader reader(request);
  std::uint8_t op = 0;
  if (!reader.ReadU8(op)) return ProtocolError("malformed quote request");
  Buffer out;
  switch (static_cast<QuoteOp>(op)) {
    case QuoteOp::kQuote: {
      std::uint32_t count = 0;
      if (!reader.ReadU32(count)) return ProtocolError("malformed QUOTE");
      std::vector<std::string> symbols;
      symbols.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::string symbol;
        if (!reader.ReadLenPrefixedString(symbol)) {
          return ProtocolError("malformed QUOTE symbol");
        }
        symbols.push_back(std::move(symbol));
      }
      MutexLock lock(mu_);
      AppendU32(out, static_cast<std::uint32_t>(symbols.size()));
      for (const auto& symbol : symbols) {
        auto it = quotes_.find(symbol);
        if (it == quotes_.end()) return NotFoundError("no symbol: " + symbol);
        AppendLenPrefixed(out, symbol);
        AppendU64(out, static_cast<std::uint64_t>(it->second.price_cents));
        AppendU64(out, it->second.tick);
      }
      return out;
    }
    case QuoteOp::kListSymbols: {
      const std::vector<std::string> symbols = Symbols();
      AppendU32(out, static_cast<std::uint32_t>(symbols.size()));
      for (const auto& symbol : symbols) AppendLenPrefixed(out, symbol);
      return out;
    }
  }
  return ProtocolError("unknown quote opcode " + std::to_string(op));
}

Result<std::vector<Quote>> QuoteClient::GetQuotes(
    const std::vector<std::string>& symbols) {
  Buffer req;
  req.push_back(static_cast<std::uint8_t>(QuoteOp::kQuote));
  AppendU32(req, static_cast<std::uint32_t>(symbols.size()));
  for (const auto& symbol : symbols) AppendLenPrefixed(req, symbol);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint32_t count = 0;
  if (!reader.ReadU32(count)) return ProtocolError("malformed QUOTE response");
  std::vector<Quote> quotes;
  quotes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Quote quote;
    std::uint64_t price = 0;
    if (!reader.ReadLenPrefixedString(quote.symbol) ||
        !reader.ReadU64(price) || !reader.ReadU64(quote.tick)) {
      return ProtocolError("malformed QUOTE entry");
    }
    quote.price_cents = static_cast<std::int64_t>(price);
    quotes.push_back(std::move(quote));
  }
  return quotes;
}

Result<std::vector<std::string>> QuoteClient::ListSymbols() {
  Buffer req;
  req.push_back(static_cast<std::uint8_t>(QuoteOp::kListSymbols));
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint32_t count = 0;
  if (!reader.ReadU32(count)) return ProtocolError("malformed LIST response");
  std::vector<std::string> symbols;
  symbols.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string symbol;
    if (!reader.ReadLenPrefixedString(symbol)) {
      return ProtocolError("malformed LIST entry");
    }
    symbols.push_back(std::move(symbol));
  }
  return symbols;
}

std::string RenderQuotesText(const std::vector<Quote>& quotes) {
  std::string out;
  for (const auto& quote : quotes) {
    const std::int64_t dollars = quote.price_cents / 100;
    const std::int64_t cents = quote.price_cents % 100;
    out += quote.symbol + "\t" + std::to_string(dollars) + "." +
           (cents < 10 ? "0" : "") + std::to_string(cents) + "\t" +
           std::to_string(quote.tick) + "\n";
  }
  return out;
}

}  // namespace afs::net
