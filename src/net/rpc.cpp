#include "net/rpc.hpp"

namespace afs::net {

Buffer EncodeResponseEnvelope(const Status& status, ByteSpan payload) {
  Buffer out;
  out.reserve(2 + 4 + status.message().size() + 4 + payload.size());
  AppendU16(out, static_cast<std::uint16_t>(status.code()));
  AppendLenPrefixed(out, status.message());
  AppendLenPrefixed(out, payload);
  return out;
}

Result<Buffer> DecodeResponseEnvelope(ByteSpan envelope) {
  ByteReader reader(envelope);
  std::uint16_t code = 0;
  std::string message;
  ByteSpan payload;
  if (!reader.ReadU16(code) || !reader.ReadLenPrefixedString(message) ||
      !reader.ReadLenPrefixed(payload)) {
    return ProtocolError("malformed response envelope");
  }
  if (code != 0) {
    return Status(static_cast<ErrorCode>(code), std::move(message));
  }
  return Buffer(payload.begin(), payload.end());
}

Buffer RunHandlerToEnvelope(RpcHandler& handler, ByteSpan request) {
  Result<Buffer> result = handler.Handle(request);
  if (!result.ok()) {
    return EncodeResponseEnvelope(result.status(), {});
  }
  return EncodeResponseEnvelope(Status::Ok(), result.value());
}

}  // namespace afs::net
