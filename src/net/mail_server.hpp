// Mail service (POP-flavoured retrieval + submission).  Backs the paper's
// inbox example ("reading it causes new messages to be retrieved possibly
// from multiple remote POP servers") and the outbox example ("the sentinel
// parses the data written to the file to extract the 'To' addresses and
// send the data to each recipient") — Section 3, Aggregation/Distribution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "net/rpc.hpp"

namespace afs::net {

struct MailMessage {
  std::string from;
  std::string to;       // the recipient this copy was delivered to
  std::string subject;
  std::string body;
};

// RFC-822-ish flattening used on the wire, in mailbox files, and by the
// outbox sentinel's parser:
//   From: a@x\nTo: b@y, c@z\nSubject: s\n\nbody
std::string RenderMessage(const MailMessage& message);

// Parses the flattened form; `to` receives the full recipient list
// (comma-separated names are split and trimmed).
Result<std::vector<std::string>> ParseRecipients(std::string_view to_header);
Result<MailMessage> ParseMessage(std::string_view text,
                                 std::vector<std::string>* recipients);

// Wire ops (request: u8 op | lp user | op-specific).
enum class MailOp : std::uint8_t {
  kList = 1,   // -> u32 count | u32 size...
  kRetrieve = 2,  // u32 index -> lp rendered-message
  kDelete = 3,    // u32 index -> (empty)
  kSend = 4,      // lp rendered-message (user field unused) -> u32 delivered
};

class MailServer final : public RpcHandler {
 public:
  MailServer() = default;

  // Direct API (tests/examples).  Send fans out one copy per recipient.
  Result<std::uint32_t> Send(const MailMessage& message,
                             const std::vector<std::string>& recipients);
  Result<std::vector<MailMessage>> Mailbox(const std::string& user) const;
  Status DeleteMessage(const std::string& user, std::uint32_t index);
  std::size_t MailboxSize(const std::string& user) const;

  Result<Buffer> Handle(ByteSpan request) override;

 private:
  mutable Mutex mu_;
  // afs-lint: allow(bounded-queue: in-memory demo spool; DeleteMessage drains it and the suite owns retention)
  std::map<std::string, std::vector<MailMessage>> mailboxes_
      AFS_GUARDED_BY(mu_);
};

class MailClient {
 public:
  explicit MailClient(Transport& transport) : transport_(transport) {}

  // Sizes (in rendered bytes) of the messages waiting for `user`.
  Result<std::vector<std::uint32_t>> List(const std::string& user);
  Result<MailMessage> Retrieve(const std::string& user, std::uint32_t index);
  Status Delete(const std::string& user, std::uint32_t index);
  // Returns how many mailboxes the message was delivered to.
  Result<std::uint32_t> Send(const MailMessage& message,
                             const std::vector<std::string>& recipients);

 private:
  Transport& transport_;
};

}  // namespace afs::net
