// Unix-domain-socket transport.
//
// The process-based strategies fork the sentinel into its own address
// space, where SimNet (whose state lives in the parent) is unreachable.
// SocketServer exposes the same RpcHandler over a real socket so a forked
// sentinel can talk to remote sources exactly like the in-process ones do.
// An optional per-request service delay models network service time, so the
// remote-path benchmark can present all strategies with the same remote
// cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "core/event_loop.hpp"
#include "ipc/framing.hpp"
#include "net/rpc.hpp"

namespace afs::net {

// Event-loop-hosted server: one core::EventLoop multiplexes the listening
// socket and every connection (non-blocking accept/recv/send, per-
// connection FrameDecoder reassembly, readiness-driven response flushing).
// Replaces the former thread-per-connection model — idle connections cost
// an epoll registration, not a parked thread.
class SocketServer {
 public:
  struct Options {
    // Artificial delay added to every request before the handler runs;
    // models propagation + service time of a remote source.  Implemented
    // as a loop timer, so a delayed request never blocks the other
    // connections sharing the loop.
    Micros service_delay{0};
    // Per-connection cap on buffered unflushed response bytes.  A reader
    // that stops draining while responses keep queueing is a slow
    // consumer; at the cap the server disconnects it instead of letting
    // one connection's outbuf grow without bound.  0 disables the cap.
    std::size_t max_outbuf_bytes = 8 * 1024 * 1024;
  };

  // Does not take ownership of the handler; it must outlive the server.
  SocketServer(std::string socket_path, RpcHandler& handler);
  SocketServer(std::string socket_path, RpcHandler& handler, Options options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens, and registers the listening socket on the loop.
  Status Start();

  // Stops the loop, closes active connections, unlinks the socket path.
  // Idempotent.
  void Stop();

  const std::string& socket_path() const noexcept { return path_; }
  std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  // Per-connection state; loop-thread confined.  `gen` disambiguates a
  // recycled descriptor number from the connection a delayed-service timer
  // was armed for.
  struct Connection {
    std::uint64_t gen = 0;
    ipc::FrameDecoder decoder;
    // Framed responses not yet flushed; capped at max_outbuf_bytes by
    // RunRequest (slow readers are disconnected at the cap).
    // afs-lint: allow(bounded-queue: capped by Options::max_outbuf_bytes)
    Buffer outbuf;
    std::size_t out_off = 0;     // flushed prefix of outbuf
    bool want_write = false;     // write-readiness interest currently armed
  };

  // Loop-thread entries.
  void OnListenReady();
  // EMFILE/ENFILE recovery: parks the listening socket (unregisters it
  // from the loop) and re-arms it from a timer, so a level-triggered
  // always-readable listener cannot hot-spin the loop while the process
  // is out of descriptors.
  void BackOffAccept();
  void OnConnReady(int fd, std::uint32_t ready);
  void HandleFrame(int fd, std::uint64_t gen, Buffer request);
  void RunRequest(int fd, const Buffer& request);
  // Returns false when the connection died and was closed.
  bool FlushConn(int fd, Connection& conn);
  void CloseConn(int fd);

  const std::string path_;
  RpcHandler& handler_;
  const Options options_;
  // afs-lint: allow(guarded-member: written by Start/Stop on the owner thread)
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  // afs-lint: allow(guarded-member: EventLoop is internally synchronized)
  core::EventLoop loop_;
  // afs-lint: allow(guarded-member: loop-thread confined; Stop() drains after join)
  std::map<int, Connection> conns_;
  // afs-lint: allow(guarded-member: loop-thread confined; Stop() drains after join)
  std::uint64_t next_gen_ = 1;
};

// Client transport: one connection, frames one request and blocks for one
// response per Call.  Connects lazily on first Call and reconnects after
// transport errors, so a handle is usable immediately after fork.
//
// Transient transport failures (kIoError, kClosed: server restarting, a
// connection the server dropped between calls) are retried on a fresh
// connection with bounded exponential backoff.  Timeouts are never retried:
// the request may have executed, and at-most-once is the only safe default
// for a write-capable transport.
class SocketClient final : public Transport {
 public:
  struct Options {
    // Retries per Call after the initial attempt; 0 disables retry.
    int max_retries = 2;
    Micros retry_backoff{1000};      // initial delay, doubles per retry
    Micros retry_backoff_cap{50000};
    // Per-call response deadline; non-positive waits forever.
    Micros call_timeout{0};
  };

  explicit SocketClient(std::string socket_path);
  SocketClient(std::string socket_path, Options options);
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  Result<Buffer> Call(ByteSpan request) override;

 private:
  Status EnsureConnected();
  void Disconnect() noexcept;
  // One request/response exchange on the current (or a fresh) connection.
  // One connect+send+bounded-receive attempt (Call adds retry/backoff
  // around it); the wait is capped by options_.call_timeout.
  Result<Buffer> CallOnce(ByteSpan request) AFS_NONBLOCKING;

  std::string path_;
  Options options_;
  int fd_ = -1;
};

}  // namespace afs::net
