// Stock-quote service.  Backs the paper's aggregation example of "an active
// file that reflects the latest stock quotes (downloaded by the sentinel
// from a server) every time the file is opened" (Section 3).  Prices follow
// a deterministic seeded random walk so tests and examples are reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "net/rpc.hpp"
#include "util/prng.hpp"

namespace afs::net {

// Prices are fixed-point cents to keep the wire format exact.
struct Quote {
  std::string symbol;
  std::int64_t price_cents = 0;
  std::uint64_t tick = 0;  // market time when last updated
};

// Wire ops (request: u8 op | fields).
enum class QuoteOp : std::uint8_t {
  kQuote = 1,  // u32 count | lp symbol...  -> u32 count | per quote:
               //   lp symbol | u64 price_cents | u64 tick
  kListSymbols = 2,  // -> u32 count | lp symbol...
};

class QuoteServer final : public RpcHandler {
 public:
  explicit QuoteServer(std::uint64_t seed = 42) : prng_(seed) {}

  // Introduces a symbol at a base price.
  void AddSymbol(const std::string& symbol, std::int64_t price_cents);

  // Advances market time: every symbol takes `ticks` random-walk steps of
  // at most ±1% each.
  void Tick(std::uint64_t ticks = 1);

  Result<Quote> GetQuote(const std::string& symbol) const;
  std::vector<std::string> Symbols() const;

  Result<Buffer> Handle(ByteSpan request) override;

 private:
  mutable Mutex mu_;
  std::map<std::string, Quote> quotes_ AFS_GUARDED_BY(mu_);
  std::uint64_t now_tick_ AFS_GUARDED_BY(mu_) = 0;
  Prng prng_ AFS_GUARDED_BY(mu_);
};

class QuoteClient {
 public:
  explicit QuoteClient(Transport& transport) : transport_(transport) {}

  Result<std::vector<Quote>> GetQuotes(
      const std::vector<std::string>& symbols);
  Result<std::vector<std::string>> ListSymbols();

 private:
  Transport& transport_;
};

// Renders quotes as the text the quote sentinel serves to applications:
//   "SYM<TAB>price<TAB>tick\n", price formatted as dollars.cents.
std::string RenderQuotesText(const std::vector<Quote>& quotes);

}  // namespace afs::net
