#include "net/socket_transport.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/backoff.hpp"
#include "common/faultpoint.hpp"
#include "ipc/framing.hpp"
#include "ipc/pipe.hpp"
#include "ipc/process.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace afs::net {

using core::EventLoop;

namespace {

Status FillSockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

// Bound on any client-side transport leg not covered by an operator-
// configured call timeout (non-blocking connect completion, request
// send).  Mirrors the pipe layer's default: seconds of an unresponsive
// peer means it is gone, and kTimeout beats a parked caller.
constexpr Micros kSocketIoTimeout{10'000'000};

}  // namespace

SocketServer::SocketServer(std::string socket_path, RpcHandler& handler)
    : SocketServer(std::move(socket_path), handler, Options{}) {}

SocketServer::SocketServer(std::string socket_path, RpcHandler& handler,
                           Options options)
    : path_(std::move(socket_path)), handler_(handler), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (running_.load()) return Status::Ok();
  // A peer vanishing mid-write must surface as EPIPE, not kill the process.
  ipc::IgnoreSigpipe();
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError("bind " + path_ + ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError(std::string("listen: ") + std::strerror(err));
  }
  Status started = loop_.Start();
  if (started.ok()) {
    started = loop_.RegisterFd(listen_fd_, EventLoop::kReadable,
                               [this](std::uint32_t) { OnListenReady(); });
  }
  if (!started.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    return started;
  }
  running_.store(true);
  return Status::Ok();
}

void SocketServer::Stop() {
  if (!running_.exchange(false)) return;
  // Stop the loop first: once its thread joins, no callback can touch the
  // connection table, so this thread owns the teardown below.
  loop_.Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  ::unlink(path_.c_str());
}

void SocketServer::OnListenReady() {
  // Drain the accept backlog: edge-ish batching — one wakeup admits every
  // connection that is already queued.
  while (true) {
    int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0 && !fault::Hit("net.accept.emfile").ok()) {
      // Injected descriptor exhaustion: treat the accept as if it had
      // failed with EMFILE so the backoff path is testable on demand.
      ::close(fd);
      fd = -1;
      errno = EMFILE;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      if (errno == EMFILE || errno == ENFILE) {
        BackOffAccept();
        return;
      }
      return;  // transient accept error: wait for the next wakeup
    }
    Connection conn;
    conn.gen = next_gen_++;
    conns_.emplace(fd, std::move(conn));
    const Status reg =
        loop_.RegisterFd(fd, EventLoop::kReadable, [this, fd](
                                                       std::uint32_t ready) {
          OnConnReady(fd, ready);
        });
    if (!reg.ok()) {
      conns_.erase(fd);
      ::close(fd);
    }
  }
}

void SocketServer::BackOffAccept() {
  // Out of descriptors: the listener stays readable for as long as the
  // backlog holds connections we cannot accept, so leaving it registered
  // would spin the level-triggered loop at 100% CPU.  Park it and re-arm
  // from a timer; pending clients wait in the listen backlog meanwhile.
  static obs::Counter& emfile =
      obs::Registry::Global().GetCounter("net.accept.emfile");
  emfile.Add(1);
  loop_.UnregisterFd(listen_fd_);
  constexpr Micros kAcceptBackoff{50'000};
  loop_.AddTimer(kAcceptBackoff, [this] {
    if (!running_.load()) return;
    const Status reg =
        loop_.RegisterFd(listen_fd_, EventLoop::kReadable,
                         [this](std::uint32_t) { OnListenReady(); });
    // Still exhausted (epoll_ctl needs a descriptor too): go around again.
    if (!reg.ok()) BackOffAccept();
  });
}

void SocketServer::OnConnReady(int fd, std::uint32_t ready) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const std::uint64_t gen = it->second.gen;
  if ((ready & EventLoop::kWritable) != 0 && it->second.want_write) {
    if (!FlushConn(fd, it->second)) return;
  }
  if ((ready & EventLoop::kReadable) == 0) return;
  std::uint8_t chunk[16384];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {  // orderly shutdown from the client
      CloseConn(fd);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // drained
      CloseConn(fd);
      return;
    }
    if (!it->second.decoder
             .Append(ByteSpan(chunk, static_cast<std::size_t>(n)))
             .ok()) {
      CloseConn(fd);  // corrupt length prefix: the peer is not speaking AFS
      return;
    }
  }
  // Dispatch every complete frame the read produced.  HandleFrame can close
  // the connection (injected fault), so re-validate the entry per frame.
  while (true) {
    auto live = conns_.find(fd);
    if (live == conns_.end() || live->second.gen != gen) return;
    std::optional<Buffer> frame = live->second.decoder.Next();
    if (!frame.has_value()) return;
    HandleFrame(fd, gen, std::move(*frame));
  }
}

void SocketServer::HandleFrame(int fd, std::uint64_t gen, Buffer request) {
  // Injected server-side fault: drop the connection without replying —
  // the client observes a mid-call disconnect and must recover.
  if (!fault::Hit("net.socket.serve").ok()) {
    CloseConn(fd);
    return;
  }
  if (options_.service_delay.count() > 0) {
    // The modeled service time is a loop timer, not a sleep: a delayed
    // request parks no thread and stalls no other connection.  The
    // generation check drops the work if this descriptor number was
    // recycled for a newer connection before the timer fired.
    loop_.AddTimer(options_.service_delay,
                   [this, fd, gen, request = std::move(request)] {
                     auto it = conns_.find(fd);
                     if (it == conns_.end() || it->second.gen != gen) return;
                     RunRequest(fd, request);
                   });
    return;
  }
  RunRequest(fd, request);
}

void SocketServer::RunRequest(int fd, const Buffer& request) {
  Buffer envelope = RunHandlerToEnvelope(handler_, request);
  // Count before the reply ships: a client that has its response must
  // observe the incremented counter.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  if (options_.max_outbuf_bytes > 0 &&
      (conn.outbuf.size() - conn.out_off) + envelope.size() + 4 >
          options_.max_outbuf_bytes) {
    // Slow consumer: the peer keeps sending requests but stopped draining
    // responses.  Disconnect instead of buffering without bound — the
    // client observes kClosed and recovers through its retry path.
    static obs::Counter& slow =
        obs::Registry::Global().GetCounter("net.socket.slow_reader_drops");
    slow.Add(1);
    CloseConn(fd);
    return;
  }
  AppendU32(conn.outbuf, static_cast<std::uint32_t>(envelope.size()));
  conn.outbuf.insert(conn.outbuf.end(), envelope.begin(), envelope.end());
  (void)FlushConn(fd, conn);
}

bool SocketServer::FlushConn(int fd, Connection& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n = ::send(fd, conn.outbuf.data() + conn.out_off,
                             conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: hand the rest to write-readiness and move on.
        if (!conn.want_write) {
          conn.want_write = true;
          if (!loop_.ModifyFd(fd, EventLoop::kReadable | EventLoop::kWritable)
                   .ok()) {
            // No write-readiness means the reply can never drain.
            CloseConn(fd);
            return false;
          }
        }
        return true;
      }
      CloseConn(fd);
      return false;
    }
    conn.out_off += static_cast<std::size_t>(n);
  }
  conn.outbuf.clear();
  conn.out_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    if (!loop_.ModifyFd(fd, EventLoop::kReadable).ok()) {
      // Unknown epoll interest state: drop the connection rather than risk
      // a busy-loop of spurious write wakeups.
      CloseConn(fd);
      return false;
    }
  }
  return true;
}

void SocketServer::CloseConn(int fd) {
  loop_.UnregisterFd(fd);
  ::close(fd);
  conns_.erase(fd);
}

SocketClient::SocketClient(std::string socket_path)
    : SocketClient(std::move(socket_path), Options{}) {}

SocketClient::SocketClient(std::string socket_path, Options options)
    : path_(std::move(socket_path)), options_(options) {
  ipc::IgnoreSigpipe();
}

SocketClient::~SocketClient() { Disconnect(); }

Status SocketClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  static obs::Counter& connects =
      obs::Registry::Global().GetCounter("net.socket.connects");
  connects.Add(1);
  AFS_FAULT_POINT("net.socket.connect");
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  const Micros bound = options_.call_timeout.count() > 0
                           ? options_.call_timeout
                           : kSocketIoTimeout;
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  // afs-lint: allow(nonblocking: O_NONBLOCK connect; bounded by the WaitWritable deadline below)
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const int err = errno;
      Disconnect();
      return IoError("connect " + path_ + ": " + std::strerror(err));
    }
    // Connect in flight: wait (bounded) for writability, then read the
    // kernel's verdict out of SO_ERROR.
    ipc::PipeEnd probe(fd_);
    const Status ready = probe.WaitWritable(bound);
    int so_error = 0;
    if (ready.ok()) {
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
        so_error = errno;
      }
    }
    (void)probe.Release();
    if (!ready.ok()) {
      Disconnect();
      return ready;
    }
    if (so_error != 0) {
      Disconnect();
      return IoError("connect " + path_ + ": " + std::strerror(so_error));
    }
  }
  // Only the connect leg runs in non-blocking mode; the call pattern is a
  // blocking request/response with its own bounded waits.
  ipc::PipeEnd stream(fd_);
  const Status restored = stream.SetNonblocking(false);
  (void)stream.Release();
  if (!restored.ok()) {
    Disconnect();
    return restored;
  }
  return Status::Ok();
}

void SocketClient::Disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Buffer> SocketClient::CallOnce(ByteSpan request) {
  AFS_RETURN_IF_ERROR(EnsureConnected());
  AFS_FAULT_POINT("net.socket.call");
  // Borrow the fd for framing without transferring ownership.
  ipc::PipeEnd stream(fd_);
  const Micros bound = options_.call_timeout.count() > 0
                           ? options_.call_timeout
                           : kSocketIoTimeout;
  Status sent = ipc::WriteFrame(stream, request, bound);
  if (!sent.ok()) {
    (void)stream.Release();
    Disconnect();
    return sent;
  }
  Result<Buffer> envelope = ipc::ReadFrame(stream, options_.call_timeout);
  (void)stream.Release();
  if (!envelope.ok()) {
    Disconnect();
    return envelope.status();
  }
  return DecodeResponseEnvelope(*envelope);
}

Result<Buffer> SocketClient::Call(ByteSpan request) {
  static obs::Counter& calls =
      obs::Registry::Global().GetCounter("net.socket.calls");
  static obs::Counter& retries =
      obs::Registry::Global().GetCounter("net.socket.retries");
  static obs::Counter& bytes_out =
      obs::Registry::Global().GetCounter("net.socket.bytes_out");
  static obs::Counter& bytes_in =
      obs::Registry::Global().GetCounter("net.socket.bytes_in");
  static obs::Histogram& latency =
      obs::Registry::Global().GetHistogram("net.socket.call_us");
  // The remote leg of the trace: when a sentinel serves a traced command
  // by fetching from a remote source, this span nests under the dispatch
  // span and rides home with it.
  obs::Span span("net.socket.call");
  const std::uint64_t n = calls.Increment();
  obs::ScopedLatencyTimer timer((n & 15) == 0 ? &latency : nullptr);
  bytes_out.Add(request.size());
  Result<Buffer> reply = CallOnce(request);
  Backoff backoff(options_.max_retries, options_.retry_backoff,
                  options_.retry_backoff_cap);
  while (!reply.ok()) {
    const ErrorCode code = reply.status().code();
    // Only transport-level failures are retryable.  A timeout means the
    // request may have executed — retrying would break at-most-once — and
    // any other code is an answer from the server, not a transport fault.
    const bool transient =
        code == ErrorCode::kIoError || code == ErrorCode::kClosed;
    if (!transient || !backoff.Next(SteadyClock::Instance())) break;
    retries.Add(1);
    reply = CallOnce(request);
  }
  if (reply.ok()) bytes_in.Add(reply->size());
  return reply;
}

}  // namespace afs::net
