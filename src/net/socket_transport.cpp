#include "net/socket_transport.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/backoff.hpp"
#include "common/faultpoint.hpp"
#include "ipc/framing.hpp"
#include "ipc/pipe.hpp"
#include "ipc/process.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace afs::net {
namespace {

Status FillSockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

}  // namespace

SocketServer::SocketServer(std::string socket_path, RpcHandler& handler)
    : SocketServer(std::move(socket_path), handler, Options{}) {}

SocketServer::SocketServer(std::string socket_path, RpcHandler& handler,
                           Options options)
    : path_(std::move(socket_path)), handler_(handler), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (running_.load()) return Status::Ok();
  // A peer vanishing mid-write must surface as EPIPE, not kill the process.
  ipc::IgnoreSigpipe();
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError("bind " + path_ + ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError(std::string("listen: ") + std::strerror(err));
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::Stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Breaking accept(): shutdown then close the listening socket.  The
  // accept thread still reads listen_fd_ until it joins, so the field is
  // only overwritten once that thread is gone.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  {
    MutexLock lock(conn_mu_);
    threads.swap(conn_threads_);
    // Connection threads block in ReadFrame on idle-but-open connections;
    // shutdown makes those reads return so the joins below complete.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    MutexLock lock(conn_mu_);
    conn_fds_.clear();
  }
  ::unlink(path_.c_str());
}

void SocketServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket closed by Stop()
    }
    MutexLock lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void SocketServer::ServeConnection(int fd) {
  ipc::PipeEnd stream(fd);
  while (true) {
    Result<Buffer> request = ipc::ReadFrame(stream);
    if (!request.ok()) return;  // client went away
    // Injected server-side fault: drop the connection without replying —
    // the client observes a mid-call disconnect and must recover.
    if (!fault::Hit("net.socket.serve").ok()) return;
    if (options_.service_delay.count() > 0) {
      SteadyClock::Instance().SleepFor(options_.service_delay);
    }
    Buffer envelope = RunHandlerToEnvelope(handler_, *request);
    // Count before the reply ships: a client that has its response must
    // observe the incremented counter.
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!ipc::WriteFrame(stream, envelope).ok()) return;
  }
}

SocketClient::SocketClient(std::string socket_path)
    : SocketClient(std::move(socket_path), Options{}) {}

SocketClient::SocketClient(std::string socket_path, Options options)
    : path_(std::move(socket_path)), options_(options) {
  ipc::IgnoreSigpipe();
}

SocketClient::~SocketClient() { Disconnect(); }

Status SocketClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  static obs::Counter& connects =
      obs::Registry::Global().GetCounter("net.socket.connects");
  connects.Add(1);
  AFS_FAULT_POINT("net.socket.connect");
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    Disconnect();
    return IoError("connect " + path_ + ": " + std::strerror(err));
  }
  return Status::Ok();
}

void SocketClient::Disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Buffer> SocketClient::CallOnce(ByteSpan request) {
  AFS_RETURN_IF_ERROR(EnsureConnected());
  AFS_FAULT_POINT("net.socket.call");
  // Borrow the fd for framing without transferring ownership.
  ipc::PipeEnd stream(fd_);
  Status sent = ipc::WriteFrame(stream, request);
  if (!sent.ok()) {
    (void)stream.Release();
    Disconnect();
    return sent;
  }
  Result<Buffer> envelope = ipc::ReadFrame(stream, options_.call_timeout);
  (void)stream.Release();
  if (!envelope.ok()) {
    Disconnect();
    return envelope.status();
  }
  return DecodeResponseEnvelope(*envelope);
}

Result<Buffer> SocketClient::Call(ByteSpan request) {
  static obs::Counter& calls =
      obs::Registry::Global().GetCounter("net.socket.calls");
  static obs::Counter& retries =
      obs::Registry::Global().GetCounter("net.socket.retries");
  static obs::Counter& bytes_out =
      obs::Registry::Global().GetCounter("net.socket.bytes_out");
  static obs::Counter& bytes_in =
      obs::Registry::Global().GetCounter("net.socket.bytes_in");
  static obs::Histogram& latency =
      obs::Registry::Global().GetHistogram("net.socket.call_us");
  // The remote leg of the trace: when a sentinel serves a traced command
  // by fetching from a remote source, this span nests under the dispatch
  // span and rides home with it.
  obs::Span span("net.socket.call");
  const std::uint64_t n = calls.Increment();
  obs::ScopedLatencyTimer timer((n & 15) == 0 ? &latency : nullptr);
  bytes_out.Add(request.size());
  Result<Buffer> reply = CallOnce(request);
  Backoff backoff(options_.max_retries, options_.retry_backoff,
                  options_.retry_backoff_cap);
  while (!reply.ok()) {
    const ErrorCode code = reply.status().code();
    // Only transport-level failures are retryable.  A timeout means the
    // request may have executed — retrying would break at-most-once — and
    // any other code is an answer from the server, not a transport fault.
    const bool transient =
        code == ErrorCode::kIoError || code == ErrorCode::kClosed;
    if (!transient || !backoff.Next(SteadyClock::Instance())) break;
    retries.Add(1);
    reply = CallOnce(request);
  }
  if (reply.ok()) bytes_in.Add(reply->size());
  return reply;
}

}  // namespace afs::net
