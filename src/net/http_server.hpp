// Minimal HTTP/1.0-style file service — the second "standard protocol"
// the paper names for remote access ("e.g., FTP or HTTP").  Implements
// exactly the subset a fetch-a-copy sentinel needs:
//
//   GET /path HTTP/1.0                      -> 200 + body | 404
//   HEAD /path HTTP/1.0                     -> 200 headers only | 404
//   PUT /path HTTP/1.0 + Content-Length     -> 200 | 400
//   GET with "Range: bytes=a-b"             -> 206 + partial body
//
// Responses carry Content-Length (and X-Revision with the store's
// revision, enabling cheap revalidation).  One request per connection
// (HTTP/1.0 semantics, Connection: close).
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "net/file_server.hpp"

namespace afs::net {

struct HttpResponse {
  int status_code = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  Buffer body;
};

class HttpServer {
 public:
  struct Options {
    // Concurrent connection cap; over the cap the server sheds the new
    // connection with "503 Service Unavailable" + Retry-After instead of
    // growing an unbounded thread pool.  0 disables the cap.
    int max_connections = 64;
    // Advertised shed hint, surfaced as a Retry-After header (rounded up
    // to whole seconds per RFC 9110) and parsed back by HttpClient into
    // an OverloadedError retry-after-ms tag.
    int retry_after_ms = 1000;
  };

  HttpServer(std::string socket_path, FileServer& store);
  HttpServer(std::string socket_path, FileServer& store, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  Status Start();
  void Stop();

  const std::string& socket_path() const noexcept { return path_; }
  std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }
  int active_connections() const noexcept {
    return active_conns_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  // Joins threads whose connections have finished (they parked themselves
  // in finished_threads_) so a long-lived server's thread table stays
  // bounded by the connection cap instead of growing per request.
  void ReapFinishedLocked() AFS_REQUIRES(conn_mu_);

  const std::string path_;
  FileServer& store_;
  const Options options_;
  // afs-lint: allow(guarded-member: written by Start/Stop on the owner thread)
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<int> active_conns_{0};
  // afs-lint: allow(guarded-member: Start() spawns, Stop() joins; owner thread only)
  std::thread accept_thread_;
  Mutex conn_mu_;
  // Bounded by Options::max_connections (over-cap accepts are shed with
  // 503 before a thread is spawned); reaped as connections finish.
  // afs-lint: allow(bounded-queue: capped by Options::max_connections)
  std::vector<std::thread> conn_threads_ AFS_GUARDED_BY(conn_mu_);
  // afs-lint: allow(bounded-queue: capped by Options::max_connections)
  std::vector<int> conn_fds_ AFS_GUARDED_BY(conn_mu_);
  // afs-lint: allow(bounded-queue: drained by ReapFinishedLocked on every accept)
  std::vector<std::thread> finished_threads_ AFS_GUARDED_BY(conn_mu_);
};

// One-request-per-connection client.
class HttpClient {
 public:
  explicit HttpClient(std::string socket_path) : path_(std::move(socket_path)) {}

  // method: "GET", "HEAD", "PUT".  extra_headers are sent verbatim.
  Result<HttpResponse> Request(
      const std::string& method, const std::string& target, ByteSpan body = {},
      const std::vector<std::string>& extra_headers = {});

  // Conveniences mapping HTTP status to Status codes (404 -> kNotFound,
  // 503 -> kOverloaded carrying the Retry-After hint, other non-2xx ->
  // kRemoteError).
  Result<Buffer> Get(const std::string& target);
  Result<Buffer> GetRange(const std::string& target, std::uint64_t first,
                          std::uint64_t last);
  Result<std::uint64_t> Head(const std::string& target);  // -> size
  Status Put(const std::string& target, ByteSpan body);

 private:
  std::string path_;
};

}  // namespace afs::net
