#include "net/file_server.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace afs::net {

Status FileServer::Put(const std::string& path, ByteSpan data) {
  if (path.empty()) return InvalidArgumentError("empty path");
  std::uint64_t rev;
  {
    MutexLock lock(mu_);
    Entry& entry = files_[path];
    entry.data.assign(data.begin(), data.end());
    entry.revision = rev = next_revision_++;
  }
  NotifyChanged(path, rev);
  return Status::Ok();
}

Status FileServer::Append(const std::string& path, ByteSpan data) {
  if (path.empty()) return InvalidArgumentError("empty path");
  std::uint64_t rev;
  {
    MutexLock lock(mu_);
    Entry& entry = files_[path];
    entry.data.insert(entry.data.end(), data.begin(), data.end());
    entry.revision = rev = next_revision_++;
  }
  NotifyChanged(path, rev);
  return Status::Ok();
}

Status FileServer::PutRange(const std::string& path, std::uint64_t offset,
                            ByteSpan data) {
  if (path.empty()) return InvalidArgumentError("empty path");
  std::uint64_t rev;
  {
    MutexLock lock(mu_);
    Entry& entry = files_[path];
    const std::uint64_t end = offset + data.size();
    if (end > entry.data.size()) {
      entry.data.resize(static_cast<std::size_t>(end), 0);
    }
    std::copy(data.begin(), data.end(), entry.data.begin() + offset);
    entry.revision = rev = next_revision_++;
  }
  NotifyChanged(path, rev);
  return Status::Ok();
}

Result<Buffer> FileServer::Get(const std::string& path) const {
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("no remote file: " + path);
  return it->second.data;
}

FileStat FileServer::Stat(const std::string& path) const {
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return FileStat{};
  return FileStat{true, it->second.data.size(), it->second.revision};
}

Status FileServer::Delete(const std::string& path) {
  {
    MutexLock lock(mu_);
    if (files_.erase(path) == 0) {
      return NotFoundError("no remote file: " + path);
    }
  }
  NotifyChanged(path, 0);
  return Status::Ok();
}

std::vector<std::string> FileServer::List(const std::string& prefix) const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [path, entry] : files_) {
    if (StartsWith(path, prefix)) names.push_back(path);
  }
  return names;
}

std::uint64_t FileServer::Subscribe(ChangeCallback callback) {
  MutexLock lock(mu_);
  const std::uint64_t id = next_subscriber_++;
  subscribers_[id] = std::move(callback);
  return id;
}

void FileServer::Unsubscribe(std::uint64_t id) {
  MutexLock lock(mu_);
  subscribers_.erase(id);
}

void FileServer::NotifyChanged(const std::string& path,
                               std::uint64_t revision) {
  std::vector<ChangeCallback> callbacks;
  {
    MutexLock lock(mu_);
    callbacks.reserve(subscribers_.size());
    for (const auto& [id, cb] : subscribers_) callbacks.push_back(cb);
  }
  for (const auto& cb : callbacks) cb(path, revision);
}

Result<Buffer> FileServer::Handle(ByteSpan request) {
  ByteReader reader(request);
  std::uint8_t op = 0;
  std::string path;
  if (!reader.ReadU8(op) || !reader.ReadLenPrefixedString(path)) {
    return ProtocolError("malformed file request");
  }
  Buffer out;
  switch (static_cast<FileOp>(op)) {
    case FileOp::kGet: {
      MutexLock lock(mu_);
      auto it = files_.find(path);
      if (it == files_.end()) return NotFoundError("no remote file: " + path);
      AppendU64(out, it->second.revision);
      AppendLenPrefixed(out, ByteSpan(it->second.data));
      return out;
    }
    case FileOp::kGetRange: {
      std::uint64_t offset = 0;
      std::uint32_t length = 0;
      if (!reader.ReadU64(offset) || !reader.ReadU32(length)) {
        return ProtocolError("malformed GETRANGE");
      }
      MutexLock lock(mu_);
      auto it = files_.find(path);
      if (it == files_.end()) return NotFoundError("no remote file: " + path);
      const Buffer& data = it->second.data;
      const std::uint64_t begin = std::min<std::uint64_t>(offset, data.size());
      const std::uint64_t end =
          std::min<std::uint64_t>(begin + length, data.size());
      AppendU64(out, it->second.revision);
      AppendLenPrefixed(
          out, ByteSpan(data.data() + begin, static_cast<std::size_t>(end - begin)));
      return out;
    }
    case FileOp::kGetIf: {
      std::uint64_t known = 0;
      if (!reader.ReadU64(known)) return ProtocolError("malformed GETIF");
      MutexLock lock(mu_);
      auto it = files_.find(path);
      if (it == files_.end()) return NotFoundError("no remote file: " + path);
      if (it->second.revision == known) {
        out.push_back(0);  // not modified
        return out;
      }
      out.push_back(1);
      AppendU64(out, it->second.revision);
      AppendLenPrefixed(out, ByteSpan(it->second.data));
      return out;
    }
    case FileOp::kPut:
    case FileOp::kAppend: {
      ByteSpan data;
      if (!reader.ReadLenPrefixed(data)) {
        return ProtocolError("malformed PUT/APPEND");
      }
      const Status status = static_cast<FileOp>(op) == FileOp::kPut
                                ? Put(path, data)
                                : Append(path, data);
      AFS_RETURN_IF_ERROR(status);
      AppendU64(out, Stat(path).revision);
      return out;
    }
    case FileOp::kPutRange: {
      std::uint64_t offset = 0;
      ByteSpan data;
      if (!reader.ReadU64(offset) || !reader.ReadLenPrefixed(data)) {
        return ProtocolError("malformed PUTRANGE");
      }
      AFS_RETURN_IF_ERROR(PutRange(path, offset, data));
      AppendU64(out, Stat(path).revision);
      return out;
    }
    case FileOp::kStat: {
      const FileStat stat = Stat(path);
      out.push_back(stat.exists ? 1 : 0);
      AppendU64(out, stat.size);
      AppendU64(out, stat.revision);
      return out;
    }
    case FileOp::kDelete: {
      AFS_RETURN_IF_ERROR(Delete(path));
      return out;
    }
    case FileOp::kList: {
      const std::vector<std::string> names = List(path);
      AppendU32(out, static_cast<std::uint32_t>(names.size()));
      for (const auto& name : names) AppendLenPrefixed(out, name);
      return out;
    }
  }
  return ProtocolError("unknown file opcode " + std::to_string(op));
}

namespace {

Buffer MakeRequest(FileOp op, const std::string& path) {
  Buffer req;
  req.push_back(static_cast<std::uint8_t>(op));
  AppendLenPrefixed(req, path);
  return req;
}

}  // namespace

Result<FileClient::GetResult> FileClient::Get(const std::string& path) {
  AFS_ASSIGN_OR_RETURN(Buffer resp,
                       transport_.Call(MakeRequest(FileOp::kGet, path)));
  ByteReader reader(resp);
  GetResult result;
  ByteSpan data;
  if (!reader.ReadU64(result.revision) || !reader.ReadLenPrefixed(data)) {
    return ProtocolError("malformed GET response");
  }
  result.data.assign(data.begin(), data.end());
  return result;
}

Result<FileClient::GetResult> FileClient::GetRange(const std::string& path,
                                                   std::uint64_t offset,
                                                   std::uint32_t length) {
  Buffer req = MakeRequest(FileOp::kGetRange, path);
  AppendU64(req, offset);
  AppendU32(req, length);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  GetResult result;
  ByteSpan data;
  if (!reader.ReadU64(result.revision) || !reader.ReadLenPrefixed(data)) {
    return ProtocolError("malformed GETRANGE response");
  }
  result.data.assign(data.begin(), data.end());
  return result;
}

Result<std::optional<FileClient::GetResult>> FileClient::GetIfModified(
    const std::string& path, std::uint64_t known_revision) {
  Buffer req = MakeRequest(FileOp::kGetIf, path);
  AppendU64(req, known_revision);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint8_t modified = 0;
  if (!reader.ReadU8(modified)) return ProtocolError("malformed GETIF response");
  if (modified == 0) return std::optional<GetResult>();
  GetResult result;
  ByteSpan data;
  if (!reader.ReadU64(result.revision) || !reader.ReadLenPrefixed(data)) {
    return ProtocolError("malformed GETIF response");
  }
  result.data.assign(data.begin(), data.end());
  return std::optional<GetResult>(std::move(result));
}

Result<std::uint64_t> FileClient::Put(const std::string& path, ByteSpan data) {
  Buffer req = MakeRequest(FileOp::kPut, path);
  AppendLenPrefixed(req, data);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint64_t revision = 0;
  if (!reader.ReadU64(revision)) return ProtocolError("malformed PUT response");
  return revision;
}

Result<std::uint64_t> FileClient::Append(const std::string& path,
                                         ByteSpan data) {
  Buffer req = MakeRequest(FileOp::kAppend, path);
  AppendLenPrefixed(req, data);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint64_t revision = 0;
  if (!reader.ReadU64(revision)) {
    return ProtocolError("malformed APPEND response");
  }
  return revision;
}

Result<std::uint64_t> FileClient::PutRange(const std::string& path,
                                           std::uint64_t offset,
                                           ByteSpan data) {
  Buffer req = MakeRequest(FileOp::kPutRange, path);
  AppendU64(req, offset);
  AppendLenPrefixed(req, data);
  AFS_ASSIGN_OR_RETURN(Buffer resp, transport_.Call(req));
  ByteReader reader(resp);
  std::uint64_t revision = 0;
  if (!reader.ReadU64(revision)) {
    return ProtocolError("malformed PUTRANGE response");
  }
  return revision;
}

Result<FileStat> FileClient::Stat(const std::string& path) {
  AFS_ASSIGN_OR_RETURN(Buffer resp,
                       transport_.Call(MakeRequest(FileOp::kStat, path)));
  ByteReader reader(resp);
  std::uint8_t exists = 0;
  FileStat stat;
  if (!reader.ReadU8(exists) || !reader.ReadU64(stat.size) ||
      !reader.ReadU64(stat.revision)) {
    return ProtocolError("malformed STAT response");
  }
  stat.exists = exists != 0;
  return stat;
}

Status FileClient::Delete(const std::string& path) {
  AFS_ASSIGN_OR_RETURN(Buffer resp,
                       transport_.Call(MakeRequest(FileOp::kDelete, path)));
  (void)resp;
  return Status::Ok();
}

Result<std::vector<std::string>> FileClient::List(const std::string& prefix) {
  AFS_ASSIGN_OR_RETURN(Buffer resp,
                       transport_.Call(MakeRequest(FileOp::kList, prefix)));
  ByteReader reader(resp);
  std::uint32_t count = 0;
  if (!reader.ReadU32(count)) return ProtocolError("malformed LIST response");
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader.ReadLenPrefixedString(name)) {
      return ProtocolError("malformed LIST entry");
    }
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace afs::net
