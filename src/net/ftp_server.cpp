#include "net/ftp_server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "ipc/process.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace afs::net {
namespace {

Status FillSockaddr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

bool WriteAllFd(int fd, ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-transfer must surface as EPIPE,
    // not a process-fatal SIGPIPE.
    const ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool WriteLineFd(int fd, const std::string& line) {
  return WriteAllFd(fd, AsBytes(line + "\n"));
}

// Reads a '\n'-terminated line byte-by-byte (server side; simplicity over
// throughput — commands are tiny).
bool ReadLineFd(int fd, std::string& line) {
  line.clear();
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (c == '\n') return true;
    line.push_back(c);
    if (line.size() > 4096) return false;  // malformed flood
  }
}

bool ReadExactFd(int fd, MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FtpServer::FtpServer(std::string socket_path, FileServer& store)
    : path_(std::move(socket_path)), store_(store) {}

FtpServer::~FtpServer() { Stop(); }

Status FtpServer::Start() {
  if (running_.load()) return Status::Ok();
  ipc::IgnoreSigpipe();
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path_.c_str());
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IoError("bind/listen " + path_ + ": " + std::strerror(err));
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void FtpServer::Stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    MutexLock lock(conn_mu_);
    threads.swap(conn_threads_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    MutexLock lock(conn_mu_);
    conn_fds_.clear();
  }
  ::unlink(path_.c_str());
}

void FtpServer::AcceptLoop() {
  std::int64_t backoff_us = 10'000;  // EMFILE recovery: 10ms doubling to 500ms
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) return;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion is a load condition, not a dead listener:
        // sleep (instead of hot-spinning accept) and retry.
        static obs::Counter& emfile =
            obs::Registry::Global().GetCounter("net.accept.emfile");
        emfile.Add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        if (backoff_us < 500'000) backoff_us *= 2;
        continue;
      }
      return;
    }
    backoff_us = 10'000;
    MutexLock lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void FtpServer::ServeConnection(int fd) {
  WriteLineFd(fd, "220 afs ftp ready");
  std::string line;
  while (ReadLineFd(fd, line)) {
    commands_served_.fetch_add(1, std::memory_order_relaxed);
    const auto [verb_raw, rest] = SplitOnce(TrimWhitespace(line), ' ');
    const std::string verb = ToLowerAscii(verb_raw);
    if (verb == "quit") {
      WriteLineFd(fd, "221 bye");
      break;
    }
    if (verb == "retr") {
      const std::string path = TrimWhitespace(rest);
      auto data = store_.Get(path);
      if (!data.ok()) {
        WriteLineFd(fd, "550 " + data.status().ToString());
        continue;
      }
      if (!WriteLineFd(fd, "150 " + std::to_string(data->size()))) break;
      if (!WriteAllFd(fd, ByteSpan(*data))) break;
      continue;
    }
    if (verb == "stor") {
      const auto [path, size_text] = SplitOnce(TrimWhitespace(rest), ' ');
      std::uint64_t size = 0;
      if (path.empty() || !ParseU64(TrimWhitespace(size_text), size) ||
          size > 64 * 1024 * 1024) {
        WriteLineFd(fd, "501 bad STOR arguments");
        continue;
      }
      Buffer data(static_cast<std::size_t>(size));
      if (!ReadExactFd(fd, MutableByteSpan(data))) break;
      const Status stored = store_.Put(path, ByteSpan(data));
      WriteLineFd(fd, stored.ok() ? "226 stored"
                                  : "550 " + stored.ToString());
      continue;
    }
    if (verb == "size") {
      const FileStat stat = store_.Stat(TrimWhitespace(rest));
      if (!stat.exists) {
        WriteLineFd(fd, "550 no such file");
        continue;
      }
      WriteLineFd(fd, "213 " + std::to_string(stat.size));
      continue;
    }
    if (verb == "dele") {
      const Status deleted = store_.Delete(TrimWhitespace(rest));
      WriteLineFd(fd, deleted.ok() ? "250 deleted"
                                   : "550 " + deleted.ToString());
      continue;
    }
    if (verb == "list") {
      const auto names = store_.List(TrimWhitespace(rest));
      if (!WriteLineFd(fd, "150 " + std::to_string(names.size()))) break;
      bool io_ok = true;
      for (const auto& name : names) {
        if (!WriteLineFd(fd, name)) {
          io_ok = false;
          break;
        }
      }
      if (!io_ok) break;
      continue;
    }
    WriteLineFd(fd, "500 unknown command");
  }
  ::close(fd);
}

FtpClient::FtpClient(std::string socket_path)
    : path_(std::move(socket_path)) {
  ipc::IgnoreSigpipe();
}

FtpClient::~FtpClient() { Disconnect(); }

Status FtpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  sockaddr_un addr;
  AFS_RETURN_IF_ERROR(FillSockaddr(path_, addr));
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return IoError(std::string("socket: ") + std::strerror(errno));
  // sockaddr_un -> sockaddr is the POSIX-sanctioned sockets-API pun.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    Disconnect();
    return IoError("connect " + path_ + ": " + std::strerror(err));
  }
  // Greeting.
  AFS_ASSIGN_OR_RETURN(auto greeting, ReadReply());
  if (greeting.first != 220) {
    Disconnect();
    return ProtocolError("unexpected ftp greeting");
  }
  return Status::Ok();
}

void FtpClient::Disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

Status FtpClient::SendLine(const std::string& line) {
  if (!WriteAllFd(fd_, AsBytes(line + "\n"))) {
    Disconnect();
    return IoError("ftp send failed");
  }
  return Status::Ok();
}

Result<std::string> FtpClient::ReadLine() {
  std::string line;
  while (true) {
    // Drain buffered bytes first.
    std::size_t i = 0;
    for (; i < pending_.size(); ++i) {
      if (pending_[i] == '\n') {
        // uint8_t buffer viewed as chars; same object representation.
        // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
        line.append(reinterpret_cast<const char*>(pending_.data()), i);
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<long>(i) + 1);
        return line;
      }
    }
    Buffer chunk(512);
    const ssize_t n = ::read(fd_, chunk.data(), chunk.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return ClosedError("ftp connection closed");
    }
    pending_.insert(pending_.end(), chunk.begin(), chunk.begin() + n);
  }
}

Status FtpClient::ReadExact(MutableByteSpan out) {
  std::size_t done = 0;
  const std::size_t from_pending = std::min(out.size(), pending_.size());
  std::memcpy(out.data(), pending_.data(), from_pending);
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<long>(from_pending));
  done += from_pending;
  while (done < out.size()) {
    const ssize_t n = ::read(fd_, out.data() + done, out.size() - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return ClosedError("ftp connection closed mid-transfer");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<std::pair<int, std::string>> FtpClient::ReadReply() {
  AFS_ASSIGN_OR_RETURN(std::string line, ReadLine());
  const auto [code_text, rest] = SplitOnce(line, ' ');
  std::uint64_t code = 0;
  if (!ParseU64(code_text, code) || code < 100 || code > 599) {
    return ProtocolError("bad ftp reply: " + line);
  }
  if (code >= 500) {
    return RemoteError(rest.empty() ? line : rest);
  }
  return std::make_pair(static_cast<int>(code), rest);
}

Result<Buffer> FtpClient::Retr(const std::string& path) {
  AFS_RETURN_IF_ERROR(EnsureConnected());
  AFS_RETURN_IF_ERROR(SendLine("RETR " + path));
  AFS_ASSIGN_OR_RETURN(auto reply, ReadReply());
  if (reply.first != 150) return ProtocolError("unexpected RETR reply");
  std::uint64_t size = 0;
  if (!ParseU64(reply.second, size) || size > 64 * 1024 * 1024) {
    return ProtocolError("bad RETR size");
  }
  Buffer data(static_cast<std::size_t>(size));
  AFS_RETURN_IF_ERROR(ReadExact(MutableByteSpan(data)));
  return data;
}

Status FtpClient::Stor(const std::string& path, ByteSpan data) {
  AFS_RETURN_IF_ERROR(EnsureConnected());
  AFS_RETURN_IF_ERROR(
      SendLine("STOR " + path + " " + std::to_string(data.size())));
  if (!WriteAllFd(fd_, data)) {
    Disconnect();
    return IoError("ftp stor payload failed");
  }
  AFS_ASSIGN_OR_RETURN(auto reply, ReadReply());
  if (reply.first != 226) return ProtocolError("unexpected STOR reply");
  return Status::Ok();
}

Result<std::uint64_t> FtpClient::Size(const std::string& path) {
  AFS_RETURN_IF_ERROR(EnsureConnected());
  AFS_RETURN_IF_ERROR(SendLine("SIZE " + path));
  AFS_ASSIGN_OR_RETURN(auto reply, ReadReply());
  std::uint64_t size = 0;
  if (reply.first != 213 || !ParseU64(reply.second, size)) {
    return ProtocolError("unexpected SIZE reply");
  }
  return size;
}

Status FtpClient::Dele(const std::string& path) {
  AFS_RETURN_IF_ERROR(EnsureConnected());
  AFS_RETURN_IF_ERROR(SendLine("DELE " + path));
  AFS_ASSIGN_OR_RETURN(auto reply, ReadReply());
  if (reply.first != 250) return ProtocolError("unexpected DELE reply");
  return Status::Ok();
}

Result<std::vector<std::string>> FtpClient::List(const std::string& prefix) {
  AFS_RETURN_IF_ERROR(EnsureConnected());
  AFS_RETURN_IF_ERROR(SendLine("LIST " + prefix));
  AFS_ASSIGN_OR_RETURN(auto reply, ReadReply());
  std::uint64_t count = 0;
  if (reply.first != 150 || !ParseU64(reply.second, count) || count > 65536) {
    return ProtocolError("unexpected LIST reply");
  }
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    AFS_ASSIGN_OR_RETURN(std::string name, ReadLine());
    names.push_back(std::move(name));
  }
  return names;
}

Status FtpClient::Quit() {
  if (fd_ < 0) return Status::Ok();
  AFS_RETURN_IF_ERROR(SendLine("QUIT"));
  AFS_ASSIGN_OR_RETURN(auto reply, ReadReply());
  (void)reply;
  Disconnect();
  return Status::Ok();
}

}  // namespace afs::net
