// "log": concurrent, intelligent logging (paper Section 3).  Many processes
// write records to the same log active file; the sentinel serializes
// appends with a cross-process named mutex, stamps each record, and
// guarantees record atomicity — the client applications "do not need to
// know about log file locking".
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "ipc/named_mutex.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// Config:
//   mutex      : lock name shared by all sentinels of this log
//                (default: derived from the file path)
//   stamp      : "1" to prefix each record with its append offset
//   sync       : "1" to fsync after every record
//   terminator : appended to records lacking one (default "\n")
//
// Writes append atomically regardless of ctx.position; reads serve the
// log contents normally.
class LoggingSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;

 private:
  std::optional<ipc::NamedMutex> mutex_;
  bool stamp_ = false;
  bool sync_ = false;
  std::string terminator_ = "\n";
};

std::unique_ptr<sentinel::Sentinel> MakeLoggingSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
