// "registry": a file-based interface to the system registry (paper
// Section 3).  The sentinel renders a registry subtree as plain text at
// open; the application reads, edits, and writes it back like any config
// file, and the sentinel parses the edits into registry mutations at close
// (or on flush) — "considerably simplifying system configuration".
//
// The registry instance is process-global (reg::DefaultRegistry), so this
// sentinel is meaningful with the in-process strategies (thread/direct);
// under a forked strategy its mutations die with the child.
#pragma once

#include <memory>
#include <string>

#include "registry/registry.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// The process-wide registry the sentinel mediates.
reg::Registry& DefaultRegistry();

// Config:
//   key : subtree to expose (default "" = whole registry)
class RegistrySentinel final : public sentinel::Sentinel {
 public:
  // Uses DefaultRegistry() when none is injected.
  RegistrySentinel() : registry_(DefaultRegistry()) {}
  explicit RegistrySentinel(reg::Registry& registry) : registry_(registry) {}

  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;
  Status OnSetEof(sentinel::SentinelContext& ctx) override;
  Status OnFlush(sentinel::SentinelContext& ctx) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

  // Custom control "reload": re-renders the subtree, discarding pending
  // edits; replies with the fresh text size.
  Result<Buffer> OnControl(sentinel::SentinelContext& ctx,
                           ByteSpan request) override;

 private:
  Status Apply();

  reg::Registry& registry_;
  std::string key_;
  Buffer text_;
  bool dirty_ = false;
};

std::unique_ptr<sentinel::Sentinel> MakeRegistrySentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
