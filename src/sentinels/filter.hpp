// Input/output filtering sentinels (paper Section 3): the application sees
// transformed data; the data part stores the other representation.
#pragma once

#include <memory>
#include <string>

#include "codec/codec.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// "compress": the application reads/writes plaintext; the data part holds
// a compressed image.  Per-file algorithm selection — the advantage the
// paper claims over whole-filesystem compression.  Config:
//   codec : identity | rle | lz77   (default lz77)
//
// Data-part image:  "AFC1" | lp codec-name | u32 crc32(plaintext) | lp
// compressed.  An empty data part decodes as empty plaintext.
class CompressSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;
  Status OnSetEof(sentinel::SentinelContext& ctx) override;
  Status OnFlush(sentinel::SentinelContext& ctx) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

  // Bytes the encoded image occupied at open (tests assert compression
  // actually happened).
  std::uint64_t encoded_size_at_open() const noexcept {
    return encoded_size_at_open_;
  }

 private:
  Status Persist(sentinel::SentinelContext& ctx);

  std::unique_ptr<codec::Codec> codec_;
  Buffer plaintext_;
  bool dirty_ = false;
  std::uint64_t encoded_size_at_open_ = 0;
};

// "audit": a transparent pass-through to the data part that appends one
// record per operation to an audit log — the paper's "a file containing
// sensitive data would like to log every access from users" example.
// Config:
//   audit_file : name of the log (created under the lock dir)
class AuditSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

 private:
  Status Record(const sentinel::SentinelContext& ctx, const char* op,
                std::uint64_t position, std::size_t bytes);

  std::string log_path_;
};

std::unique_ptr<sentinel::Sentinel> MakeCompressSentinel(
    const sentinel::SentinelSpec& spec);
std::unique_ptr<sentinel::Sentinel> MakeAuditSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
