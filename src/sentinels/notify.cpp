#include "sentinels/notify.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace afs::sentinels {

std::uint64_t NotificationHub::Subscribe(const std::string& topic,
                                         Callback callback) {
  MutexLock lock(mu_);
  const std::uint64_t id = next_id_++;
  subscriptions_[id] = Subscription{topic, std::move(callback)};
  return id;
}

void NotificationHub::Unsubscribe(std::uint64_t id) {
  MutexLock lock(mu_);
  subscriptions_.erase(id);
}

void NotificationHub::Publish(const std::string& topic,
                              const AccessEvent& event) {
  std::vector<Callback> callbacks;
  {
    MutexLock lock(mu_);
    ++published_[topic];
    for (const auto& [id, sub] : subscriptions_) {
      if (sub.topic == topic) callbacks.push_back(sub.callback);
    }
  }
  for (const auto& callback : callbacks) callback(event);
}

std::uint64_t NotificationHub::PublishedCount(const std::string& topic) const {
  MutexLock lock(mu_);
  auto it = published_.find(topic);
  return it == published_.end() ? 0 : it->second;
}

NotificationHub& NotificationHub::Global() {
  static NotificationHub hub;
  return hub;
}

Status NotifySentinel::OnOpen(sentinel::SentinelContext& ctx) {
  topic_ = ctx.config_or("topic", ctx.path);
  events_.clear();
  for (const auto& part :
       Split(ctx.config_or("events", "open,read,write,close"), ',')) {
    const std::string name = TrimWhitespace(part);
    if (!name.empty()) events_.push_back(name);
  }
  Publish(ctx, "open", 0);
  return Status::Ok();
}

bool NotifySentinel::Wants(const std::string& operation) const {
  return std::find(events_.begin(), events_.end(), operation) !=
         events_.end();
}

void NotifySentinel::Publish(const sentinel::SentinelContext& ctx,
                             const std::string& operation,
                             std::uint64_t bytes) {
  if (!Wants(operation)) return;
  hub_.Publish(topic_, AccessEvent{ctx.path, operation, ctx.position, bytes});
}

Result<std::size_t> NotifySentinel::OnRead(sentinel::SentinelContext& ctx,
                                           MutableByteSpan out) {
  AFS_ASSIGN_OR_RETURN(std::size_t n, Sentinel::OnRead(ctx, out));
  Publish(ctx, "read", n);
  return n;
}

Result<std::size_t> NotifySentinel::OnWrite(sentinel::SentinelContext& ctx,
                                            ByteSpan data) {
  AFS_ASSIGN_OR_RETURN(std::size_t n, Sentinel::OnWrite(ctx, data));
  Publish(ctx, "write", n);
  return n;
}

Status NotifySentinel::OnClose(sentinel::SentinelContext& ctx) {
  Publish(ctx, "close", 0);
  return Status::Ok();
}

std::unique_ptr<sentinel::Sentinel> MakeNotifySentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<NotifySentinel>();
}

}  // namespace afs::sentinels
