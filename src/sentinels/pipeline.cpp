#include "sentinels/pipeline.hpp"

#include "util/strings.hpp"

namespace afs::sentinels {

Result<std::size_t> SentinelDataStore::ReadAt(std::uint64_t offset,
                                              MutableByteSpan out) {
  ctx_.position = offset;
  return inner_.OnRead(ctx_, out);
}

Result<std::size_t> SentinelDataStore::WriteAt(std::uint64_t offset,
                                               ByteSpan data) {
  ctx_.position = offset;
  return inner_.OnWrite(ctx_, data);
}

Result<std::uint64_t> SentinelDataStore::Size() {
  return inner_.OnGetSize(ctx_);
}

Status SentinelDataStore::Truncate(std::uint64_t size) {
  ctx_.position = size;
  return inner_.OnSetEof(ctx_);
}

Status SentinelDataStore::Flush() { return inner_.OnFlush(ctx_); }

Status PipelineSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string chain = ctx.config_or("chain", "");
  if (chain.empty()) {
    return InvalidArgumentError("pipeline: needs 'chain' config");
  }
  std::vector<std::string> names;
  for (const auto& part : Split(chain, ',')) {
    const std::string name = TrimWhitespace(part);
    if (name.empty()) continue;
    if (name == "pipeline") {
      return InvalidArgumentError("pipeline: stages cannot nest pipelines");
    }
    names.push_back(name);
  }
  if (names.empty()) {
    return InvalidArgumentError("pipeline: empty chain");
  }

  // Instantiate stages, outermost first.
  stages_.clear();
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto stage = std::make_unique<Stage>();
    sentinel::SentinelSpec stage_spec;
    stage_spec.name = names[i];
    // Shared keys first, then "i."-prefixed overrides for this stage.
    const std::string prefix = std::to_string(i) + ".";
    for (const auto& [key, value] : ctx.config) {
      if (key.find('.') == std::string::npos && key != "chain") {
        stage_spec.config[key] = value;
      }
    }
    for (const auto& [key, value] : ctx.config) {
      if (StartsWith(key, prefix)) {
        stage_spec.config[key.substr(prefix.size())] = value;
      }
    }
    AFS_ASSIGN_OR_RETURN(stage->sentinel, registry_.Create(stage_spec));
    stage->ctx.config = stage_spec.config;
    stage->ctx.resolver = ctx.resolver;
    stage->ctx.lock_dir = ctx.lock_dir;
    stage->ctx.path = ctx.path;
    stages_.push_back(std::move(stage));
  }

  // Wire caches: innermost uses the real data part; each other stage reads
  // and writes *through* the stage below it.
  stages_.back()->ctx.cache = ctx.cache;
  for (std::size_t i = stages_.size() - 1; i > 0; --i) {
    stages_[i - 1]->below = std::make_unique<SentinelDataStore>(
        *stages_[i]->sentinel, stages_[i]->ctx);
    stages_[i - 1]->ctx.cache = stages_[i - 1]->below.get();
  }

  // Open innermost-first so outer stages can already read through their
  // data part during their own OnOpen.
  for (std::size_t i = stages_.size(); i > 0; --i) {
    AFS_RETURN_IF_ERROR(stages_[i - 1]->sentinel->OnOpen(stages_[i - 1]->ctx));
  }
  return Status::Ok();
}

Result<std::size_t> PipelineSentinel::OnRead(sentinel::SentinelContext& ctx,
                                             MutableByteSpan out) {
  Stage& head = *stages_.front();
  head.ctx.position = ctx.position;
  return head.sentinel->OnRead(head.ctx, out);
}

Result<std::size_t> PipelineSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                              ByteSpan data) {
  Stage& head = *stages_.front();
  head.ctx.position = ctx.position;
  return head.sentinel->OnWrite(head.ctx, data);
}

Result<std::uint64_t> PipelineSentinel::OnGetSize(
    sentinel::SentinelContext& ctx) {
  (void)ctx;
  Stage& head = *stages_.front();
  return head.sentinel->OnGetSize(head.ctx);
}

Result<std::uint64_t> PipelineSentinel::OnSeek(sentinel::SentinelContext& ctx,
                                               std::int64_t offset,
                                               sentinel::SeekOrigin origin) {
  Stage& head = *stages_.front();
  head.ctx.position = ctx.position;
  AFS_ASSIGN_OR_RETURN(std::uint64_t pos,
                       head.sentinel->OnSeek(head.ctx, offset, origin));
  ctx.position = pos;
  return pos;
}

Status PipelineSentinel::OnSetEof(sentinel::SentinelContext& ctx) {
  Stage& head = *stages_.front();
  head.ctx.position = ctx.position;
  return head.sentinel->OnSetEof(head.ctx);
}

Status PipelineSentinel::OnFlush(sentinel::SentinelContext& ctx) {
  (void)ctx;
  // Outermost first: each stage pushes its state down before the stage
  // below flushes.
  for (auto& stage : stages_) {
    AFS_RETURN_IF_ERROR(stage->sentinel->OnFlush(stage->ctx));
  }
  return Status::Ok();
}

Result<Buffer> PipelineSentinel::OnControl(sentinel::SentinelContext& ctx,
                                           ByteSpan request) {
  (void)ctx;
  // Controls address the outermost stage that accepts them.
  for (auto& stage : stages_) {
    Result<Buffer> reply = stage->sentinel->OnControl(stage->ctx, request);
    if (reply.ok() ||
        reply.status().code() != ErrorCode::kUnsupported) {
      return reply;
    }
  }
  return UnsupportedError("pipeline: no stage accepted the control");
}

Status PipelineSentinel::OnClose(sentinel::SentinelContext& ctx) {
  (void)ctx;
  // Outermost first: compress persists through notify before the real
  // data part is final.
  Status first_error;
  for (auto& stage : stages_) {
    const Status status = stage->sentinel->OnClose(stage->ctx);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

std::unique_ptr<sentinel::Sentinel> MakePipelineSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<PipelineSentinel>(
      sentinel::SentinelRegistry::Global());
}

}  // namespace afs::sentinels
