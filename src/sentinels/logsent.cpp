#include "sentinels/logsent.hpp"

#include "util/strings.hpp"

namespace afs::sentinels {

Status LoggingSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  if (ctx.cache == nullptr) {
    return InvalidArgumentError("log: requires a data part (cache!=none)");
  }
  std::string name = ctx.config_or("mutex", "");
  if (name.empty()) {
    // Derive a stable lock name from the active file's path.
    name = "log-";
    for (char c : ctx.path) name += (c == '/' ? '_' : c);
  }
  mutex_.emplace(ctx.lock_dir, name);
  stamp_ = ctx.config_or("stamp", "0") == "1";
  sync_ = ctx.config_or("sync", "0") == "1";
  terminator_ = ctx.config_or("terminator", "\n");
  return Status::Ok();
}

Result<std::size_t> LoggingSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                             ByteSpan data) {
  // Lock -> read size -> append -> unlock: the whole record lands
  // contiguously even when many sentinels write concurrently.
  ipc::NamedMutexGuard guard(*mutex_);
  AFS_RETURN_IF_ERROR(guard.status());

  AFS_ASSIGN_OR_RETURN(std::uint64_t end, ctx.cache->Size());

  Buffer record;
  if (stamp_) {
    // Sequence number = count of terminators so far would need a scan;
    // stamp with the append offset instead, which is unique and ordered.
    const std::string prefix = "[" + std::to_string(end) + "] ";
    record.insert(record.end(), prefix.begin(), prefix.end());
  }
  record.insert(record.end(), data.begin(), data.end());
  if (!terminator_.empty()) {
    const std::string tail = ToString(data);
    if (!EndsWith(tail, terminator_)) {
      record.insert(record.end(), terminator_.begin(), terminator_.end());
    }
  }
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->WriteAt(end, ByteSpan(record)));
  (void)n;
  if (sync_) AFS_RETURN_IF_ERROR(ctx.cache->Flush());
  // The application's pointer advances by what it handed us, regardless of
  // stamping overhead.
  return data.size();
}

std::unique_ptr<sentinel::Sentinel> MakeLoggingSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<LoggingSentinel>();
}

}  // namespace afs::sentinels
