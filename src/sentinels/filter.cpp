#include "sentinels/filter.hpp"

#include <algorithm>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/crc32.hpp"

namespace afs::sentinels {

namespace {
constexpr char kCompressMagic[4] = {'A', 'F', 'C', '1'};
}  // namespace

Status CompressSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  if (ctx.cache == nullptr) {
    return InvalidArgumentError("compress: requires a data part (cache!=none)");
  }
  const std::string codec_name = ctx.config_or("codec", "lz77");
  AFS_ASSIGN_OR_RETURN(codec_, codec::MakeCodec(codec_name));

  AFS_ASSIGN_OR_RETURN(std::uint64_t stored_size, ctx.cache->Size());
  encoded_size_at_open_ = stored_size;
  if (stored_size == 0) {
    plaintext_.clear();
    return Status::Ok();
  }
  Buffer image(static_cast<std::size_t>(stored_size));
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->ReadAt(0, MutableByteSpan(image)));
  image.resize(n);

  ByteReader reader{ByteSpan(image)};
  ByteSpan magic;
  std::string stored_codec;
  std::uint32_t crc = 0;
  ByteSpan compressed;
  if (!reader.ReadBytes(4, magic) ||
      std::memcmp(magic.data(), kCompressMagic, 4) != 0 ||
      !reader.ReadLenPrefixedString(stored_codec) || !reader.ReadU32(crc) ||
      !reader.ReadLenPrefixed(compressed)) {
    return CorruptError("compress: data part is not a compressed image");
  }
  // The image names its own codec (a file compressed with rle stays
  // readable even if the spec later says lz77).
  AFS_ASSIGN_OR_RETURN(auto image_codec, codec::MakeCodec(stored_codec));
  AFS_ASSIGN_OR_RETURN(plaintext_, image_codec->Decode(compressed));
  if (Crc32(ByteSpan(plaintext_)) != crc) {
    return CorruptError("compress: plaintext crc mismatch");
  }
  return Status::Ok();
}

Result<std::size_t> CompressSentinel::OnRead(sentinel::SentinelContext& ctx,
                                             MutableByteSpan out) {
  if (ctx.position >= plaintext_.size()) return std::size_t{0};
  const std::size_t n = std::min<std::size_t>(
      out.size(), plaintext_.size() - static_cast<std::size_t>(ctx.position));
  std::memcpy(out.data(), plaintext_.data() + ctx.position, n);
  return n;
}

Result<std::size_t> CompressSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                              ByteSpan data) {
  const std::uint64_t end = ctx.position + data.size();
  if (end > plaintext_.size()) {
    plaintext_.resize(static_cast<std::size_t>(end), 0);
  }
  std::memcpy(plaintext_.data() + ctx.position, data.data(), data.size());
  dirty_ = true;
  return data.size();
}

Result<std::uint64_t> CompressSentinel::OnGetSize(
    sentinel::SentinelContext& ctx) {
  (void)ctx;
  // The application's view is the plaintext, so size reports plaintext
  // bytes — not the stored (compressed) size.
  return plaintext_.size();
}

Status CompressSentinel::OnSetEof(sentinel::SentinelContext& ctx) {
  plaintext_.resize(static_cast<std::size_t>(ctx.position), 0);
  dirty_ = true;
  return Status::Ok();
}

Status CompressSentinel::Persist(sentinel::SentinelContext& ctx) {
  if (!dirty_) return Status::Ok();
  Buffer image;
  image.insert(image.end(), kCompressMagic, kCompressMagic + 4);
  AppendLenPrefixed(image, std::string_view(codec_->name()));
  AppendU32(image, Crc32(ByteSpan(plaintext_)));
  const Buffer compressed = codec_->Encode(ByteSpan(plaintext_));
  AppendLenPrefixed(image, ByteSpan(compressed));

  AFS_RETURN_IF_ERROR(ctx.cache->Truncate(image.size()));
  AFS_ASSIGN_OR_RETURN(std::size_t n, ctx.cache->WriteAt(0, ByteSpan(image)));
  (void)n;
  dirty_ = false;
  return Status::Ok();
}

Status CompressSentinel::OnFlush(sentinel::SentinelContext& ctx) {
  AFS_RETURN_IF_ERROR(Persist(ctx));
  return ctx.cache->Flush();
}

Status CompressSentinel::OnClose(sentinel::SentinelContext& ctx) {
  return Persist(ctx);
}

Status AuditSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string name = ctx.config_or("audit_file", "audit.log");
  log_path_ = ctx.lock_dir + "/" + name;
  return Record(ctx, "open", ctx.position, 0);
}

Result<std::size_t> AuditSentinel::OnRead(sentinel::SentinelContext& ctx,
                                          MutableByteSpan out) {
  AFS_ASSIGN_OR_RETURN(std::size_t n, Sentinel::OnRead(ctx, out));
  AFS_RETURN_IF_ERROR(Record(ctx, "read", ctx.position, n));
  return n;
}

Result<std::size_t> AuditSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                           ByteSpan data) {
  AFS_ASSIGN_OR_RETURN(std::size_t n, Sentinel::OnWrite(ctx, data));
  AFS_RETURN_IF_ERROR(Record(ctx, "write", ctx.position, n));
  return n;
}

Status AuditSentinel::OnClose(sentinel::SentinelContext& ctx) {
  return Record(ctx, "close", ctx.position, 0);
}

Status AuditSentinel::Record(const sentinel::SentinelContext& ctx,
                             const char* op, std::uint64_t position,
                             std::size_t bytes) {
  const std::string line = ctx.path + " " + op + " pos=" +
                           std::to_string(position) + " bytes=" +
                           std::to_string(bytes) + "\n";
  // O_APPEND keeps concurrent sentinels' records whole.
  const int fd = ::open(log_path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IoError("audit: cannot open " + log_path_);
  const ssize_t n = ::write(fd, line.data(), line.size());
  ::close(fd);
  if (n != static_cast<ssize_t>(line.size())) {
    return IoError("audit: short write to " + log_path_);
  }
  return Status::Ok();
}

std::unique_ptr<sentinel::Sentinel> MakeCompressSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<CompressSentinel>();
}

std::unique_ptr<sentinel::Sentinel> MakeAuditSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<AuditSentinel>();
}

}  // namespace afs::sentinels
