#include "sentinels/remote.hpp"

#include <algorithm>
#include <cstring>

#include "util/strings.hpp"

namespace afs::sentinels {

Status RemoteFileSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string url = ctx.config_or("url", "");
  remote_path_ = ctx.config_or("file", "");
  if (url.empty() || remote_path_.empty()) {
    return InvalidArgumentError("remote: needs 'url' and 'file' config");
  }
  const std::string consistency = ctx.config_or("consistency", "open");
  if (consistency == "open") {
    consistency_ = Consistency::kOpen;
  } else if (consistency == "always") {
    consistency_ = Consistency::kAlways;
  } else if (consistency == "never") {
    consistency_ = Consistency::kNever;
  } else {
    return InvalidArgumentError("remote: bad consistency '" + consistency +
                                "'");
  }
  write_through_ = ctx.config_or("write_through", "0") == "1";
  cached_ = ctx.cache != nullptr;

  AFS_ASSIGN_OR_RETURN(transport_, ctx.ConnectRemote(url));
  client_ = std::make_unique<net::FileClient>(*transport_);

  if (cached_) {
    // Populate/refresh the local cache: every open revalidates, fulfilling
    // "reflects the latest … every time the file is opened".
    AFS_ASSIGN_OR_RETURN(net::FileClient::GetResult fetched,
                         client_->Get(remote_path_));
    AFS_RETURN_IF_ERROR(ctx.cache->Truncate(fetched.data.size()));
    if (!fetched.data.empty()) {
      AFS_ASSIGN_OR_RETURN(std::size_t n,
                           ctx.cache->WriteAt(0, ByteSpan(fetched.data)));
      (void)n;
    }
    revision_ = fetched.revision;
  }
  return Status::Ok();
}

Status RemoteFileSentinel::Revalidate(sentinel::SentinelContext& ctx) {
  AFS_ASSIGN_OR_RETURN(auto refreshed,
                       client_->GetIfModified(remote_path_, revision_));
  if (!refreshed.has_value()) return Status::Ok();  // cache still fresh
  AFS_RETURN_IF_ERROR(ctx.cache->Truncate(refreshed->data.size()));
  if (!refreshed->data.empty()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         ctx.cache->WriteAt(0, ByteSpan(refreshed->data)));
    (void)n;
  }
  revision_ = refreshed->revision;
  return Status::Ok();
}

Result<std::size_t> RemoteFileSentinel::OnRead(sentinel::SentinelContext& ctx,
                                               MutableByteSpan out) {
  if (!cached_) {
    // Figure 5 path 1: no cache anywhere; ask the service directly.
    AFS_ASSIGN_OR_RETURN(
        net::FileClient::GetResult got,
        client_->GetRange(remote_path_, ctx.position,
                          static_cast<std::uint32_t>(out.size())));
    const std::size_t n = std::min(out.size(), got.data.size());
    std::memcpy(out.data(), got.data.data(), n);
    return n;
  }
  if (consistency_ == Consistency::kAlways && !dirty_) {
    AFS_RETURN_IF_ERROR(Revalidate(ctx));
  }
  return ctx.cache->ReadAt(ctx.position, out);
}

Result<std::size_t> RemoteFileSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                                ByteSpan data) {
  if (!cached_) {
    AFS_ASSIGN_OR_RETURN(std::uint64_t rev,
                         client_->PutRange(remote_path_, ctx.position, data));
    revision_ = rev;
    return data.size();
  }
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->WriteAt(ctx.position, data));
  if (write_through_) {
    AFS_ASSIGN_OR_RETURN(
        std::uint64_t rev,
        client_->PutRange(remote_path_, ctx.position, data.first(n)));
    revision_ = rev;
  } else {
    dirty_ = true;
  }
  return n;
}

Result<std::uint64_t> RemoteFileSentinel::OnGetSize(
    sentinel::SentinelContext& ctx) {
  if (!cached_) {
    AFS_ASSIGN_OR_RETURN(net::FileStat stat, client_->Stat(remote_path_));
    if (!stat.exists) return NotFoundError("remote: " + remote_path_);
    return stat.size;
  }
  return ctx.cache->Size();
}

Status RemoteFileSentinel::WriteBack(sentinel::SentinelContext& ctx) {
  if (!cached_ || !dirty_) return Status::Ok();
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, ctx.cache->Size());
  Buffer content(static_cast<std::size_t>(size));
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->ReadAt(0, MutableByteSpan(content)));
  content.resize(n);
  AFS_ASSIGN_OR_RETURN(std::uint64_t rev,
                       client_->Put(remote_path_, ByteSpan(content)));
  revision_ = rev;
  dirty_ = false;
  return Status::Ok();
}

Status RemoteFileSentinel::OnFlush(sentinel::SentinelContext& ctx) {
  AFS_RETURN_IF_ERROR(WriteBack(ctx));
  return cached_ ? ctx.cache->Flush() : Status::Ok();
}

Status RemoteFileSentinel::OnClose(sentinel::SentinelContext& ctx) {
  return WriteBack(ctx);
}

Status MergeSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string url = ctx.config_or("url", "");
  const std::string files = ctx.config_or("files", "");
  if (url.empty() || files.empty()) {
    return InvalidArgumentError("merge: needs 'url' and 'files' config");
  }
  const std::string sep = ctx.config_or("sep", "");

  AFS_ASSIGN_OR_RETURN(auto transport, ctx.ConnectRemote(url));
  net::FileClient client(*transport);

  merged_.clear();
  bool first = true;
  for (const auto& part : Split(files, ',')) {
    const std::string name = TrimWhitespace(part);
    if (name.empty()) continue;
    if (!first && !sep.empty()) {
      merged_.insert(merged_.end(), sep.begin(), sep.end());
    }
    first = false;
    AFS_ASSIGN_OR_RETURN(net::FileClient::GetResult got, client.Get(name));
    merged_.insert(merged_.end(), got.data.begin(), got.data.end());
  }
  // Mirror the merged view into the data part when one exists, so the
  // local cache file matches what the application reads.
  if (ctx.cache != nullptr) {
    AFS_RETURN_IF_ERROR(ctx.cache->Truncate(merged_.size()));
    if (!merged_.empty()) {
      AFS_ASSIGN_OR_RETURN(std::size_t n,
                           ctx.cache->WriteAt(0, ByteSpan(merged_)));
      (void)n;
    }
  }
  return Status::Ok();
}

Result<std::size_t> MergeSentinel::OnRead(sentinel::SentinelContext& ctx,
                                          MutableByteSpan out) {
  if (ctx.position >= merged_.size()) return std::size_t{0};
  const std::size_t n = std::min<std::size_t>(
      out.size(), merged_.size() - static_cast<std::size_t>(ctx.position));
  std::memcpy(out.data(), merged_.data() + ctx.position, n);
  return n;
}

Result<std::size_t> MergeSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                           ByteSpan data) {
  (void)ctx;
  (void)data;
  return PermissionDeniedError("merge: aggregated view is read-only");
}

Result<std::uint64_t> MergeSentinel::OnGetSize(sentinel::SentinelContext& ctx) {
  (void)ctx;
  return merged_.size();
}

std::unique_ptr<sentinel::Sentinel> MakeRemoteFileSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<RemoteFileSentinel>();
}

std::unique_ptr<sentinel::Sentinel> MakeMergeSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<MergeSentinel>();
}

}  // namespace afs::sentinels
