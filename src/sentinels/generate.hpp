// Data-generation sentinels (paper Section 3, "Data generation"): the
// active file appears to contain data no passive file holds.
#pragma once

#include <memory>

#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// "random": an infinite stream of random bytes (config "format=binary",
// default) or newline-separated decimal numbers ("format=text").  The
// stream is a pure function of (seed, offset): re-reading any range yields
// identical bytes, so seeks behave sanely.  Config:
//   seed   : u64 decimal (default 1)
//   format : binary | text
class RandomGenSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;
  Result<std::uint64_t> OnSeek(sentinel::SentinelContext& ctx,
                               std::int64_t offset,
                               sentinel::SeekOrigin origin) override;

 private:
  std::uint64_t seed_ = 1;
  bool text_ = false;
};

std::unique_ptr<sentinel::Sentinel> MakeRandomGenSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
