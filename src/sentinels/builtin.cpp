#include "sentinels/builtin.hpp"

#include "sentinels/feeds.hpp"
#include "sentinels/filter.hpp"
#include "sentinels/ftp.hpp"
#include "sentinels/generate.hpp"
#include "sentinels/logsent.hpp"
#include "sentinels/notify.hpp"
#include "sentinels/pipeline.hpp"
#include "sentinels/policy.hpp"
#include "sentinels/regsent.hpp"
#include "sentinels/tee.hpp"
#include "sentinels/remote.hpp"

namespace afs::sentinels {

void RegisterBuiltinSentinels(sentinel::SentinelRegistry& registry) {
  auto add = [&](const char* name, sentinel::SentinelRegistry::Factory f) {
    // Register only fails on a duplicate name, and Has() just excluded that.
    // afs-lint: allow(status-discard: duplicate-name failure is unreachable)
    if (!registry.Has(name)) (void)registry.Register(name, std::move(f));
  };
  add("null", [](const sentinel::SentinelSpec&) {
    // The base Sentinel *is* the null filter: every operation passes
    // through to the data part unchanged.
    return std::make_unique<sentinel::Sentinel>();
  });
  add("random", MakeRandomGenSentinel);
  add("compress", MakeCompressSentinel);
  add("audit", MakeAuditSentinel);
  add("log", MakeLoggingSentinel);
  add("notify", MakeNotifySentinel);
  add("pipeline", MakePipelineSentinel);
  add("policy", MakePolicySentinel);
  add("registry", MakeRegistrySentinel);
  add("remote", MakeRemoteFileSentinel);
  add("ftp", MakeFtpFileSentinel);
  add("http", MakeHttpFileSentinel);
  add("tee", MakeTeeSentinel);
  add("merge", MakeMergeSentinel);
  add("quotes", MakeQuoteSentinel);
  add("inbox", MakeInboxSentinel);
  add("outbox", MakeOutboxSentinel);
}

void RegisterBuiltinSentinels() {
  RegisterBuiltinSentinels(sentinel::SentinelRegistry::Global());
}

}  // namespace afs::sentinels
