#include "sentinels/regsent.hpp"

#include <algorithm>
#include <cstring>

namespace afs::sentinels {

reg::Registry& DefaultRegistry() {
  static reg::Registry registry;
  return registry;
}

Status RegistrySentinel::OnOpen(sentinel::SentinelContext& ctx) {
  key_ = ctx.config_or("key", "");
  if (!key_.empty() && !registry_.KeyExists(key_)) {
    AFS_RETURN_IF_ERROR(registry_.CreateKey(key_));
  }
  AFS_ASSIGN_OR_RETURN(std::string text, registry_.RenderText(key_));
  text_ = ToBuffer(text);
  dirty_ = false;
  return Status::Ok();
}

Result<std::size_t> RegistrySentinel::OnRead(sentinel::SentinelContext& ctx,
                                             MutableByteSpan out) {
  if (ctx.position >= text_.size()) return std::size_t{0};
  const std::size_t n = std::min<std::size_t>(
      out.size(), text_.size() - static_cast<std::size_t>(ctx.position));
  std::memcpy(out.data(), text_.data() + ctx.position, n);
  return n;
}

Result<std::size_t> RegistrySentinel::OnWrite(sentinel::SentinelContext& ctx,
                                              ByteSpan data) {
  const std::uint64_t end = ctx.position + data.size();
  if (end > text_.size()) text_.resize(static_cast<std::size_t>(end), 0);
  std::memcpy(text_.data() + ctx.position, data.data(), data.size());
  dirty_ = true;
  return data.size();
}

Result<std::uint64_t> RegistrySentinel::OnGetSize(
    sentinel::SentinelContext& ctx) {
  (void)ctx;
  return text_.size();
}

Status RegistrySentinel::OnSetEof(sentinel::SentinelContext& ctx) {
  text_.resize(static_cast<std::size_t>(ctx.position), 0);
  dirty_ = true;
  return Status::Ok();
}

Status RegistrySentinel::Apply() {
  if (!dirty_) return Status::Ok();
  AFS_RETURN_IF_ERROR(registry_.ApplyText(key_, ToString(ByteSpan(text_))));
  dirty_ = false;
  return Status::Ok();
}

Status RegistrySentinel::OnFlush(sentinel::SentinelContext& ctx) {
  (void)ctx;
  return Apply();
}

Status RegistrySentinel::OnClose(sentinel::SentinelContext& ctx) {
  (void)ctx;
  return Apply();
}

Result<Buffer> RegistrySentinel::OnControl(sentinel::SentinelContext& ctx,
                                           ByteSpan request) {
  (void)ctx;
  if (ToString(request) == "reload") {
    AFS_ASSIGN_OR_RETURN(std::string text, registry_.RenderText(key_));
    text_ = ToBuffer(text);
    dirty_ = false;
    return ToBuffer(std::to_string(text_.size()));
  }
  return UnsupportedError("registry: unknown control");
}

std::unique_ptr<sentinel::Sentinel> MakeRegistrySentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<RegistrySentinel>();
}

}  // namespace afs::sentinels
