// "ftp": seamless access to a file behind the FTP-like protocol (paper
// Section 3's "standard protocol (e.g., FTP or HTTP)" aggregation
// example).  The whole file is fetched into the local cache at open and,
// if dirtied, STORed back at close/flush — the classic fetch-a-copy model
// the paper describes, as opposed to the range-capable "remote" sentinel.
//
// Config:
//   url  : "ftp:<unix-socket-path>"
//   file : remote path
// Requires a data part (cache=disk or memory).
#pragma once

#include <memory>
#include <string>

#include "net/ftp_server.hpp"
#include "net/http_server.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

class FtpFileSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Status OnSetEof(sentinel::SentinelContext& ctx) override;
  Status OnFlush(sentinel::SentinelContext& ctx) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

 private:
  Status WriteBack(sentinel::SentinelContext& ctx);

  std::unique_ptr<net::FtpClient> client_;
  std::string remote_path_;
  bool dirty_ = false;
};

std::unique_ptr<sentinel::Sentinel> MakeFtpFileSentinel(
    const sentinel::SentinelSpec& spec);

// "http": the same scenario over the HTTP-like protocol.  Config:
//   url  : "http:<unix-socket-path>"
//   file : remote target
// With a data part: fetch-a-copy at open, PUT back at close/flush.
// With cache=none: reads become Range requests and size becomes HEAD —
// demand paging without any local copy (writes then require a data part
// and are refused).
class HttpFileSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;
  Status OnSetEof(sentinel::SentinelContext& ctx) override;
  Status OnFlush(sentinel::SentinelContext& ctx) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

 private:
  Status WriteBack(sentinel::SentinelContext& ctx);

  std::unique_ptr<net::HttpClient> client_;
  std::string remote_path_;
  bool cached_ = false;
  bool dirty_ = false;
};

std::unique_ptr<sentinel::Sentinel> MakeHttpFileSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
