// Resource-centric access control (paper Section 7: unlike Janus/Ufo's
// process-centric control, "the file itself can specify the kind of access
// control policies that need be implemented").  The policy lives in the
// active part, so it travels with the file through copies and renames.
#pragma once

#include <memory>
#include <string>

#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// "policy": enforcing pass-through.  Config:
//   read       : "1" (default) / "0"  — whether reads are allowed
//   write      : "1" (default) / "0"  — whether writes are allowed
//   append_only: "1" — writes may only extend the file (no overwrite,
//                no truncate); implies positioning writes at EOF
//   max_size   : byte cap; writes that would exceed it are refused
//   max_reads  : per-open read-operation budget (0 = unlimited) — e.g. a
//                "read once" file
// Violations return kPermissionDenied without touching the data part.
class PolicySentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Status OnSetEof(sentinel::SentinelContext& ctx) override;

 private:
  bool allow_read_ = true;
  bool allow_write_ = true;
  bool append_only_ = false;
  std::uint64_t max_size_ = 0;   // 0 = unlimited
  std::uint64_t max_reads_ = 0;  // 0 = unlimited
  std::uint64_t reads_done_ = 0;
};

std::unique_ptr<sentinel::Sentinel> MakePolicySentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
