#include "sentinels/ftp.hpp"

#include <algorithm>
#include <cstring>

#include "util/strings.hpp"

namespace afs::sentinels {

Status FtpFileSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  if (ctx.cache == nullptr) {
    return InvalidArgumentError(
        "ftp: requires a data part (cache=disk or memory)");
  }
  const std::string url = ctx.config_or("url", "");
  remote_path_ = ctx.config_or("file", "");
  if (!StartsWith(url, "ftp:") || remote_path_.empty()) {
    return InvalidArgumentError("ftp: needs url=ftp:<socket> and file=...");
  }
  client_ = std::make_unique<net::FtpClient>(url.substr(4));

  // Fetch-a-copy: the local cache is a full snapshot taken at open.
  AFS_ASSIGN_OR_RETURN(Buffer data, client_->Retr(remote_path_));
  AFS_RETURN_IF_ERROR(ctx.cache->Truncate(data.size()));
  if (!data.empty()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n, ctx.cache->WriteAt(0, ByteSpan(data)));
    (void)n;
  }
  dirty_ = false;
  return Status::Ok();
}

Result<std::size_t> FtpFileSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                             ByteSpan data) {
  AFS_ASSIGN_OR_RETURN(std::size_t n, Sentinel::OnWrite(ctx, data));
  dirty_ = true;
  return n;
}

Status FtpFileSentinel::OnSetEof(sentinel::SentinelContext& ctx) {
  AFS_RETURN_IF_ERROR(Sentinel::OnSetEof(ctx));
  dirty_ = true;
  return Status::Ok();
}

Status FtpFileSentinel::WriteBack(sentinel::SentinelContext& ctx) {
  if (!dirty_) return Status::Ok();
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, ctx.cache->Size());
  Buffer content(static_cast<std::size_t>(size));
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->ReadAt(0, MutableByteSpan(content)));
  content.resize(n);
  AFS_RETURN_IF_ERROR(client_->Stor(remote_path_, ByteSpan(content)));
  dirty_ = false;
  return Status::Ok();
}

Status FtpFileSentinel::OnFlush(sentinel::SentinelContext& ctx) {
  AFS_RETURN_IF_ERROR(WriteBack(ctx));
  return ctx.cache->Flush();
}

Status FtpFileSentinel::OnClose(sentinel::SentinelContext& ctx) {
  const Status written = WriteBack(ctx);
  // QUIT is a courtesy; the write-back status is the close verdict, and the
  // server reaps the control connection on EOF either way.
  // afs-lint: allow(status-discard: best-effort session goodbye)
  if (client_ != nullptr) (void)client_->Quit();
  return written;
}

std::unique_ptr<sentinel::Sentinel> MakeFtpFileSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<FtpFileSentinel>();
}

Status HttpFileSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string url = ctx.config_or("url", "");
  remote_path_ = ctx.config_or("file", "");
  if (!StartsWith(url, "http:") || remote_path_.empty()) {
    return InvalidArgumentError("http: needs url=http:<socket> and file=...");
  }
  client_ = std::make_unique<net::HttpClient>(url.substr(5));
  cached_ = ctx.cache != nullptr;
  dirty_ = false;
  if (!cached_) {
    // Demand paging: just verify the target exists.
    return client_->Head(remote_path_).status();
  }
  AFS_ASSIGN_OR_RETURN(Buffer data, client_->Get(remote_path_));
  AFS_RETURN_IF_ERROR(ctx.cache->Truncate(data.size()));
  if (!data.empty()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n, ctx.cache->WriteAt(0, ByteSpan(data)));
    (void)n;
  }
  return Status::Ok();
}

Result<std::size_t> HttpFileSentinel::OnRead(sentinel::SentinelContext& ctx,
                                             MutableByteSpan out) {
  if (cached_) return Sentinel::OnRead(ctx, out);
  if (out.empty()) return std::size_t{0};
  // Range request for exactly the block the application asked for.
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, client_->Head(remote_path_));
  if (ctx.position >= size) return std::size_t{0};
  const std::uint64_t last =
      std::min<std::uint64_t>(ctx.position + out.size(), size) - 1;
  AFS_ASSIGN_OR_RETURN(Buffer part,
                       client_->GetRange(remote_path_, ctx.position, last));
  const std::size_t n = std::min(out.size(), part.size());
  std::memcpy(out.data(), part.data(), n);
  return n;
}

Result<std::size_t> HttpFileSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                              ByteSpan data) {
  if (!cached_) {
    return UnsupportedError("http: writes need a data part (cache!=none)");
  }
  AFS_ASSIGN_OR_RETURN(std::size_t n, Sentinel::OnWrite(ctx, data));
  dirty_ = true;
  return n;
}

Result<std::uint64_t> HttpFileSentinel::OnGetSize(
    sentinel::SentinelContext& ctx) {
  if (cached_) return Sentinel::OnGetSize(ctx);
  return client_->Head(remote_path_);
}

Status HttpFileSentinel::OnSetEof(sentinel::SentinelContext& ctx) {
  if (!cached_) {
    return UnsupportedError("http: truncate needs a data part");
  }
  AFS_RETURN_IF_ERROR(Sentinel::OnSetEof(ctx));
  dirty_ = true;
  return Status::Ok();
}

Status HttpFileSentinel::WriteBack(sentinel::SentinelContext& ctx) {
  if (!cached_ || !dirty_) return Status::Ok();
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, ctx.cache->Size());
  Buffer content(static_cast<std::size_t>(size));
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->ReadAt(0, MutableByteSpan(content)));
  content.resize(n);
  AFS_RETURN_IF_ERROR(client_->Put(remote_path_, ByteSpan(content)));
  dirty_ = false;
  return Status::Ok();
}

Status HttpFileSentinel::OnFlush(sentinel::SentinelContext& ctx) {
  AFS_RETURN_IF_ERROR(WriteBack(ctx));
  return cached_ ? ctx.cache->Flush() : Status::Ok();
}

Status HttpFileSentinel::OnClose(sentinel::SentinelContext& ctx) {
  return WriteBack(ctx);
}

std::unique_ptr<sentinel::Sentinel> MakeHttpFileSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<HttpFileSentinel>();
}

}  // namespace afs::sentinels
