// "tee": distribution by mirroring (paper Section 3, "Distribution" —
// side effects "triggered by file operations against the active file").
// Every write lands in the local data part AND is pushed, synchronously,
// to a remote file; the active file behaves like a local file whose
// changes replicate as they happen (contrast with "remote", which either
// holds no copy or writes back lazily).
//
// Config:
//   url   : remote service ("sock:..." or "sim:node:service")
//   file  : remote path to mirror into
// Requires a data part.
#pragma once

#include <memory>
#include <string>

#include "net/file_server.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

class TeeSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Status OnSetEof(sentinel::SentinelContext& ctx) override;

 private:
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<net::FileClient> client_;
  std::string remote_path_;
};

std::unique_ptr<sentinel::Sentinel> MakeTeeSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
