// Registration of the built-in sentinel library.
#pragma once

#include "sentinel/registry.hpp"

namespace afs::sentinels {

// Registers every built-in sentinel:
//   null      — pass-through (paper Figure 2's null filter)
//   random    — unbounded generated stream
//   compress  — per-file compression filter
//   audit     — access-logging pass-through
//   log       — cross-process locking log
//   notify    — pass-through publishing an AccessEvent per operation
//   pipeline  — composes other sentinels into a chain (paper §3)
//   policy    — resource-centric access control (paper §7)
//   registry  — registry subtree as an editable text file
//   remote    — one remote file as a local one (3 caching paths)
//   ftp       — fetch-a-copy access over the FTP-like line protocol
//   http      — remote file over the HTTP-like protocol (ranges, HEAD)
//   tee       — writes mirror synchronously to a remote file
//   merge     — several remote files merged into one view
//   quotes    — live stock-quote snapshot
//   inbox     — multi-server mail retrieval
//   outbox    — write-to-send mail distribution
// Idempotent: re-registering is a no-op.
void RegisterBuiltinSentinels(sentinel::SentinelRegistry& registry);

// Convenience for the common case.
void RegisterBuiltinSentinels();

}  // namespace afs::sentinels
