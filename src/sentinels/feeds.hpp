// Feed sentinels: live aggregation and distribution examples from paper
// Section 3 — the stock-quote file, the POP inbox file, and the outbox
// mail distributor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/mail_server.hpp"
#include "net/quote_server.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// "quotes": the file contents are the latest quotes for the configured
// symbols, refreshed on every open.  Config:
//   url     : quote service
//   symbols : comma-separated tickers
class QuoteSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;
  // Control "refresh" re-fetches without reopening.
  Result<Buffer> OnControl(sentinel::SentinelContext& ctx,
                           ByteSpan request) override;

 private:
  Status Fetch(sentinel::SentinelContext& ctx);

  std::unique_ptr<net::Transport> transport_;
  std::vector<std::string> symbols_;
  Buffer text_;
};

// "inbox": reading the file retrieves waiting mail from one or more
// remote servers ("possibly from multiple remote POP servers").  Config:
//   urls   : semicolon-separated mail services
//   user   : mailbox owner
//   delete : "1" to delete retrieved messages from the servers
// Messages are rendered back-to-back, each terminated by "\n.\n".
class InboxSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;

 private:
  Buffer text_;
};

// "outbox": data written to the file is parsed as a mail message; at close
// (or flush) the sentinel extracts the To: recipients and sends a copy to
// each.  Config:
//   url : mail service
// Control "delivered" reports how many deliveries this open performed.
class OutboxSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Status OnFlush(sentinel::SentinelContext& ctx) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;
  Result<Buffer> OnControl(sentinel::SentinelContext& ctx,
                           ByteSpan request) override;

 private:
  Status Send(sentinel::SentinelContext& ctx);

  std::unique_ptr<net::Transport> transport_;
  // afs-lint: allow(bounded-queue: one composed message, cleared on every flush; writes ride the admission gate)
  Buffer pending_;
  std::uint32_t delivered_ = 0;
};

std::unique_ptr<sentinel::Sentinel> MakeQuoteSentinel(
    const sentinel::SentinelSpec& spec);
std::unique_ptr<sentinel::Sentinel> MakeInboxSentinel(
    const sentinel::SentinelSpec& spec);
std::unique_ptr<sentinel::Sentinel> MakeOutboxSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
