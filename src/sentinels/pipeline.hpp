// Sentinel composition (paper Section 3: "larger applications are
// constructed by composing these actions in different ways").
//
// A pipeline chains sentinels so that each stage's *data part* is the next
// stage down: operations enter at the outermost sentinel; whatever it does
// with its "cache" is served by the stage below, and only the innermost
// stage touches the active file's real data part.  E.g.
//
//   chain = "notify,compress"     (outermost first)
//
// gives a file whose accesses are published to the notification hub, whose
// contents are transparently compressed, and whose compressed image lives
// in the bundle.  Stage-specific configuration is namespaced by position:
// "0.topic=t" configures stage 0, "1.codec=rle" stage 1; un-prefixed keys
// are visible to every stage.
#pragma once

#include <memory>
#include <vector>

#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// Adapts a (Sentinel, context) pair to the DataStore interface, so a
// sentinel can serve as another sentinel's data part.  Positional reads
// and writes are translated by saving/restoring the inner context's file
// pointer around each call.
class SentinelDataStore final : public sentinel::DataStore {
 public:
  SentinelDataStore(sentinel::Sentinel& inner, sentinel::SentinelContext& ctx)
      : inner_(inner), ctx_(ctx) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             MutableByteSpan out) override;
  Result<std::size_t> WriteAt(std::uint64_t offset, ByteSpan data) override;
  Result<std::uint64_t> Size() override;
  Status Truncate(std::uint64_t size) override;
  Status Flush() override;

 private:
  sentinel::Sentinel& inner_;
  sentinel::SentinelContext& ctx_;
};

// "pipeline": config
//   chain : comma-separated sentinel names, outermost first (required;
//           stages may not themselves be pipelines)
//   <i>.<key> : config key for stage i only
class PipelineSentinel final : public sentinel::Sentinel {
 public:
  explicit PipelineSentinel(const sentinel::SentinelRegistry& registry)
      : registry_(registry) {}

  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;
  Result<std::uint64_t> OnSeek(sentinel::SentinelContext& ctx,
                               std::int64_t offset,
                               sentinel::SeekOrigin origin) override;
  Status OnSetEof(sentinel::SentinelContext& ctx) override;
  Status OnFlush(sentinel::SentinelContext& ctx) override;
  Result<Buffer> OnControl(sentinel::SentinelContext& ctx,
                           ByteSpan request) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

 private:
  struct Stage {
    std::unique_ptr<sentinel::Sentinel> sentinel;
    sentinel::SentinelContext ctx;
    std::unique_ptr<SentinelDataStore> below;  // null for the innermost
  };

  // The outermost stage, through which all operations enter.  Its ctx
  // mirrors the real ctx except for the cache indirection.
  Stage& Head() { return *stages_.front(); }

  const sentinel::SentinelRegistry& registry_;
  std::vector<std::unique_ptr<Stage>> stages_;  // outermost first
};

std::unique_ptr<sentinel::Sentinel> MakePipelineSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
