// Access notification (paper Section 1: "the owner/creator of a file may
// wish to … just want some side effect (such as notification) to be
// triggered as a result of the access", and Section 7's comparison with
// Watchdogs).  The NotificationHub is a process-wide topic bus; the
// "notify" sentinel publishes one event per file operation while passing
// the operation through to the data part.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

struct AccessEvent {
  std::string path;      // vfs path of the active file
  std::string operation; // "open", "read", "write", "close", …
  std::uint64_t position = 0;
  std::uint64_t bytes = 0;
};

// Topic-keyed publish/subscribe bus.  Callbacks run synchronously on the
// publisher's thread (the sentinel), mirroring Watchdogs' in-line
// notification semantics; subscribers must be quick and must not call
// back into the same active file.
class NotificationHub {
 public:
  using Callback = std::function<void(const AccessEvent&)>;

  // Returns a subscription id for Unsubscribe.
  std::uint64_t Subscribe(const std::string& topic, Callback callback);
  void Unsubscribe(std::uint64_t id);

  void Publish(const std::string& topic, const AccessEvent& event);

  // Number of events ever published to the topic (tests/metrics).
  std::uint64_t PublishedCount(const std::string& topic) const;

  static NotificationHub& Global();

 private:
  struct Subscription {
    std::string topic;
    Callback callback;
  };

  mutable Mutex mu_;
  std::map<std::uint64_t, Subscription> subscriptions_ AFS_GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> published_ AFS_GUARDED_BY(mu_);
  std::uint64_t next_id_ AFS_GUARDED_BY(mu_) = 1;
};

// "notify": pass-through to the data part, publishing an AccessEvent per
// operation.  Config:
//   topic  : hub topic (default: the file's path)
//   events : comma-separated subset to publish
//            (default "open,read,write,close")
class NotifySentinel final : public sentinel::Sentinel {
 public:
  NotifySentinel() : hub_(NotificationHub::Global()) {}
  explicit NotifySentinel(NotificationHub& hub) : hub_(hub) {}

  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

 private:
  bool Wants(const std::string& operation) const;
  void Publish(const sentinel::SentinelContext& ctx,
               const std::string& operation, std::uint64_t bytes);

  NotificationHub& hub_;
  std::string topic_;
  std::vector<std::string> events_;
};

std::unique_ptr<sentinel::Sentinel> MakeNotifySentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
