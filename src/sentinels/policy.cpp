#include "sentinels/policy.hpp"

#include "util/strings.hpp"

namespace afs::sentinels {

Status PolicySentinel::OnOpen(sentinel::SentinelContext& ctx) {
  if (ctx.cache == nullptr) {
    return InvalidArgumentError("policy: requires a data part (cache!=none)");
  }
  allow_read_ = ctx.config_or("read", "1") != "0";
  allow_write_ = ctx.config_or("write", "1") != "0";
  append_only_ = ctx.config_or("append_only", "0") == "1";
  if (!ParseU64(ctx.config_or("max_size", "0"), max_size_)) {
    return InvalidArgumentError("policy: bad max_size");
  }
  if (!ParseU64(ctx.config_or("max_reads", "0"), max_reads_)) {
    return InvalidArgumentError("policy: bad max_reads");
  }
  reads_done_ = 0;
  return Status::Ok();
}

Result<std::size_t> PolicySentinel::OnRead(sentinel::SentinelContext& ctx,
                                           MutableByteSpan out) {
  if (!allow_read_) {
    return PermissionDeniedError("policy: reads forbidden on " + ctx.path);
  }
  if (max_reads_ != 0 && reads_done_ >= max_reads_) {
    return PermissionDeniedError("policy: read budget exhausted on " +
                                 ctx.path);
  }
  ++reads_done_;
  return Sentinel::OnRead(ctx, out);
}

Result<std::size_t> PolicySentinel::OnWrite(sentinel::SentinelContext& ctx,
                                            ByteSpan data) {
  if (!allow_write_) {
    return PermissionDeniedError("policy: writes forbidden on " + ctx.path);
  }
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, ctx.cache->Size());
  if (append_only_) {
    if (ctx.position < size) {
      return PermissionDeniedError(
          "policy: append-only file; cannot overwrite " + ctx.path);
    }
    // Appends land at the end regardless of a sparse seek.
    ctx.position = size;
  }
  const std::uint64_t end = ctx.position + data.size();
  if (max_size_ != 0 && end > max_size_) {
    return PermissionDeniedError("policy: write would exceed max_size=" +
                                 std::to_string(max_size_));
  }
  return Sentinel::OnWrite(ctx, data);
}

Status PolicySentinel::OnSetEof(sentinel::SentinelContext& ctx) {
  if (!allow_write_) {
    return PermissionDeniedError("policy: writes forbidden on " + ctx.path);
  }
  if (append_only_) {
    AFS_ASSIGN_OR_RETURN(std::uint64_t size, ctx.cache->Size());
    if (ctx.position < size) {
      return PermissionDeniedError("policy: append-only file; cannot truncate");
    }
  }
  return Sentinel::OnSetEof(ctx);
}

std::unique_ptr<sentinel::Sentinel> MakePolicySentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<PolicySentinel>();
}

}  // namespace afs::sentinels
