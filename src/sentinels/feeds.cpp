#include "sentinels/feeds.hpp"

#include <algorithm>
#include <cstring>

#include "util/strings.hpp"

namespace afs::sentinels {
namespace {

Result<std::size_t> ReadFromBuffer(const Buffer& source,
                                   std::uint64_t position,
                                   MutableByteSpan out) {
  if (position >= source.size()) return std::size_t{0};
  const std::size_t n = std::min<std::size_t>(
      out.size(), source.size() - static_cast<std::size_t>(position));
  std::memcpy(out.data(), source.data() + position, n);
  return n;
}

}  // namespace

Status QuoteSentinel::Fetch(sentinel::SentinelContext& ctx) {
  net::QuoteClient client(*transport_);
  AFS_ASSIGN_OR_RETURN(std::vector<net::Quote> quotes,
                       client.GetQuotes(symbols_));
  text_ = ToBuffer(net::RenderQuotesText(quotes));
  // Mirror into the data part so a later passive inspection of the bundle
  // shows the last snapshot.
  if (ctx.cache != nullptr) {
    AFS_RETURN_IF_ERROR(ctx.cache->Truncate(text_.size()));
    if (!text_.empty()) {
      AFS_ASSIGN_OR_RETURN(std::size_t n,
                           ctx.cache->WriteAt(0, ByteSpan(text_)));
      (void)n;
    }
  }
  return Status::Ok();
}

Status QuoteSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string url = ctx.config_or("url", "");
  const std::string symbols = ctx.config_or("symbols", "");
  if (url.empty() || symbols.empty()) {
    return InvalidArgumentError("quotes: needs 'url' and 'symbols' config");
  }
  symbols_.clear();
  for (const auto& part : Split(symbols, ',')) {
    const std::string symbol = TrimWhitespace(part);
    if (!symbol.empty()) symbols_.push_back(symbol);
  }
  AFS_ASSIGN_OR_RETURN(transport_, ctx.ConnectRemote(url));
  return Fetch(ctx);
}

Result<std::size_t> QuoteSentinel::OnRead(sentinel::SentinelContext& ctx,
                                          MutableByteSpan out) {
  return ReadFromBuffer(text_, ctx.position, out);
}

Result<std::size_t> QuoteSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                           ByteSpan data) {
  (void)ctx;
  (void)data;
  return PermissionDeniedError("quotes: feed is read-only");
}

Result<std::uint64_t> QuoteSentinel::OnGetSize(sentinel::SentinelContext& ctx) {
  (void)ctx;
  return text_.size();
}

Result<Buffer> QuoteSentinel::OnControl(sentinel::SentinelContext& ctx,
                                        ByteSpan request) {
  if (ToString(request) == "refresh") {
    AFS_RETURN_IF_ERROR(Fetch(ctx));
    return ToBuffer(std::to_string(text_.size()));
  }
  return UnsupportedError("quotes: unknown control");
}

Status InboxSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string urls = ctx.config_or("urls", ctx.config_or("url", ""));
  const std::string user = ctx.config_or("user", "");
  if (urls.empty() || user.empty()) {
    return InvalidArgumentError("inbox: needs 'urls' and 'user' config");
  }
  const bool purge = ctx.config_or("delete", "0") == "1";

  std::string rendered;
  for (const auto& part : Split(urls, ';')) {
    const std::string url = TrimWhitespace(part);
    if (url.empty()) continue;
    AFS_ASSIGN_OR_RETURN(auto transport, ctx.ConnectRemote(url));
    net::MailClient client(*transport);
    AFS_ASSIGN_OR_RETURN(std::vector<std::uint32_t> sizes, client.List(user));
    for (std::uint32_t i = 0; i < sizes.size(); ++i) {
      AFS_ASSIGN_OR_RETURN(net::MailMessage message, client.Retrieve(user, i));
      rendered += net::RenderMessage(message);
      rendered += "\n.\n";
    }
    if (purge) {
      // Delete from the back so indices stay valid.
      for (std::uint32_t i = static_cast<std::uint32_t>(sizes.size()); i > 0;
           --i) {
        AFS_RETURN_IF_ERROR(client.Delete(user, i - 1));
      }
    }
  }
  text_ = ToBuffer(rendered);
  if (ctx.cache != nullptr) {
    AFS_RETURN_IF_ERROR(ctx.cache->Truncate(text_.size()));
    if (!text_.empty()) {
      AFS_ASSIGN_OR_RETURN(std::size_t n,
                           ctx.cache->WriteAt(0, ByteSpan(text_)));
      (void)n;
    }
  }
  return Status::Ok();
}

Result<std::size_t> InboxSentinel::OnRead(sentinel::SentinelContext& ctx,
                                          MutableByteSpan out) {
  return ReadFromBuffer(text_, ctx.position, out);
}

Result<std::size_t> InboxSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                           ByteSpan data) {
  (void)ctx;
  (void)data;
  return PermissionDeniedError("inbox: retrieved mail is read-only");
}

Result<std::uint64_t> InboxSentinel::OnGetSize(sentinel::SentinelContext& ctx) {
  (void)ctx;
  return text_.size();
}

Status OutboxSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  const std::string url = ctx.config_or("url", "");
  if (url.empty()) return InvalidArgumentError("outbox: needs 'url' config");
  AFS_ASSIGN_OR_RETURN(transport_, ctx.ConnectRemote(url));
  pending_.clear();
  delivered_ = 0;
  return Status::Ok();
}

Result<std::size_t> OutboxSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                            ByteSpan data) {
  (void)ctx;
  pending_.insert(pending_.end(), data.begin(), data.end());
  return data.size();
}

Result<std::size_t> OutboxSentinel::OnRead(sentinel::SentinelContext& ctx,
                                           MutableByteSpan out) {
  // Reading the outbox shows what is queued but unsent.
  return ReadFromBuffer(pending_, ctx.position, out);
}

Status OutboxSentinel::Send(sentinel::SentinelContext& ctx) {
  (void)ctx;
  if (pending_.empty()) return Status::Ok();
  std::vector<std::string> recipients;
  AFS_ASSIGN_OR_RETURN(
      net::MailMessage message,
      net::ParseMessage(ToString(ByteSpan(pending_)), &recipients));
  net::MailClient client(*transport_);
  AFS_ASSIGN_OR_RETURN(std::uint32_t count, client.Send(message, recipients));
  delivered_ += count;
  pending_.clear();
  return Status::Ok();
}

Status OutboxSentinel::OnFlush(sentinel::SentinelContext& ctx) {
  return Send(ctx);
}

Status OutboxSentinel::OnClose(sentinel::SentinelContext& ctx) {
  return Send(ctx);
}

Result<Buffer> OutboxSentinel::OnControl(sentinel::SentinelContext& ctx,
                                         ByteSpan request) {
  (void)ctx;
  if (ToString(request) == "delivered") {
    return ToBuffer(std::to_string(delivered_));
  }
  return UnsupportedError("outbox: unknown control");
}

std::unique_ptr<sentinel::Sentinel> MakeQuoteSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<QuoteSentinel>();
}

std::unique_ptr<sentinel::Sentinel> MakeInboxSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<InboxSentinel>();
}

std::unique_ptr<sentinel::Sentinel> MakeOutboxSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<OutboxSentinel>();
}

}  // namespace afs::sentinels
