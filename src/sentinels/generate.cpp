#include "sentinels/generate.hpp"

#include "util/strings.hpp"

namespace afs::sentinels {
namespace {

// SplitMix64 finalizer: a high-quality stateless mix of (seed, block).
std::uint64_t MixBlock(std::uint64_t seed, std::uint64_t block) {
  std::uint64_t z = seed + block * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Status RandomGenSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  std::uint64_t seed = 1;
  if (!ParseU64(ctx.config_or("seed", "1"), seed)) {
    return InvalidArgumentError("random: bad seed");
  }
  seed_ = seed;
  const std::string format = ctx.config_or("format", "binary");
  if (format == "text") {
    text_ = true;
  } else if (format != "binary") {
    return InvalidArgumentError("random: bad format '" + format + "'");
  }
  return Status::Ok();
}

Result<std::size_t> RandomGenSentinel::OnRead(sentinel::SentinelContext& ctx,
                                              MutableByteSpan out) {
  if (!text_) {
    // Byte i of the stream is byte (i % 8) of MixBlock(seed, i / 8).
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::uint64_t pos = ctx.position + i;
      const std::uint64_t word = MixBlock(seed_, pos / 8);
      out[i] = static_cast<std::uint8_t>(word >> (8 * (pos % 8)));
    }
    return out.size();
  }
  // Text mode: an infinite sequence of lines "<u64>\n", each derived from
  // its line number.  Lines are fixed-width (20 digits) so any byte offset
  // maps directly to (line, column).
  constexpr std::size_t kLineWidth = 21;  // 20 digits + '\n'
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t pos = ctx.position + i;
    const std::uint64_t line = pos / kLineWidth;
    const std::size_t col = static_cast<std::size_t>(pos % kLineWidth);
    if (col == kLineWidth - 1) {
      out[i] = '\n';
      continue;
    }
    const std::uint64_t value = MixBlock(seed_, line);
    // Column c is the c-th most significant of 20 zero-padded digits.
    std::uint64_t digits = value;
    char text[21];
    for (int d = 19; d >= 0; --d) {
      text[d] = static_cast<char>('0' + digits % 10);
      digits /= 10;
    }
    out[i] = static_cast<std::uint8_t>(text[col]);
  }
  return out.size();
}

Result<std::size_t> RandomGenSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                               ByteSpan data) {
  (void)ctx;
  (void)data;
  return PermissionDeniedError("random: generated stream is read-only");
}

Result<std::uint64_t> RandomGenSentinel::OnGetSize(
    sentinel::SentinelContext& ctx) {
  (void)ctx;
  return UnsupportedError("random: stream is unbounded");
}

Result<std::uint64_t> RandomGenSentinel::OnSeek(sentinel::SentinelContext& ctx,
                                                std::int64_t offset,
                                                sentinel::SeekOrigin origin) {
  // kEnd is meaningless on an unbounded stream.
  if (origin == sentinel::SeekOrigin::kEnd) {
    return UnsupportedError("random: cannot seek from end of unbounded file");
  }
  const std::int64_t base = origin == sentinel::SeekOrigin::kCurrent
                                ? static_cast<std::int64_t>(ctx.position)
                                : 0;
  const std::int64_t target = base + offset;
  if (target < 0) return OutOfRangeError("seek before start of file");
  ctx.position = static_cast<std::uint64_t>(target);
  return ctx.position;
}

std::unique_ptr<sentinel::Sentinel> MakeRandomGenSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<RandomGenSentinel>();
}

}  // namespace afs::sentinels
