#include "sentinels/tee.hpp"

namespace afs::sentinels {

Status TeeSentinel::OnOpen(sentinel::SentinelContext& ctx) {
  if (ctx.cache == nullptr) {
    return InvalidArgumentError("tee: requires a data part (cache!=none)");
  }
  const std::string url = ctx.config_or("url", "");
  remote_path_ = ctx.config_or("file", "");
  if (url.empty() || remote_path_.empty()) {
    return InvalidArgumentError("tee: needs 'url' and 'file' config");
  }
  AFS_ASSIGN_OR_RETURN(transport_, ctx.ConnectRemote(url));
  client_ = std::make_unique<net::FileClient>(*transport_);

  // Seed the mirror with the current local content so both sides agree
  // from the first write.
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, ctx.cache->Size());
  Buffer content(static_cast<std::size_t>(size));
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->ReadAt(0, MutableByteSpan(content)));
  content.resize(n);
  AFS_RETURN_IF_ERROR(client_->Put(remote_path_, ByteSpan(content)).status());
  return Status::Ok();
}

Result<std::size_t> TeeSentinel::OnWrite(sentinel::SentinelContext& ctx,
                                         ByteSpan data) {
  // Local first (the application's view), then mirror the same range.
  AFS_ASSIGN_OR_RETURN(std::size_t n, Sentinel::OnWrite(ctx, data));
  AFS_RETURN_IF_ERROR(
      client_->PutRange(remote_path_, ctx.position, data.first(n)).status());
  return n;
}

Status TeeSentinel::OnSetEof(sentinel::SentinelContext& ctx) {
  AFS_RETURN_IF_ERROR(Sentinel::OnSetEof(ctx));
  // The remote service has no truncate op; replace with the local content.
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, ctx.cache->Size());
  Buffer content(static_cast<std::size_t>(size));
  AFS_ASSIGN_OR_RETURN(std::size_t n,
                       ctx.cache->ReadAt(0, MutableByteSpan(content)));
  content.resize(n);
  return client_->Put(remote_path_, ByteSpan(content)).status();
}

std::unique_ptr<sentinel::Sentinel> MakeTeeSentinel(
    const sentinel::SentinelSpec& spec) {
  (void)spec;
  return std::make_unique<TeeSentinel>();
}

}  // namespace afs::sentinels
