// Aggregation sentinels over remote file services (paper Section 3):
// seamless access to remote files and multi-source merging.  These are the
// sentinels behind the Figure 5 caching paths and the Figure 6(a)
// evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/file_server.hpp"
#include "sentinel/registry.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinels {

// "remote": one remote file presented as a local one.  Config:
//   url          : remote service ("sock:..." or "sim:node:service")
//   file         : path at the remote service
//   consistency  : open | always | never   (default open)
//       open   — revalidate the cache once per open (conditional GET)
//       always — revalidate before every read
//       never  — first fetch wins for this open
//   write_through: "1" to push each write immediately (PUTRANGE);
//                  otherwise dirty content is PUT back at close/flush
//
// With cache=none the sentinel holds no copy at all: every read is a
// GETRANGE and every write a PUTRANGE against the service — Figure 5
// path 1.  With cache=disk/memory the data part is the local cache —
// paths 2 and 3.
class RemoteFileSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;
  Status OnFlush(sentinel::SentinelContext& ctx) override;
  Status OnClose(sentinel::SentinelContext& ctx) override;

 private:
  enum class Consistency { kOpen, kAlways, kNever };

  Status Revalidate(sentinel::SentinelContext& ctx);
  Status WriteBack(sentinel::SentinelContext& ctx);

  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<net::FileClient> client_;
  std::string remote_path_;
  Consistency consistency_ = Consistency::kOpen;
  bool write_through_ = false;
  bool cached_ = false;          // cache mode != none
  std::uint64_t revision_ = 0;   // revision of the cached copy
  bool dirty_ = false;
};

// "merge": several remote files concatenated into one local view (config
// "files" = comma-separated remote paths, "url" as above, "sep" = optional
// separator inserted between sources).  Fetched at open; read-only.
class MergeSentinel final : public sentinel::Sentinel {
 public:
  Status OnOpen(sentinel::SentinelContext& ctx) override;
  Result<std::size_t> OnRead(sentinel::SentinelContext& ctx,
                             MutableByteSpan out) override;
  Result<std::size_t> OnWrite(sentinel::SentinelContext& ctx,
                              ByteSpan data) override;
  Result<std::uint64_t> OnGetSize(sentinel::SentinelContext& ctx) override;

 private:
  Buffer merged_;
};

std::unique_ptr<sentinel::Sentinel> MakeRemoteFileSentinel(
    const sentinel::SentinelSpec& spec);
std::unique_ptr<sentinel::Sentinel> MakeMergeSentinel(
    const sentinel::SentinelSpec& spec);

}  // namespace afs::sentinels
