#include "sentinel/stream.hpp"

#include <thread>

#include "common/faultpoint.hpp"
#include "common/mutex.hpp"

namespace afs::sentinel {

int RunStreamPump(Sentinel& sentinel, StreamIo& io, SentinelContext& ctx,
                  StreamResume resume) {
  Mutex mu;  // serializes sentinel calls between the two pump threads

  {
    MutexLock lock(mu);
    if (!sentinel.OnOpen(ctx).ok()) {
      io.finish_output();
      return 1;
    }
  }

  // Reader side of Figure 2: pull from the sentinel, push to the app.
  std::thread reader([&] {
    Buffer chunk(4096);
    std::uint64_t read_pos = resume.read_pos;
    while (true) {
      // Injected fault: the pump stops producing and closes its side, the
      // application's next read observes EOF (delay/kill stall or die here).
      if (!fault::Hit("sentinel.stream.read").ok()) break;
      Result<std::size_t> got(std::size_t{0});
      {
        MutexLock lock(mu);
        ctx.position = read_pos;
        got = sentinel.OnRead(ctx, MutableByteSpan(chunk));
      }
      if (!got.ok() || *got == 0) break;
      read_pos += *got;
      if (!io.write_to_app(ByteSpan(chunk.data(), *got)).ok()) {
        break;  // application closed its side
      }
    }
    io.finish_output();
  });

  // Writer side: drain application writes into the sentinel sequentially.
  Buffer chunk(4096);
  std::uint64_t write_pos = resume.write_pos;
  while (true) {
    // Injected fault: stop consuming writes; the pump winds down as if the
    // application had closed its side.
    if (!fault::Hit("sentinel.stream.write").ok()) break;
    Result<std::size_t> got = io.read_from_app(MutableByteSpan(chunk));
    if (!got.ok() || *got == 0) break;  // EOF: application closed the file
    MutexLock lock(mu);
    ctx.position = write_pos;
    Result<std::size_t> wrote =
        sentinel.OnWrite(ctx, ByteSpan(chunk.data(), *got));
    if (!wrote.ok()) break;
    write_pos += *wrote;
  }

  reader.join();
  MutexLock lock(mu);
  return sentinel.OnClose(ctx).ok() ? 0 : 1;
}

}  // namespace afs::sentinel
