// The two halves of an active-file connection, named after the library
// calls of paper Appendix A.3.
//
//   application stub  --AF_SendControl-->   sentinel  (AF_GetControl)
//   application stub  <--AF_GetResponse--   sentinel  (AF_SendResponse)
//   write data        --(write lane)---->             (AF_GetDataFromAppl)
//   read data         <--(response payload or inline_out)--
//
// Implementations: core::PipeLink/PipeEndpoint (three real pipes, the
// process-plus-control strategy) and core::ThreadRendezvous (events +
// shared memory, the DLL-with-thread strategy).
#pragma once

#include "common/bytes.hpp"
#include "common/thread_annotations.hpp"
#include "common/status.hpp"
#include "sentinel/control.hpp"

namespace afs::sentinel {

// Application side.
class SentinelLink {
 public:
  virtual ~SentinelLink() = default;

  // Ships a command (and, for kWrite, its data) to the sentinel.
  virtual Status AF_SendControl(const ControlMessage& message)
      AFS_NONBLOCKING = 0;

  // Waits for the sentinel's response to the last command.  The wait
  // must be bounded by the link's response timeout (op_timeout_ms);
  // implementations are AFS_NONBLOCKING so an event loop can multiplex
  // them (see docs/STATIC_ANALYSIS.md).
  virtual Result<ControlResponse> AF_GetResponse() AFS_NONBLOCKING = 0;

  // Data-plane revision the peer has advertised so far.  In-process links
  // share this build, so the default is kDataPlaneRev; cross-process links
  // start at 0 ("pipes only") and latch the revision stamped on responses
  // (docs/PROTOCOL.md §3.5).  Callers gate vectored ops and shm routing on
  // this being >= kDataPlaneRev.
  virtual std::uint8_t peer_rev() const noexcept { return kDataPlaneRev; }
};

// Sentinel side.
class SentinelEndpoint {
 public:
  virtual ~SentinelEndpoint() = default;

  // Blocks until the application issues a command; kClosed when the
  // application side has gone away (treated as an implicit close).
  virtual Result<ControlMessage> AF_GetControl() AFS_NONBLOCKING = 0;

  // Retrieves the data bytes accompanying a kWrite whose inline lane is
  // empty (pipe transport).  Must be called exactly once per such write.
  virtual Result<Buffer> AF_GetDataFromAppl(std::size_t length)
      AFS_NONBLOCKING = 0;

  // Completes the current command.
  virtual Status AF_SendResponse(const ControlResponse& response)
      AFS_NONBLOCKING = 0;
};

}  // namespace afs::sentinel
