#include "sentinel/context.hpp"

#include <algorithm>
#include <cstring>

namespace afs::sentinel {

Result<std::size_t> MemoryDataStore::ReadAt(std::uint64_t offset,
                                            MutableByteSpan out) {
  if (offset >= data_.size()) return std::size_t{0};
  const std::size_t n = std::min<std::size_t>(
      out.size(), data_.size() - static_cast<std::size_t>(offset));
  std::memcpy(out.data(), data_.data() + offset, n);
  return n;
}

Result<std::size_t> MemoryDataStore::WriteAt(std::uint64_t offset,
                                             ByteSpan data) {
  const std::uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(static_cast<std::size_t>(end), 0);
  std::memcpy(data_.data() + offset, data.data(), data.size());
  return data.size();
}

Result<std::uint64_t> MemoryDataStore::Size() { return data_.size(); }

Status MemoryDataStore::Truncate(std::uint64_t size) {
  data_.resize(static_cast<std::size_t>(size), 0);
  return Status::Ok();
}

}  // namespace afs::sentinel
