// SentinelContext: everything a sentinel can touch while serving an active
// file — the local data part (its cache), the sentinel spec's configuration,
// a resolver for reaching remote information sources, and the file-pointer
// position maintained across operations.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/rpc.hpp"

namespace afs::sentinel {

// The "data part" of an active file, as seen by the sentinel.  Positional
// (pread/pwrite-style) so concurrent pump threads never race a shared file
// pointer.  Implementations: MemoryDataStore (Figure 5 path 3) and
// core::BundleDataStore (path 2, the on-disk data region of the bundle).
class DataStore {
 public:
  virtual ~DataStore() = default;

  // Short reads only at EOF; returns 0 at/past EOF.
  virtual Result<std::size_t> ReadAt(std::uint64_t offset,
                                     MutableByteSpan out) = 0;

  // Extends the store as needed (sparse gaps zero-filled).
  virtual Result<std::size_t> WriteAt(std::uint64_t offset, ByteSpan data) = 0;

  virtual Result<std::uint64_t> Size() = 0;

  virtual Status Truncate(std::uint64_t size) = 0;

  virtual Status Flush() { return Status::Ok(); }
};

class MemoryDataStore final : public DataStore {
 public:
  MemoryDataStore() = default;
  explicit MemoryDataStore(Buffer initial) : data_(std::move(initial)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             MutableByteSpan out) override;
  Result<std::size_t> WriteAt(std::uint64_t offset, ByteSpan data) override;
  Result<std::uint64_t> Size() override;
  Status Truncate(std::uint64_t size) override;

  const Buffer& contents() const noexcept { return data_; }
  Buffer& contents() noexcept { return data_; }

 private:
  Buffer data_;
};

// Maps a remote-source URL from the sentinel spec to a connected transport.
//   "sock:<unix-socket-path>"    — real socket (works across fork)
//   "sim:<node>:<service>"       — SimNet service (in-process only)
class RemoteResolver {
 public:
  virtual ~RemoteResolver() = default;
  virtual Result<std::unique_ptr<net::Transport>> Connect(
      const std::string& url) = 0;
};

struct SentinelContext {
  // Null when the active file has no usable data part (cache=none).
  DataStore* cache = nullptr;

  // Sentinel-specific configuration from the active part.
  std::map<std::string, std::string> config;

  // Null when no remote environment was configured.
  RemoteResolver* resolver = nullptr;

  // Directory for cross-sentinel NamedMutex files (multi-open sync).
  std::string lock_dir;

  // VFS path of the active file being served.
  std::string path;

  // Current file pointer.  The dispatch glue advances it by the byte count
  // a sentinel's OnRead/OnWrite returns; OnSeek replaces it.
  std::uint64_t position = 0;

  std::string config_or(const std::string& key,
                        const std::string& fallback) const {
    auto it = config.find(key);
    return it == config.end() ? fallback : it->second;
  }

  Result<std::unique_ptr<net::Transport>> ConnectRemote(
      const std::string& url) const {
    if (resolver == nullptr) {
      return UnsupportedError("no remote resolver configured");
    }
    return resolver->Connect(url);
  }
};

}  // namespace afs::sentinel
