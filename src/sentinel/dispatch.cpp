#include "sentinel/dispatch.hpp"

#include <algorithm>

namespace afs::sentinel {
namespace {

ControlResponse MakeResponse(Status status, std::uint64_t number = 0,
                             Buffer payload = {}) {
  ControlResponse response;
  response.status = std::move(status);
  response.number = number;
  response.payload = std::move(payload);
  return response;
}

}  // namespace

int RunSentinelLoop(Sentinel& sentinel, SentinelEndpoint& endpoint,
                    SentinelContext& ctx) {
  // Open banner: the application's CreateFile blocks on this response, so
  // a failing OnOpen fails the open itself.
  const Status open_status = sentinel.OnOpen(ctx);
  if (!endpoint.AF_SendResponse(MakeResponse(open_status)).ok()) return 1;
  if (!open_status.ok()) return 0;

  while (true) {
    Result<ControlMessage> next = endpoint.AF_GetControl();
    if (!next.ok()) {
      // Application vanished (closed pipes / dropped the link): implicit
      // close so aggregation/distribution side effects still complete.
      (void)sentinel.OnClose(ctx);
      return next.status().code() == ErrorCode::kClosed ? 0 : 1;
    }
    ControlMessage& msg = *next;

    switch (msg.op) {
      case ControlOp::kRead: {
        Buffer tmp;
        MutableByteSpan out = msg.inline_out;
        if (out.size() > msg.length) out = out.first(msg.length);
        if (out.empty() && msg.length > 0) {
          tmp.resize(msg.length);
          out = MutableByteSpan(tmp);
        }
        Result<std::size_t> got = sentinel.OnRead(ctx, out);
        if (!got.ok()) {
          (void)endpoint.AF_SendResponse(MakeResponse(got.status()));
          break;
        }
        ctx.position += *got;
        Buffer payload;
        if (!tmp.empty()) {
          tmp.resize(*got);
          payload = std::move(tmp);
        }
        (void)endpoint.AF_SendResponse(
            MakeResponse(Status::Ok(), *got, std::move(payload)));
        break;
      }
      case ControlOp::kWrite: {
        ByteSpan in = msg.inline_in;
        Buffer tmp;
        if (in.empty() && msg.length > 0) {
          Result<Buffer> fetched = endpoint.AF_GetDataFromAppl(msg.length);
          if (!fetched.ok()) {
            (void)sentinel.OnClose(ctx);
            return 1;  // data lane broken mid-write; channel unusable
          }
          tmp = std::move(*fetched);
          in = ByteSpan(tmp);
        }
        Result<std::size_t> wrote = sentinel.OnWrite(ctx, in);
        if (!wrote.ok()) {
          (void)endpoint.AF_SendResponse(MakeResponse(wrote.status()));
          break;
        }
        ctx.position += *wrote;
        (void)endpoint.AF_SendResponse(MakeResponse(Status::Ok(), *wrote));
        break;
      }
      case ControlOp::kSeek: {
        Result<std::uint64_t> pos = sentinel.OnSeek(
            ctx, msg.offset, static_cast<SeekOrigin>(msg.origin));
        (void)endpoint.AF_SendResponse(
            pos.ok() ? MakeResponse(Status::Ok(), *pos)
                     : MakeResponse(pos.status()));
        break;
      }
      case ControlOp::kGetSize: {
        Result<std::uint64_t> size = sentinel.OnGetSize(ctx);
        (void)endpoint.AF_SendResponse(
            size.ok() ? MakeResponse(Status::Ok(), *size)
                      : MakeResponse(size.status()));
        break;
      }
      case ControlOp::kSetEof:
        (void)endpoint.AF_SendResponse(MakeResponse(sentinel.OnSetEof(ctx)));
        break;
      case ControlOp::kFlush:
        (void)endpoint.AF_SendResponse(MakeResponse(sentinel.OnFlush(ctx)));
        break;
      case ControlOp::kLock:
        (void)endpoint.AF_SendResponse(MakeResponse(sentinel.OnLock(
            ctx, static_cast<std::uint64_t>(msg.offset), msg.range_len)));
        break;
      case ControlOp::kUnlock:
        (void)endpoint.AF_SendResponse(MakeResponse(sentinel.OnUnlock(
            ctx, static_cast<std::uint64_t>(msg.offset), msg.range_len)));
        break;
      case ControlOp::kCustom: {
        Result<Buffer> reply = sentinel.OnControl(ctx, ByteSpan(msg.payload));
        if (!reply.ok()) {
          (void)endpoint.AF_SendResponse(MakeResponse(reply.status()));
          break;
        }
        (void)endpoint.AF_SendResponse(
            MakeResponse(Status::Ok(), reply->size(), std::move(*reply)));
        break;
      }
      case ControlOp::kClose: {
        const Status status = sentinel.OnClose(ctx);
        (void)endpoint.AF_SendResponse(MakeResponse(status));
        return 0;
      }
    }
  }
}

}  // namespace afs::sentinel
