#include "sentinel/dispatch.hpp"

#include <algorithm>

#include "common/faultpoint.hpp"
#include "obs/trace.hpp"

namespace afs::sentinel {
namespace {

ControlResponse MakeResponse(Status status, std::uint64_t number = 0,
                             Buffer payload = {}) {
  ControlResponse response;
  response.status = std::move(status);
  response.number = number;
  response.payload = std::move(payload);
  return response;
}

const char* OpSpanName(ControlOp op) {
  switch (op) {
    case ControlOp::kRead: return "sentinel.read";
    case ControlOp::kWrite: return "sentinel.write";
    case ControlOp::kSeek: return "sentinel.seek";
    case ControlOp::kGetSize: return "sentinel.get_size";
    case ControlOp::kSetEof: return "sentinel.set_eof";
    case ControlOp::kFlush: return "sentinel.flush";
    case ControlOp::kLock: return "sentinel.lock";
    case ControlOp::kUnlock: return "sentinel.unlock";
    case ControlOp::kCustom: return "sentinel.custom";
    case ControlOp::kClose: return "sentinel.close";
    case ControlOp::kReadVec: return "sentinel.read_vec";
    case ControlOp::kWriteVec: return "sentinel.write_vec";
  }
  return "sentinel.op";
}

// Decodes the segment table a vectored op carries as its wire payload:
// u32 count, then count u32 lengths.  Empty for in-process callers (their
// segments arrive in vec_in/vec_out instead).
Result<std::vector<std::uint32_t>> DecodeVecTable(ByteSpan payload) {
  constexpr std::uint32_t kMaxSegments = 4096;
  ByteReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.ReadU32(count)) {
    return ProtocolError("malformed vectored segment table");
  }
  if (count > kMaxSegments) {
    return ProtocolError("vectored segment table too large");
  }
  std::vector<std::uint32_t> lens(count);
  for (std::uint32_t& len : lens) {
    if (!reader.ReadU32(len)) {
      return ProtocolError("truncated vectored segment table");
    }
  }
  return lens;
}

}  // namespace

OpOutcome PerformControlOp(
    Sentinel& sentinel, SentinelContext& ctx, ControlMessage& msg,
    const std::function<Result<Buffer>(std::size_t)>& fetch_data) {
  OpOutcome out;

  // Spans opened while this command runs (the command span itself plus
  // anything nested, e.g. a remote fetch inside OnRead) are collected
  // here and ride the response's trailing extension back to the
  // application, where the link adopts them — that hop is what turns
  // per-process span fragments into one cross-process trace.
  std::vector<obs::SpanRecord> collected;
  {
    obs::SpanCollectorScope collect(&collected);
    obs::Span op_span(OpSpanName(msg.op), msg.trace_id, msg.parent_span);

    // Sentinel-side fault injection: an injected error answers this command
    // with that error (the session survives — the application decides); a
    // delay stalls the sentinel mid-command; a kill dies right here with
    // the command consumed but unanswered — the worst crash point.
    if (Status injected = fault::Hit("sentinel.dispatch.op");
        !injected.ok() && msg.op != ControlOp::kClose) {
      if ((msg.op == ControlOp::kWrite || msg.op == ControlOp::kWriteVec) &&
          msg.inline_in.empty() && msg.vec_in.empty() && msg.length > 0 &&
          fetch_data) {
        // The payload is already in flight on the data pipe; drain it or
        // the next write's control frame pairs with this write's bytes.
        // afs-lint: allow(status-discard: drain-only; the injected fault is the response)
        (void)fetch_data(msg.length);
      }
      out.response = MakeResponse(std::move(injected));
    } else {
      switch (msg.op) {
        case ControlOp::kRead: {
          Buffer tmp;
          MutableByteSpan dst = msg.inline_out;
          if (dst.size() > msg.length) dst = dst.first(msg.length);
          if (dst.empty() && msg.length > 0) {
            tmp.resize(msg.length);
            dst = MutableByteSpan(tmp);
          }
          Result<std::size_t> got = sentinel.OnRead(ctx, dst);
          if (!got.ok()) {
            out.response = MakeResponse(got.status());
            break;
          }
          ctx.position += *got;
          Buffer payload;
          if (!tmp.empty()) {
            tmp.resize(*got);
            payload = std::move(tmp);
          }
          out.response = MakeResponse(Status::Ok(), *got, std::move(payload));
          break;
        }
        case ControlOp::kWrite: {
          ByteSpan in = msg.inline_in;
          Buffer tmp;
          if (in.empty() && msg.length > 0) {
            Result<Buffer> fetched =
                fetch_data ? fetch_data(msg.length)
                           : Result<Buffer>(InternalError(
                                 "no out-of-line data lane on this host"));
            if (!fetched.ok()) {
              // Data lane broken mid-write; no response can pair with the
              // consumed command, so the channel is unusable.
              // afs-lint: allow(status-discard: channel already broken; winding down)
              (void)sentinel.OnClose(ctx);
              out.verdict = OpVerdict::kChannelBroken;
              break;
            }
            tmp = std::move(*fetched);
            in = ByteSpan(tmp);
          }
          Result<std::size_t> wrote = sentinel.OnWrite(ctx, in);
          if (!wrote.ok()) {
            out.response = MakeResponse(wrote.status());
            break;
          }
          ctx.position += *wrote;
          out.response = MakeResponse(Status::Ok(), *wrote);
          break;
        }
        case ControlOp::kSeek: {
          Result<std::uint64_t> pos = sentinel.OnSeek(
              ctx, msg.offset, static_cast<SeekOrigin>(msg.origin));
          out.response = pos.ok() ? MakeResponse(Status::Ok(), *pos)
                                  : MakeResponse(pos.status());
          break;
        }
        case ControlOp::kGetSize: {
          Result<std::uint64_t> size = sentinel.OnGetSize(ctx);
          out.response = size.ok() ? MakeResponse(Status::Ok(), *size)
                                   : MakeResponse(size.status());
          break;
        }
        case ControlOp::kSetEof:
          out.response = MakeResponse(sentinel.OnSetEof(ctx));
          break;
        case ControlOp::kFlush:
          out.response = MakeResponse(sentinel.OnFlush(ctx));
          break;
        case ControlOp::kLock:
          out.response = MakeResponse(sentinel.OnLock(
              ctx, static_cast<std::uint64_t>(msg.offset), msg.range_len));
          break;
        case ControlOp::kUnlock:
          out.response = MakeResponse(sentinel.OnUnlock(
              ctx, static_cast<std::uint64_t>(msg.offset), msg.range_len));
          break;
        case ControlOp::kCustom: {
          Result<Buffer> reply = sentinel.OnControl(ctx, ByteSpan(msg.payload));
          out.response = reply.ok()
                             ? MakeResponse(Status::Ok(), reply->size(),
                                            std::move(*reply))
                             : MakeResponse(reply.status());
          break;
        }
        case ControlOp::kReadVec: {
          // One crossing for a whole scatter list.  In-process callers hand
          // their destination spans in vec_out; wire callers send a segment
          // table and the bytes travel back concatenated in the payload.
          std::vector<MutableByteSpan> spans = msg.vec_out;
          Buffer tmp;
          if (spans.empty()) {
            Result<std::vector<std::uint32_t>> lens =
                DecodeVecTable(ByteSpan(msg.payload));
            if (!lens.ok()) {
              out.response = MakeResponse(lens.status());
              break;
            }
            std::size_t total = 0;
            for (std::uint32_t len : lens.value()) total += len;
            tmp.resize(total);
            std::size_t at = 0;
            for (std::uint32_t len : lens.value()) {
              spans.push_back(MutableByteSpan(tmp).subspan(at, len));
              at += len;
            }
          }
          std::uint64_t total_read = 0;
          Status status = Status::Ok();
          for (MutableByteSpan dst : spans) {
            if (dst.empty()) continue;
            Result<std::size_t> got = sentinel.OnRead(ctx, dst);
            if (!got.ok()) {
              status = got.status();
              break;
            }
            ctx.position += *got;
            total_read += *got;
            if (*got < dst.size()) break;  // short read: end of data
          }
          if (!status.ok()) {
            out.response = MakeResponse(status);
            break;
          }
          Buffer payload;
          if (!tmp.empty()) {
            tmp.resize(static_cast<std::size_t>(total_read));
            payload = std::move(tmp);
          }
          out.response =
              MakeResponse(Status::Ok(), total_read, std::move(payload));
          break;
        }
        case ControlOp::kWriteVec: {
          // Gather list: in-process callers hand source spans in vec_in;
          // wire callers send the table plus one concatenated fetch off the
          // data lane, sliced back into segments here.
          std::vector<ByteSpan> spans = msg.vec_in;
          Buffer tmp;
          if (spans.empty()) {
            Result<std::vector<std::uint32_t>> lens =
                DecodeVecTable(ByteSpan(msg.payload));
            std::size_t total = 0;
            if (lens.ok()) {
              for (std::uint32_t len : lens.value()) total += len;
            }
            if (!lens.ok() || total != msg.length) {
              // The concatenated bytes are already in flight; drain them so
              // the data lane stays paired before failing the command.
              if (msg.length > 0 && fetch_data) {
                // afs-lint: allow(status-discard: drain-only; the table error is the response)
                (void)fetch_data(msg.length);
              }
              out.response = MakeResponse(
                  lens.ok() ? ProtocolError(
                                  "vectored segment table/length mismatch")
                            : lens.status());
              break;
            }
            if (msg.length > 0) {
              Result<Buffer> fetched =
                  fetch_data ? fetch_data(msg.length)
                             : Result<Buffer>(InternalError(
                                   "no out-of-line data lane on this host"));
              if (!fetched.ok()) {
                // afs-lint: allow(status-discard: channel already broken; winding down)
                (void)sentinel.OnClose(ctx);
                out.verdict = OpVerdict::kChannelBroken;
                break;
              }
              tmp = std::move(*fetched);
            }
            std::size_t at = 0;
            for (std::uint32_t len : lens.value()) {
              spans.push_back(ByteSpan(tmp).subspan(at, len));
              at += len;
            }
          }
          std::uint64_t total_written = 0;
          Status status = Status::Ok();
          for (ByteSpan src : spans) {
            if (src.empty()) continue;
            Result<std::size_t> wrote = sentinel.OnWrite(ctx, src);
            if (!wrote.ok()) {
              status = wrote.status();
              break;
            }
            ctx.position += *wrote;
            total_written += *wrote;
            if (*wrote < src.size()) break;  // short write: device full
          }
          out.response = status.ok()
                             ? MakeResponse(Status::Ok(), total_written)
                             : MakeResponse(status);
          break;
        }
        case ControlOp::kClose: {
          // Crash window during close: the command is consumed but neither
          // OnClose's side effects nor the acknowledgement happened.
          if (!fault::Hit("sentinel.dispatch.close").ok()) {
            out.verdict = OpVerdict::kCrashed;
            break;
          }
          out.response = MakeResponse(sentinel.OnClose(ctx));
          out.verdict = OpVerdict::kClosed;
          break;
        }
      }
    }
  }  // collector scope: op_span lands in `collected` here
  out.response.remote_spans = std::move(collected);
  return out;
}

int RunSentinelLoop(Sentinel& sentinel, SentinelEndpoint& endpoint,
                    SentinelContext& ctx) {
  // Crash window before the open is even acknowledged: a kill here leaves
  // the application blocked on the banner — the earliest recoverable
  // point of the supervisor's crash matrix.
  if (!fault::Hit("sentinel.dispatch.openack").ok()) return 1;

  // Open banner: the application's CreateFile blocks on this response, so
  // a failing OnOpen fails the open itself.
  const Status open_status = sentinel.OnOpen(ctx);
  if (!endpoint.AF_SendResponse(MakeResponse(open_status)).ok()) return 1;
  if (!open_status.ok()) return 0;

  const auto fetch = [&endpoint](std::size_t length) {
    return endpoint.AF_GetDataFromAppl(length);
  };

  while (true) {
    Result<ControlMessage> next = endpoint.AF_GetControl();
    if (!next.ok()) {
      // Application vanished (closed pipes / dropped the link): implicit
      // close so aggregation/distribution side effects still complete.
      // afs-lint: allow(status-discard: nobody is left to receive the status)
      (void)sentinel.OnClose(ctx);
      return next.status().code() == ErrorCode::kClosed ? 0 : 1;
    }
    OpOutcome out = PerformControlOp(sentinel, ctx, *next, fetch);
    switch (out.verdict) {
      case OpVerdict::kCrashed:
        return 1;
      case OpVerdict::kChannelBroken:
        return 1;
      case OpVerdict::kClosed:
        // Last frame of the session; the peer may already be gone.
        // afs-lint: allow(status-discard: best-effort goodbye after close)
        (void)endpoint.AF_SendResponse(out.response);
        return 0;
      case OpVerdict::kRespond:
        // A response that cannot ship (torn frame, closed pipe) leaves the
        // application facing a half-frame it would wait on forever; the
        // channel is unusable from here, so wind down as an implicit close.
        // The application side observes EOF and reports kClosed.
        if (!endpoint.AF_SendResponse(out.response).ok()) {
          // afs-lint: allow(status-discard: channel already broken; exiting)
          (void)sentinel.OnClose(ctx);
          return 1;
        }
        break;
    }
  }
}

}  // namespace afs::sentinel
