// Stream-mode sentinel support for the plain process-based strategy
// (paper Section 4.1 and Figure 2).
//
// In that strategy there is no control channel: the sentinel sees only two
// byte streams — what the application writes, and what it will read.  The
// library runs any command-model Sentinel in this mode through StreamPump,
// which mirrors Figure 2's two threads: one drains application writes into
// OnWrite, the other pumps OnRead output toward the application, eagerly
// (the paper's "eagerly inject data into the read pipe").
//
// The inherent limitations the paper states for this strategy fall out
// naturally: operations like seek and GetFileSize have no way to travel,
// and reads observe a sequential, eagerly-produced stream.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinel {

// The sentinel's two byte streams.  read_from_app returns 0 at EOF (the
// application closed the file); write_to_app fails with kClosed when the
// application is gone.
struct StreamIo {
  std::function<Result<std::size_t>(MutableByteSpan)> read_from_app;
  std::function<Status(ByteSpan)> write_to_app;
  // Signals end-of-data to the application (close of the read pipe's write
  // end) so its ReadFile sees EOF.
  std::function<void()> finish_output;
};

// Where a (re)started pump begins.  Both zero for a fresh open; a
// supervisor re-attaching after a crash passes the positions the
// application had already consumed/produced, so the replacement sentinel
// resumes mid-file instead of replaying from byte zero.
struct StreamResume {
  std::uint64_t read_pos = 0;
  std::uint64_t write_pos = 0;
};

// Runs `sentinel` in stream mode until the application closes its side:
//   1. OnOpen
//   2. reader thread: OnRead from resume.read_pos onward -> write_to_app,
//      then finish_output()
//   3. writer loop:   read_from_app -> OnWrite appended sequentially from
//      resume.write_pos
//   4. OnClose
// Sentinel calls are serialized with an internal mutex (the two pump
// threads never run sentinel code concurrently).  Returns a process exit
// code.
int RunStreamPump(Sentinel& sentinel, StreamIo& io, SentinelContext& ctx,
                  StreamResume resume = {});

}  // namespace afs::sentinel
