// The sentinel programming model (paper Sections 2.2, 3 and 5).
//
// A Sentinel receives every file operation an application performs on its
// active file.  The default implementations pass each operation straight
// through to the data part — i.e. an un-overridden Sentinel is the paper's
// "null filter", giving the active file passive-file semantics.  Concrete
// sentinels override a subset to implement the four fundamental actions:
// data generation, input/output filtering, aggregation, and distribution
// (Figure 3).
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "sentinel/context.hpp"
#include "vfs/file_handle.hpp"

namespace afs::sentinel {

using vfs::SeekOrigin;

class Sentinel {
 public:
  virtual ~Sentinel() = default;

  // Called once when the user process opens the active file, before any
  // other operation.  Aggregating sentinels typically fetch/refresh remote
  // content here ("reflects the latest stock quotes every time the file is
  // opened").
  virtual Status OnOpen(SentinelContext& ctx) {
    (void)ctx;
    return Status::Ok();
  }

  // Serves a ReadFile at ctx.position.  Return value is the byte count
  // produced (0 = EOF); the dispatch glue advances ctx.position by it.
  virtual Result<std::size_t> OnRead(SentinelContext& ctx,
                                     MutableByteSpan out);

  // Serves a WriteFile at ctx.position; glue advances ctx.position.
  virtual Result<std::size_t> OnWrite(SentinelContext& ctx, ByteSpan data);

  // Serves GetFileSize.
  virtual Result<std::uint64_t> OnGetSize(SentinelContext& ctx);

  // Serves SetFilePointer; must update and return ctx.position.  The
  // default does standard begin/current/end arithmetic against OnGetSize.
  virtual Result<std::uint64_t> OnSeek(SentinelContext& ctx,
                                       std::int64_t offset, SeekOrigin origin);

  // Serves SetEndOfFile (truncate at ctx.position).
  virtual Status OnSetEof(SentinelContext& ctx);

  virtual Status OnFlush(SentinelContext& ctx);

  // Advisory locks; default acquires nothing and succeeds.
  virtual Status OnLock(SentinelContext& ctx, std::uint64_t offset,
                        std::uint64_t length);
  virtual Status OnUnlock(SentinelContext& ctx, std::uint64_t offset,
                          std::uint64_t length);

  // Application-specific commands tunneled through the control channel.
  virtual Result<Buffer> OnControl(SentinelContext& ctx, ByteSpan request);

  // Called exactly once when the user process closes the file (or the
  // channel to it breaks).  Distribution sentinels flush side effects here.
  virtual Status OnClose(SentinelContext& ctx) {
    (void)ctx;
    return Status::Ok();
  }
};

}  // namespace afs::sentinel
