#include "sentinel/sentinel.hpp"

namespace afs::sentinel {

namespace {
Status NoDataPart() {
  return UnsupportedError(
      "active file has no data part and its sentinel does not override this "
      "operation");
}
}  // namespace

Result<std::size_t> Sentinel::OnRead(SentinelContext& ctx,
                                     MutableByteSpan out) {
  if (ctx.cache == nullptr) return NoDataPart();
  return ctx.cache->ReadAt(ctx.position, out);
}

Result<std::size_t> Sentinel::OnWrite(SentinelContext& ctx, ByteSpan data) {
  if (ctx.cache == nullptr) return NoDataPart();
  return ctx.cache->WriteAt(ctx.position, data);
}

Result<std::uint64_t> Sentinel::OnGetSize(SentinelContext& ctx) {
  if (ctx.cache == nullptr) return NoDataPart();
  return ctx.cache->Size();
}

Result<std::uint64_t> Sentinel::OnSeek(SentinelContext& ctx,
                                       std::int64_t offset,
                                       SeekOrigin origin) {
  std::int64_t base = 0;
  switch (origin) {
    case SeekOrigin::kBegin:
      base = 0;
      break;
    case SeekOrigin::kCurrent:
      base = static_cast<std::int64_t>(ctx.position);
      break;
    case SeekOrigin::kEnd: {
      AFS_ASSIGN_OR_RETURN(std::uint64_t size, OnGetSize(ctx));
      base = static_cast<std::int64_t>(size);
      break;
    }
  }
  const std::int64_t target = base + offset;
  if (target < 0) return OutOfRangeError("seek before start of file");
  ctx.position = static_cast<std::uint64_t>(target);
  return ctx.position;
}

Status Sentinel::OnSetEof(SentinelContext& ctx) {
  if (ctx.cache == nullptr) return NoDataPart();
  return ctx.cache->Truncate(ctx.position);
}

Status Sentinel::OnFlush(SentinelContext& ctx) {
  if (ctx.cache == nullptr) return Status::Ok();
  return ctx.cache->Flush();
}

Status Sentinel::OnLock(SentinelContext& ctx, std::uint64_t offset,
                        std::uint64_t length) {
  (void)ctx;
  (void)offset;
  (void)length;
  return Status::Ok();
}

Status Sentinel::OnUnlock(SentinelContext& ctx, std::uint64_t offset,
                          std::uint64_t length) {
  (void)ctx;
  (void)offset;
  (void)length;
  return Status::Ok();
}

Result<Buffer> Sentinel::OnControl(SentinelContext& ctx, ByteSpan request) {
  (void)ctx;
  (void)request;
  return UnsupportedError("sentinel does not implement custom controls");
}

}  // namespace afs::sentinel
