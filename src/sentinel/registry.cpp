#include "sentinel/registry.hpp"

namespace afs::sentinel {

Status SentinelRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) return InvalidArgumentError("empty sentinel name");
  if (factory == nullptr) return InvalidArgumentError("null factory");
  MutexLock lock(mu_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    return AlreadyExistsError("sentinel already registered: " + name);
  }
  return Status::Ok();
}

bool SentinelRegistry::Has(const std::string& name) const {
  MutexLock lock(mu_);
  return factories_.count(name) != 0;
}

Result<std::unique_ptr<Sentinel>> SentinelRegistry::Create(
    const SentinelSpec& spec) const {
  Factory factory;
  {
    MutexLock lock(mu_);
    auto it = factories_.find(spec.name);
    if (it == factories_.end()) {
      return NotFoundError("no sentinel registered as '" + spec.name + "'");
    }
    factory = it->second;
  }
  std::unique_ptr<Sentinel> sentinel = factory(spec);
  if (sentinel == nullptr) {
    return InternalError("factory for '" + spec.name + "' returned null");
  }
  return sentinel;
}

std::vector<std::string> SentinelRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

SentinelRegistry& SentinelRegistry::Global() {
  static SentinelRegistry registry;
  return registry;
}

}  // namespace afs::sentinel
