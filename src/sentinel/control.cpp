#include "sentinel/control.hpp"

namespace afs::sentinel {

Buffer EncodeControlMessage(const ControlMessage& message) {
  return EncodeControlMessage(message, message.lane);
}

Buffer EncodeControlMessage(const ControlMessage& message, std::uint8_t lane) {
  Buffer out;
  out.reserve(1 + 4 + 8 + 1 + 8 + 4 + message.payload.size() + 1 + 16 + 1);
  out.push_back(static_cast<std::uint8_t>(message.op));
  AppendU32(out, message.length);
  AppendU64(out, static_cast<std::uint64_t>(message.offset));
  out.push_back(message.origin);
  AppendU64(out, message.range_len);
  AppendLenPrefixed(out, ByteSpan(message.payload));
  // Versioned trailing extension.  Pre-extension decoders stop after the
  // payload and never see these bytes; v1 fields are the trace, v2 adds
  // the data-plane lane byte.
  out.push_back(kControlExtVersion);
  AppendU64(out, message.trace_id);
  AppendU64(out, message.parent_span);
  out.push_back(lane);
  return out;
}

Result<ControlMessage> DecodeControlMessage(ByteSpan bytes) {
  ByteReader reader(bytes);
  ControlMessage message;
  std::uint8_t op = 0;
  std::uint64_t offset = 0;
  ByteSpan payload;
  if (!reader.ReadU8(op) || !reader.ReadU32(message.length) ||
      !reader.ReadU64(offset) || !reader.ReadU8(message.origin) ||
      !reader.ReadU64(message.range_len) || !reader.ReadLenPrefixed(payload)) {
    return ProtocolError("malformed control message");
  }
  if (op < static_cast<std::uint8_t>(ControlOp::kRead) ||
      op > static_cast<std::uint8_t>(ControlOp::kWriteVec)) {
    return ProtocolError("unknown control op " + std::to_string(op));
  }
  message.op = static_cast<ControlOp>(op);
  message.offset = static_cast<std::int64_t>(offset);
  message.payload.assign(payload.begin(), payload.end());
  // Trailing trace extension: absent from old peers (trace stays zero);
  // a declared-but-truncated extension is a framing bug, not old wire.
  // Bytes past the version-1 fields belong to future versions and are
  // ignored, the same contract old decoders apply to this extension.
  if (!reader.empty()) {
    std::uint8_t ext_version = 0;
    if (!reader.ReadU8(ext_version)) {
      return ProtocolError("malformed control message extension");
    }
    if (ext_version >= 1) {
      if (!reader.ReadU64(message.trace_id) ||
          !reader.ReadU64(message.parent_span)) {
        return ProtocolError("truncated control message trace extension");
      }
    }
    if (ext_version >= 2 && !reader.ReadU8(message.lane)) {
      return ProtocolError("truncated control message lane extension");
    }
  }
  return message;
}

namespace {
// Response frame flag bits (wire byte after the status code).
constexpr std::uint8_t kResponseFlagHeartbeat = 0x01;
}  // namespace

Buffer EncodeControlResponse(const ControlResponse& response) {
  return EncodeControlResponse(response, response.peer_rev, response.lane);
}

Buffer EncodeControlResponse(const ControlResponse& response,
                             std::uint8_t peer_rev, std::uint8_t lane) {
  // When the payload rides the shm lane its bytes are omitted from the
  // frame; lane_len tells the link how many to pull off the ring.
  const bool shm_lane = (lane & kLaneShm) != 0;
  const std::uint32_t lane_len =
      shm_lane ? static_cast<std::uint32_t>(response.payload.size()) : 0;
  Buffer out;
  out.reserve(1 + 2 + 4 + response.status.message().size() + 8 + 4 +
              (shm_lane ? 0 : response.payload.size()) + 1 + 4 + 6);
  out.push_back(response.heartbeat ? kResponseFlagHeartbeat : 0);
  AppendU16(out, static_cast<std::uint16_t>(response.status.code()));
  AppendLenPrefixed(out, response.status.message());
  AppendU64(out, response.number);
  AppendLenPrefixed(out, shm_lane ? ByteSpan() : ByteSpan(response.payload));
  // Versioned trailing extension (spans riding home to the application,
  // then the v2 data-plane handshake fields).
  out.push_back(kControlExtVersion);
  obs::AppendSpans(out, response.remote_spans);
  out.push_back(peer_rev);
  out.push_back(lane);
  AppendU32(out, lane_len);
  // v3: the shed hint (zero on non-overloaded responses).  When the
  // responder only tagged the hint into the status message, lift it into
  // the typed field here so every peer sees it the same way.
  std::uint32_t retry_after_ms = response.retry_after_ms;
  if (retry_after_ms == 0 &&
      response.status.code() == ErrorCode::kOverloaded) {
    retry_after_ms =
        static_cast<std::uint32_t>(RetryAfterHintMs(response.status));
  }
  AppendU32(out, retry_after_ms);
  return out;
}

Result<ControlResponse> DecodeControlResponse(ByteSpan bytes) {
  ByteReader reader(bytes);
  std::uint8_t flags = 0;
  std::uint16_t code = 0;
  std::string message;
  ControlResponse response;
  ByteSpan payload;
  if (!reader.ReadU8(flags) || !reader.ReadU16(code) ||
      !reader.ReadLenPrefixedString(message) ||
      !reader.ReadU64(response.number) || !reader.ReadLenPrefixed(payload)) {
    return ProtocolError("malformed control response");
  }
  response.status = Status(static_cast<ErrorCode>(code), std::move(message));
  response.payload.assign(payload.begin(), payload.end());
  response.heartbeat = (flags & kResponseFlagHeartbeat) != 0;
  if (!reader.empty()) {
    std::uint8_t ext_version = 0;
    if (!reader.ReadU8(ext_version)) {
      return ProtocolError("malformed control response extension");
    }
    if (ext_version >= 1 &&
        !obs::ReadSpans(reader, response.remote_spans)) {
      return ProtocolError("truncated control response trace extension");
    }
    if (ext_version >= 2 &&
        (!reader.ReadU8(response.peer_rev) || !reader.ReadU8(response.lane) ||
         !reader.ReadU32(response.lane_len))) {
      return ProtocolError("truncated control response lane extension");
    }
    if (ext_version >= 3 && !reader.ReadU32(response.retry_after_ms)) {
      return ProtocolError("truncated control response overload extension");
    }
  }
  return response;
}

}  // namespace afs::sentinel
