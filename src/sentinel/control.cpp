#include "sentinel/control.hpp"

namespace afs::sentinel {

Buffer EncodeControlMessage(const ControlMessage& message) {
  Buffer out;
  out.reserve(1 + 4 + 8 + 1 + 8 + 4 + message.payload.size() + 1 + 16);
  out.push_back(static_cast<std::uint8_t>(message.op));
  AppendU32(out, message.length);
  AppendU64(out, static_cast<std::uint64_t>(message.offset));
  out.push_back(message.origin);
  AppendU64(out, message.range_len);
  AppendLenPrefixed(out, ByteSpan(message.payload));
  // Versioned trailing extension (trace propagation).  Pre-extension
  // decoders stop after the payload and never see these bytes.
  out.push_back(kControlExtVersion);
  AppendU64(out, message.trace_id);
  AppendU64(out, message.parent_span);
  return out;
}

Result<ControlMessage> DecodeControlMessage(ByteSpan bytes) {
  ByteReader reader(bytes);
  ControlMessage message;
  std::uint8_t op = 0;
  std::uint64_t offset = 0;
  ByteSpan payload;
  if (!reader.ReadU8(op) || !reader.ReadU32(message.length) ||
      !reader.ReadU64(offset) || !reader.ReadU8(message.origin) ||
      !reader.ReadU64(message.range_len) || !reader.ReadLenPrefixed(payload)) {
    return ProtocolError("malformed control message");
  }
  if (op < static_cast<std::uint8_t>(ControlOp::kRead) ||
      op > static_cast<std::uint8_t>(ControlOp::kClose)) {
    return ProtocolError("unknown control op " + std::to_string(op));
  }
  message.op = static_cast<ControlOp>(op);
  message.offset = static_cast<std::int64_t>(offset);
  message.payload.assign(payload.begin(), payload.end());
  // Trailing trace extension: absent from old peers (trace stays zero);
  // a declared-but-truncated extension is a framing bug, not old wire.
  // Bytes past the version-1 fields belong to future versions and are
  // ignored, the same contract old decoders apply to this extension.
  if (!reader.empty()) {
    std::uint8_t ext_version = 0;
    if (!reader.ReadU8(ext_version)) {
      return ProtocolError("malformed control message extension");
    }
    if (ext_version >= 1) {
      if (!reader.ReadU64(message.trace_id) ||
          !reader.ReadU64(message.parent_span)) {
        return ProtocolError("truncated control message trace extension");
      }
    }
  }
  return message;
}

namespace {
// Response frame flag bits (wire byte after the status code).
constexpr std::uint8_t kResponseFlagHeartbeat = 0x01;
}  // namespace

Buffer EncodeControlResponse(const ControlResponse& response) {
  Buffer out;
  out.reserve(1 + 2 + 4 + response.status.message().size() + 8 + 4 +
              response.payload.size() + 1 + 4);
  out.push_back(response.heartbeat ? kResponseFlagHeartbeat : 0);
  AppendU16(out, static_cast<std::uint16_t>(response.status.code()));
  AppendLenPrefixed(out, response.status.message());
  AppendU64(out, response.number);
  AppendLenPrefixed(out, ByteSpan(response.payload));
  // Versioned trailing extension (spans riding home to the application).
  out.push_back(kControlExtVersion);
  obs::AppendSpans(out, response.remote_spans);
  return out;
}

Result<ControlResponse> DecodeControlResponse(ByteSpan bytes) {
  ByteReader reader(bytes);
  std::uint8_t flags = 0;
  std::uint16_t code = 0;
  std::string message;
  ControlResponse response;
  ByteSpan payload;
  if (!reader.ReadU8(flags) || !reader.ReadU16(code) ||
      !reader.ReadLenPrefixedString(message) ||
      !reader.ReadU64(response.number) || !reader.ReadLenPrefixed(payload)) {
    return ProtocolError("malformed control response");
  }
  response.status = Status(static_cast<ErrorCode>(code), std::move(message));
  response.payload.assign(payload.begin(), payload.end());
  response.heartbeat = (flags & kResponseFlagHeartbeat) != 0;
  if (!reader.empty()) {
    std::uint8_t ext_version = 0;
    if (!reader.ReadU8(ext_version)) {
      return ProtocolError("malformed control response extension");
    }
    if (ext_version >= 1 &&
        !obs::ReadSpans(reader, response.remote_spans)) {
      return ProtocolError("truncated control response trace extension");
    }
  }
  return response;
}

}  // namespace afs::sentinel
