// The control protocol: typed commands flowing from application stubs to
// the sentinel, and their responses.  This is what rides the control
// channel of the process-plus-control strategy (paper Section 4.2 — "all
// other file operations are now passed to the sentinel process as commands
// with arguments") and the rendezvous slot of the DLL-with-thread strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "obs/trace.hpp"

namespace afs::sentinel {

// Version byte of the trailing extension both frame types carry after
// their length-prefixed payload.  Pre-extension decoders stop at the
// payload and ignore the trailer; current decoders treat a missing trailer
// as "no trace".  Bump only when the extension layout itself changes —
// new fields go after the existing ones so older readers keep working.
// v1 added trace propagation (docs/PROTOCOL.md §3.4); v2 added the shm
// data-plane handshake: the responder's data-plane revision and the lane
// bits routing bulk payloads through the shared ring (§3.5); v3 added the
// overload shed hint: a u32 retry-after on responses whose status is
// kOverloaded (§3.6).
inline constexpr std::uint8_t kControlExtVersion = 3;

// Data-plane revision a sentinel advertises in every response's v2
// extension.  Revision 2 means the peer understands the shm ring lane and
// the vectored kReadVec/kWriteVec ops; an application link only routes
// either at a peer whose advertised revision is >= this.  Zero (the v1
// default) means "pipes only".
inline constexpr std::uint8_t kDataPlaneRev = 2;

// Lane bit (message and response v2 extensions): the bulk payload of this
// frame rides the shared-memory ring instead of the pipe/frame it would
// classically use.
inline constexpr std::uint8_t kLaneShm = 0x01;

enum class ControlOp : std::uint8_t {
  kRead = 1,     // length
  kWrite = 2,    // length (+ data on the write lane)
  kSeek = 3,     // offset, origin
  kGetSize = 4,
  kSetEof = 5,
  kFlush = 6,
  kLock = 7,     // offset, range_len
  kUnlock = 8,   // offset, range_len
  kCustom = 9,   // payload in/out
  kClose = 10,
  // Vectored multi-block transfers (data-plane rev 2): one crossing for a
  // whole scatter/gather list.  Wire payload is the segment table
  // (u32 count, then count u32 lengths); the bytes travel concatenated on
  // the write lane (kWriteVec) or in the response payload lane (kReadVec).
  kReadVec = 11,
  kWriteVec = 12,
};

struct ControlMessage {
  ControlOp op = ControlOp::kClose;
  std::uint32_t length = 0;      // read/write byte count
  std::int64_t offset = 0;       // seek / lock offset
  std::uint8_t origin = 0;       // vfs::SeekOrigin for kSeek
  std::uint64_t range_len = 0;   // lock length
  Buffer payload;                // kCustom request body

  // Trace propagation (rides the versioned trailing extension): the
  // application-side trace id and the span the sentinel's work should
  // parent under.  Zero means "untraced".
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  // v2 extension: where this message's bulk payload travels.  kLaneShm
  // set by pipe links that routed the kWrite/kWriteVec bytes through the
  // shared ring; clear means the classic write pipe.
  std::uint8_t lane = 0;

  // Zero-copy lanes used only by in-process endpoints (thread/direct):
  // the application's own buffers, never serialized.  When inline_out is
  // non-empty, read data is placed directly in it and the response payload
  // stays empty — the "user-mode memcpy" fast path of the paper's
  // footnote 2.
  ByteSpan inline_in{};
  MutableByteSpan inline_out{};

  // Vectored lanes (kReadVec/kWriteVec).  In-process endpoints consume
  // them directly; pipe links consult vec_in to feed the write lane and
  // vec_out to scatter the response.  Never serialized — the wire carries
  // the segment table in `payload` instead.
  std::vector<ByteSpan> vec_in;
  std::vector<MutableByteSpan> vec_out;
};

struct ControlResponse {
  Status status;            // the sentinel-side outcome of the operation
  std::uint64_t number = 0;  // count / position / size, op-dependent
  Buffer payload;            // read data (pipe lane) or kCustom reply

  // Liveness beacon, not an answer to any command: an idle sentinel emits
  // heartbeat frames on the response channel so the supervisor's lease
  // protocol can distinguish "idle" from "dead/wedged".  Application stubs
  // skip these frames (renewing the lease) while waiting for a real
  // response.
  bool heartbeat = false;

  // Spans the sentinel completed while serving this command (rides the
  // versioned trailing extension home); the application-side link adopts
  // them into its TraceLog, which is how one trace crosses the process
  // boundary.
  std::vector<obs::SpanRecord> remote_spans;

  // v2 extension: the responder's data-plane revision (kDataPlaneRev when
  // a shared ring is attached, 0 from v1 peers) and, when kLaneShm is set,
  // the length of the payload waiting in the ring instead of the frame.
  std::uint8_t peer_rev = 0;
  std::uint8_t lane = 0;
  std::uint32_t lane_len = 0;

  // v3 extension: when `status` is kOverloaded, how long (milliseconds)
  // the responder suggests the client wait before retrying.  Zero from
  // v2-or-older peers and on non-shed responses.
  std::uint32_t retry_after_ms = 0;
};

// Wire codecs (inline and vectored lanes are intentionally not carried).
Buffer EncodeControlMessage(const ControlMessage& message);
// Link-side variant: stamps `lane` without copying the message.
Buffer EncodeControlMessage(const ControlMessage& message, std::uint8_t lane);
Result<ControlMessage> DecodeControlMessage(ByteSpan bytes);

Buffer EncodeControlResponse(const ControlResponse& response);
// Endpoint-side variant: stamps `peer_rev` and `lane` without copying the
// response.  When `lane` has kLaneShm set the payload bytes are omitted
// from the frame (they ride the ring) and `lane_len` carries their count.
Buffer EncodeControlResponse(const ControlResponse& response,
                             std::uint8_t peer_rev, std::uint8_t lane);
Result<ControlResponse> DecodeControlResponse(ByteSpan bytes);

}  // namespace afs::sentinel
