// The control protocol: typed commands flowing from application stubs to
// the sentinel, and their responses.  This is what rides the control
// channel of the process-plus-control strategy (paper Section 4.2 — "all
// other file operations are now passed to the sentinel process as commands
// with arguments") and the rendezvous slot of the DLL-with-thread strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "obs/trace.hpp"

namespace afs::sentinel {

// Version byte of the trailing trace extension both frame types carry
// after their length-prefixed payload.  Pre-extension decoders stop at the
// payload and ignore the trailer; current decoders treat a missing trailer
// as "no trace".  Bump only when the extension layout itself changes —
// new fields go after the existing ones so version-1 readers keep working.
// See docs/PROTOCOL.md §3.4.
inline constexpr std::uint8_t kControlExtVersion = 1;

enum class ControlOp : std::uint8_t {
  kRead = 1,     // length
  kWrite = 2,    // length (+ data on the write lane)
  kSeek = 3,     // offset, origin
  kGetSize = 4,
  kSetEof = 5,
  kFlush = 6,
  kLock = 7,     // offset, range_len
  kUnlock = 8,   // offset, range_len
  kCustom = 9,   // payload in/out
  kClose = 10,
};

struct ControlMessage {
  ControlOp op = ControlOp::kClose;
  std::uint32_t length = 0;      // read/write byte count
  std::int64_t offset = 0;       // seek / lock offset
  std::uint8_t origin = 0;       // vfs::SeekOrigin for kSeek
  std::uint64_t range_len = 0;   // lock length
  Buffer payload;                // kCustom request body

  // Trace propagation (rides the versioned trailing extension): the
  // application-side trace id and the span the sentinel's work should
  // parent under.  Zero means "untraced".
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  // Zero-copy lanes used only by in-process endpoints (thread/direct):
  // the application's own buffers, never serialized.  When inline_out is
  // non-empty, read data is placed directly in it and the response payload
  // stays empty — the "user-mode memcpy" fast path of the paper's
  // footnote 2.
  ByteSpan inline_in{};
  MutableByteSpan inline_out{};
};

struct ControlResponse {
  Status status;            // the sentinel-side outcome of the operation
  std::uint64_t number = 0;  // count / position / size, op-dependent
  Buffer payload;            // read data (pipe lane) or kCustom reply

  // Liveness beacon, not an answer to any command: an idle sentinel emits
  // heartbeat frames on the response channel so the supervisor's lease
  // protocol can distinguish "idle" from "dead/wedged".  Application stubs
  // skip these frames (renewing the lease) while waiting for a real
  // response.
  bool heartbeat = false;

  // Spans the sentinel completed while serving this command (rides the
  // versioned trailing extension home); the application-side link adopts
  // them into its TraceLog, which is how one trace crosses the process
  // boundary.
  std::vector<obs::SpanRecord> remote_spans;
};

// Wire codecs (inline lanes are intentionally not carried).
Buffer EncodeControlMessage(const ControlMessage& message);
Result<ControlMessage> DecodeControlMessage(ByteSpan bytes);

Buffer EncodeControlResponse(const ControlResponse& response);
Result<ControlResponse> DecodeControlResponse(ByteSpan bytes);

}  // namespace afs::sentinel
