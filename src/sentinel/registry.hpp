// SentinelRegistry: maps the "active part" of an active file to code.
//
// The paper's NT prototype stores an executable (or DLL) as the active
// part and launches/injects it.  Here the active part names a sentinel
// registered in this table plus its configuration; strategies instantiate
// a fresh Sentinel per open (paper Section 2.2: one sentinel per opening
// process).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinel {

// The deserialized active part: which sentinel, and its settings.
// Reserved config keys interpreted by the runtime (not the sentinel):
//   "cache"    : none | disk | memory        (default disk)
//   "strategy" : process | process_control | thread | direct
//                                            (default: manager setting)
struct SentinelSpec {
  std::string name;
  std::map<std::string, std::string> config;
};

class SentinelRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Sentinel>(const SentinelSpec& spec)>;

  SentinelRegistry() = default;
  SentinelRegistry(const SentinelRegistry&) = delete;
  SentinelRegistry& operator=(const SentinelRegistry&) = delete;

  Status Register(const std::string& name, Factory factory);

  bool Has(const std::string& name) const;

  Result<std::unique_ptr<Sentinel>> Create(const SentinelSpec& spec) const;

  std::vector<std::string> Names() const;

  // Process-wide registry used by ActiveFileManager by default.
  static SentinelRegistry& Global();

 private:
  mutable Mutex mu_;
  std::map<std::string, Factory> factories_ AFS_GUARDED_BY(mu_);
};

}  // namespace afs::sentinel
