// The sentinel dispatch loop (paper Sections 5.2/5.3): block on
// AF_GetControl, perform the operation against the Sentinel, respond,
// repeat until close.  Shared verbatim by the process-plus-control strategy
// (running in a forked child over pipes) and the DLL-with-thread strategy
// (running in an injected thread over shared memory) — the strategies differ
// only in the SentinelEndpoint they plug in.
//
// PerformControlOp is the per-message core of that loop, factored out so
// the event-loop host (core/loop_host.hpp) can service the same command
// set from a shard callback instead of a dedicated thread.
#pragma once

#include <functional>

#include "sentinel/endpoint.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinel {

// How one serviced command left the session.
enum class OpVerdict : std::uint8_t {
  kRespond = 0,   // ship the response; the session continues
  kClosed = 1,    // close op serviced (OnClose ran); respond best-effort
  kCrashed = 2,   // injected crash at the close fault site; no response
  kChannelBroken = 3,  // out-of-line data lane failed; OnClose ran; no
                       // response can pair with the consumed command
};

struct OpOutcome {
  ControlResponse response;
  OpVerdict verdict = OpVerdict::kRespond;
};

// Services one control message: span collection, the
// "sentinel.dispatch.op" / "sentinel.dispatch.close" fault sites, and the
// op switch against the Sentinel.  Out-of-line write payloads are pulled
// through `fetch_data` (the pipe endpoint's data lane); hosts whose writes
// always arrive inline pass nullptr.
OpOutcome PerformControlOp(
    Sentinel& sentinel, SentinelContext& ctx, ControlMessage& msg,
    const std::function<Result<Buffer>(std::size_t)>& fetch_data);

// Runs OnOpen, the command loop, and OnClose.  Returns the process exit
// code (0 on clean shutdown) so forked children can return it directly.
int RunSentinelLoop(Sentinel& sentinel, SentinelEndpoint& endpoint,
                    SentinelContext& ctx);

}  // namespace afs::sentinel
