// The sentinel dispatch loop (paper Sections 5.2/5.3): block on
// AF_GetControl, perform the operation against the Sentinel, respond,
// repeat until close.  Shared verbatim by the process-plus-control strategy
// (running in a forked child over pipes) and the DLL-with-thread strategy
// (running in an injected thread over shared memory) — the strategies differ
// only in the SentinelEndpoint they plug in.
#pragma once

#include "sentinel/endpoint.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::sentinel {

// Runs OnOpen, the command loop, and OnClose.  Returns the process exit
// code (0 on clean shutdown) so forked children can return it directly.
int RunSentinelLoop(Sentinel& sentinel, SentinelEndpoint& endpoint,
                    SentinelContext& ctx);

}  // namespace afs::sentinel
