// afs::fault — deterministic failpoint framework.
//
// Every file operation of an unmodified application routes through pipes,
// shared memory, or injected threads; a dead sentinel or a stalled pipe is
// a silent wedge unless those seams are provably fault-tolerant.  Fault
// points are named injection sites compiled into the hot seams:
//
//   AFS_FAULT_POINT("ipc.pipe.write");          // may return an error here
//   n = AFS_FAULT_TRUNCATE("ipc.pipe.read", n); // may shorten a transfer
//
// With no plan installed, a site costs exactly one relaxed atomic load and
// a predictable branch — cheap enough to leave in release builds, which is
// the point: the binary that passes the fault matrix is the binary that
// ships.
//
// A FaultPlan arms sites with actions (error / delay / truncate / kill),
// each with a trigger (every hit, the Nth hit, or a seeded coin flip).
// Plans come from code (tests) or from the AFS_FAULT_PLAN environment
// variable (forked and exec'd sentinels), and every triggered fault is
// logged with the plan's seed so any failure replays from one command
// line.  Syntax:
//
//   AFS_FAULT_PLAN="seed=42;ipc.pipe.write=error:io@n3;net.socket.call=delay:5ms@p0.1"
//
//   rule    := site '=' kind [':' arg] ['@' trigger]
//   kind    := error | delay | truncate | kill
//   arg     := error code name (io, timeout, closed, remote, ...) for error;
//              duration (5ms, 100us, 1s) for delay;
//              byte count for truncate
//   trigger := 'n' N   — fire on the Nth hit of the site only (1-based)
//            | 'p' F   — fire with probability F per hit (seeded PRNG)
//            | omitted — fire on every hit
//
// Sites match by exact name or by prefix when the rule ends in '*'
// ("ipc.pipe.*" arms every pipe site).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace afs::fault {

enum class FaultKind : std::uint8_t {
  kError = 1,     // the site returns a configured Status
  kDelay = 2,     // the site stalls for a configured duration
  kTruncate = 3,  // the site shortens a payload to N bytes
  kKill = 4,      // the process hosting the site dies (SIGKILL semantics)
};

std::string_view FaultKindName(FaultKind kind) noexcept;

struct FaultRule {
  std::string site;          // exact name, or prefix when ends with '*'
  FaultKind kind = FaultKind::kError;
  ErrorCode error = ErrorCode::kIoError;  // kError payload
  Micros delay{0};                        // kDelay duration
  std::size_t truncate_to = 0;            // kTruncate surviving byte count
  // Trigger: fire on hit `nth` only (1-based), or with `probability` per
  // hit when nth == 0, or on every hit when both are unset.
  std::uint64_t nth = 0;
  double probability = 1.0;
};

// A parsed, armable set of rules plus the seed for probabilistic triggers.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  // Renders the plan back into AFS_FAULT_PLAN syntax (replay lines).
  std::string ToString() const;
};

// Parses the AFS_FAULT_PLAN syntax described above.
Result<FaultPlan> ParsePlan(std::string_view spec);

// Installs `plan` process-wide and arms the fast-path flag.  Hit counters
// and the trigger PRNG reset, so identical plans replay identically.
void InstallPlan(FaultPlan plan);

// Disarms all sites and drops the installed plan.
void ClearPlan();

// Installs the plan from the AFS_FAULT_PLAN environment variable, if set
// and parseable.  Returns true when a plan was installed.  Exec'd sentinel
// processes call this so faults follow them across the exec boundary.
bool InstallPlanFromEnv();

// Total faults triggered (not merely evaluated) since the last install.
std::uint64_t TriggeredCount() noexcept;

namespace internal {

extern std::atomic<bool> g_armed;

// Slow path, called only while a plan is armed.  Applies delay/kill side
// effects itself; returns the Status an error rule injects (Ok otherwise).
Status EvaluateStatus(std::string_view site);

// Slow path for payload sites: the surviving length under truncate rules
// (delay/kill rules still apply; error rules are ignored — pair the site
// with AFS_FAULT_POINT when it can also fail outright).
std::size_t EvaluateTruncate(std::string_view site, std::size_t length);

}  // namespace internal

// True while a plan is armed; the one relaxed load on the hot path.
inline bool Enabled() noexcept {
  return internal::g_armed.load(std::memory_order_relaxed);
}

// Function-style site for code that cannot early-return a Status (loops,
// int-returning pump functions): delay/kill rules take effect here and an
// injected error comes back for the caller to route.
inline Status Hit(std::string_view site) {
  if (!Enabled()) return Status::Ok();
  return internal::EvaluateStatus(site);
}

// RAII plan installation for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { InstallPlan(std::move(plan)); }
  ~ScopedFaultPlan() { ClearPlan(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace afs::fault

// Error-injection site inside a Status/Result-returning function: when an
// armed rule fires, the enclosing function returns the injected Status.
// Delay rules stall here; kill rules terminate the process here.
#define AFS_FAULT_POINT(site)                                         \
  do {                                                                \
    if (::afs::fault::Enabled()) {                                    \
      ::afs::Status afs_fault_status_ =                               \
          ::afs::fault::internal::EvaluateStatus(site);               \
      if (!afs_fault_status_.ok()) return afs_fault_status_;          \
    }                                                                 \
  } while (0)

// Payload-injection site: yields the (possibly reduced) transfer length.
#define AFS_FAULT_TRUNCATE(site, length)                              \
  (::afs::fault::Enabled()                                            \
       ? ::afs::fault::internal::EvaluateTruncate((site), (length))   \
       : (length))
