// Bounded exponential backoff for retrying transient failures (lost
// connections, busy locks).  Every retry loop in the library goes through
// this helper so retries are always bounded — an unbounded retry is just a
// hang with extra steps, the failure mode the fault matrix exists to catch.
#pragma once

#include "common/clock.hpp"

namespace afs {

class Backoff {
 public:
  // `max_retries` bounds how many times Next() returns true; the delay
  // starts at `initial` and doubles per retry, capped at `cap`.
  Backoff(int max_retries, Micros initial, Micros cap) noexcept
      : remaining_(max_retries), delay_(initial), cap_(cap) {}

  // True if another retry is allowed — in which case the current delay has
  // been slept on `clock` and doubled for next time.  False once exhausted.
  bool Next(Clock& clock) {
    if (remaining_ <= 0) return false;
    --remaining_;
    if (delay_.count() > 0) clock.SleepFor(delay_);
    delay_ = delay_ * 2 > cap_ ? cap_ : delay_ * 2;
    return true;
  }

  int remaining() const noexcept { return remaining_; }

 private:
  int remaining_;
  Micros delay_;
  const Micros cap_;
};

}  // namespace afs
