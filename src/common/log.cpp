#include "common/log.hpp"

#include <cstdio>

namespace afs {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void Logger::Write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) return;
  MutexLock lock(mu_);
  std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelTag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace afs
