// Minimal leveled logger.  Sentinels run in forked children and in injected
// threads; the logger is async-signal-tolerant in the sense that it performs
// a single formatted write(2)-style emission per call under one mutex.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

#include "common/mutex.hpp"

namespace afs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& Instance();

  // level_ is atomic (not mu_-guarded): the AFS_LOG fast path reads it on
  // every call site, concurrently with SetLevel from other threads.
  // Relaxed suffices — a stale level only delays a verbosity change by one
  // message, and the fast path stays a plain load + branch.
  void SetLevel(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void Write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Mutex mu_;  // serializes emission so lines never interleave
};

namespace log_internal {

class LineBuilder {
 public:
  LineBuilder(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}

  ~LineBuilder() { Logger::Instance().Write(level_, component_, out_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream out_;
};

}  // namespace log_internal

// Usage: AFS_LOG(kInfo, "afs.core") << "opened " << path;
// Suppressed severities skip the stream expressions entirely.
#define AFS_LOG(severity, component)                                     \
  if (static_cast<int>(::afs::LogLevel::severity) <                      \
      static_cast<int>(::afs::Logger::Instance().level())) {             \
  } else                                                                 \
    ::afs::log_internal::LineBuilder(::afs::LogLevel::severity, (component))

}  // namespace afs
