// Status / Result<T>: the library-wide error model.
//
// Active files span process boundaries, simulated networks, and host-file
// I/O; failures are expected and must be propagated without exceptions
// crossing strategy/IPC boundaries.  Every fallible public operation returns
// either a Status (no payload) or a Result<T> (payload or error).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace afs {

// Error taxonomy.  Codes are stable across the IPC wire (the control
// protocol serializes them), so values are explicit and append-only.
enum class ErrorCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kUnsupported = 5,       // e.g. ReadFileScatter on plain ProcessStrategy
  kIoError = 6,
  kClosed = 7,            // handle/channel/pipe already closed
  kTimeout = 8,
  kProtocolError = 9,     // malformed control/RPC message
  kRemoteError = 10,      // server-side failure forwarded to the client
  kBusy = 11,             // lock contention / would-block
  kOutOfRange = 12,       // seek/read past logical limits
  kCorrupt = 13,          // bundle/codec integrity failure
  kInternal = 14,
  kOverloaded = 15,       // admission shed; retry after the carried hint
};

// Human-readable name for an error code ("NOT_FOUND" etc.).
std::string_view ErrorCodeName(ErrorCode code) noexcept;

// A success-or-error value without payload.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }
  static Status Error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  // "OK" or "NOT_FOUND: no such bundle".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Convenience constructors mirroring the taxonomy.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status UnsupportedError(std::string message);
Status IoError(std::string message);
Status ClosedError(std::string message);
Status TimeoutError(std::string message);
Status ProtocolError(std::string message);
Status RemoteError(std::string message);
Status BusyError(std::string message);
Status OutOfRangeError(std::string message);
Status CorruptError(std::string message);
Status InternalError(std::string message);
Status OverloadedError(std::string message);
// Shed with a retry-after hint.  The hint travels inside the message
// (" [retry-after-ms=N]") so it survives every Status-only seam — the
// control protocol additionally carries it as a typed field
// (docs/PROTOCOL.md §3.6) and HTTP as a Retry-After header.
Status OverloadedError(std::string message, std::int64_t retry_after_ms);
// The hint carried by an OverloadedError, in milliseconds; 0 when the
// status is not kOverloaded or carries no hint.
std::int64_t RetryAfterHintMs(const Status& status) noexcept;

// A value of type T or a Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : rep_(std::move(status)) {}   // NOLINT(implicit)

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  const Status& status() const noexcept {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  // Precondition: ok().
  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  T* operator->() { return &std::get<T>(rep_); }
  const T* operator->() const { return &std::get<T>(rep_); }
  T& operator*() & { return std::get<T>(rep_); }
  const T& operator*() const& { return std::get<T>(rep_); }

 private:
  std::variant<T, Status> rep_;
};

// Early-return helpers.  Usage:
//   AFS_RETURN_IF_ERROR(DoThing());
//   AFS_ASSIGN_OR_RETURN(auto bytes, ReadAll(path));
#define AFS_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::afs::Status afs_status_ = (expr);           \
    if (!afs_status_.ok()) return afs_status_;    \
  } while (0)

#define AFS_CONCAT_INNER_(a, b) a##b
#define AFS_CONCAT_(a, b) AFS_CONCAT_INNER_(a, b)

#define AFS_ASSIGN_OR_RETURN(decl, expr)                          \
  auto AFS_CONCAT_(afs_result_, __LINE__) = (expr);               \
  if (!AFS_CONCAT_(afs_result_, __LINE__).ok())                   \
    return AFS_CONCAT_(afs_result_, __LINE__).status();           \
  decl = std::move(AFS_CONCAT_(afs_result_, __LINE__)).value()

}  // namespace afs
