// Clock abstraction.  The simulated network (net::SimNet) models latency and
// bandwidth against a clock; tests use ManualClock for determinism while the
// benchmarks use the real steady clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/mutex.hpp"

namespace afs {

using Micros = std::chrono::microseconds;

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic time since an arbitrary epoch.
  virtual Micros Now() const = 0;

  // Blocks the calling thread for the given duration (real or simulated).
  virtual void SleepFor(Micros duration) = 0;
};

// Wall-clock-backed implementation used by benchmarks and examples.
class SteadyClock final : public Clock {
 public:
  Micros Now() const override {
    return std::chrono::duration_cast<Micros>(
        std::chrono::steady_clock::now().time_since_epoch());
  }

  void SleepFor(Micros duration) override;

  // Process-wide instance; the clock is stateless so sharing is safe.
  static SteadyClock& Instance();
};

// Manually-advanced clock for deterministic tests.  SleepFor blocks until
// another thread Advance()s past the deadline, which lets tests single-step
// latency-sensitive code without real waiting.
class ManualClock final : public Clock {
 public:
  Micros Now() const override {
    return Micros(now_us_.load(std::memory_order_acquire));
  }

  void SleepFor(Micros duration) override;

  // Moves time forward and wakes sleepers whose deadlines passed.
  void Advance(Micros delta);

 private:
  // now_us_ is atomic rather than mu_-guarded: Now() is the hot read path
  // and must not contend with sleepers.  mu_ only serializes the
  // Advance/SleepFor wakeup protocol.
  std::atomic<std::int64_t> now_us_{0};
  Mutex mu_;
  CondVar cv_;
};

}  // namespace afs
