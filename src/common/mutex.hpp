// Annotated synchronization layer.
//
// afs::Mutex / afs::MutexLock / afs::CondVar wrap the std primitives with
// two additions:
//
//   1. Clang thread-safety attributes (common/thread_annotations.hpp), so
//      `-Wthread-safety` statically checks that AFS_GUARDED_BY members are
//      only touched under their lock.
//
//   2. A debug lock-order checker: when enabled (compile afs_common with
//      AFS_DEADLOCK_DEBUG, or call debug::EnableLockOrderChecking(true)),
//      every thread maintains a held-lock stack and blocking acquisitions
//      feed a global lock-order graph.  The first acquisition that would
//      close a cycle (a lock inversion — potential deadlock) is reported
//      with both acquisition stacks and the process aborts, unless a test
//      installed a handler via debug::SetLockOrderViolationHandler.
//
// The checker costs one relaxed atomic load per lock operation when
// disabled; release builds default to disabled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/thread_annotations.hpp"

namespace afs {

class Mutex;

namespace debug {

// Delivered to the violation handler (or rendered to stderr before abort).
struct LockOrderViolation {
  std::uint64_t held_id = 0;       // lock already held by this thread
  std::uint64_t acquiring_id = 0;  // lock whose acquisition closed the cycle
  std::string current_stack;       // where the inverted acquisition happened
  std::string prior_stack;         // where the opposite order was established
  std::string description;         // full human-readable report
};

using LockOrderHandler = void (*)(const LockOrderViolation&);

// Runtime switch for the lock-order checker (process-wide).  Compiling
// afs_common with AFS_DEADLOCK_DEBUG makes it default-on.
void EnableLockOrderChecking(bool enabled);
bool LockOrderCheckingEnabled();

// Installs a handler called instead of report-and-abort; returns the
// previous handler.  Pass nullptr to restore the default.  Used by tests
// to observe inversions without dying.
LockOrderHandler SetLockOrderViolationHandler(LockOrderHandler handler);

// Drops all recorded ordering edges (not the per-thread held stacks).
void ResetLockOrderGraphForTesting();

namespace internal {

extern std::atomic<bool> g_lock_order_checking;

inline bool Tracking() noexcept {
  return g_lock_order_checking.load(std::memory_order_relaxed);
}

void OnLockAttempt(const Mutex& mu);   // before a blocking acquisition
void OnLockAcquired(const Mutex& mu);  // after any successful acquisition
void OnUnlock(const Mutex& mu);        // before release

// Fork-safety hooks for pthread_atfork handlers (installed by
// obs/metrics.cpp): the checker's graph mutex is taken by every nested
// lock acquisition, so a fork() racing one would hand the child a
// permanently locked mutex.  Prepare holds it across the fork; both sides
// release their copy.
void LockGraphForFork();
void UnlockGraphForFork();

}  // namespace internal
}  // namespace debug

// Exclusive mutex, annotated as a thread-safety capability.  Same blocking
// semantics as std::mutex; see file comment for the debug extras.
class AFS_CAPABILITY("mutex") Mutex {
 public:
  Mutex();
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AFS_ACQUIRE() {
    if (debug::internal::Tracking()) debug::internal::OnLockAttempt(*this);
    mu_.lock();
    if (debug::internal::Tracking()) debug::internal::OnLockAcquired(*this);
  }

  // Never blocks, so it records the acquisition for the held-lock stack but
  // adds no ordering edges (try-then-back-off is a legal avoidance pattern).
  bool TryLock() AFS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (debug::internal::Tracking()) debug::internal::OnLockAcquired(*this);
    return true;
  }

  void Unlock() AFS_RELEASE() {
    if (debug::internal::Tracking()) debug::internal::OnUnlock(*this);
    mu_.unlock();
  }

  // Lowercase aliases keep Mutex a C++ Lockable for generic code; prefer
  // MutexLock, which the static analysis understands.
  void lock() AFS_ACQUIRE() { Lock(); }
  void unlock() AFS_RELEASE() { Unlock(); }
  bool try_lock() AFS_TRY_ACQUIRE(true) { return TryLock(); }

  // Stable identity used by the lock-order graph (ids are never reused,
  // unlike addresses).
  std::uint64_t id() const noexcept { return id_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const std::uint64_t id_;
};

// RAII lock.  Supports early release / re-acquire, which the analysis
// tracks (relockable scoped capability).
class AFS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AFS_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }

  ~MutexLock() AFS_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() AFS_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  void Lock() AFS_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  // afs-lint: allow(guarded-member: RAII guard lives on one thread's stack)
  bool held_;
};

// Condition variable bound to afs::Mutex.  Wait releases and reacquires the
// mutex (updating the checker's held-lock stack), so the caller must hold
// it.  No predicate overloads on purpose: write the standard
//
//   while (!condition) cv_.Wait(mu_);
//
// loop in the caller, where the thread-safety analysis can see the guarded
// reads under the lock it tracks (predicates hidden in lambdas are analyzed
// as separate functions and defeat the checker).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) AFS_REQUIRES(mu);

  // false iff the deadline passed without a notification (spurious wakeups
  // still return true; callers loop on their condition as usual).
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      AFS_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

}  // namespace afs
