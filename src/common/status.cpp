#include "common/status.hpp"

namespace afs {

std::string_view ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kClosed: return "CLOSED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kRemoteError: return "REMOTE_ERROR";
    case ErrorCode::kBusy: return "BUSY";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kCorrupt: return "CORRUPT";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(ErrorCode::kPermissionDenied, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(ErrorCode::kUnsupported, std::move(message));
}
Status IoError(std::string message) {
  return Status(ErrorCode::kIoError, std::move(message));
}
Status ClosedError(std::string message) {
  return Status(ErrorCode::kClosed, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(ErrorCode::kTimeout, std::move(message));
}
Status ProtocolError(std::string message) {
  return Status(ErrorCode::kProtocolError, std::move(message));
}
Status RemoteError(std::string message) {
  return Status(ErrorCode::kRemoteError, std::move(message));
}
Status BusyError(std::string message) {
  return Status(ErrorCode::kBusy, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status CorruptError(std::string message) {
  return Status(ErrorCode::kCorrupt, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status OverloadedError(std::string message) {
  return Status(ErrorCode::kOverloaded, std::move(message));
}

namespace {
constexpr std::string_view kRetryAfterTag = " [retry-after-ms=";
}  // namespace

Status OverloadedError(std::string message, std::int64_t retry_after_ms) {
  if (retry_after_ms > 0 &&
      message.find(kRetryAfterTag) == std::string::npos) {
    message += kRetryAfterTag;
    message += std::to_string(retry_after_ms);
    message += ']';
  }
  return Status(ErrorCode::kOverloaded, std::move(message));
}

std::int64_t RetryAfterHintMs(const Status& status) noexcept {
  if (status.code() != ErrorCode::kOverloaded) return 0;
  const std::string& message = status.message();
  const std::size_t at = message.rfind(kRetryAfterTag);
  if (at == std::string::npos) return 0;
  std::int64_t value = 0;
  for (std::size_t i = at + kRetryAfterTag.size(); i < message.size(); ++i) {
    const char c = message[i];
    if (c == ']') return value;
    if (c < '0' || c > '9' || value > (1ll << 40)) return 0;
    value = value * 10 + (c - '0');
  }
  return 0;
}

}  // namespace afs
