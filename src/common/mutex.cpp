#include "common/mutex.hpp"

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace afs {
namespace debug {
namespace internal {

std::atomic<bool> g_lock_order_checking{
#ifdef AFS_DEADLOCK_DEBUG
    true
#else
    false
#endif
};

}  // namespace internal

namespace {

std::atomic<LockOrderHandler> g_handler{nullptr};

// One recorded "held -> acquiring" observation, with the stack that first
// established it.
struct Edge {
  std::string stack;
};

// Directed graph of observed acquisition orders, keyed by Mutex::id().
// Guarded by GraphMu() — a raw std::mutex so the checker never instruments
// itself.  Function-local statics dodge static-init-order hazards: a global
// afs::Mutex may be constructed (and locked) before this TU's globals.
std::mutex& GraphMu() {
  static std::mutex mu;
  return mu;
}

using EdgeMap = std::unordered_map<std::uint64_t, Edge>;

std::unordered_map<std::uint64_t, EdgeMap>& GraphEdges() {
  static auto* edges = new std::unordered_map<std::uint64_t, EdgeMap>();
  return *edges;
}

// Per-thread stack of currently held afs::Mutexes, outermost first.
//
// The vector has a destructor, so libc destroys it with the other TLS
// objects at thread exit — which on the main thread happens *before* the
// static (cxa_atexit) destructors run.  Statics that lock a Mutex on
// their way out (the obs registry, OpPair) would then push onto a dead
// vector.  The holder flips a trivially-destructible flag from its own
// destructor, and every checker entry point degrades to untracked once
// it is set: ordering during teardown is not worth a use-after-free.
thread_local bool t_held_destroyed = false;
struct HeldStackHolder {
  std::vector<const Mutex*> stack;
  ~HeldStackHolder() { t_held_destroyed = true; }
};
thread_local HeldStackHolder t_held_holder;

std::string CaptureStack() {
  void* frames[32];
  const int depth = ::backtrace(frames, 32);
  char** symbols = ::backtrace_symbols(frames, depth);
  std::string out;
  if (symbols != nullptr) {
    // Frame 0..1 are the checker itself; the caller starts around frame 2.
    for (int i = 2; i < depth; ++i) {
      out += "    ";
      out += symbols[i];
      out += "\n";
    }
    std::free(symbols);
  }
  return out;
}

// DFS: fills `path` with ids from `from` to `to` (inclusive) when an
// ordering path exists.  Caller holds GraphMu().
bool FindPath(std::uint64_t from, std::uint64_t to,
              std::unordered_set<std::uint64_t>& visited,
              std::vector<std::uint64_t>& path) {
  if (!visited.insert(from).second) return false;
  path.push_back(from);
  if (from == to) return true;
  auto it = GraphEdges().find(from);
  if (it != GraphEdges().end()) {
    for (const auto& [next, edge] : it->second) {
      if (FindPath(next, to, visited, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

void Report(LockOrderViolation violation) {
  char header[160];
  std::snprintf(header, sizeof(header),
                "afs::Mutex lock-order inversion (potential deadlock): "
                "acquiring mutex #%llu while holding mutex #%llu, but the "
                "opposite order was observed earlier.\n",
                static_cast<unsigned long long>(violation.acquiring_id),
                static_cast<unsigned long long>(violation.held_id));
  violation.description = std::string(header) +
                          "  this acquisition:\n" + violation.current_stack +
                          "  earlier opposite-order acquisition:\n" +
                          violation.prior_stack;
  const LockOrderHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(violation);
    return;
  }
  std::fprintf(stderr, "%s", violation.description.c_str());
  std::abort();
}

}  // namespace

void EnableLockOrderChecking(bool enabled) {
  internal::g_lock_order_checking.store(enabled, std::memory_order_relaxed);
}

bool LockOrderCheckingEnabled() { return internal::Tracking(); }

LockOrderHandler SetLockOrderViolationHandler(LockOrderHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void ResetLockOrderGraphForTesting() {
  std::lock_guard<std::mutex> lock(GraphMu());
  GraphEdges().clear();
}

namespace internal {

void OnLockAttempt(const Mutex& mu) {
  if (t_held_destroyed) return;
  const std::vector<const Mutex*>& t_held = t_held_holder.stack;
  if (t_held.empty()) return;
  const std::uint64_t acquiring = mu.id();
  bool violated = false;
  LockOrderViolation violation;
  {
    std::lock_guard<std::mutex> lock(GraphMu());
    for (const Mutex* held : t_held) {
      if (held == &mu) continue;  // recursive relock: not an ordering issue
      const std::uint64_t held_id = held->id();
      EdgeMap& out = GraphEdges()[held_id];
      if (out.find(acquiring) != out.end()) continue;  // known-good order
      // Adding held->acquiring closes a cycle iff acquiring already
      // reaches held through recorded edges.
      std::unordered_set<std::uint64_t> visited;
      std::vector<std::uint64_t> path;
      if (FindPath(acquiring, held_id, visited, path) && path.size() >= 2) {
        violated = true;
        violation.held_id = held_id;
        violation.acquiring_id = acquiring;
        violation.prior_stack = GraphEdges()[path[0]][path[1]].stack;
        // The inverted edge is deliberately not recorded: the graph stays
        // acyclic and every later occurrence reports again.
        break;
      }
      out.emplace(acquiring, Edge{CaptureStack()});
    }
  }
  if (violated) {
    violation.current_stack = CaptureStack();
    Report(std::move(violation));
  }
}

void OnLockAcquired(const Mutex& mu) {
  if (t_held_destroyed) return;
  t_held_holder.stack.push_back(&mu);
}

void OnUnlock(const Mutex& mu) {
  if (t_held_destroyed) return;
  std::vector<const Mutex*>& t_held = t_held_holder.stack;
  // Locks normally release LIFO, but MutexLock::Unlock and CondVar::Wait
  // may release out of order: erase the most recent matching entry.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == &mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void LockGraphForFork() { GraphMu().lock(); }
void UnlockGraphForFork() { GraphMu().unlock(); }

}  // namespace internal
}  // namespace debug

namespace {

std::uint64_t NextMutexId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Mutex::Mutex() : id_(NextMutexId()) {}

void CondVar::Wait(Mutex& mu) {
  const bool tracked = debug::internal::Tracking();
  if (tracked) debug::internal::OnUnlock(mu);
  // Adopt the already-held native mutex so the plain (and faster)
  // std::condition_variable drives the wait; release it back unowned.
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
  if (tracked) debug::internal::OnLockAcquired(mu);
}

bool CondVar::WaitUntil(Mutex& mu,
                        std::chrono::steady_clock::time_point deadline) {
  const bool tracked = debug::internal::Tracking();
  if (tracked) debug::internal::OnUnlock(mu);
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(native, deadline);
  native.release();
  if (tracked) debug::internal::OnLockAcquired(mu);
  return status != std::cv_status::timeout;
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace afs
