// Clang -Wthread-safety attribute macros.
//
// Sentinels run concurrently with the legacy application — forked processes,
// injected threads sharing memory buffers, and server threads — so shared
// state is annotated statically: a member is tagged with the mutex that
// guards it (AFS_GUARDED_BY) and functions declare the locks they take or
// require.  Under Clang the attributes make `-Wthread-safety` prove the
// locking discipline at compile time; under other compilers they expand to
// nothing.  Policy: every new shared member must carry AFS_GUARDED_BY (see
// docs/STATIC_ANALYSIS.md).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define AFS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define AFS_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

// On types: this class is a lock ("capability") the analysis can track.
#define AFS_CAPABILITY(x) AFS_THREAD_ANNOTATION__(capability(x))

// On types: RAII object that acquires a capability at construction and
// releases it at destruction (afs::MutexLock).
#define AFS_SCOPED_CAPABILITY AFS_THREAD_ANNOTATION__(scoped_lockable)

// On data members: may only be read or written while holding `x`.
#define AFS_GUARDED_BY(x) AFS_THREAD_ANNOTATION__(guarded_by(x))

// On pointer members: the pointed-to data is guarded by `x` (the pointer
// itself is not).
#define AFS_PT_GUARDED_BY(x) AFS_THREAD_ANNOTATION__(pt_guarded_by(x))

// On mutex members: document and enforce a global acquisition order.
#define AFS_ACQUIRED_BEFORE(...) \
  AFS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define AFS_ACQUIRED_AFTER(...) \
  AFS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// On functions: the caller must already hold the lock(s).
#define AFS_REQUIRES(...) \
  AFS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define AFS_REQUIRES_SHARED(...) \
  AFS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// On functions: acquires / releases the lock(s); caller must not (resp.
// must) hold them at the call.
#define AFS_ACQUIRE(...) \
  AFS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define AFS_ACQUIRE_SHARED(...) \
  AFS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define AFS_RELEASE(...) \
  AFS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define AFS_RELEASE_SHARED(...) \
  AFS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

// On functions: acquires the lock only when returning `b`.
#define AFS_TRY_ACQUIRE(...) \
  AFS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// On functions: must be called WITHOUT the lock(s) held (deadlock guard
// for functions that take the lock themselves).
#define AFS_EXCLUDES(...) AFS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// On functions: runtime assertion that the capability is held.
#define AFS_ASSERT_CAPABILITY(x) \
  AFS_THREAD_ANNOTATION__(assert_capability(x))

// On functions: returns a reference to the given capability.
#define AFS_RETURN_CAPABILITY(x) AFS_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch: disable analysis for one function.  Every use needs a
// comment justifying why the discipline cannot be expressed.
#define AFS_NO_THREAD_SAFETY_ANALYSIS \
  AFS_THREAD_ANNOTATION__(no_thread_safety_analysis)

// On functions: this is a dispatcher/rendezvous path an event loop must be
// able to multiplex — it may take short in-process locks and
// timeout-bounded waits but must never reach a primitive that can park the
// thread indefinitely on a peer (CondVar::Wait, ReadFrame without a
// deadline, NamedMutex acquisition, raw blocking syscalls).  Enforced by
// `tools/check.sh analyze` (the nonblocking check in tools/analyze/); the
// attribute form below additionally lands in the Clang AST for future
// AST-based checkers.  See docs/STATIC_ANALYSIS.md.
#define AFS_NONBLOCKING AFS_THREAD_ANNOTATION__(annotate("afs_nonblocking"))
