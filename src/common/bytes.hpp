// Byte-buffer vocabulary types shared by every layer: IPC frames, codec
// payloads, network messages, VFS read/write buffers.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace afs {

using Buffer = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

// String <-> bytes bridges (the file API traffics in bytes; tests and
// protocol code traffic in strings).
inline Buffer ToBuffer(std::string_view s) {
  return Buffer(s.begin(), s.end());
}

inline std::string ToString(ByteSpan bytes) {
  // uint8_t buffer viewed as chars; same object representation.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

inline ByteSpan AsBytes(std::string_view s) {
  // chars viewed as uint8_t; same object representation.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// Little-endian integer encode/append and decode used by all wire formats
// (control protocol, bundle TOC, RPC framing).  One definition so the wire
// layout cannot drift between layers.
inline void AppendU16(Buffer& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

inline void AppendU32(Buffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendU64(Buffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendBytes(Buffer& out, ByteSpan bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

// Length-prefixed string/blob (u32 length + raw bytes).
inline void AppendLenPrefixed(Buffer& out, ByteSpan bytes) {
  AppendU32(out, static_cast<std::uint32_t>(bytes.size()));
  AppendBytes(out, bytes);
}

inline void AppendLenPrefixed(Buffer& out, std::string_view s) {
  AppendLenPrefixed(out, AsBytes(s));
}

// Cursor-style decoder.  All Read* methods return false on underflow and
// leave the cursor unchanged, so callers can translate to kProtocolError.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) noexcept : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool empty() const noexcept { return remaining() == 0; }
  std::size_t position() const noexcept { return pos_; }

  bool ReadU8(std::uint8_t& out) noexcept {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }

  bool ReadU16(std::uint16_t& out) noexcept {
    if (remaining() < 2) return false;
    out = static_cast<std::uint16_t>(data_[pos_]) |
          static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }

  bool ReadU32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t& out) noexcept {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadBytes(std::size_t n, ByteSpan& out) noexcept {
    if (remaining() < n) return false;
    out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadLenPrefixed(ByteSpan& out) noexcept {
    std::size_t saved = pos_;
    std::uint32_t len = 0;
    if (!ReadU32(len) || remaining() < len) {
      pos_ = saved;
      return false;
    }
    out = data_.subspan(pos_, len);
    pos_ += len;
    return true;
  }

  bool ReadLenPrefixedString(std::string& out) {
    ByteSpan bytes;
    if (!ReadLenPrefixed(bytes)) return false;
    out = ToString(bytes);
    return true;
  }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace afs
