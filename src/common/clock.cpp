#include "common/clock.hpp"

#include <thread>

namespace afs {

void SteadyClock::SleepFor(Micros duration) {
  if (duration.count() > 0) std::this_thread::sleep_for(duration);
}

SteadyClock& SteadyClock::Instance() {
  static SteadyClock clock;
  return clock;
}

void ManualClock::SleepFor(Micros duration) {
  if (duration.count() <= 0) return;
  const std::int64_t deadline =
      now_us_.load(std::memory_order_acquire) + duration.count();
  MutexLock lock(mu_);
  while (now_us_.load(std::memory_order_acquire) < deadline) cv_.Wait(mu_);
}

void ManualClock::Advance(Micros delta) {
  {
    MutexLock lock(mu_);
    now_us_.fetch_add(delta.count(), std::memory_order_acq_rel);
  }
  cv_.NotifyAll();
}

}  // namespace afs
