#include "common/clock.hpp"

#include <thread>

namespace afs {

void SteadyClock::SleepFor(Micros duration) {
  if (duration.count() > 0) std::this_thread::sleep_for(duration);
}

SteadyClock& SteadyClock::Instance() {
  static SteadyClock clock;
  return clock;
}

void ManualClock::SleepFor(Micros duration) {
  if (duration.count() <= 0) return;
  const std::int64_t deadline =
      now_us_.load(std::memory_order_acquire) + duration.count();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return now_us_.load(std::memory_order_acquire) >= deadline;
  });
}

void ManualClock::Advance(Micros delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_us_.fetch_add(delta.count(), std::memory_order_acq_rel);
  }
  cv_.notify_all();
}

}  // namespace afs
