#include "common/faultpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>

#include "common/log.hpp"
#include "common/mutex.hpp"

namespace afs::fault {
namespace {

// Local string helpers: afs_common sits below afs_util, so the plan parser
// cannot use util/strings.hpp.

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::pair<std::string_view, std::string_view> SplitOnce(std::string_view s,
                                                        char sep) {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {s, {}};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

// SplitMix64: cheap seeded stream for probabilistic triggers.  Not Prng
// (util/) to keep afs_common dependency-free; two rounds of the same
// constants give ample quality for coin flips.
class TriggerRng {
 public:
  void Seed(std::uint64_t seed) noexcept { state_ = seed; }

  double NextDouble() noexcept {  // [0, 1)
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_ = 1;
};

struct PlanState {
  Mutex mu;
  FaultPlan plan AFS_GUARDED_BY(mu);
  std::vector<std::uint64_t> hits AFS_GUARDED_BY(mu);  // per rule
  TriggerRng rng AFS_GUARDED_BY(mu);
  std::atomic<std::uint64_t> triggered{0};
};

PlanState& State() {
  static PlanState* state = new PlanState();  // leaked: outlives all threads
  return *state;
}

bool SiteMatches(const std::string& pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return StartsWith(site, std::string_view(pattern).substr(
                                0, pattern.size() - 1));
  }
  return site == pattern;
}

// The plan-syntax spelling of an error code: the inverse of ParseErrorName,
// so rendered plans (ToString, replay log lines) parse back.
std::string_view ShortErrorName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kIoError: return "io";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kClosed: return "closed";
    case ErrorCode::kRemoteError: return "remote";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kNotFound: return "notfound";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kOverloaded: return "overloaded";
    default: return "io";  // ParsePlan never produces other codes
  }
}

// One rule in plan syntax; shared by FaultPlan::ToString and the replay
// line logged at every trigger.
std::string RuleToString(const FaultRule& rule) {
  std::string out = rule.site + "=" + std::string(FaultKindName(rule.kind));
  switch (rule.kind) {
    case FaultKind::kError:
      out += ":" + std::string(ShortErrorName(rule.error));
      break;
    case FaultKind::kDelay:
      out += ":" + std::to_string(rule.delay.count()) + "us";
      break;
    case FaultKind::kTruncate:
      out += ":" + std::to_string(rule.truncate_to);
      break;
    case FaultKind::kKill:
      break;
  }
  if (rule.nth != 0) {
    out += "@n" + std::to_string(rule.nth);
  } else if (rule.probability < 1.0) {
    out += "@p" + std::to_string(rule.probability);
  }
  return out;
}

void LogTrigger(const FaultRule& rule, std::string_view site,
                std::uint64_t seed, std::uint64_t hit) {
  AFS_LOG(kWarn, "afs.fault")
      << "injected " << FaultKindName(rule.kind) << " at " << site
      << " (hit " << hit << ", seed " << seed
      << "; replay: AFS_FAULT_PLAN=\"" << "seed=" << seed << ";"
      << RuleToString(rule) << "\")";
}

// Decides whether `rule` fires on this hit; mu held for counter/rng state.
bool ShouldFire(PlanState& state, std::size_t rule_index)
    AFS_REQUIRES(state.mu) {
  const FaultRule& rule = state.plan.rules[rule_index];
  const std::uint64_t hit = ++state.hits[rule_index];
  if (rule.nth != 0) return hit == rule.nth;
  if (rule.probability >= 1.0) return true;
  return state.rng.NextDouble() < rule.probability;
}

Result<Micros> ParseDuration(std::string_view text) {
  std::string_view digits = text;
  std::uint64_t scale = 1000;  // default ms
  if (EndsWith(text, "us")) {
    scale = 1;
    digits = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "ms")) {
    scale = 1000;
    digits = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "s")) {
    scale = 1000 * 1000;
    digits = text.substr(0, text.size() - 1);
  }
  std::uint64_t value = 0;
  if (!ParseU64(std::string(digits), value)) {
    return InvalidArgumentError("fault plan: bad duration '" +
                                std::string(text) + "'");
  }
  return Micros(static_cast<std::int64_t>(value * scale));
}

Result<ErrorCode> ParseErrorName(std::string_view name) {
  if (name.empty() || name == "io") return ErrorCode::kIoError;
  if (name == "timeout") return ErrorCode::kTimeout;
  if (name == "closed") return ErrorCode::kClosed;
  if (name == "remote") return ErrorCode::kRemoteError;
  if (name == "busy") return ErrorCode::kBusy;
  if (name == "notfound") return ErrorCode::kNotFound;
  if (name == "corrupt") return ErrorCode::kCorrupt;
  if (name == "overloaded") return ErrorCode::kOverloaded;
  if (name == "internal") return ErrorCode::kInternal;
  return InvalidArgumentError("fault plan: unknown error code '" +
                              std::string(name) + "'");
}

Result<FaultRule> ParseRule(std::string_view site, std::string_view action) {
  FaultRule rule;
  rule.site = std::string(site);

  auto [body, trigger] = SplitOnce(action, '@');
  auto [kind, arg] = SplitOnce(body, ':');

  if (kind == "error") {
    rule.kind = FaultKind::kError;
    AFS_ASSIGN_OR_RETURN(rule.error, ParseErrorName(arg));
  } else if (kind == "delay") {
    rule.kind = FaultKind::kDelay;
    AFS_ASSIGN_OR_RETURN(
        rule.delay, ParseDuration(arg.empty() ? std::string_view("1ms") : arg));
  } else if (kind == "truncate") {
    rule.kind = FaultKind::kTruncate;
    std::uint64_t keep = 0;
    if (!arg.empty() && !ParseU64(std::string(arg), keep)) {
      return InvalidArgumentError("fault plan: bad truncate count '" +
                                  std::string(arg) + "'");
    }
    rule.truncate_to = static_cast<std::size_t>(keep);
  } else if (kind == "kill") {
    rule.kind = FaultKind::kKill;
  } else {
    return InvalidArgumentError("fault plan: unknown kind '" +
                                std::string(kind) + "'");
  }

  if (!trigger.empty()) {
    if (trigger[0] == 'n') {
      std::uint64_t nth = 0;
      if (!ParseU64(std::string(trigger.substr(1)), nth) || nth == 0) {
        return InvalidArgumentError("fault plan: bad trigger '" +
                                    std::string(trigger) + "'");
      }
      rule.nth = nth;
    } else if (trigger[0] == 'p') {
      char* end = nullptr;
      const std::string text(trigger.substr(1));
      const double p = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        return InvalidArgumentError("fault plan: bad probability '" +
                                    std::string(trigger) + "'");
      }
      rule.probability = p;
    } else {
      return InvalidArgumentError("fault plan: bad trigger '" +
                                  std::string(trigger) + "'");
    }
  }
  return rule;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kError: return "error";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kKill: return "kill";
  }
  return "?";
}

std::string FaultPlan::ToString() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultRule& rule : rules) {
    out += ";" + RuleToString(rule);
  }
  return out;
}

Result<FaultPlan> ParsePlan(std::string_view spec) {
  FaultPlan plan;
  while (!spec.empty()) {
    auto [raw_entry, rest] = SplitOnce(spec, ';');
    spec = rest;
    const std::string_view entry = Trim(raw_entry);
    if (entry.empty()) continue;
    auto [key, value] = SplitOnce(entry, '=');
    if (value.empty()) {
      return InvalidArgumentError("fault plan: entry without '=': " +
                                  std::string(entry));
    }
    if (key == "seed") {
      if (!ParseU64(std::string(value), plan.seed)) {
        return InvalidArgumentError("fault plan: bad seed '" +
                                    std::string(value) + "'");
      }
      continue;
    }
    AFS_ASSIGN_OR_RETURN(FaultRule rule, ParseRule(key, value));
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

void InstallPlan(FaultPlan plan) {
  PlanState& state = State();
  MutexLock lock(state.mu);
  state.hits.assign(plan.rules.size(), 0);
  state.rng.Seed(plan.seed);
  state.triggered.store(0, std::memory_order_relaxed);
  const bool armed = !plan.rules.empty();
  state.plan = std::move(plan);
  internal::g_armed.store(armed, std::memory_order_release);
}

void ClearPlan() {
  PlanState& state = State();
  MutexLock lock(state.mu);
  internal::g_armed.store(false, std::memory_order_release);
  state.plan = FaultPlan();
  state.hits.clear();
}

bool InstallPlanFromEnv() {
  const char* spec = std::getenv("AFS_FAULT_PLAN");
  if (spec == nullptr || spec[0] == '\0') return false;
  Result<FaultPlan> plan = ParsePlan(spec);
  if (!plan.ok()) {
    AFS_LOG(kError, "afs.fault")
        << "ignoring AFS_FAULT_PLAN: " << plan.status().ToString();
    return false;
  }
  InstallPlan(std::move(*plan));
  return true;
}

std::uint64_t TriggeredCount() noexcept {
  return State().triggered.load(std::memory_order_relaxed);
}

namespace internal {

std::atomic<bool> g_armed{false};

Status EvaluateStatus(std::string_view site) {
  PlanState& state = State();
  Micros delay{0};
  Status injected;
  {
    MutexLock lock(state.mu);
    for (std::size_t i = 0; i < state.plan.rules.size(); ++i) {
      const FaultRule& rule = state.plan.rules[i];
      if (rule.kind == FaultKind::kTruncate) continue;
      if (!SiteMatches(rule.site, site)) continue;
      if (!ShouldFire(state, i)) continue;
      state.triggered.fetch_add(1, std::memory_order_relaxed);
      LogTrigger(rule, site, state.plan.seed, state.hits[i]);
      switch (rule.kind) {
        case FaultKind::kError:
          injected = Status::Error(
              rule.error, "fault injected at " + std::string(site) +
                              " (seed " + std::to_string(state.plan.seed) +
                              ")");
          break;
        case FaultKind::kDelay:
          delay += rule.delay;
          break;
        case FaultKind::kKill:
          // SIGKILL semantics: no unwinding, no flush — the strongest crash
          // the sentinel's peers must survive.  Raised outside the lock is
          // unnecessary; the process is gone either way.
          ::kill(::getpid(), SIGKILL);
          ::_exit(137);  // unreachable; belt and suspenders
        case FaultKind::kTruncate:
          break;
      }
      if (!injected.ok()) break;  // first firing error rule wins
    }
  }
  // Sleep outside the plan lock so delayed sites never serialize others.
  if (delay.count() > 0) SteadyClock::Instance().SleepFor(delay);
  return injected;
}

std::size_t EvaluateTruncate(std::string_view site, std::size_t length) {
  PlanState& state = State();
  std::size_t result = length;
  Micros delay{0};
  {
    MutexLock lock(state.mu);
    for (std::size_t i = 0; i < state.plan.rules.size(); ++i) {
      const FaultRule& rule = state.plan.rules[i];
      if (!SiteMatches(rule.site, site)) continue;
      if (rule.kind != FaultKind::kTruncate &&
          rule.kind != FaultKind::kDelay && rule.kind != FaultKind::kKill) {
        continue;
      }
      if (!ShouldFire(state, i)) continue;
      state.triggered.fetch_add(1, std::memory_order_relaxed);
      LogTrigger(rule, site, state.plan.seed, state.hits[i]);
      switch (rule.kind) {
        case FaultKind::kTruncate:
          result = std::min(result, rule.truncate_to);
          break;
        case FaultKind::kDelay:
          delay += rule.delay;
          break;
        case FaultKind::kKill:
          ::kill(::getpid(), SIGKILL);
          ::_exit(137);
        case FaultKind::kError:
          break;
      }
    }
  }
  if (delay.count() > 0) SteadyClock::Instance().SleepFor(delay);
  return result;
}

}  // namespace internal
}  // namespace afs::fault
