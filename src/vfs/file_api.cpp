#include "vfs/file_api.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vfs/paths.hpp"

namespace afs::vfs {

namespace stdfs = std::filesystem;

namespace {

// Per-op instrumentation bundle for the hot file operations.  Count and
// bytes go through a batched obs::OpPair — plain per-thread pending, no
// atomics on the common path — and latency is sampled at the pair's flush
// rhythm so the clock reads stay off it too.  That combination is what
// holds the read path inside the <5% budget bench/bench_obs_overhead.cpp
// enforces.
struct OpMetrics {
  obs::Counter& count;
  obs::Counter& errors;
  obs::Counter& bytes;
  obs::Histogram& latency;
  obs::OpPair pair;

  explicit OpMetrics(const char* op)
      : count(obs::Registry::Global().GetCounter(std::string("vfs.") + op +
                                                 ".count")),
        errors(obs::Registry::Global().GetCounter(std::string("vfs.") + op +
                                                  ".errors")),
        bytes(obs::Registry::Global().GetCounter(std::string("vfs.") + op +
                                                 ".bytes")),
        latency(obs::Registry::Global().GetHistogram(std::string("vfs.") + op +
                                                     ".latency_us")),
        pair(count, bytes) {}

  bool SampleLatency() noexcept { return pair.CountOp(); }
};

// API-boundary shed accounting (vfs.overload.shed in OBSERVABILITY.md):
// how many operations the application saw fail with kOverloaded.  The
// retry-after contract (docs/OVERLOAD.md) applies to exactly these.
void NoteIfShed(const Status& status) {
  if (status.code() != ErrorCode::kOverloaded) return;
  static obs::Counter& shed =
      obs::Registry::Global().GetCounter("vfs.overload.shed");
  shed.Add(1);
}

}  // namespace

FileApi::FileApi(std::string root_dir) : root_(std::move(root_dir)) {
  std::error_code ec;
  stdfs::create_directories(root_, ec);
}

Result<std::string> FileApi::HostPath(const std::string& path) const {
  AFS_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  if (normalized.empty()) {
    return InvalidArgumentError("empty path");
  }
  return root_ + "/" + normalized;
}

Result<HandleId> FileApi::CreateFile(const std::string& path,
                                     const OpenOptions& options) {
  static OpMetrics metrics("open");
  static obs::Gauge& open_handles =
      obs::Registry::Global().GetGauge("vfs.open_handles");
  obs::Span span("vfs.open");
  // Opens can fork a sentinel process; always worth timing.
  (void)metrics.count.Increment();
  obs::ScopedLatencyTimer timer(&metrics.latency);
  // Interceptors see the normalized VFS path, newest installation first —
  // exactly the stub-before-original ordering of IAT interception.
  AFS_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  std::vector<OpenInterceptor*> interceptors;
  {
    MutexLock lock(mu_);
    interceptors.assign(interceptors_.rbegin(), interceptors_.rend());
  }
  std::unique_ptr<FileHandle> handle;
  for (OpenInterceptor* interceptor : interceptors) {
    Result<std::unique_ptr<FileHandle>> opened =
        interceptor->TryOpen(*this, normalized, options);
    if (!opened.ok()) {
      metrics.errors.Add(1);
      return opened.status();
    }
    handle = std::move(*opened);
    if (handle != nullptr) break;
  }
  if (handle == nullptr) {
    AFS_ASSIGN_OR_RETURN(std::string host, HostPath(normalized));
    Result<std::unique_ptr<FileHandle>> opened =
        HostFileHandle::Open(host, options);
    if (!opened.ok()) {
      metrics.errors.Add(1);
      return opened.status();
    }
    handle = std::move(*opened);
  }
  MutexLock lock(mu_);
  const HandleId id = next_handle_++;
  handles_[id] = std::move(handle);
  open_handles.Add(1);
  return id;
}

Result<HandleId> FileApi::OpenFile(const std::string& path, OpenMode mode) {
  OpenOptions options;
  options.mode = mode;
  options.disposition = Disposition::kOpenExisting;
  return CreateFile(path, options);
}

Result<FileHandle*> FileApi::Lookup(HandleId handle) {
  MutexLock lock(mu_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return InvalidArgumentError("bad handle " + std::to_string(handle));
  }
  return it->second.get();
}

Result<std::size_t> FileApi::ReadFile(HandleId handle, MutableByteSpan out) {
  static OpMetrics metrics("read");
  obs::Span span("vfs.read");
  obs::ScopedLatencyTimer timer(metrics.SampleLatency() ? &metrics.latency
                                                        : nullptr);
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  Result<std::size_t> n = file->Read(out);
  if (n.ok()) {
    metrics.pair.AddBytes(*n);
  } else {
    NoteIfShed(n.status());
    metrics.errors.Add(1);
  }
  return n;
}

Result<std::size_t> FileApi::WriteFile(HandleId handle, ByteSpan data) {
  static OpMetrics metrics("write");
  obs::Span span("vfs.write");
  obs::ScopedLatencyTimer timer(metrics.SampleLatency() ? &metrics.latency
                                                        : nullptr);
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  Result<std::size_t> n = file->Write(data);
  if (n.ok()) {
    metrics.pair.AddBytes(*n);
  } else {
    NoteIfShed(n.status());
    metrics.errors.Add(1);
  }
  return n;
}

Result<std::uint64_t> FileApi::SetFilePointer(HandleId handle,
                                              std::int64_t offset,
                                              SeekOrigin origin) {
  static obs::Counter& seeks =
      obs::Registry::Global().GetCounter("vfs.seek.count");
  obs::Span span("vfs.seek");
  seeks.Add(1);
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  return file->Seek(offset, origin);
}

Result<std::uint64_t> FileApi::GetFileSize(HandleId handle) {
  static obs::Counter& sizes =
      obs::Registry::Global().GetCounter("vfs.get_size.count");
  obs::Span span("vfs.get_size");
  sizes.Add(1);
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  return file->Size();
}

Status FileApi::SetEndOfFile(HandleId handle) {
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  return file->SetEndOfFile();
}

Status FileApi::FlushFileBuffers(HandleId handle) {
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  return file->Flush();
}

Result<std::size_t> FileApi::ReadFileScatter(
    HandleId handle, std::span<MutableByteSpan> segments) {
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  Result<std::size_t> n = file->ReadScatter(segments);
  if (!n.ok()) NoteIfShed(n.status());
  return n;
}

Result<std::size_t> FileApi::WriteFileGather(HandleId handle,
                                             std::span<ByteSpan> segments) {
  static OpMetrics metrics("write_gather");
  obs::Span span("vfs.write_gather");
  obs::ScopedLatencyTimer timer(metrics.SampleLatency() ? &metrics.latency
                                                        : nullptr);
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  Result<std::size_t> n = file->WriteGather(segments);
  if (n.ok()) {
    metrics.pair.AddBytes(*n);
  } else {
    NoteIfShed(n.status());
    metrics.errors.Add(1);
  }
  return n;
}

Status FileApi::LockFileRange(HandleId handle, std::uint64_t offset,
                              std::uint64_t length) {
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  return file->LockRange(offset, length);
}

Status FileApi::UnlockFileRange(HandleId handle, std::uint64_t offset,
                                std::uint64_t length) {
  AFS_ASSIGN_OR_RETURN(FileHandle * file, Lookup(handle));
  return file->UnlockRange(offset, length);
}

Status FileApi::CloseHandle(HandleId handle) {
  static obs::Counter& closes =
      obs::Registry::Global().GetCounter("vfs.close.count");
  static obs::Gauge& open_handles =
      obs::Registry::Global().GetGauge("vfs.open_handles");
  obs::Span span("vfs.close");
  closes.Add(1);
  std::unique_ptr<FileHandle> file;
  {
    MutexLock lock(mu_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) {
      return InvalidArgumentError("bad handle " + std::to_string(handle));
    }
    file = std::move(it->second);
    handles_.erase(it);
  }
  open_handles.Add(-1);
  return file->Close();
}

Status FileApi::DeleteFile(const std::string& path) {
  AFS_ASSIGN_OR_RETURN(std::string host, HostPath(path));
  if (::unlink(host.c_str()) != 0) {
    if (errno == ENOENT) return NotFoundError("no file: " + path);
    return IoError("unlink " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status FileApi::CopyFile(const std::string& from, const std::string& to) {
  AFS_ASSIGN_OR_RETURN(std::string host_from, HostPath(from));
  AFS_ASSIGN_OR_RETURN(std::string host_to, HostPath(to));
  std::error_code ec;
  stdfs::copy_file(host_from, host_to, stdfs::copy_options::overwrite_existing,
                   ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) {
      return NotFoundError("no file: " + from);
    }
    return IoError("copy " + from + " -> " + to + ": " + ec.message());
  }
  return Status::Ok();
}

Status FileApi::MoveFile(const std::string& from, const std::string& to) {
  AFS_ASSIGN_OR_RETURN(std::string host_from, HostPath(from));
  AFS_ASSIGN_OR_RETURN(std::string host_to, HostPath(to));
  if (::rename(host_from.c_str(), host_to.c_str()) != 0) {
    if (errno == ENOENT) return NotFoundError("no file: " + from);
    return IoError("rename " + from + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Result<bool> FileApi::FileExists(const std::string& path) {
  AFS_ASSIGN_OR_RETURN(std::string host, HostPath(path));
  std::error_code ec;
  const bool exists = stdfs::exists(host, ec);
  if (ec) return IoError("stat " + path + ": " + ec.message());
  return exists;
}

Result<std::vector<std::string>> FileApi::ListDirectory(
    const std::string& path) {
  std::string host = root_;
  if (!path.empty()) {
    AFS_ASSIGN_OR_RETURN(host, HostPath(path));
  }
  std::error_code ec;
  std::vector<std::string> names;
  for (auto it = stdfs::directory_iterator(host, ec);
       !ec && it != stdfs::directory_iterator(); it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) return IoError("listdir " + path + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

Status FileApi::CreateDirectory(const std::string& path) {
  AFS_ASSIGN_OR_RETURN(std::string host, HostPath(path));
  std::error_code ec;
  stdfs::create_directories(host, ec);
  if (ec) return IoError("mkdir " + path + ": " + ec.message());
  return Status::Ok();
}

Result<Buffer> FileApi::ReadWholeFile(const std::string& path) {
  AFS_ASSIGN_OR_RETURN(HandleId handle, OpenFile(path, OpenMode::kRead));
  Buffer out;
  Buffer chunk(64 * 1024);
  while (true) {
    Result<std::size_t> n = ReadFile(handle, MutableByteSpan(chunk));
    if (!n.ok()) {
      (void)CloseHandle(handle);
      return n.status();
    }
    if (*n == 0) break;
    out.insert(out.end(), chunk.begin(), chunk.begin() + *n);
  }
  AFS_RETURN_IF_ERROR(CloseHandle(handle));
  return out;
}

Status FileApi::WriteWholeFile(const std::string& path, ByteSpan data) {
  OpenOptions options;
  options.mode = OpenMode::kWrite;
  options.disposition = Disposition::kCreateAlways;
  AFS_ASSIGN_OR_RETURN(HandleId handle, CreateFile(path, options));
  Result<std::size_t> written = WriteFile(handle, data);
  if (!written.ok()) {
    (void)CloseHandle(handle);
    return written.status();
  }
  return CloseHandle(handle);
}

void FileApi::InstallInterceptor(OpenInterceptor* interceptor) {
  MutexLock lock(mu_);
  interceptors_.push_back(interceptor);
}

void FileApi::RemoveInterceptor(OpenInterceptor* interceptor) {
  MutexLock lock(mu_);
  interceptors_.erase(
      std::remove(interceptors_.begin(), interceptors_.end(), interceptor),
      interceptors_.end());
}

std::size_t FileApi::interceptor_count() const {
  MutexLock lock(mu_);
  return interceptors_.size();
}

FileHandle* FileApi::RawHandle(HandleId handle) {
  MutexLock lock(mu_);
  auto it = handles_.find(handle);
  return it == handles_.end() ? nullptr : it->second.get();
}

std::size_t FileApi::open_handle_count() const {
  MutexLock lock(mu_);
  return handles_.size();
}

}  // namespace afs::vfs
