#include "vfs/paths.hpp"

#include <vector>

#include "util/strings.hpp"

namespace afs::vfs {

Result<std::string> NormalizePath(std::string_view path) {
  if (!path.empty() && path.front() == '/') {
    return InvalidArgumentError("absolute paths not allowed: " +
                                std::string(path));
  }
  std::vector<std::string> stack;
  for (auto& part : Split(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (stack.empty()) {
        return InvalidArgumentError("path escapes root: " + std::string(path));
      }
      stack.pop_back();
      continue;
    }
    stack.push_back(std::move(part));
  }
  return JoinStrings(stack, "/");
}

std::string JoinPath(std::string_view base, std::string_view rel) {
  if (base.empty()) return std::string(rel);
  if (rel.empty()) return std::string(base);
  std::string out(base);
  if (out.back() != '/') out += '/';
  out += rel;
  return out;
}

std::string_view PathExtension(std::string_view path) {
  const std::string_view base = PathBasename(path);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string_view::npos || dot == 0) return {};
  return base.substr(dot);
}

std::string_view PathBasename(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

std::string_view PathDirname(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : path.substr(0, slash);
}

bool IsActiveFilePath(std::string_view path) {
  return PathExtension(path) == kActiveFileExtension;
}

}  // namespace afs::vfs
