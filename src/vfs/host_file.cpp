#include "vfs/host_file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

namespace afs::vfs {
namespace {

Result<int> OpenFlags(const OpenOptions& options) {
  int flags = 0;
  switch (options.mode) {
    case OpenMode::kRead: flags = O_RDONLY; break;
    case OpenMode::kWrite: flags = O_WRONLY; break;
    case OpenMode::kReadWrite: flags = O_RDWR; break;
    default:
      return InvalidArgumentError("bad open mode");
  }
  switch (options.disposition) {
    case Disposition::kOpenExisting: break;
    case Disposition::kCreateNew: flags |= O_CREAT | O_EXCL; break;
    case Disposition::kCreateAlways: flags |= O_CREAT | O_TRUNC; break;
    case Disposition::kOpenAlways: flags |= O_CREAT; break;
    case Disposition::kTruncateExisting: flags |= O_TRUNC; break;
    default:
      return InvalidArgumentError("bad disposition");
  }
  if (options.append) flags |= O_APPEND;
  return flags;
}

Status Errno(const char* what) {
  const int err = errno;
  if (err == ENOENT) return NotFoundError(std::string(what) + ": no such file");
  if (err == EEXIST) {
    return AlreadyExistsError(std::string(what) + ": file exists");
  }
  if (err == EACCES || err == EPERM) {
    return PermissionDeniedError(std::string(what) + ": " +
                                 std::strerror(err));
  }
  return IoError(std::string(what) + ": " + std::strerror(err));
}

}  // namespace

Result<std::unique_ptr<FileHandle>> HostFileHandle::Open(
    const std::string& host_path, const OpenOptions& options) {
  AFS_ASSIGN_OR_RETURN(int flags, OpenFlags(options));
  const int fd = ::open(host_path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open");
  return std::unique_ptr<FileHandle>(new HostFileHandle(fd));
}

HostFileHandle::~HostFileHandle() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::size_t> HostFileHandle::Read(MutableByteSpan out) {
  if (fd_ < 0) return ClosedError("read on closed handle");
  while (true) {
    const ssize_t n = ::read(fd_, out.data(), out.size());
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return Errno("read");
  }
}

Result<std::size_t> HostFileHandle::Write(ByteSpan data) {
  if (fd_ < 0) return ClosedError("write on closed handle");
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += static_cast<std::size_t>(n);
  }
  return done;
}

Result<std::uint64_t> HostFileHandle::Seek(std::int64_t offset,
                                           SeekOrigin origin) {
  if (fd_ < 0) return ClosedError("seek on closed handle");
  int whence = SEEK_SET;
  if (origin == SeekOrigin::kCurrent) whence = SEEK_CUR;
  if (origin == SeekOrigin::kEnd) whence = SEEK_END;
  const off_t pos = ::lseek(fd_, offset, whence);
  if (pos < 0) {
    if (errno == EINVAL) return OutOfRangeError("seek before start of file");
    return Errno("lseek");
  }
  return static_cast<std::uint64_t>(pos);
}

Result<std::uint64_t> HostFileHandle::Size() {
  if (fd_ < 0) return ClosedError("size on closed handle");
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

Status HostFileHandle::SetEndOfFile() {
  if (fd_ < 0) return ClosedError("truncate on closed handle");
  const off_t pos = ::lseek(fd_, 0, SEEK_CUR);
  if (pos < 0) return Errno("lseek");
  if (::ftruncate(fd_, pos) != 0) return Errno("ftruncate");
  return Status::Ok();
}

Status HostFileHandle::Flush() {
  if (fd_ < 0) return ClosedError("flush on closed handle");
  if (::fsync(fd_) != 0) return Errno("fsync");
  return Status::Ok();
}

Result<std::size_t> HostFileHandle::ReadScatter(
    std::span<MutableByteSpan> segments) {
  if (fd_ < 0) return ClosedError("readv on closed handle");
  std::vector<iovec> iov;
  iov.reserve(segments.size());
  for (auto& seg : segments) {
    iov.push_back(iovec{seg.data(), seg.size()});
  }
  while (true) {
    const ssize_t n = ::readv(fd_, iov.data(), static_cast<int>(iov.size()));
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return Errno("readv");
  }
}

Status HostFileHandle::LockRange(std::uint64_t offset, std::uint64_t length) {
  struct flock fl {};
  fl.l_type = F_WRLCK;
  fl.l_whence = SEEK_SET;
  fl.l_start = static_cast<off_t>(offset);
  fl.l_len = static_cast<off_t>(length);
  while (::fcntl(fd_, F_SETLKW, &fl) != 0) {
    if (errno == EINTR) continue;
    return Errno("lock");
  }
  return Status::Ok();
}

Status HostFileHandle::UnlockRange(std::uint64_t offset,
                                   std::uint64_t length) {
  struct flock fl {};
  fl.l_type = F_UNLCK;
  fl.l_whence = SEEK_SET;
  fl.l_start = static_cast<off_t>(offset);
  fl.l_len = static_cast<off_t>(length);
  if (::fcntl(fd_, F_SETLK, &fl) != 0) return Errno("unlock");
  return Status::Ok();
}

Status HostFileHandle::Close() {
  if (fd_ < 0) return Status::Ok();
  const int r = ::close(fd_);
  fd_ = -1;
  if (r != 0) return Errno("close");
  return Status::Ok();
}

}  // namespace afs::vfs
