// FileApi: the Win32-flavoured file interface legacy applications program
// against, plus the interposition point.
//
// In the paper, Mediating Connectors rewrites a process' import address
// table so that kernel32 file calls land in active-file stubs (Appendix A).
// Here the same diversion is explicit: FileApi keeps a chain of
// OpenInterceptors; CreateFile offers the path to each interceptor in turn
// (the installed "stub"), and only falls through to the passive host-file
// routine when none claims it.  Application code — the "legacy" side — calls
// only CreateFile/ReadFile/WriteFile/… and cannot tell which driver served
// its handle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "vfs/file_handle.hpp"
#include "vfs/host_file.hpp"

namespace afs::vfs {

using HandleId = std::uint64_t;
inline constexpr HandleId kInvalidHandle = 0;

class FileApi;

// An installed stub.  TryOpen returns:
//   - a FileHandle  -> the interceptor claimed the open,
//   - nullptr       -> not claimed; FileApi falls through to the next
//                      interceptor / the passive routine,
//   - an error      -> claimed but failed (propagated to the caller).
class OpenInterceptor {
 public:
  virtual ~OpenInterceptor() = default;
  virtual Result<std::unique_ptr<FileHandle>> TryOpen(
      FileApi& api, const std::string& path, const OpenOptions& options) = 0;
};

class FileApi {
 public:
  // All VFS paths resolve under root_dir on the host filesystem.
  explicit FileApi(std::string root_dir);
  FileApi(const FileApi&) = delete;
  FileApi& operator=(const FileApi&) = delete;

  // ---- the legacy application surface --------------------------------
  Result<HandleId> CreateFile(const std::string& path,
                              const OpenOptions& options);
  Result<HandleId> OpenFile(const std::string& path, OpenMode mode);

  Result<std::size_t> ReadFile(HandleId handle, MutableByteSpan out);
  Result<std::size_t> WriteFile(HandleId handle, ByteSpan data);
  Result<std::uint64_t> SetFilePointer(HandleId handle, std::int64_t offset,
                                       SeekOrigin origin);
  Result<std::uint64_t> GetFileSize(HandleId handle);
  Status SetEndOfFile(HandleId handle);
  Status FlushFileBuffers(HandleId handle);
  Result<std::size_t> ReadFileScatter(HandleId handle,
                                      std::span<MutableByteSpan> segments);
  Result<std::size_t> WriteFileGather(HandleId handle,
                                      std::span<ByteSpan> segments);
  Status LockFileRange(HandleId handle, std::uint64_t offset,
                       std::uint64_t length);
  Status UnlockFileRange(HandleId handle, std::uint64_t offset,
                         std::uint64_t length);
  Status CloseHandle(HandleId handle);

  // Directory operations.  Because an active file is packaged as a single
  // container (bundle), host-level copy/move/delete already carry both its
  // passive components, matching paper Section 2.1.
  Status DeleteFile(const std::string& path);
  Status CopyFile(const std::string& from, const std::string& to);
  Status MoveFile(const std::string& from, const std::string& to);
  Result<bool> FileExists(const std::string& path);
  Result<std::vector<std::string>> ListDirectory(const std::string& path);
  Status CreateDirectory(const std::string& path);

  // Whole-file conveniences built on the handle API (they go through the
  // same interception, so they work on active files too).
  Result<Buffer> ReadWholeFile(const std::string& path);
  Status WriteWholeFile(const std::string& path, ByteSpan data);

  // ---- interposition (the IAT-rewrite analog) -------------------------
  // Non-owning; interceptors are consulted newest-first and must outlive
  // their registration.
  void InstallInterceptor(OpenInterceptor* interceptor);
  void RemoveInterceptor(OpenInterceptor* interceptor);
  std::size_t interceptor_count() const;

  // Resolves a VFS path to the host path (normalizing and sandboxing).
  Result<std::string> HostPath(const std::string& path) const;

  const std::string& root_dir() const noexcept { return root_; }

  // Number of currently open handles (leak checks in tests).
  std::size_t open_handle_count() const;

  // Escape hatch for layered features (e.g. active-file custom controls):
  // the driver object behind a handle, or null.  The pointer is owned by
  // the FileApi and dies at CloseHandle; do not retain it.
  FileHandle* RawHandle(HandleId handle);

 private:
  Result<FileHandle*> Lookup(HandleId handle);

  const std::string root_;
  mutable Mutex mu_;
  std::map<HandleId, std::unique_ptr<FileHandle>> handles_
      AFS_GUARDED_BY(mu_);
  HandleId next_handle_ AFS_GUARDED_BY(mu_) = 1;
  std::vector<OpenInterceptor*> interceptors_ AFS_GUARDED_BY(mu_);
};

}  // namespace afs::vfs
