// Passive file driver: a FileHandle over a real host file descriptor.
// This is the "standard Win32 routine" the active-file stub falls through
// to when a path is not an active file.
#pragma once

#include <memory>
#include <string>

#include "vfs/file_handle.hpp"

namespace afs::vfs {

enum class OpenMode : std::uint8_t { kRead = 1, kWrite = 2, kReadWrite = 3 };

// Win32 CreateFile dispositions, minus the exotic ones.
enum class Disposition : std::uint8_t {
  kOpenExisting = 1,   // fail if absent
  kCreateNew = 2,      // fail if present
  kCreateAlways = 3,   // create or truncate
  kOpenAlways = 4,     // create if absent, keep contents
  kTruncateExisting = 5,
};

struct OpenOptions {
  OpenMode mode = OpenMode::kReadWrite;
  Disposition disposition = Disposition::kOpenAlways;
  bool append = false;  // writes always go to the end
};

class HostFileHandle final : public FileHandle {
 public:
  // host_path is an absolute or cwd-relative path on the real filesystem.
  static Result<std::unique_ptr<FileHandle>> Open(const std::string& host_path,
                                                  const OpenOptions& options);

  ~HostFileHandle() override;

  Result<std::size_t> Read(MutableByteSpan out) override;
  Result<std::size_t> Write(ByteSpan data) override;
  Result<std::uint64_t> Seek(std::int64_t offset, SeekOrigin origin) override;
  Result<std::uint64_t> Size() override;
  Status SetEndOfFile() override;
  Status Flush() override;
  Result<std::size_t> ReadScatter(std::span<MutableByteSpan> segments) override;
  Status LockRange(std::uint64_t offset, std::uint64_t length) override;
  Status UnlockRange(std::uint64_t offset, std::uint64_t length) override;
  Status Close() override;

 private:
  explicit HostFileHandle(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace afs::vfs
