// Path handling for the virtual file system.  All VFS paths are relative,
// '/'-separated, and normalized inside a sandbox root; ".." may not escape
// it.  Active files are recognized by extension (paper Appendix A.2: "the
// stub … checks to see if the file name corresponds to an active file or
// not (by checking the extension)").
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"

namespace afs::vfs {

// Extension that marks a file as active.
inline constexpr std::string_view kActiveFileExtension = ".af";

// Collapses "." and ".." components and duplicate separators.  Fails if the
// path would escape the root or is absolute.
Result<std::string> NormalizePath(std::string_view path);

// Joins with a single separator; rhs must be relative.
std::string JoinPath(std::string_view base, std::string_view rel);

// "dir/file.af" -> ".af"; "" when there is no dot in the last component.
std::string_view PathExtension(std::string_view path);

// Last path component.
std::string_view PathBasename(std::string_view path);

// Everything before the last component ("" for a bare name).
std::string_view PathDirname(std::string_view path);

bool IsActiveFilePath(std::string_view path);

}  // namespace afs::vfs
