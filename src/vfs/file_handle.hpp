// Per-open-file driver interface.  A HandleId returned by FileApi maps to a
// FileHandle implementation: a passive host file, or an active-file stub
// whose operations travel to a sentinel.  This is the seam the paper
// creates by intercepting Win32 calls — from above, every handle looks the
// same ("an active file is virtually indistinguishable from a regular
// file"); below, anything can be wired in.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace afs::vfs {

enum class SeekOrigin : std::uint8_t { kBegin = 0, kCurrent = 1, kEnd = 2 };

class FileHandle {
 public:
  virtual ~FileHandle() = default;

  // Reads at the current file pointer, advancing it; 0 bytes = EOF.
  virtual Result<std::size_t> Read(MutableByteSpan out) = 0;

  // Writes at the current file pointer, advancing it.
  virtual Result<std::size_t> Write(ByteSpan data) = 0;

  // Moves the file pointer; returns the new absolute position.
  virtual Result<std::uint64_t> Seek(std::int64_t offset,
                                     SeekOrigin origin) = 0;

  // Logical size in bytes.
  virtual Result<std::uint64_t> Size() = 0;

  // Truncates/extends the file to end at the current pointer.
  virtual Status SetEndOfFile() { return UnsupportedError("SetEndOfFile"); }

  virtual Status Flush() { return Status::Ok(); }

  // Vectored read (Win32 ReadFileScatter).  The plain process strategy
  // cannot forward this (paper Section 4.1) and keeps this default.
  virtual Result<std::size_t> ReadScatter(
      std::span<MutableByteSpan> segments) {
    (void)segments;
    return UnsupportedError("ReadFileScatter not supported on this handle");
  }

  // Vectored write (Win32 WriteFileGather).  Defaults to sequential
  // writes at the file pointer; command-strategy handles override it with
  // a single-crossing gather (data-plane rev 2).
  virtual Result<std::size_t> WriteGather(std::span<ByteSpan> segments) {
    std::size_t total = 0;
    for (ByteSpan segment : segments) {
      AFS_ASSIGN_OR_RETURN(std::size_t n, Write(segment));
      total += n;
      if (n < segment.size()) break;
    }
    return total;
  }

  // Advisory whole-handle byte-range locks.
  virtual Status LockRange(std::uint64_t offset, std::uint64_t length) {
    (void)offset;
    (void)length;
    return UnsupportedError("LockRange");
  }
  virtual Status UnlockRange(std::uint64_t offset, std::uint64_t length) {
    (void)offset;
    (void)length;
    return UnsupportedError("UnlockRange");
  }

  // Releases underlying resources.  Called exactly once by FileApi.
  virtual Status Close() = 0;
};

}  // namespace afs::vfs
