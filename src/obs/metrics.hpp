// afs::obs — always-on observability primitives.
//
// The paper's evaluation (Section 6) is a cost accounting exercise: each
// sentinel strategy buys programming convenience with per-operation
// overhead, and the whole argument rests on being able to measure where a
// ReadFile spends its time.  This layer provides that measurement without
// perturbing it: monotonic counters, gauges, and fixed-bucket log-scale
// latency histograms whose hot path is nothing but relaxed atomics.
//
// Registration (name -> instrument lookup) takes a mutex once; call sites
// cache the returned reference in a function-local static so steady-state
// recording never locks:
//
//   static obs::Counter& reads =
//       obs::Registry::Global().GetCounter("vfs.read.count");
//   reads.Add(1);     // owner-thread cell: relaxed load + relaxed store
//
// Counters are sharded per thread: each recording thread owns a padded
// cell that only it writes, so the hot path is a plain (relaxed)
// load+store on the thread's own cache line — no locked read-modify-write.
// That distinction is worth ~7ns per site on current hardware, which is
// the entire <5% budget bench_obs_overhead enforces on the direct-strategy
// read path.  Value() sums the cells under a mutex; reading is the cold
// path by design.
//
// Snapshots are plain structs, mergeable across instruments and across
// processes (the same bucket layout everywhere), which is what lets
// `afsctl stats`, `GET /stats`, and the sentineld SIGUSR1 dump all render
// the identical view.  A process-wide kill switch (SetEnabled) exists so
// the overhead benchmark can measure the instrumented-vs-not delta; a
// disabled site costs one relaxed load and a predictable branch, the same
// budget as a disarmed fault point.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace afs::obs {

// Process-wide recording switch.  Default on; the overhead benchmark and
// a handful of tests flip it.  Relaxed is deliberate: losing a count at
// the flip boundary is fine, ordering recording against other memory is
// not this layer's job.
bool Enabled() noexcept;
void SetEnabled(bool enabled) noexcept;

class Counter;

namespace internal {

// Counters sharing a thread's table is the point: ids are assigned in
// registration order, so the hot pair on an operation path (count at id
// k, bytes at id k+1) usually lands on one cache line of the recording
// thread's own table.  No padding between cells — false sharing cannot
// happen between threads that each write only their own table, and
// snapshot readers only disturb a line while a dump is being rendered.
inline constexpr std::uint32_t kMaxFastCounters = 256;

// Op pairs past this many fall back to their backing counters' atomic
// cells — correct, just not batch-cheap.
inline constexpr std::uint32_t kMaxOpPairs = 32;

// Plain (non-atomic) per-thread pending state for one OpPair: only the
// owning thread ever touches it, and it reaches other threads only after
// a flush into the pair's backing counters.
struct OpPending {
  std::uint64_t ops = 0;          // monotonic per-thread op count
  std::uint64_t flushed_ops = 0;  // ops already flushed into the counter
  std::uint64_t bytes = 0;        // bytes accumulated since the last flush
};

extern thread_local constinit OpPending t_op_pending[kMaxOpPairs];

// This thread's cell table, indexed by counter id.  Null until the first
// slow-path record registers the table with the cell directory; null
// again after thread teardown.  The constinit is load-bearing: it tells
// every including TU the variable has no dynamic initializer, so access
// compiles to a TLS-relative load instead of a call through the
// thread-local init wrapper (_ZTH…) — the wrapper call costs more than
// the entire cell update.
extern thread_local constinit std::atomic<std::uint64_t>* t_cell_base;

// Registers this thread's cell table if it does not exist yet.  Returns
// false during thread teardown, when per-thread state is gone for good.
bool EnsureThreadRegistered();

class CellDirectory;
struct ThreadCellTable;

}  // namespace internal

// Monotonic event counter, sharded per recording thread.  Each thread
// writes its own cell with a relaxed load + relaxed store — never a
// locked RMW, which costs several ns even uncontended and is the entire
// bench_obs_overhead budget.  Reads sum the cells under a mutex.
class Counter {
 public:
  Counter();
  ~Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n) noexcept {
    if (!Enabled()) return;
    if (std::atomic<std::uint64_t>* cell = FastCell()) {
      cell->store(cell->load(std::memory_order_relaxed) + n,
                  std::memory_order_relaxed);
    } else {
      SlowAdd(n);
    }
  }

  // Adds one and returns this thread's pre-increment count — the sampling
  // hook used by the vfs layer to time every Nth operation instead of
  // every one.  The rhythm is per-thread, which is what a sampler wants:
  // each thread times its own Nth operation instead of racing for slots.
  std::uint64_t Increment() noexcept {
    if (!Enabled()) return 0;
    if (std::atomic<std::uint64_t>* cell = FastCell()) {
      const std::uint64_t prev = cell->load(std::memory_order_relaxed);
      cell->store(prev + 1, std::memory_order_relaxed);
      return prev;
    }
    return SlowIncrement();
  }

  // Sum of every live thread's cell plus counts flushed by exited threads
  // and overflow recordings.  Takes the directory mutex: snapshot-path
  // cost, deliberately kept off the recording path.
  std::uint64_t Value() const noexcept;

  void ResetForTest() noexcept;

 private:
  friend class internal::CellDirectory;
  friend struct internal::ThreadCellTable;

  std::atomic<std::uint64_t>* FastCell() const noexcept {
    return id_ < internal::kMaxFastCounters &&
                   internal::t_cell_base != nullptr
               ? internal::t_cell_base + id_
               : nullptr;
  }

  // Registers this thread's cell table on first record, or falls back to
  // the shared overflow cell (a locked RMW) for ids past the fast table
  // and for records that arrive during thread teardown.
  void SlowAdd(std::uint64_t n) noexcept;
  std::uint64_t SlowIncrement() noexcept;

  const std::uint32_t id_;
  // Counts flushed from exited threads' tables.
  std::atomic<std::uint64_t> retired_{0};
  // Correct-but-slow shared cell for records with no thread table.
  std::atomic<std::uint64_t> overflow_{0};
};

// Batched (count, bytes) counter pair for proven-hot operation paths —
// the percpu-counter design: each thread accumulates into plain TLS
// pending slots (no atomics at all on the common path) and flushes into
// the backing Counters every kFlushPeriod-th operation, at thread exit,
// and for the calling thread whenever a snapshot is taken.  The price is
// bounded staleness: a reader may lag a live recording thread by up to
// kFlushPeriod-1 operations.  That is the right trade for the vfs read
// path, where bench_obs_overhead holds the instrumented-vs-not delta of
// a ~40ns operation under 5%.
class OpPair {
 public:
  // Sampling/flush rhythm, per recording thread.
  static constexpr std::uint64_t kFlushPeriod = 64;
  static constexpr std::uint64_t kSamplePeriod = 256;

  // The backing counters must outlive the pair (registry-owned counters
  // qualify; they live for the process).
  OpPair(Counter& count, Counter& bytes);
  ~OpPair();
  OpPair(const OpPair&) = delete;
  OpPair& operator=(const OpPair&) = delete;

  // Counts one operation.  Returns true when this operation should be
  // latency-sampled (every kSamplePeriod-th on this thread), which is
  // also a flush boundary — so the sampled op pays the flush too and the
  // unsampled path stays branch-predictable.
  bool CountOp() noexcept {
    if (!Enabled()) return false;
    if (id_ >= internal::kMaxOpPairs ||
        internal::t_cell_base == nullptr) {
      return SlowCountOp();
    }
    internal::OpPending& pending = internal::t_op_pending[id_];
    const std::uint64_t ops = pending.ops + 1;
    pending.ops = ops;
    if ((ops & (kFlushPeriod - 1)) == 0) {
      FlushThisThread();
      return (ops & (kSamplePeriod - 1)) == 0;
    }
    return false;
  }

  // Accumulates bytes for an operation already counted by CountOp on this
  // thread (the call sites count first, then record the transfer size).
  void AddBytes(std::uint64_t n) noexcept {
    if (!Enabled()) return;
    if (id_ >= internal::kMaxOpPairs ||
        internal::t_cell_base == nullptr) {
      bytes_.Add(n);
      return;
    }
    internal::t_op_pending[id_].bytes += n;
  }

  // Publishes this thread's pending counts into the backing counters.
  void FlushThisThread() noexcept;

 private:
  friend class internal::CellDirectory;
  friend struct internal::ThreadCellTable;

  bool SlowCountOp() noexcept;

  Counter& count_;
  Counter& bytes_;
  const std::uint32_t id_;
};

// Instantaneous level (open handles, live sentinels).
class Gauge {
 public:
  void Set(std::int64_t v) noexcept {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) noexcept {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void ResetForTest() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket log2 histogram.  Bucket 0 holds the value 0; bucket i>=1
// holds [2^(i-1), 2^i).  kBuckets=40 covers latencies up to ~2^39 µs
// (about six days) before clamping into the last bucket — far beyond any
// timeout in the system.  The fixed layout is what makes snapshots
// mergeable across threads and processes: merging is bucket-wise addition.
struct HistogramSnapshot {
  static constexpr int kBuckets = 40;

  std::uint64_t buckets[kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;

  // Index of the bucket a value lands in.
  static int BucketIndex(std::uint64_t value) noexcept;
  // Inclusive value range covered by a bucket.
  static std::uint64_t BucketLowerBound(int index) noexcept;
  static std::uint64_t BucketUpperBound(int index) noexcept;

  // Bucket-wise merge; associative and commutative by construction.
  void Merge(const HistogramSnapshot& other) noexcept;

  // Upper bound of the bucket containing the rank-ceil(q*count) value
  // (q in [0,1]).  The estimate is exact up to bucket resolution: it lies
  // in the same power-of-two bucket as the true quantile.
  std::uint64_t Quantile(double q) const noexcept;
};

class Histogram {
 public:
  void Record(std::uint64_t value) noexcept {
    if (!Enabled()) return;
    const int idx = HistogramSnapshot::BucketIndex(value);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    AtomicMin(min_, value);
    AtomicMax(max_, value);
  }

  HistogramSnapshot Snapshot() const noexcept;
  void ResetForTest() noexcept;

 private:
  static void AtomicMin(std::atomic<std::uint64_t>& slot,
                        std::uint64_t value) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<std::uint64_t>& slot,
                        std::uint64_t value) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  // No separate count cell: a snapshot's count is the bucket sum, which
  // keeps count == sum(buckets) an invariant even while recorders race.
  std::atomic<std::uint64_t> buckets_[HistogramSnapshot::kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

// Point-in-time view of every registered instrument, ordered by name so
// two renderings of the same state are byte-identical.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Name-wise merge (counters/sums add, gauges take the other side's
  // value when present, histograms merge bucket-wise).
  void Merge(const Snapshot& other);
};

// Process-wide instrument registry.  Get* registers on first use and
// returns a reference that stays valid for the process lifetime, so call
// sites pay the registration mutex once.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  Snapshot TakeSnapshot() const;

  // Zeroes every registered instrument (references stay valid).  Tests
  // only; racing recorders may land counts on either side of the reset.
  void ResetForTest();

  // pthread_atfork hooks (metrics.cpp): hold the registry mutex across
  // fork so a sentinel child registering its first instrument never
  // inherits it locked from an unrelated parent thread.
  void LockForFork() const AFS_ACQUIRE(mu_);
  void UnlockForFork() const AFS_RELEASE(mu_);

 private:
  Registry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      AFS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      AFS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      AFS_GUARDED_BY(mu_);
};

// Records elapsed microseconds into a histogram at scope exit.  Pass
// nullptr to skip (the sampling decision happens at construction, so the
// steady-clock reads are only paid for sampled operations).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist) noexcept;
  ~ScopedLatencyTimer();

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  std::int64_t start_us_ = 0;
};

}  // namespace afs::obs
