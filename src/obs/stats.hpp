// Rendering of the observability state — the single formatter behind all
// three stats surfaces (`afsctl stats`, `GET /stats` on net::HttpServer,
// and the sentineld SIGUSR1 dump), which is what makes "the CLI and the
// HTTP endpoint return the same snapshot" a structural property instead
// of a test assertion.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace afs::obs {

// Human-oriented rendering: sectioned tables plus an indented span tree
// per trace.
std::string RenderText(const Snapshot& snapshot,
                       const std::vector<SpanRecord>& spans);

// Machine-oriented rendering: one JSON object with "counters", "gauges",
// "histograms" (count/sum/min/max/p50/p90/p99 per entry), and a flat
// "spans" array.  Keys are sorted (std::map iteration) so equal state
// renders byte-identical.
std::string RenderJson(const Snapshot& snapshot,
                       const std::vector<SpanRecord>& spans);

// Convenience: render the global registry + trace log.
std::string StatsText();
std::string StatsJson();

// Installs a signal-triggered stats dump (sentineld wires SIGUSR1): the
// handler only writes a byte to a self-pipe; a background thread renders
// StatsText() to stderr, keeping the handler async-signal-safe.  Call at
// most once per process.
void InstallStatsSignalDump(int signo);

}  // namespace afs::obs
