#include "obs/metrics.hpp"

#include <pthread.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

namespace afs::obs {

namespace {
std::atomic<bool> g_enabled{true};

std::int64_t NowMicros() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

bool Enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---- per-thread counter cells ---------------------------------------------

namespace internal {

thread_local constinit std::atomic<std::uint64_t>* t_cell_base = nullptr;
thread_local constinit OpPending t_op_pending[kMaxOpPairs] = {};

namespace {
// Set once this thread's cell table has been destroyed; late recorders
// (TLS destructors that run after ours) take the overflow cell instead of
// resurrecting the table.
thread_local bool t_cells_dead = false;
}  // namespace

// Tracks every live thread's cell table and maps counter ids back to
// their owners.  Leaked singleton for the same reason as
// Registry::Global(): counters are recorded into during static teardown.
class CellDirectory {
 public:
  static CellDirectory& Get() {
    static CellDirectory* instance = new CellDirectory();
    return *instance;
  }

  Mutex mu;
  std::vector<ThreadCellTable*> tables AFS_GUARDED_BY(mu);
  // Indexed by counter id; nulled when a counter is destroyed.  Ids are
  // never reused, so a stale table entry can only be skipped, never
  // credited to the wrong counter.
  std::vector<Counter*> owner_by_id AFS_GUARDED_BY(mu);
  // Indexed by op-pair id; same id discipline as counters.
  std::vector<OpPair*> op_pairs AFS_GUARDED_BY(mu);
};

// One recording thread's cells.  Lives in that thread's TLS; registered
// with the directory so snapshot readers can sum it, flushed into each
// counter's `retired_` at thread exit (TLS storage dies with the thread).
// An untouched cell is zero, so readers can sum every table blindly —
// there is no per-cell registration state to check on the hot path.
struct ThreadCellTable {
  std::atomic<std::uint64_t> cells[kMaxFastCounters] = {};

  ThreadCellTable() {
    CellDirectory& dir = CellDirectory::Get();
    MutexLock lock(dir.mu);
    dir.tables.push_back(this);
  }

  ~ThreadCellTable() {
    CellDirectory& dir = CellDirectory::Get();
    MutexLock lock(dir.mu);
    // Drain this thread's op-pair pending into the cells while the table
    // is still wired up, then flush the cells themselves.
    for (OpPair* pair : dir.op_pairs) {
      if (pair != nullptr) pair->FlushThisThread();
    }
    t_cell_base = nullptr;
    t_cells_dead = true;
    const auto known = static_cast<std::uint32_t>(
        std::min<std::size_t>(dir.owner_by_id.size(), kMaxFastCounters));
    for (std::uint32_t id = 0; id < known; ++id) {
      const std::uint64_t v = cells[id].load(std::memory_order_relaxed);
      if (v != 0 && dir.owner_by_id[id] != nullptr) {
        dir.owner_by_id[id]->retired_.fetch_add(v, std::memory_order_relaxed);
      }
    }
    std::erase(dir.tables, this);
  }
};

namespace {

// Registers this thread's table on first use.  Returns null during
// thread teardown (the table is already flushed and gone).
std::atomic<std::uint64_t>* ThisThreadCells() {
  if (t_cells_dead) return nullptr;
  static thread_local ThreadCellTable t_table;
  t_cell_base = t_table.cells;
  return t_cell_base;
}

std::uint32_t RegisterCounter(Counter* counter) {
  CellDirectory& dir = CellDirectory::Get();
  MutexLock lock(dir.mu);
  dir.owner_by_id.push_back(counter);
  return static_cast<std::uint32_t>(dir.owner_by_id.size() - 1);
}

std::uint32_t RegisterOpPair(OpPair* pair) {
  CellDirectory& dir = CellDirectory::Get();
  MutexLock lock(dir.mu);
  dir.op_pairs.push_back(pair);
  return static_cast<std::uint32_t>(dir.op_pairs.size() - 1);
}

}  // namespace

bool EnsureThreadRegistered() { return ThisThreadCells() != nullptr; }

// Publishes the calling thread's op-pair pending into the backing
// counters, so a snapshot taken on this thread sees its own operations
// exactly (other live threads may still lag by up to one flush period).
void DrainThisThreadPairs() {
  if (t_cell_base == nullptr) return;  // pending is only written registered
  CellDirectory& dir = CellDirectory::Get();
  MutexLock lock(dir.mu);
  for (OpPair* pair : dir.op_pairs) {
    if (pair != nullptr) pair->FlushThisThread();
  }
}

}  // namespace internal

Counter::Counter() : id_(internal::RegisterCounter(this)) {}

Counter::~Counter() {
  internal::CellDirectory& dir = internal::CellDirectory::Get();
  MutexLock lock(dir.mu);
  // Live threads keep their (now orphaned) cells until exit; the null
  // owner entry tells the exit flush to skip them.
  dir.owner_by_id[id_] = nullptr;
}

void Counter::SlowAdd(std::uint64_t n) noexcept {
  std::atomic<std::uint64_t>* base =
      id_ < internal::kMaxFastCounters ? internal::ThisThreadCells() : nullptr;
  if (base != nullptr) {
    std::atomic<std::uint64_t>& cell = base[id_];
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  } else {
    overflow_.fetch_add(n, std::memory_order_relaxed);
  }
}

std::uint64_t Counter::SlowIncrement() noexcept {
  std::atomic<std::uint64_t>* base =
      id_ < internal::kMaxFastCounters ? internal::ThisThreadCells() : nullptr;
  if (base != nullptr) {
    std::atomic<std::uint64_t>& cell = base[id_];
    const std::uint64_t prev = cell.load(std::memory_order_relaxed);
    cell.store(prev + 1, std::memory_order_relaxed);
    return prev;
  }
  return overflow_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Counter::Value() const noexcept {
  internal::CellDirectory& dir = internal::CellDirectory::Get();
  MutexLock lock(dir.mu);
  std::uint64_t total = retired_.load(std::memory_order_relaxed) +
                        overflow_.load(std::memory_order_relaxed);
  if (id_ < internal::kMaxFastCounters) {
    for (const internal::ThreadCellTable* table : dir.tables) {
      total += table->cells[id_].load(std::memory_order_relaxed);
    }
  }
  return total;
}

OpPair::OpPair(Counter& count, Counter& bytes)
    : count_(count), bytes_(bytes), id_(internal::RegisterOpPair(this)) {}

OpPair::~OpPair() {
  internal::CellDirectory& dir = internal::CellDirectory::Get();
  MutexLock lock(dir.mu);
  // Live threads' pending slots for this id go stale; drain loops skip
  // the null entry, and ids are never reused.
  dir.op_pairs[id_] = nullptr;
}

void OpPair::FlushThisThread() noexcept {
  if (id_ >= internal::kMaxOpPairs || internal::t_cell_base == nullptr) {
    return;
  }
  internal::OpPending& pending = internal::t_op_pending[id_];
  if (pending.ops != pending.flushed_ops) {
    count_.Add(pending.ops - pending.flushed_ops);
    pending.flushed_ops = pending.ops;
  }
  if (pending.bytes != 0) {
    bytes_.Add(pending.bytes);
    pending.bytes = 0;
  }
}

bool OpPair::SlowCountOp() noexcept {
  if (id_ < internal::kMaxOpPairs && internal::EnsureThreadRegistered()) {
    internal::OpPending& pending = internal::t_op_pending[id_];
    const std::uint64_t ops = ++pending.ops;
    if ((ops & (kFlushPeriod - 1)) == 0) {
      FlushThisThread();
      return (ops & (kSamplePeriod - 1)) == 0;
    }
    return false;
  }
  // No per-thread state (id overflow or thread teardown): fall back to
  // the backing counter's own sampling hook.
  return (count_.Increment() & (kSamplePeriod - 1)) == 0;
}

void Counter::ResetForTest() noexcept {
  internal::CellDirectory& dir = internal::CellDirectory::Get();
  MutexLock lock(dir.mu);
  retired_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  if (id_ < internal::kMaxFastCounters) {
    for (internal::ThreadCellTable* table : dir.tables) {
      table->cells[id_].store(0, std::memory_order_relaxed);
    }
  }
}

int HistogramSnapshot::BucketIndex(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const int index = 64 - std::countl_zero(value);
  return index < kBuckets ? index : kBuckets - 1;
}

std::uint64_t HistogramSnapshot::BucketLowerBound(int index) noexcept {
  if (index <= 0) return 0;
  return std::uint64_t{1} << (index - 1);
}

std::uint64_t HistogramSnapshot::BucketUpperBound(int index) noexcept {
  if (index <= 0) return 0;
  if (index >= kBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << index) - 1;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  if (other.count > 0) {
    min = (count == 0 || other.min < min) ? other.min : min;
    max = (count == 0 || other.max > max) ? other.max : max;
  }
  count += other.count;
  sum += other.sum;
}

std::uint64_t HistogramSnapshot::Quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile, 1-based, nearest-rank convention.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank < q * static_cast<double>(count)) ++rank;  // ceil
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const std::uint64_t upper = BucketUpperBound(i);
      return upper > max && max > 0 ? max : upper;
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const noexcept {
  HistogramSnapshot snap;
  for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count > 0 ? min_.load(std::memory_order_relaxed) : 0;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::ResetForTest() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Snapshot::Merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

Registry& Registry::Global() {
  // Leaked singleton: instrument references handed to call sites must
  // outlive every static destructor (sentinel threads record during
  // teardown).
  static Registry* instance = new Registry();
  return *instance;
}

void Registry::LockForFork() const { mu_.Lock(); }
void Registry::UnlockForFork() const { mu_.Unlock(); }

namespace {

// fork() can land while another thread holds the registry mutex, the cell
// directory mutex, or the lock-order checker's graph mutex; the sentinel
// child then inherits a mutex nobody will ever unlock and deadlocks at
// its first instrument registration, thread-cell birth, or nested lock.
// The classic pthread_atfork discipline closes the window: prepare takes
// all three in the forking thread (outermost first, matching the
// registry -> directory order GetCounter already establishes; the graph
// mutex last because locking the others consults it), and both sides of
// the fork release their copy.
void ObsForkPrepare() {
  Registry::Global().LockForFork();
  internal::CellDirectory::Get().mu.Lock();
  debug::internal::LockGraphForFork();
}

void ObsForkRelease() {
  debug::internal::UnlockGraphForFork();
  internal::CellDirectory::Get().mu.Unlock();
  Registry::Global().UnlockForFork();
}

const int kForkHandlersInstalled =
    ::pthread_atfork(ObsForkPrepare, ObsForkRelease, ObsForkRelease);

}  // namespace

Counter& Registry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::TakeSnapshot() const {
  // Publish this thread's batched op counts first (sequentially — the
  // directory mutex is released again before the registry mutex is
  // taken), so a single-threaded record-then-dump sequence is exact.
  internal::DrainThisThreadPairs();
  Snapshot snap;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

void Registry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, hist] : histograms_) hist->ResetForTest();
}

// The Enabled() check here is load-bearing: a disabled Counter::Increment
// returns 0, which reads as "sampled" to every (n & mask) == 0 site — so
// without it, DISABLING metrics would add two clock reads to every op.
ScopedLatencyTimer::ScopedLatencyTimer(Histogram* hist) noexcept
    : hist_(Enabled() ? hist : nullptr) {
  if (hist_ != nullptr) start_us_ = NowMicros();
}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (hist_ == nullptr) return;
  const std::int64_t elapsed = NowMicros() - start_us_;
  hist_->Record(elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0);
}

}  // namespace afs::obs
