// Request-scoped trace spans with 64-bit trace ids that cross process
// boundaries.
//
// One application-level operation on an active file fans out through
// several mediation layers: the vfs stub, the strategy link, the sentinel
// (possibly in another process), and sometimes a remote source behind a
// socket.  A trace stitches those layers back into one causal tree:
//
//   trace 4f1d…                           pid   µs
//   └─ afsctl.stats.read            12041  312
//      └─ vfs.read                  12041  298
//         └─ link.roundtrip         12041  290
//            └─ sentinel.read       12057  114   <- crossed the pipe
//               └─ net.socket.call  12057  102   <- remote source
//
// Mechanics: a thread-local (trace_id, span_id) context parents new spans;
// the control protocol carries the pair to the sentinel in a versioned
// trailing extension of the command frame, and the sentinel ships its
// completed spans back in the response extension, where the link adopts
// them into the local TraceLog.  Old peers parse new frames (decoders
// ignore trailing bytes) and new peers treat the absent extension as "no
// trace" — see docs/PROTOCOL.md §3.4.
//
// Cost model: tracing is off until armed (TraceScope or an inbound traced
// command).  A disarmed Span construction is one relaxed atomic load plus
// a thread-local read — no clock reads, no allocation, no id generation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace afs::obs {

// A completed span.  start_us is steady-clock microseconds (a per-boot
// epoch, comparable across processes on one machine, which is the only
// deployment the reproduction targets).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root of its trace
  std::uint32_t pid = 0;        // process that recorded the span
  std::int64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::string name;
};

// Process-wide arming switch (relaxed atomic; same contract as
// obs::Enabled).  Arming is also implicit on any thread whose current
// context carries a non-zero trace id — that is how a sentinel process
// that never called SetTraceArmed still traces inbound traced commands.
bool TraceArmed() noexcept;
void SetTraceArmed(bool armed) noexcept;

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

// The calling thread's current span context (zeros when untraced).
TraceContext CurrentContext() noexcept;

// Fresh process-unique 64-bit id (never 0).
std::uint64_t NewTraceId() noexcept;

// Bounded process-wide sink of completed spans (oldest dropped first).
class TraceLog {
 public:
  static TraceLog& Global();

  void Append(SpanRecord record);
  void AppendAll(std::vector<SpanRecord> records);
  std::vector<SpanRecord> Snapshot() const;
  void Clear();

 private:
  TraceLog() = default;
  static constexpr std::size_t kCapacity = 8192;

  mutable Mutex mu_;
  std::vector<SpanRecord> records_ AFS_GUARDED_BY(mu_);
};

// While alive, spans completed on this thread are collected into `sink`
// instead of the global TraceLog.  The sentinel dispatch loop wraps each
// command in one of these so the spans can ride the response frame back
// to the application process.
class SpanCollectorScope {
 public:
  explicit SpanCollectorScope(std::vector<SpanRecord>* sink) noexcept;
  ~SpanCollectorScope();

  SpanCollectorScope(const SpanCollectorScope&) = delete;
  SpanCollectorScope& operator=(const SpanCollectorScope&) = delete;

 private:
  std::vector<SpanRecord>* saved_;
};

// RAII span.  The default constructor parents on the thread's current
// context (starting a fresh trace if armed and none is active); the
// explicit form parents on a propagated remote context and is armed
// whenever that context is non-zero.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  Span(const char* name, std::uint64_t trace_id,
       std::uint64_t parent_span) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool armed() const noexcept { return armed_; }
  std::uint64_t trace_id() const noexcept { return trace_id_; }
  std::uint64_t span_id() const noexcept { return span_id_; }
  std::uint64_t parent_id() const noexcept { return parent_id_; }

 private:
  void Arm(const char* name, std::uint64_t trace_id,
           std::uint64_t parent_span) noexcept;

  bool armed_ = false;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::int64_t start_us_ = 0;
  const char* name_ = nullptr;
  TraceContext saved_{};
};

// Arms tracing process-wide for its lifetime and opens a root span, so a
// caller (afsctl, a test) can bracket a sequence of file operations into
// one trace.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  std::uint64_t trace_id() const noexcept { return root_.trace_id(); }

 private:
  bool was_armed_;
  Span root_;
};

// Wire codec for the span list carried in the control-response trailing
// extension.  Decode caps the list (kMaxWireSpans) and fails closed on
// truncation; both directions are versioned by the caller (control.cpp).
inline constexpr std::size_t kMaxWireSpans = 256;

void AppendSpans(Buffer& out, const std::vector<SpanRecord>& spans);
bool ReadSpans(ByteReader& reader, std::vector<SpanRecord>& out);

}  // namespace afs::obs
