#include "obs/stats.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace afs::obs {

namespace {

std::string Hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Span-tree walk shared by both renderers' tree section: spans grouped by
// trace, children ordered by start time, orphans (parent span not in the
// dump, e.g. evicted from the ring) promoted to roots so nothing is
// silently dropped.
struct SpanTree {
  std::map<std::uint64_t, std::vector<const SpanRecord*>> roots_by_trace;
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children;

  explicit SpanTree(const std::vector<SpanRecord>& spans) {
    std::unordered_set<std::uint64_t> ids;
    ids.reserve(spans.size());
    for (const SpanRecord& span : spans) ids.insert(span.span_id);
    for (const SpanRecord& span : spans) {
      // A self-parenting span (corrupt or colliding peer data) would make
      // the render walk below chase its own tail; demote it to a root.
      if (span.parent_id != 0 && span.parent_id != span.span_id &&
          ids.count(span.parent_id) > 0) {
        children[span.parent_id].push_back(&span);
      } else {
        roots_by_trace[span.trace_id].push_back(&span);
      }
    }
    auto by_start = [](const SpanRecord* a, const SpanRecord* b) {
      return a->start_us < b->start_us;
    };
    for (auto& [trace, list] : roots_by_trace) {
      std::sort(list.begin(), list.end(), by_start);
    }
    for (auto& [parent, list] : children) {
      std::sort(list.begin(), list.end(), by_start);
    }
  }
};

void RenderSpanText(const SpanTree& tree, const SpanRecord& span, int depth,
                    std::string& out) {
  out.append(2 + 2 * static_cast<std::size_t>(depth), ' ');
  out += span.name;
  out += "  span=" + Hex(span.span_id);
  out += "  pid=" + std::to_string(span.pid);
  out += "  " + std::to_string(span.duration_us) + "us\n";
  // Span ids come off the wire from other processes; a multi-span id
  // cycle must degrade to a truncated tree, not a stack overflow.
  if (depth >= 64) return;
  auto it = tree.children.find(span.span_id);
  if (it == tree.children.end()) return;
  for (const SpanRecord* child : it->second) {
    RenderSpanText(tree, *child, depth + 1, out);
  }
}

}  // namespace

std::string RenderText(const Snapshot& snapshot,
                       const std::vector<SpanRecord>& spans) {
  std::string out;
  out += "== counters\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  out += "== gauges\n";
  for (const auto& [name, value] : snapshot.gauges) {
    out += name + " " + std::to_string(value) + "\n";
  }
  out += "== histograms (us)\n";
  for (const auto& [name, hist] : snapshot.histograms) {
    out += name + " count=" + std::to_string(hist.count) +
           " sum=" + std::to_string(hist.sum) +
           " min=" + std::to_string(hist.min) +
           " max=" + std::to_string(hist.max) +
           " p50=" + std::to_string(hist.Quantile(0.5)) +
           " p90=" + std::to_string(hist.Quantile(0.9)) +
           " p99=" + std::to_string(hist.Quantile(0.99)) + "\n";
  }
  out += "== traces\n";
  const SpanTree tree(spans);
  for (const auto& [trace, roots] : tree.roots_by_trace) {
    out += "trace " + Hex(trace) + "\n";
    for (const SpanRecord* root : roots) {
      RenderSpanText(tree, *root, 0, out);
    }
  }
  return out;
}

std::string RenderJson(const Snapshot& snapshot,
                       const std::vector<SpanRecord>& spans) {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(hist.count);
    out += ",\"sum\":" + std::to_string(hist.sum);
    out += ",\"min\":" + std::to_string(hist.min);
    out += ",\"max\":" + std::to_string(hist.max);
    out += ",\"p50\":" + std::to_string(hist.Quantile(0.5));
    out += ",\"p90\":" + std::to_string(hist.Quantile(0.9));
    out += ",\"p99\":" + std::to_string(hist.Quantile(0.99));
    out += "}";
  }
  out += "},\"spans\":[";
  first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"trace\":\"" + Hex(span.trace_id) + "\"";
    out += ",\"span\":\"" + Hex(span.span_id) + "\"";
    out += ",\"parent\":\"" + Hex(span.parent_id) + "\"";
    out += ",\"pid\":" + std::to_string(span.pid);
    out += ",\"start_us\":" + std::to_string(span.start_us);
    out += ",\"duration_us\":" + std::to_string(span.duration_us);
    out += ",\"name\":\"" + JsonEscape(span.name) + "\"}";
  }
  out += "]}";
  return out;
}

std::string StatsText() {
  return RenderText(Registry::Global().TakeSnapshot(),
                    TraceLog::Global().Snapshot());
}

std::string StatsJson() {
  return RenderJson(Registry::Global().TakeSnapshot(),
                    TraceLog::Global().Snapshot());
}

namespace {
int g_dump_pipe_write = -1;

void DumpSignalHandler(int /*signo*/) {
  // Async-signal-safe: one write to the self-pipe, nothing else.
  const char byte = 1;
  if (g_dump_pipe_write >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_dump_pipe_write, &byte, 1);
  }
}
}  // namespace

void InstallStatsSignalDump(int signo) {
  int fds[2];
  if (::pipe(fds) != 0) return;
  g_dump_pipe_write = fds[1];
  const int read_fd = fds[0];
  std::thread([read_fd] {
    char byte = 0;
    while (::read(read_fd, &byte, 1) == 1) {
      const std::string text = StatsText();
      [[maybe_unused]] ssize_t n =
          ::write(STDERR_FILENO, text.data(), text.size());
    }
  }).detach();
  struct sigaction action = {};
  action.sa_handler = DumpSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(signo, &action, nullptr);
}

}  // namespace afs::obs
