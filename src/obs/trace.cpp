#include "obs/trace.hpp"

#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <utility>

namespace afs::obs {

namespace {

std::atomic<bool> g_trace_armed{false};

thread_local TraceContext t_context;
thread_local std::vector<SpanRecord>* t_collector = nullptr;

std::int64_t NowMicros() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// splitmix64 over a per-process base: ids are unique within a process and
// collide across processes only with 2^-64-ish probability, which is all
// the span tree needs.
std::uint64_t Mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t IdBase() noexcept {
  return Mix((static_cast<std::uint64_t>(::getpid()) << 32) ^
             static_cast<std::uint64_t>(NowMicros()));
}

std::atomic<std::uint64_t> g_id_base{0};
std::atomic<std::uint64_t> g_id_counter{0};

// Forked sentinels inherit the parent's base and counter; without a
// re-seed the child continues the parent's exact id stream and every
// child span id collides with a parent-side one (which reads as a cycle
// to the span-tree renderer).  atfork re-derives the base from the
// child's own pid.
void ReseedIdBase() noexcept {
  g_id_base.store(IdBase(), std::memory_order_relaxed);
}

}  // namespace

bool TraceArmed() noexcept {
  return g_trace_armed.load(std::memory_order_relaxed);
}

void SetTraceArmed(bool armed) noexcept {
  g_trace_armed.store(armed, std::memory_order_relaxed);
}

TraceContext CurrentContext() noexcept { return t_context; }

std::uint64_t NewTraceId() noexcept {
  static const bool seeded = [] {
    ReseedIdBase();
    (void)::pthread_atfork(nullptr, nullptr, &ReseedIdBase);
    return true;
  }();
  (void)seeded;
  const std::uint64_t base = g_id_base.load(std::memory_order_relaxed);
  std::uint64_t id = 0;
  while (id == 0) {
    id = Mix(base + g_id_counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

TraceLog& TraceLog::Global() {
  static TraceLog* instance = new TraceLog();
  return *instance;
}

void TraceLog::Append(SpanRecord record) {
  MutexLock lock(mu_);
  if (records_.size() >= kCapacity) {
    records_.erase(records_.begin());
  }
  records_.push_back(std::move(record));
}

void TraceLog::AppendAll(std::vector<SpanRecord> records) {
  MutexLock lock(mu_);
  for (auto& record : records) {
    if (records_.size() >= kCapacity) {
      records_.erase(records_.begin());
    }
    records_.push_back(std::move(record));
  }
}

std::vector<SpanRecord> TraceLog::Snapshot() const {
  MutexLock lock(mu_);
  return records_;
}

void TraceLog::Clear() {
  MutexLock lock(mu_);
  records_.clear();
}

SpanCollectorScope::SpanCollectorScope(std::vector<SpanRecord>* sink) noexcept
    : saved_(t_collector) {
  t_collector = sink;
}

SpanCollectorScope::~SpanCollectorScope() { t_collector = saved_; }

Span::Span(const char* name) noexcept {
  const TraceContext ctx = t_context;
  if (!TraceArmed() && ctx.trace_id == 0) return;  // disarmed: no clock, no id
  Arm(name, ctx.trace_id != 0 ? ctx.trace_id : NewTraceId(), ctx.span_id);
}

Span::Span(const char* name, std::uint64_t trace_id,
           std::uint64_t parent_span) noexcept {
  if (trace_id == 0) {
    // No propagated context: behave like a local span.
    const TraceContext ctx = t_context;
    if (!TraceArmed() && ctx.trace_id == 0) return;
    Arm(name, ctx.trace_id != 0 ? ctx.trace_id : NewTraceId(), ctx.span_id);
    return;
  }
  Arm(name, trace_id, parent_span);
}

void Span::Arm(const char* name, std::uint64_t trace_id,
               std::uint64_t parent_span) noexcept {
  armed_ = true;
  name_ = name;
  trace_id_ = trace_id;
  parent_id_ = parent_span;
  span_id_ = NewTraceId();
  start_us_ = NowMicros();
  saved_ = t_context;
  t_context = TraceContext{trace_id_, span_id_};
}

Span::~Span() {
  if (!armed_) return;
  t_context = saved_;
  SpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.pid = static_cast<std::uint32_t>(::getpid());
  record.start_us = start_us_;
  const std::int64_t elapsed = NowMicros() - start_us_;
  record.duration_us = elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0;
  record.name = name_ != nullptr ? name_ : "";
  if (t_collector != nullptr) {
    t_collector->push_back(std::move(record));
  } else {
    TraceLog::Global().Append(std::move(record));
  }
}

TraceScope::TraceScope(const char* name) noexcept
    : was_armed_(TraceArmed()),
      root_((SetTraceArmed(true), name)) {}

TraceScope::~TraceScope() { SetTraceArmed(was_armed_); }

void AppendSpans(Buffer& out, const std::vector<SpanRecord>& spans) {
  const std::size_t n = spans.size() < kMaxWireSpans ? spans.size()
                                                     : kMaxWireSpans;
  AppendU32(out, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const SpanRecord& span = spans[i];
    AppendU64(out, span.trace_id);
    AppendU64(out, span.span_id);
    AppendU64(out, span.parent_id);
    AppendU32(out, span.pid);
    AppendU64(out, static_cast<std::uint64_t>(span.start_us));
    AppendU64(out, span.duration_us);
    AppendLenPrefixed(out, span.name);
  }
}

bool ReadSpans(ByteReader& reader, std::vector<SpanRecord>& out) {
  std::uint32_t n = 0;
  if (!reader.ReadU32(n)) return false;
  if (n > kMaxWireSpans) return false;
  out.reserve(out.size() + n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SpanRecord span;
    std::uint64_t start = 0;
    if (!reader.ReadU64(span.trace_id) || !reader.ReadU64(span.span_id) ||
        !reader.ReadU64(span.parent_id) || !reader.ReadU32(span.pid) ||
        !reader.ReadU64(start) || !reader.ReadU64(span.duration_us) ||
        !reader.ReadLenPrefixedString(span.name)) {
      return false;
    }
    span.start_us = static_cast<std::int64_t>(start);
    out.push_back(std::move(span));
  }
  return true;
}

}  // namespace afs::obs
