#include "ipc/framing.hpp"

#include "common/faultpoint.hpp"
#include "obs/metrics.hpp"

namespace afs::ipc {

namespace {

// Frame-layer instrumentation: every control/response frame in the system
// funnels through these two functions, so two counters per direction give
// the per-op IPC cost picture (frames ≈ pipe round-trips / 2).
struct FrameMetrics {
  obs::Counter& frames;
  obs::Counter& bytes;

  FrameMetrics(const char* count_name, const char* bytes_name)
      : frames(obs::Registry::Global().GetCounter(count_name)),
        bytes(obs::Registry::Global().GetCounter(bytes_name)) {}
};

// Registered at static-init time, not lazily at first use: the first frame
// a forked sentinel child writes is its open banner, and registering a
// counter there would take the registry mutex inside a process whose other
// threads no longer exist — a fork-inherited-lock deadlock.  Eagerly
// initialized, the child's frame path is pure lock-free cell updates.
FrameMetrics& WriteMetrics() {
  static FrameMetrics metrics("ipc.frame.write.count",
                              "ipc.frame.write.bytes");
  return metrics;
}

FrameMetrics& ReadMetrics() {
  static FrameMetrics metrics("ipc.frame.read.count", "ipc.frame.read.bytes");
  return metrics;
}

obs::Counter& ReadTimeouts() {
  static obs::Counter& timeouts =
      obs::Registry::Global().GetCounter("ipc.frame.read.timeouts");
  return timeouts;
}

const bool kMetricsRegisteredEarly = [] {
  WriteMetrics();
  ReadMetrics();
  ReadTimeouts();
  return true;
}();

}  // namespace

Status WriteFrame(PipeEnd& pipe, ByteSpan payload) {
  FrameMetrics& metrics = WriteMetrics();
  AFS_FAULT_POINT("ipc.frame.write");
  Buffer header;
  header.reserve(4);
  AppendU32(header, static_cast<std::uint32_t>(payload.size()));
  AFS_RETURN_IF_ERROR(pipe.WriteAll(header));
  if (!payload.empty()) {
    AFS_RETURN_IF_ERROR(pipe.WriteAll(payload));
  }
  metrics.frames.Add(1);
  metrics.bytes.Add(4 + payload.size());
  return Status::Ok();
}

Status WriteFrame(PipeEnd& pipe, ByteSpan payload, Micros timeout) {
  if (timeout.count() <= 0) return WriteFrame(pipe, payload);
  FrameMetrics& metrics = WriteMetrics();
  AFS_FAULT_POINT("ipc.frame.write");
  Buffer header;
  header.reserve(4);
  AppendU32(header, static_cast<std::uint32_t>(payload.size()));
  AFS_RETURN_IF_ERROR(pipe.WriteAll(header, timeout));
  if (!payload.empty()) {
    AFS_RETURN_IF_ERROR(pipe.WriteAll(payload, timeout));
  }
  metrics.frames.Add(1);
  metrics.bytes.Add(4 + payload.size());
  return Status::Ok();
}

Result<Buffer> ReadFrame(PipeEnd& pipe) {
  FrameMetrics& metrics = ReadMetrics();
  AFS_FAULT_POINT("ipc.frame.read");
  std::uint8_t header[4];
  // Distinguish clean EOF (peer done) from truncation: read the first byte
  // separately.
  AFS_ASSIGN_OR_RETURN(std::size_t first,
                       pipe.ReadSome(MutableByteSpan(header, 1)));
  if (first == 0) return ClosedError("frame stream ended");
  AFS_RETURN_IF_ERROR(pipe.ReadExact(MutableByteSpan(header + 1, 3)));

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return ProtocolError("frame length " + std::to_string(len) +
                         " exceeds limit");
  }
  Buffer payload(len);
  if (len > 0) {
    AFS_RETURN_IF_ERROR(pipe.ReadExact(MutableByteSpan(payload)));
  }
  metrics.frames.Add(1);
  metrics.bytes.Add(4 + payload.size());
  return payload;
}

Result<Buffer> ReadFrame(PipeEnd& pipe, Micros timeout) {
  // The deadline covers the wait for the frame to begin; once bytes flow
  // the peer is alive and the bounded-size body read completes promptly.
  const Status ready = pipe.WaitReadable(timeout);
  if (!ready.ok()) {
    if (ready.code() == ErrorCode::kTimeout) {
      ReadTimeouts().Add(1);
    }
    return ready;
  }
  return ReadFrame(pipe);
}

Status FrameDecoder::Append(ByteSpan bytes) {
  if (poisoned_) return ProtocolError("frame decoder poisoned");
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Validate the length prefix as soon as it is complete so a corrupt peer
  // is rejected before it makes us buffer an arbitrary amount.
  if (buffer_.size() >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len > kMaxFrameBytes) {
      poisoned_ = true;
      return ProtocolError("frame length " + std::to_string(len) +
                           " exceeds limit");
    }
  }
  return Status::Ok();
}

std::optional<Buffer> FrameDecoder::Next() {
  if (poisoned_ || buffer_.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
           << (8 * i);
  }
  const std::size_t total = 4 + static_cast<std::size_t>(len);
  if (buffer_.size() < total) return std::nullopt;
  FrameMetrics& metrics = ReadMetrics();
  Buffer payload(buffer_.begin() + 4, buffer_.begin() + total);
  buffer_.erase(buffer_.begin(), buffer_.begin() + total);
  metrics.frames.Add(1);
  metrics.bytes.Add(total);
  return payload;
}

}  // namespace afs::ipc
