#include "ipc/framing.hpp"

#include "common/faultpoint.hpp"
#include "obs/metrics.hpp"

namespace afs::ipc {

namespace {

// Frame-layer instrumentation: every control/response frame in the system
// funnels through these two functions, so two counters per direction give
// the per-op IPC cost picture (frames ≈ pipe round-trips / 2).
struct FrameMetrics {
  obs::Counter& frames;
  obs::Counter& bytes;

  FrameMetrics(const char* count_name, const char* bytes_name)
      : frames(obs::Registry::Global().GetCounter(count_name)),
        bytes(obs::Registry::Global().GetCounter(bytes_name)) {}
};

}  // namespace

Status WriteFrame(PipeEnd& pipe, ByteSpan payload) {
  static FrameMetrics metrics("ipc.frame.write.count",
                              "ipc.frame.write.bytes");
  AFS_FAULT_POINT("ipc.frame.write");
  Buffer header;
  header.reserve(4);
  AppendU32(header, static_cast<std::uint32_t>(payload.size()));
  AFS_RETURN_IF_ERROR(pipe.WriteAll(header));
  if (!payload.empty()) {
    AFS_RETURN_IF_ERROR(pipe.WriteAll(payload));
  }
  metrics.frames.Add(1);
  metrics.bytes.Add(4 + payload.size());
  return Status::Ok();
}

Result<Buffer> ReadFrame(PipeEnd& pipe) {
  static FrameMetrics metrics("ipc.frame.read.count", "ipc.frame.read.bytes");
  AFS_FAULT_POINT("ipc.frame.read");
  std::uint8_t header[4];
  // Distinguish clean EOF (peer done) from truncation: read the first byte
  // separately.
  AFS_ASSIGN_OR_RETURN(std::size_t first,
                       pipe.ReadSome(MutableByteSpan(header, 1)));
  if (first == 0) return ClosedError("frame stream ended");
  AFS_RETURN_IF_ERROR(pipe.ReadExact(MutableByteSpan(header + 1, 3)));

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return ProtocolError("frame length " + std::to_string(len) +
                         " exceeds limit");
  }
  Buffer payload(len);
  if (len > 0) {
    AFS_RETURN_IF_ERROR(pipe.ReadExact(MutableByteSpan(payload)));
  }
  metrics.frames.Add(1);
  metrics.bytes.Add(4 + payload.size());
  return payload;
}

Result<Buffer> ReadFrame(PipeEnd& pipe, Micros timeout) {
  // The deadline covers the wait for the frame to begin; once bytes flow
  // the peer is alive and the bounded-size body read completes promptly.
  const Status ready = pipe.WaitReadable(timeout);
  if (!ready.ok()) {
    if (ready.code() == ErrorCode::kTimeout) {
      static obs::Counter& timeouts =
          obs::Registry::Global().GetCounter("ipc.frame.read.timeouts");
      timeouts.Add(1);
    }
    return ready;
  }
  return ReadFrame(pipe);
}

}  // namespace afs::ipc
