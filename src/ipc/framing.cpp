#include "ipc/framing.hpp"

#include "common/faultpoint.hpp"

namespace afs::ipc {

Status WriteFrame(PipeEnd& pipe, ByteSpan payload) {
  AFS_FAULT_POINT("ipc.frame.write");
  Buffer header;
  header.reserve(4);
  AppendU32(header, static_cast<std::uint32_t>(payload.size()));
  AFS_RETURN_IF_ERROR(pipe.WriteAll(header));
  if (!payload.empty()) {
    AFS_RETURN_IF_ERROR(pipe.WriteAll(payload));
  }
  return Status::Ok();
}

Result<Buffer> ReadFrame(PipeEnd& pipe) {
  AFS_FAULT_POINT("ipc.frame.read");
  std::uint8_t header[4];
  // Distinguish clean EOF (peer done) from truncation: read the first byte
  // separately.
  AFS_ASSIGN_OR_RETURN(std::size_t first,
                       pipe.ReadSome(MutableByteSpan(header, 1)));
  if (first == 0) return ClosedError("frame stream ended");
  AFS_RETURN_IF_ERROR(pipe.ReadExact(MutableByteSpan(header + 1, 3)));

  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return ProtocolError("frame length " + std::to_string(len) +
                         " exceeds limit");
  }
  Buffer payload(len);
  if (len > 0) {
    AFS_RETURN_IF_ERROR(pipe.ReadExact(MutableByteSpan(payload)));
  }
  return payload;
}

Result<Buffer> ReadFrame(PipeEnd& pipe, Micros timeout) {
  // The deadline covers the wait for the frame to begin; once bytes flow
  // the peer is alive and the bounded-size body read completes promptly.
  AFS_RETURN_IF_ERROR(pipe.WaitReadable(timeout));
  return ReadFrame(pipe);
}

}  // namespace afs::ipc
