#include "ipc/shm_ring.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <new>
#include <string>

#include "common/faultpoint.hpp"
#include "obs/metrics.hpp"

namespace afs::ipc {
namespace {

constexpr std::uint32_t kMagic = 0x4D534641u;  // "AFSM" in memory (LE)
constexpr std::uint32_t kLayoutVersion = 1;
constexpr std::size_t kMinRingBytes = 4 * 1024;
constexpr std::size_t kMaxRingBytes = 64 * 1024 * 1024;

// Futex wait slice when the caller opted out of a deadline: the wait stays
// a chain of bounded parks so a vanished peer is re-checked, never slept
// on forever.
constexpr Micros kWaitSlice{200'000};

Status Errno(const char* what) {
  return IoError(std::string(what) + ": " + std::strerror(errno));
}

long Futex(std::atomic<std::uint32_t>* word, int op, std::uint32_t value,
           const timespec* ts) {
  // No FUTEX_PRIVATE_FLAG: the word lives in a MAP_SHARED region and the
  // waiter/waker are in different processes.
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), op, value,
                 ts, nullptr, 0);
}

// Eventcount park: sleeps until the word moves past `expected`, a wake
// arrives, or `slice` elapses.  Callers re-validate their condition after
// every return (spurious wakeups are fine, lost wakeups are not — the
// waker bumps the word before waking, so a state change between the
// caller's load of `expected` and this wait returns immediately).
void FutexWaitSlice(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                    Micros slice) {
  static obs::Counter& waits =
      obs::Registry::Global().GetCounter("ipc.shm.futex_waits");
  waits.Add(1);
  timespec ts;
  ts.tv_sec = static_cast<time_t>(slice.count() / 1'000'000);
  ts.tv_nsec = static_cast<long>((slice.count() % 1'000'000) * 1000);
  (void)Futex(word, FUTEX_WAIT, expected, &ts);
}

void FutexWakeAll(std::atomic<std::uint32_t>* word) {
  (void)Futex(word, FUTEX_WAKE, INT_MAX, nullptr);
}

}  // namespace

// One direction's control block, padded to its own cache line so the two
// directions (and the data region) never false-share.
struct alignas(64) DirState {
  std::atomic<std::uint64_t> tail;  // bytes ever produced (writer-owned)
  std::atomic<std::uint64_t> head;  // bytes ever consumed (reader-owned)
  // Eventcount word both sides futex-wait on: bumped (and woken) by every
  // head/tail advance and by close, in either role.
  std::atomic<std::uint32_t> seq;
  std::atomic<std::uint32_t> closed;
};
static_assert(sizeof(DirState) == 64);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory ring needs address-free atomics");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "futex word must be a plain 32-bit atomic");

struct ShmRing::Region {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t ring_bytes;  // per direction; power of two
  DirState dir[2];
  // 2 * ring_bytes of payload data follow the header.

  std::uint8_t* data(int d) noexcept {
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
    return reinterpret_cast<std::uint8_t*>(this + 1) +
           static_cast<std::size_t>(d) * ring_bytes;
  }
};

ShmRing::Region* ShmRing::region() const noexcept {
  return static_cast<Region*>(map_);
}

Result<std::shared_ptr<ShmRing>> ShmRing::Create(std::size_t ring_bytes) {
  // Any failure below this point (including the injected one) is a setup
  // failure the link layer answers with pipe fallback, never a dead open.
  AFS_FAULT_POINT("ipc.shm.map_fail");
  std::size_t cap = kMinRingBytes;
  while (cap < ring_bytes && cap < kMaxRingBytes) cap <<= 1;
  const std::size_t total = sizeof(Region) + 2 * cap;

  // The descriptor must survive both fork and exec (no CLOEXEC): it is the
  // only name the region has, and the sentinel child attaches by fd.
  int fd = static_cast<int>(memfd_create("afs-shm-ring", 0));
  if (fd < 0) {
    // Pre-memfd kernels: POSIX shared memory, unlinked immediately so the
    // descriptor is again the region's only name.
    static std::atomic<std::uint64_t> counter{0};
    const std::string name = "/afs-ring-" + std::to_string(getpid()) + "-" +
                             std::to_string(counter.fetch_add(1));
    fd = shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    if (fd < 0) return Errno("shm ring create");
    (void)shm_unlink(name.c_str());
    (void)fcntl(fd, F_SETFD, 0);  // glibc opens POSIX shm close-on-exec
  }
  if (ftruncate(fd, static_cast<off_t>(total)) != 0) {
    const Status status = Errno("shm ring size");
    close(fd);
    return status;
  }
  void* map =
      mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    const Status status = Errno("shm ring map");
    close(fd);
    return status;
  }
  auto* r = new (map) Region{};
  r->magic = kMagic;
  r->version = kLayoutVersion;
  r->ring_bytes = cap;
  return std::shared_ptr<ShmRing>(new ShmRing(fd, map, total));
}

Result<std::shared_ptr<ShmRing>> ShmRing::Attach(int fd) {
  AFS_FAULT_POINT("ipc.shm.map_fail");
  struct stat st{};
  if (fstat(fd, &st) != 0) {
    const Status status = Errno("shm ring stat");
    close(fd);
    return status;
  }
  const auto total = static_cast<std::size_t>(st.st_size);
  if (total < sizeof(Region)) {
    close(fd);
    return ProtocolError("shm ring region too small");
  }
  void* map =
      mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    const Status status = Errno("shm ring map");
    close(fd);
    return status;
  }
  auto* r = static_cast<Region*>(map);
  const std::size_t cap = static_cast<std::size_t>(r->ring_bytes);
  const bool pow2 = cap != 0 && (cap & (cap - 1)) == 0;
  if (r->magic != kMagic || r->version != kLayoutVersion || !pow2 ||
      total != sizeof(Region) + 2 * cap) {
    munmap(map, total);
    close(fd);
    return ProtocolError("shm ring header mismatch");
  }
  return std::shared_ptr<ShmRing>(new ShmRing(fd, map, total));
}

ShmRing::~ShmRing() {
  if (map_ != nullptr) {
    CloseAll();  // wake any cross-process waiter before the mapping goes
    munmap(map_, map_len_);
  }
  if (fd_ >= 0) close(fd_);
}

std::size_t ShmRing::ring_bytes() const noexcept {
  return static_cast<std::size_t>(region()->ring_bytes);
}

Status ShmRing::Write(int dir, ByteSpan bytes, Micros timeout) {
  static obs::Counter& shm_bytes =
      obs::Registry::Global().GetCounter("ipc.shm.bytes");
  static obs::Counter& shm_ops =
      obs::Registry::Global().GetCounter("ipc.shm.ops");
  Region* r = region();
  DirState& d = r->dir[dir];
  const std::size_t cap = static_cast<std::size_t>(r->ring_bytes);
  std::uint8_t* data = r->data(dir);

  // Torn-write injection: the copy loop stops after `allowed` bytes and
  // reports IoError — the shape of a writer dying mid-transfer with the
  // announcing control frame already consumed.
  const std::size_t allowed = AFS_FAULT_TRUNCATE("ipc.shm.torn_write",
                                                 bytes.size());
  const bool bounded = timeout.count() > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(timeout.count());
  std::size_t done = 0;
  shm_ops.Add(1);
  while (done < allowed) {
    if (d.closed.load(std::memory_order_acquire) != 0) {
      shm_bytes.Add(done);
      return ClosedError("shm ring closed");
    }
    const std::uint64_t head = d.head.load(std::memory_order_acquire);
    // Single writer per direction: our own tail needs no ordering.
    const std::uint64_t tail = d.tail.load(std::memory_order_relaxed);
    const std::size_t free_space = cap - static_cast<std::size_t>(tail - head);
    if (free_space == 0) {
      const std::uint32_t seq = d.seq.load(std::memory_order_acquire);
      // Eventcount re-check: a consume (or close) between the loads above
      // and here bumped seq, so the futex wait returns immediately.
      if (d.head.load(std::memory_order_acquire) == head &&
          d.closed.load(std::memory_order_acquire) == 0) {
        Micros slice = kWaitSlice;
        if (bounded) {
          const auto left =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  deadline - std::chrono::steady_clock::now());
          if (left.count() <= 0) {
            shm_bytes.Add(done);
            return TimeoutError("shm ring full: peer stopped draining");
          }
          slice = std::min(kWaitSlice, Micros{left.count()});
        }
        FutexWaitSlice(&d.seq, seq, slice);
      }
      continue;
    }
    const std::size_t n = std::min(allowed - done, free_space);
    const std::size_t at = static_cast<std::size_t>(tail) & (cap - 1);
    const std::size_t first = std::min(n, cap - at);
    std::memcpy(data + at, bytes.data() + done, first);
    if (n > first) std::memcpy(data, bytes.data() + done + first, n - first);
    d.tail.store(tail + n, std::memory_order_release);
    d.seq.fetch_add(1, std::memory_order_release);
    FutexWakeAll(&d.seq);
    done += n;
  }
  shm_bytes.Add(done);
  if (allowed < bytes.size()) {
    return IoError("shm ring write torn after " + std::to_string(done) +
                   " of " + std::to_string(bytes.size()) + " bytes");
  }
  return Status::Ok();
}

Result<std::size_t> ShmRing::ReadSome(int dir, MutableByteSpan out,
                                      Micros timeout) {
  static obs::Counter& shm_ops =
      obs::Registry::Global().GetCounter("ipc.shm.ops");
  if (out.empty()) return std::size_t{0};
  // A consumer that stalls is indistinguishable from a dead one to the
  // producer; this site simulates it — delay rules park the reader here
  // (the writer eventually fills the ring and times out), error rules
  // surface as this read's status.
  AFS_FAULT_POINT("ipc.shm.peer_stall");
  Region* r = region();
  DirState& d = r->dir[dir];
  const std::size_t cap = static_cast<std::size_t>(r->ring_bytes);
  const std::uint8_t* data = r->data(dir);

  const bool bounded = timeout.count() > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(timeout.count());
  while (true) {
    const std::uint64_t tail = d.tail.load(std::memory_order_acquire);
    // Single reader per direction: our own head needs no ordering.
    const std::uint64_t head = d.head.load(std::memory_order_relaxed);
    const std::size_t avail = static_cast<std::size_t>(tail - head);
    if (avail > 0) {
      const std::size_t n = std::min(avail, out.size());
      const std::size_t at = static_cast<std::size_t>(head) & (cap - 1);
      const std::size_t first = std::min(n, cap - at);
      std::memcpy(out.data(), data + at, first);
      if (n > first) std::memcpy(out.data() + first, data, n - first);
      d.head.store(head + n, std::memory_order_release);
      d.seq.fetch_add(1, std::memory_order_release);
      FutexWakeAll(&d.seq);
      shm_ops.Add(1);
      return n;
    }
    // Closed is checked only after the ring drained: a writer that closes
    // right after producing must not truncate the stream.
    if (d.closed.load(std::memory_order_acquire) != 0) return std::size_t{0};
    const std::uint32_t seq = d.seq.load(std::memory_order_acquire);
    if (d.tail.load(std::memory_order_acquire) != tail ||
        d.closed.load(std::memory_order_acquire) != 0) {
      continue;  // produced or closed while capturing the eventcount
    }
    Micros slice = kWaitSlice;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        return TimeoutError("shm ring empty: peer stopped producing");
      }
      slice = std::min(kWaitSlice, Micros{left.count()});
    }
    FutexWaitSlice(&d.seq, seq, slice);
  }
}

Status ShmRing::ReadExact(int dir, MutableByteSpan out, Micros timeout) {
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_ASSIGN_OR_RETURN(
        std::size_t n,
        ReadSome(dir, out.subspan(done, out.size() - done), timeout));
    if (n == 0) return ClosedError("shm ring ended mid-message");
    done += n;
  }
  return Status::Ok();
}

void ShmRing::CloseDir(int dir) {
  DirState& d = region()->dir[dir];
  d.closed.store(1, std::memory_order_release);
  d.seq.fetch_add(1, std::memory_order_release);
  FutexWakeAll(&d.seq);
}

void ShmRing::CloseAll() {
  CloseDir(kToSentinel);
  CloseDir(kToApp);
}

bool ShmRing::dir_closed(int dir) const {
  return region()->dir[dir].closed.load(std::memory_order_acquire) != 0;
}

std::size_t ShmRing::buffered(int dir) const {
  const DirState& d = region()->dir[dir];
  const std::uint64_t tail = d.tail.load(std::memory_order_acquire);
  const std::uint64_t head = d.head.load(std::memory_order_acquire);
  return static_cast<std::size_t>(tail - head);
}

}  // namespace afs::ipc
