#include "ipc/named_mutex.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace afs::ipc {

NamedMutex::NamedMutex(std::string directory, std::string name)
    : path_(std::move(directory)) {
  if (!path_.empty() && path_.back() != '/') path_ += '/';
  path_ += name;
  path_ += ".lock";
}

NamedMutex::~NamedMutex() {
  if (held_) (void)Unlock();
  CloseFd();
}

NamedMutex::NamedMutex(NamedMutex&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      held_(std::exchange(other.held_, false)) {}

NamedMutex& NamedMutex::operator=(NamedMutex&& other) noexcept {
  if (this != &other) {
    if (held_) (void)Unlock();
    CloseFd();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    held_ = std::exchange(other.held_, false);
  }
  return *this;
}

Status NamedMutex::EnsureOpen() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd_ < 0) {
    return IoError("open lock file " + path_ + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

void NamedMutex::CloseFd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {
struct flock MakeLock(short type) {
  struct flock fl {};
  fl.l_type = type;
  fl.l_whence = SEEK_SET;
  fl.l_start = 0;
  fl.l_len = 0;  // whole file
  return fl;
}
}  // namespace

Status NamedMutex::Lock() {
  AFS_RETURN_IF_ERROR(EnsureOpen());
  struct flock fl = MakeLock(F_WRLCK);
  while (::fcntl(fd_, F_SETLKW, &fl) != 0) {
    if (errno == EINTR) continue;
    return IoError(std::string("fcntl F_SETLKW: ") + std::strerror(errno));
  }
  held_ = true;
  return Status::Ok();
}

Status NamedMutex::TryLock() {
  AFS_RETURN_IF_ERROR(EnsureOpen());
  struct flock fl = MakeLock(F_WRLCK);
  if (::fcntl(fd_, F_SETLK, &fl) != 0) {
    if (errno == EACCES || errno == EAGAIN) {
      return BusyError("lock held: " + path_);
    }
    return IoError(std::string("fcntl F_SETLK: ") + std::strerror(errno));
  }
  held_ = true;
  return Status::Ok();
}

Status NamedMutex::Unlock() {
  if (!held_) return InvalidArgumentError("unlock without lock");
  struct flock fl = MakeLock(F_UNLCK);
  if (::fcntl(fd_, F_SETLK, &fl) != 0) {
    return IoError(std::string("fcntl unlock: ") + std::strerror(errno));
  }
  held_ = false;
  return Status::Ok();
}

}  // namespace afs::ipc
