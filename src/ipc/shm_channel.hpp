// In-process shared-memory byte channel.  Appendix A.3 of the paper
// implements the AF_* data-transfer calls of the DLL-with-thread strategy
// "using events and shared memory"; ShmChannel is that transport: a bounded
// ring shared between the application thread and the injected sentinel
// thread, with exactly one user-level copy per side and no kernel
// involvement beyond futex waits.
// Concurrency contract: one writer thread and one reader thread (the
// rendezvous layers already serialize to that).  Bulk copies happen
// OUTSIDE the mutex via a reserve/commit protocol: the lock only claims a
// region (indices), the memcpy runs unlocked on a region the other side
// cannot touch until the commit publishes it.
#pragma once

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"

namespace afs::ipc {

class ShmChannel {
 public:
  explicit ShmChannel(std::size_t capacity = 64 * 1024)
      : data_(capacity > 0 ? capacity : 1) {}

  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;

  // Writes all bytes, blocking while the ring is full.  Fails with kClosed
  // if the channel is closed before everything is accepted.
  Status Write(ByteSpan bytes);

  // Blocks until at least one byte is available or the write side closed;
  // returns 0 only at end-of-stream (closed and drained).
  Result<std::size_t> ReadSome(MutableByteSpan out);

  // Reads exactly out.size() bytes; kClosed on premature end-of-stream.
  Status ReadExact(MutableByteSpan out);

  // Signals end-of-stream: readers drain buffered bytes then see EOF;
  // writers fail immediately.
  void Close();

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t buffered() const {
    MutexLock lock(mu_);
    return size_;
  }

 private:
  mutable Mutex mu_;
  CondVar readable_;
  CondVar writable_;
  // afs-lint: allow(guarded-member: byte storage deliberately copied outside the lock; mu_ guards the head_/size_ indices that partition it between the SPSC sides)
  Buffer data_;
  // Ring indices: [head_, head_+size_) mod capacity is committed data.
  // The reader alone moves head_; the writer alone moves the tail
  // (head_ + size_), which reads leave invariant — that is what makes the
  // unlocked copies race-free.
  std::size_t head_ AFS_GUARDED_BY(mu_) = 0;
  std::size_t size_ AFS_GUARDED_BY(mu_) = 0;
  bool closed_ AFS_GUARDED_BY(mu_) = false;
};

// Binary event ("manual-reset" false): Signal wakes exactly one waiter.
// Mirrors the Win32 events the paper's implementation pairs with shared
// memory.
class Event {
 public:
  void Signal();
  // Blocks until signalled; consumes the signal.  Returns false if the
  // event was shut down.
  bool Wait();
  void Shutdown();

 private:
  Mutex mu_;
  CondVar cv_;
  unsigned pending_ AFS_GUARDED_BY(mu_) = 0;
  bool shutdown_ AFS_GUARDED_BY(mu_) = false;
};

}  // namespace afs::ipc
