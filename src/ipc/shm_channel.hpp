// In-process shared-memory byte channel.  Appendix A.3 of the paper
// implements the AF_* data-transfer calls of the DLL-with-thread strategy
// "using events and shared memory"; ShmChannel is that transport: a bounded
// ring shared between the application thread and the injected sentinel
// thread, with exactly one user-level copy per side and no kernel
// involvement beyond futex waits.
#pragma once

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "util/ring_buffer.hpp"

namespace afs::ipc {

class ShmChannel {
 public:
  explicit ShmChannel(std::size_t capacity = 64 * 1024) : ring_(capacity) {}

  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;

  // Writes all bytes, blocking while the ring is full.  Fails with kClosed
  // if the channel is closed before everything is accepted.
  Status Write(ByteSpan bytes);

  // Blocks until at least one byte is available or the write side closed;
  // returns 0 only at end-of-stream (closed and drained).
  Result<std::size_t> ReadSome(MutableByteSpan out);

  // Reads exactly out.size() bytes; kClosed on premature end-of-stream.
  Status ReadExact(MutableByteSpan out);

  // Signals end-of-stream: readers drain buffered bytes then see EOF;
  // writers fail immediately.
  void Close();

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t buffered() const {
    MutexLock lock(mu_);
    return ring_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar readable_;
  CondVar writable_;
  RingBuffer ring_ AFS_GUARDED_BY(mu_);
  bool closed_ AFS_GUARDED_BY(mu_) = false;
};

// Binary event ("manual-reset" false): Signal wakes exactly one waiter.
// Mirrors the Win32 events the paper's implementation pairs with shared
// memory.
class Event {
 public:
  void Signal();
  // Blocks until signalled; consumes the signal.  Returns false if the
  // event was shut down.
  bool Wait();
  void Shutdown();

 private:
  Mutex mu_;
  CondVar cv_;
  unsigned pending_ AFS_GUARDED_BY(mu_) = 0;
  bool shutdown_ AFS_GUARDED_BY(mu_) = false;
};

}  // namespace afs::ipc
