// In-process shared-memory byte channel.  Appendix A.3 of the paper
// implements the AF_* data-transfer calls of the DLL-with-thread strategy
// "using events and shared memory"; ShmChannel is that transport: a bounded
// ring shared between the application thread and the injected sentinel
// thread, with exactly one user-level copy per side and no kernel
// involvement beyond futex waits.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "util/ring_buffer.hpp"

namespace afs::ipc {

class ShmChannel {
 public:
  explicit ShmChannel(std::size_t capacity = 64 * 1024) : ring_(capacity) {}

  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;

  // Writes all bytes, blocking while the ring is full.  Fails with kClosed
  // if the channel is closed before everything is accepted.
  Status Write(ByteSpan bytes);

  // Blocks until at least one byte is available or the write side closed;
  // returns 0 only at end-of-stream (closed and drained).
  Result<std::size_t> ReadSome(MutableByteSpan out);

  // Reads exactly out.size() bytes; kClosed on premature end-of-stream.
  Status ReadExact(MutableByteSpan out);

  // Signals end-of-stream: readers drain buffered bytes then see EOF;
  // writers fail immediately.
  void Close();

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t buffered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  RingBuffer ring_;
  bool closed_ = false;
};

// Binary event ("manual-reset" false): Signal wakes exactly one waiter.
// Mirrors the Win32 events the paper's implementation pairs with shared
// memory.
class Event {
 public:
  void Signal();
  // Blocks until signalled; consumes the signal.  Returns false if the
  // event was shut down.
  bool Wait();
  void Shutdown();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  unsigned pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace afs::ipc
