// Child-process management.  The process-based strategies launch the active
// part as a real OS process (paper Section 4.1); ChildProcess owns its
// lifetime.  Two launch modes:
//   - SpawnFunction: fork() and run a callable in the child — used by the
//     strategies, whose sentinel logic is registered in-process.
//   - SpawnExec: fork()+execv() of an external sentinel executable — used by
//     the sentineld example, matching the paper's literal model.
#pragma once

#include <sys/types.h>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"

namespace afs::ipc {

// How a child ended.  `signal` is 0 for a normal exit; for a signalled
// death `code` carries the conventional 128+signal encoding.
struct ExitStatus {
  int code = 0;
  int signal = 0;

  bool clean() const noexcept { return signal == 0 && code == 0; }
};

class ChildProcess {
 public:
  ChildProcess() noexcept = default;
  explicit ChildProcess(pid_t pid) noexcept : pid_(pid) {}
  ~ChildProcess();

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  bool valid() const noexcept { return pid_ > 0; }
  pid_t pid() const noexcept { return pid_; }

  // Blocks until the child exits; returns its exit code.  Idempotent —
  // subsequent calls return the first result.
  Result<int> Wait();

  // Non-blocking liveness probe: nullopt while the child still runs;
  // otherwise reaps (once) and returns how it ended.  This is the waitpid
  // arm of the supervisor's liveness protocol — a sentinel that died is
  // detected here without waiting for a pipe to report EPIPE.
  Result<std::optional<ExitStatus>> TryWait();

  // Bounded teardown: wait up to `grace` for a voluntary exit (sentinels
  // exit on pipe EOF), then escalate SIGTERM -> wait `grace` -> SIGKILL ->
  // wait `grace` -> as an absolute last resort a blocking reap (SIGKILL
  // makes that prompt).  A
  // wedged sentinel can therefore never block manager shutdown, and the
  // child is always reaped — no zombie survives this call.  The exit
  // status/signal is surfaced both in the return value and in a log line.
  ExitStatus Shutdown(Micros grace = Micros{500'000}) noexcept;

  // SIGKILLs the child if still running, then reaps it.
  void Kill() noexcept;

 private:
  // Reaps an already-waited status into the cached exit fields.
  void Absorb(int status) noexcept;

  pid_t pid_ = -1;
  bool reaped_ = false;
  int exit_code_ = 0;
  int exit_signal_ = 0;
};

// Thread-safe shared view of one child.  The supervisor's monitor thread
// polls liveness while the owning handle runs operations and eventually
// tears the child down; ChildProcess itself is single-threaded, so both
// sides go through this wrapper.
class ProcessWatch {
 public:
  explicit ProcessWatch(ChildProcess child) : child_(std::move(child)) {}

  pid_t pid() const;

  // Non-blocking: the exit summary once the child has died, else nullopt.
  // The result is sticky — after the first reap every call returns the
  // same summary.
  std::optional<ExitStatus> Poll();

  // Bounded TERM->KILL teardown (see ChildProcess::Shutdown).
  ExitStatus Shutdown(Micros grace = Micros{500'000});

  // Immediate SIGKILL + reap; used to force a wedged sentinel down so the
  // application sides of its pipes observe EOF.
  void Kill();

  // Blocking reap (clean-close path).
  Result<int> Wait();

 private:
  mutable Mutex mu_;
  ChildProcess child_ AFS_GUARDED_BY(mu_);
  std::optional<ExitStatus> exit_ AFS_GUARDED_BY(mu_);
};

// Forks and runs `body` in the child; the child exits with body's return
// value via _exit (no atexit handlers, no stack unwinding into the parent's
// state).  `body` must not touch parent-owned threads, which do not survive
// the fork.
Result<ChildProcess> SpawnFunction(std::function<int()> body);

// Forks and execs argv[0] with the given arguments.
Result<ChildProcess> SpawnExec(const std::vector<std::string>& argv);

// Installs SIG_IGN for SIGPIPE once per process.  Pipe-based strategies
// must see EPIPE as an error return, not a fatal signal.
void IgnoreSigpipe();

}  // namespace afs::ipc
