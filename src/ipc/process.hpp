// Child-process management.  The process-based strategies launch the active
// part as a real OS process (paper Section 4.1); ChildProcess owns its
// lifetime.  Two launch modes:
//   - SpawnFunction: fork() and run a callable in the child — used by the
//     strategies, whose sentinel logic is registered in-process.
//   - SpawnExec: fork()+execv() of an external sentinel executable — used by
//     the sentineld example, matching the paper's literal model.
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace afs::ipc {

class ChildProcess {
 public:
  ChildProcess() noexcept = default;
  explicit ChildProcess(pid_t pid) noexcept : pid_(pid) {}
  ~ChildProcess();

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  bool valid() const noexcept { return pid_ > 0; }
  pid_t pid() const noexcept { return pid_; }

  // Blocks until the child exits; returns its exit code.  Idempotent —
  // subsequent calls return the first result.
  Result<int> Wait();

  // SIGKILLs the child if still running, then reaps it.
  void Kill() noexcept;

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  int exit_code_ = 0;
};

// Forks and runs `body` in the child; the child exits with body's return
// value via _exit (no atexit handlers, no stack unwinding into the parent's
// state).  `body` must not touch parent-owned threads, which do not survive
// the fork.
Result<ChildProcess> SpawnFunction(std::function<int()> body);

// Forks and execs argv[0] with the given arguments.
Result<ChildProcess> SpawnExec(const std::vector<std::string>& argv);

// Installs SIG_IGN for SIGPIPE once per process.  Pipe-based strategies
// must see EPIPE as an error return, not a fatal signal.
void IgnoreSigpipe();

}  // namespace afs::ipc
