// RAII POSIX pipe endpoints.  The paper's process-based strategies attach
// anonymous pipes to the sentinel's standard input/output (Section 4.1);
// Pipe/PipeEnd are the equivalent, with the blocking read/write-exact
// helpers every strategy needs.
#pragma once

#include <cstddef>
#include <utility>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"

namespace afs::ipc {

// One end (read or write) of a pipe; owns the file descriptor.
class PipeEnd {
 public:
  PipeEnd() noexcept = default;
  explicit PipeEnd(int fd) noexcept : fd_(fd) {}
  ~PipeEnd() { Close(); }

  PipeEnd(PipeEnd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  PipeEnd& operator=(PipeEnd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  PipeEnd(const PipeEnd&) = delete;
  PipeEnd& operator=(const PipeEnd&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  // Releases ownership of the descriptor to the caller.
  int Release() noexcept { return std::exchange(fd_, -1); }

  void Close() noexcept;

  // Marks the descriptor close-on-exec.  Application-side ends must not
  // leak into exec'd sentinel children, or EOF never propagates.
  Status SetCloexec();

  // Single read(2); returns 0 at EOF (peer closed).
  Result<std::size_t> ReadSome(MutableByteSpan out);

  // Blocks until the descriptor is readable (data or EOF pending).  A
  // non-positive timeout waits forever; kTimeout when the deadline passes
  // first.  This is the deadline primitive under every bounded read path —
  // a wedged sentinel must cost the application a timeout, never a hang.
  Status WaitReadable(Micros timeout) const;

  // Non-blocking readability probe: true when data (or EOF) is already
  // pending, false when a read would block.  Lets a monitor thread drain
  // heartbeat frames without ever stalling on an idle pipe.
  Result<bool> Poll() const;

  // Blocks until the descriptor accepts bytes without blocking (POLLOUT).
  // A non-positive timeout waits forever; kTimeout when the deadline
  // passes first — the writer-side twin of WaitReadable, and the deadline
  // primitive under every bounded write path.
  Status WaitWritable(Micros timeout) const;

  // Toggles O_NONBLOCK.  Endpoints registered on an event loop (or using
  // the bounded transfer helpers below) run in non-blocking mode so a full
  // pipe surfaces as EAGAIN instead of a parked thread.
  Status SetNonblocking(bool enabled);

  // Reads exactly out.size() bytes or fails (kClosed on premature EOF).
  Status ReadExact(MutableByteSpan out);

  // Bounded variant: each wait for more bytes is capped by `timeout`
  // (non-positive = unbounded, identical to ReadExact above).
  Status ReadExact(MutableByteSpan out, Micros timeout);

  // Writes all bytes, retrying on short writes and EINTR.
  Status WriteAll(ByteSpan bytes);

  // Bounded variant: flips the descriptor to non-blocking for the
  // transfer; every EAGAIN waits at most `timeout` for POLLOUT
  // (non-positive = unbounded).  kTimeout means the peer stopped draining
  // — a wedged sentinel must cost the writer a timeout, never a hang.
  Status WriteAll(ByteSpan bytes, Micros timeout);

 private:
  int fd_ = -1;
};

// An anonymous pipe pair.
struct Pipe {
  PipeEnd read_end;
  PipeEnd write_end;

  static Result<Pipe> Create();
};

// True while at least one read end of the pipe whose write end is `write_fd`
// remains open (POLLERR on a pipe write end means every reader is gone).
// Instant, non-blocking; false on a bad descriptor.  This disambiguates the
// stream strategy's EOF: a finished pump still holds the app->sentinel read
// end, while a killed sentinel loses every descriptor at once.
bool PipeWriterHasReader(int write_fd) noexcept;

}  // namespace afs::ipc
