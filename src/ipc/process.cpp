#include "ipc/process.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hpp"

namespace afs::ipc {

ChildProcess::~ChildProcess() { Kill(); }

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      reaped_(std::exchange(other.reaped_, false)),
      exit_code_(other.exit_code_),
      exit_signal_(other.exit_signal_) {}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    Kill();
    pid_ = std::exchange(other.pid_, -1);
    reaped_ = std::exchange(other.reaped_, false);
    exit_code_ = other.exit_code_;
    exit_signal_ = other.exit_signal_;
  }
  return *this;
}

void ChildProcess::Absorb(int status) noexcept {
  reaped_ = true;
  if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
    exit_signal_ = 0;
  } else if (WIFSIGNALED(status)) {
    exit_signal_ = WTERMSIG(status);
    exit_code_ = 128 + exit_signal_;
  } else {
    exit_code_ = 128;
    exit_signal_ = 0;
  }
}

Result<int> ChildProcess::Wait() {
  if (!valid()) return InvalidArgumentError("wait on invalid child");
  if (reaped_) return exit_code_;
  int status = 0;
  while (true) {
    const pid_t r = ::waitpid(pid_, &status, 0);
    if (r == pid_) break;
    if (r < 0 && errno == EINTR) continue;
    return IoError(std::string("waitpid: ") + std::strerror(errno));
  }
  Absorb(status);
  return exit_code_;
}

Result<std::optional<ExitStatus>> ChildProcess::TryWait() {
  if (!valid()) return InvalidArgumentError("trywait on invalid child");
  if (reaped_) return std::optional<ExitStatus>({exit_code_, exit_signal_});
  int status = 0;
  while (true) {
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == 0) return std::optional<ExitStatus>();  // still running
    if (r == pid_) break;
    if (r < 0 && errno == EINTR) continue;
    return IoError(std::string("waitpid: ") + std::strerror(errno));
  }
  Absorb(status);
  return std::optional<ExitStatus>({exit_code_, exit_signal_});
}

ExitStatus ChildProcess::Shutdown(Micros grace) noexcept {
  if (!valid() || reaped_) return {exit_code_, exit_signal_};

  // Phase 0: give it `grace` to finish on its own (the normal case — the
  //          sentinel exits once its pipes report EOF).
  // Phase 1: SIGTERM, poll up to `grace`.
  // Phase 2: SIGKILL, poll up to `grace`, then a blocking reap — after a
  // SIGKILL that wait is prompt, and skipping it would leak a zombie.
  const auto poll_until = [&](Micros budget) noexcept {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(budget.count());
    while (true) {
      int status = 0;
      const pid_t r = ::waitpid(pid_, &status, WNOHANG);
      if (r == pid_) {
        Absorb(status);
        return true;
      }
      if (r < 0 && errno != EINTR) return false;  // ECHILD: nothing to reap
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  const char* how = "exited";
  if (!poll_until(grace)) {
    how = "terminated";
    ::kill(pid_, SIGTERM);
    if (!poll_until(grace)) {
      how = "killed";
      ::kill(pid_, SIGKILL);
      if (!poll_until(grace)) {
        int status = 0;
        while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
        }
        Absorb(status);
      }
    }
  }
  if (!reaped_) {
    // waitpid reported ECHILD (reaped elsewhere / PID gone): record an
    // unknown-but-dead summary rather than looping.
    reaped_ = true;
    exit_code_ = 128;
    exit_signal_ = 0;
  }
  AFS_LOG(kInfo, "afs.ipc") << "sentinel pid " << pid_ << " " << how
                            << ": exit code " << exit_code_ << ", signal "
                            << exit_signal_;
  return {exit_code_, exit_signal_};
}

void ChildProcess::Kill() noexcept {
  if (!valid() || reaped_) {
    pid_ = reaped_ ? pid_ : -1;
    return;
  }
  // Offer a clean exit first (sentinels exit on pipe EOF), then force.
  int status = 0;
  pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    Absorb(status);
    return;
  }
  ::kill(pid_, SIGKILL);
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  Absorb(status);
}

pid_t ProcessWatch::pid() const {
  MutexLock lock(mu_);
  return child_.pid();
}

std::optional<ExitStatus> ProcessWatch::Poll() {
  MutexLock lock(mu_);
  if (exit_.has_value()) return exit_;
  if (!child_.valid()) return std::nullopt;
  Result<std::optional<ExitStatus>> probe = child_.TryWait();
  if (probe.ok() && probe->has_value()) exit_ = **probe;
  return exit_;
}

ExitStatus ProcessWatch::Shutdown(Micros grace) {
  MutexLock lock(mu_);
  if (exit_.has_value()) return *exit_;
  const ExitStatus ended = child_.Shutdown(grace);
  exit_ = ended;
  return ended;
}

void ProcessWatch::Kill() {
  MutexLock lock(mu_);
  if (exit_.has_value()) return;
  child_.Kill();
  Result<std::optional<ExitStatus>> probe = child_.TryWait();
  if (probe.ok() && probe->has_value()) exit_ = **probe;
}

Result<int> ProcessWatch::Wait() {
  MutexLock lock(mu_);
  if (exit_.has_value()) return exit_->code;
  Result<int> code = child_.Wait();
  if (code.ok()) {
    Result<std::optional<ExitStatus>> probe = child_.TryWait();
    if (probe.ok() && probe->has_value()) exit_ = **probe;
  }
  return code;
}

Result<ChildProcess> SpawnFunction(std::function<int()> body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    int code = 0;
    // The child must never unwind into the parent's test/benchmark harness.
    try {
      code = body();
    } catch (...) {
      code = 113;
    }
    ::_exit(code);
  }
  return ChildProcess(pid);
}

Result<ChildProcess> SpawnExec(const std::vector<std::string>& argv) {
  if (argv.empty()) return InvalidArgumentError("empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  // execv's argv is char* const[] for C compatibility; POSIX guarantees the
  // strings are not modified, so shedding const here is safe.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast)
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  return ChildProcess(pid);
}

void IgnoreSigpipe() {
  static const int once = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)once;
}

}  // namespace afs::ipc
