#include "ipc/process.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

namespace afs::ipc {

ChildProcess::~ChildProcess() { Kill(); }

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      reaped_(std::exchange(other.reaped_, false)),
      exit_code_(other.exit_code_) {}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    Kill();
    pid_ = std::exchange(other.pid_, -1);
    reaped_ = std::exchange(other.reaped_, false);
    exit_code_ = other.exit_code_;
  }
  return *this;
}

Result<int> ChildProcess::Wait() {
  if (!valid()) return InvalidArgumentError("wait on invalid child");
  if (reaped_) return exit_code_;
  int status = 0;
  while (true) {
    const pid_t r = ::waitpid(pid_, &status, 0);
    if (r == pid_) break;
    if (r < 0 && errno == EINTR) continue;
    return IoError(std::string("waitpid: ") + std::strerror(errno));
  }
  reaped_ = true;
  exit_code_ = WIFEXITED(status) ? WEXITSTATUS(status)
                                 : 128 + (WIFSIGNALED(status)
                                              ? WTERMSIG(status)
                                              : 0);
  return exit_code_;
}

void ChildProcess::Kill() noexcept {
  if (!valid() || reaped_) {
    pid_ = reaped_ ? pid_ : -1;
    return;
  }
  // Offer a clean exit first (sentinels exit on pipe EOF), then force.
  int status = 0;
  pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r != pid_) {
    ::kill(pid_, SIGKILL);
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
  }
  reaped_ = true;
}

Result<ChildProcess> SpawnFunction(std::function<int()> body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    int code = 0;
    // The child must never unwind into the parent's test/benchmark harness.
    try {
      code = body();
    } catch (...) {
      code = 113;
    }
    ::_exit(code);
  }
  return ChildProcess(pid);
}

Result<ChildProcess> SpawnExec(const std::vector<std::string>& argv) {
  if (argv.empty()) return InvalidArgumentError("empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  // execv's argv is char* const[] for C compatibility; POSIX guarantees the
  // strings are not modified, so shedding const here is safe.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast)
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  return ChildProcess(pid);
}

void IgnoreSigpipe() {
  static const int once = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)once;
}

}  // namespace afs::ipc
