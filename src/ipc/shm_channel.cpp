#include "ipc/shm_channel.hpp"

namespace afs::ipc {

Status ShmChannel::Write(ByteSpan bytes) {
  std::size_t done = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (done < bytes.size()) {
    writable_.wait(lock, [&] { return closed_ || !ring_.full(); });
    if (closed_) return ClosedError("shm channel closed");
    done += ring_.Write(bytes.subspan(done));
    readable_.notify_one();
  }
  return Status::Ok();
}

Result<std::size_t> ShmChannel::ReadSome(MutableByteSpan out) {
  if (out.empty()) return std::size_t{0};
  std::unique_lock<std::mutex> lock(mu_);
  readable_.wait(lock, [&] { return closed_ || !ring_.empty(); });
  if (ring_.empty()) return std::size_t{0};  // closed and drained
  const std::size_t n = ring_.Read(out);
  writable_.notify_one();
  return n;
}

Status ShmChannel::ReadExact(MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         ReadSome(out.subspan(done, out.size() - done)));
    if (n == 0) return ClosedError("shm channel ended mid-message");
    done += n;
  }
  return Status::Ok();
}

void ShmChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  readable_.notify_all();
  writable_.notify_all();
}

void Event::Signal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  cv_.notify_one();
}

bool Event::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return pending_ > 0 || shutdown_; });
  if (pending_ == 0) return false;
  --pending_;
  return true;
}

void Event::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

}  // namespace afs::ipc
