#include "ipc/shm_channel.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"

namespace afs::ipc {

Status ShmChannel::Write(ByteSpan bytes) {
  static obs::Counter& written =
      obs::Registry::Global().GetCounter("ipc.shm.write.bytes");
  const std::size_t cap = data_.size();
  std::size_t done = 0;
  while (done < bytes.size()) {
    // Reserve: claim the free region after the committed data.  Reads move
    // only head_ and leave the tail (head_ + size_) invariant, so the
    // claimed region stays ours while unlocked.
    std::size_t start = 0;
    std::size_t n = 0;
    {
      MutexLock lock(mu_);
      // afs-lint: allow(nonblocking: the paired reader drains, Close() wakes)
      while (!closed_ && size_ == cap) writable_.Wait(mu_);
      if (closed_) return ClosedError("shm channel closed");
      start = (head_ + size_) % cap;
      n = std::min(bytes.size() - done, cap - size_);
    }
    // The bulk copy happens outside the lock — the reader cannot observe
    // the claimed region until the commit below publishes it.
    const std::size_t first = std::min(n, cap - start);
    std::memcpy(data_.data() + start, bytes.data() + done, first);
    if (n > first) {
      std::memcpy(data_.data(), bytes.data() + done + first, n - first);
    }
    {
      // Commit: publish the claimed bytes.
      MutexLock lock(mu_);
      if (closed_) return ClosedError("shm channel closed");
      size_ += n;
    }
    readable_.NotifyOne();
    done += n;
  }
  written.Add(done);
  return Status::Ok();
}

Result<std::size_t> ShmChannel::ReadSome(MutableByteSpan out) {
  static obs::Counter& read =
      obs::Registry::Global().GetCounter("ipc.shm.read.bytes");
  if (out.empty()) return std::size_t{0};
  const std::size_t cap = data_.size();
  // Reserve: claim the front of the committed region.  The writer only
  // appends past the tail, so these bytes are stable while unlocked.
  std::size_t start = 0;
  std::size_t n = 0;
  {
    MutexLock lock(mu_);
    // afs-lint: allow(nonblocking: the paired writer produces, Close() wakes)
    while (!closed_ && size_ == 0) readable_.Wait(mu_);
    if (size_ == 0) return std::size_t{0};  // closed and drained
    start = head_;
    n = std::min(out.size(), size_);
  }
  const std::size_t first = std::min(n, cap - start);
  std::memcpy(out.data(), data_.data() + start, first);
  if (n > first) {
    std::memcpy(out.data() + first, data_.data(), n - first);
  }
  {
    // Commit: release the consumed region to the writer.
    MutexLock lock(mu_);
    head_ = (head_ + n) % cap;
    size_ -= n;
  }
  writable_.NotifyOne();
  read.Add(n);
  return n;
}

Status ShmChannel::ReadExact(MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         ReadSome(out.subspan(done, out.size() - done)));
    if (n == 0) return ClosedError("shm channel ended mid-message");
    done += n;
  }
  return Status::Ok();
}

void ShmChannel::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  readable_.NotifyAll();
  writable_.NotifyAll();
}

void Event::Signal() {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  cv_.NotifyOne();
}

bool Event::Wait() {
  MutexLock lock(mu_);
  while (pending_ == 0 && !shutdown_) cv_.Wait(mu_);
  if (pending_ == 0) return false;
  --pending_;
  return true;
}

void Event::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

}  // namespace afs::ipc
