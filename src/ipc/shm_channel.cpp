#include "ipc/shm_channel.hpp"

#include "obs/metrics.hpp"

namespace afs::ipc {

Status ShmChannel::Write(ByteSpan bytes) {
  static obs::Counter& written =
      obs::Registry::Global().GetCounter("ipc.shm.write.bytes");
  std::size_t done = 0;
  MutexLock lock(mu_);
  while (done < bytes.size()) {
    while (!closed_ && ring_.full()) writable_.Wait(mu_);
    if (closed_) return ClosedError("shm channel closed");
    done += ring_.Write(bytes.subspan(done));
    readable_.NotifyOne();
  }
  written.Add(done);
  return Status::Ok();
}

Result<std::size_t> ShmChannel::ReadSome(MutableByteSpan out) {
  static obs::Counter& read =
      obs::Registry::Global().GetCounter("ipc.shm.read.bytes");
  if (out.empty()) return std::size_t{0};
  MutexLock lock(mu_);
  while (!closed_ && ring_.empty()) readable_.Wait(mu_);
  if (ring_.empty()) return std::size_t{0};  // closed and drained
  const std::size_t n = ring_.Read(out);
  writable_.NotifyOne();
  read.Add(n);
  return n;
}

Status ShmChannel::ReadExact(MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         ReadSome(out.subspan(done, out.size() - done)));
    if (n == 0) return ClosedError("shm channel ended mid-message");
    done += n;
  }
  return Status::Ok();
}

void ShmChannel::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  readable_.NotifyAll();
  writable_.NotifyAll();
}

void Event::Signal() {
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  cv_.NotifyOne();
}

bool Event::Wait() {
  MutexLock lock(mu_);
  while (pending_ == 0 && !shutdown_) cv_.Wait(mu_);
  if (pending_ == 0) return false;
  --pending_;
  return true;
}

void Event::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

}  // namespace afs::ipc
