// Cross-process shared-memory ring — the zero-copy bulk data plane for the
// process strategies.
//
// ShmChannel (ipc/shm_channel.hpp) realizes the paper's Appendix A.3
// "events and shared memory" transport *inside one process*; ShmRing is the
// same idea generalized across a protection-domain boundary: one anonymous
// memory file (memfd_create, shm_open fallback) mapped by both the
// application and its sentinel, holding two single-producer/single-consumer
// byte rings — one per direction — whose head/tail words are C++ atomics in
// the shared mapping and whose blocking is futex waits on a per-direction
// eventcount word.  A bulk payload crosses the domain boundary with exactly
// one user-level copy per side and no kernel data movement, which is what
// closes most of the Figure 6 gap between the process strategies and the
// DLL series (docs/SHM_DATA_PLANE.md).
//
// Concurrency contract: per direction, at most one writer thread and one
// reader thread at a time (the link/endpoint layers already serialize to
// that).  The two directions are fully independent.
//
// Liveness: every wait is a chain of bounded futex slices against the
// caller's deadline — a peer that dies without closing costs the survivor
// kTimeout, never a parked thread.  A peer that closes (CloseDir/CloseAll,
// or ~ShmRing) wakes the other side immediately: readers drain buffered
// bytes then see EOF, writers fail with kClosed.
#pragma once

#include <cstddef>
#include <memory>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"

namespace afs::ipc {

class ShmRing {
 public:
  // Direction indices: the application produces into kToSentinel and
  // consumes from kToApp; the sentinel does the opposite.
  static constexpr int kToSentinel = 0;
  static constexpr int kToApp = 1;

  // Creates a fresh ring region sized `ring_bytes` per direction (rounded
  // up to a power of two, clamped to [4 KiB, 64 MiB]) backed by an
  // anonymous memory file.  The descriptor is inheritable (no close-on-exec)
  // so fork- and exec-mode sentinels can attach; see docs/SHM_DATA_PLANE.md
  // for how it travels at link setup.
  static Result<std::shared_ptr<ShmRing>> Create(std::size_t ring_bytes);

  // Maps an existing ring region from an inherited descriptor, taking
  // ownership of `fd`.  kProtocolError when the header does not validate
  // (wrong magic/version, size mismatch) — the caller falls back to pipes.
  static Result<std::shared_ptr<ShmRing>> Attach(int fd);

  ~ShmRing();

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  // The backing descriptor (for fd passing at link setup).
  int fd() const noexcept { return fd_; }

  // Capacity of one direction's ring in bytes.
  std::size_t ring_bytes() const noexcept;

  // Writes all of `bytes` into direction `dir`, futex-waiting (in bounded
  // slices against `timeout`; non-positive = unbounded) while the ring is
  // full.  kClosed if the direction is closed, kTimeout when the reader
  // stopped draining.  Payloads larger than the ring capacity stream
  // through it; the concurrent reader provides the space.
  Status Write(int dir, ByteSpan bytes, Micros timeout);

  // Blocks (bounded by `timeout`) until direction `dir` has at least one
  // byte or its write side closed; returns 0 only at end-of-stream (closed
  // and drained).
  Result<std::size_t> ReadSome(int dir, MutableByteSpan out, Micros timeout);

  // Reads exactly out.size() bytes; kClosed on premature end-of-stream.
  Status ReadExact(int dir, MutableByteSpan out, Micros timeout);

  // Signals end-of-stream on one direction: readers drain then see EOF,
  // writers fail with kClosed.  Idempotent.
  void CloseDir(int dir);

  // Closes both directions (link teardown).
  void CloseAll();

  bool dir_closed(int dir) const;

  // Bytes currently buffered (produced, not yet consumed) in `dir`.
  std::size_t buffered(int dir) const;

 private:
  struct Region;

  ShmRing(int fd, void* map, std::size_t map_len) noexcept
      : fd_(fd), map_(map), map_len_(map_len) {}

  Region* region() const noexcept;

  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
};

}  // namespace afs::ipc
