#include "ipc/pipe.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "common/faultpoint.hpp"

namespace afs::ipc {

void PipeEnd::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status PipeEnd::SetCloexec() {
  if (!valid()) return ClosedError("cloexec on closed pipe end");
  const int flags = ::fcntl(fd_, F_GETFD);
  if (flags < 0 || ::fcntl(fd_, F_SETFD, flags | FD_CLOEXEC) != 0) {
    return IoError(std::string("fcntl FD_CLOEXEC: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::size_t> PipeEnd::ReadSome(MutableByteSpan out) {
  if (!valid()) return ClosedError("read on closed pipe end");
  AFS_FAULT_POINT("ipc.pipe.read");
  // A truncate fault shortens the transfer; truncating to zero makes the
  // caller observe a premature EOF, the classic dead-peer shape.
  out = out.first(AFS_FAULT_TRUNCATE("ipc.pipe.read", out.size()));
  while (true) {
    const ssize_t n = ::read(fd_, out.data(), out.size());
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return IoError(std::string("pipe read: ") + std::strerror(errno));
  }
}

Status PipeEnd::WaitReadable(Micros timeout) const {
  if (!valid()) return ClosedError("wait on closed pipe end");
  if (timeout.count() <= 0) return Status::Ok();  // unbounded read follows
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  // Round up so sub-millisecond timeouts do not busy-spin at zero.
  const int millis = static_cast<int>((timeout.count() + 999) / 1000);
  while (true) {
    const int rc = ::poll(&pfd, 1, millis);
    if (rc > 0) return Status::Ok();  // readable, EOF, or error — read sees it
    if (rc == 0) return TimeoutError("pipe read timed out");
    if (errno == EINTR) continue;
    return IoError(std::string("pipe poll: ") + std::strerror(errno));
  }
}

Status PipeEnd::WaitWritable(Micros timeout) const {
  if (!valid()) return ClosedError("wait on closed pipe end");
  if (timeout.count() <= 0) return Status::Ok();  // unbounded write follows
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLOUT;
  const int millis = static_cast<int>((timeout.count() + 999) / 1000);
  while (true) {
    const int rc = ::poll(&pfd, 1, millis);
    if (rc > 0) return Status::Ok();  // writable or error — the write sees it
    if (rc == 0) return TimeoutError("pipe write timed out");
    if (errno == EINTR) continue;
    return IoError(std::string("pipe poll: ") + std::strerror(errno));
  }
}

Status PipeEnd::SetNonblocking(bool enabled) {
  if (!valid()) return ClosedError("fcntl on closed pipe end");
  const int flags = ::fcntl(fd_, F_GETFL);
  if (flags < 0) {
    return IoError(std::string("fcntl F_GETFL: ") + std::strerror(errno));
  }
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (next != flags && ::fcntl(fd_, F_SETFL, next) != 0) {
    return IoError(std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
  return Status::Ok();
}

bool PipeWriterHasReader(int write_fd) noexcept {
  if (write_fd < 0) return false;
  pollfd pfd{};
  pfd.fd = write_fd;
  pfd.events = 0;  // POLLERR is reported regardless of the event mask
  while (true) {
    const int rc = ::poll(&pfd, 1, 0);
    if (rc >= 0) return (pfd.revents & (POLLERR | POLLNVAL)) == 0;
    if (errno == EINTR) continue;
    return false;
  }
}

Result<bool> PipeEnd::Poll() const {
  if (!valid()) return ClosedError("poll on closed pipe end");
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  while (true) {
    const int rc = ::poll(&pfd, 1, 0);
    if (rc > 0) return true;  // readable, EOF, or error — a read resolves it
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return IoError(std::string("pipe poll: ") + std::strerror(errno));
  }
}

Status PipeEnd::ReadExact(MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         ReadSome(out.subspan(done, out.size() - done)));
    if (n == 0) return ClosedError("pipe peer closed mid-message");
    done += n;
  }
  return Status::Ok();
}

Status PipeEnd::ReadExact(MutableByteSpan out, Micros timeout) {
  if (timeout.count() <= 0) return ReadExact(out);
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_RETURN_IF_ERROR(WaitReadable(timeout));
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         ReadSome(out.subspan(done, out.size() - done)));
    if (n == 0) return ClosedError("pipe peer closed mid-message");
    done += n;
  }
  return Status::Ok();
}

Status PipeEnd::WriteAll(ByteSpan bytes) {
  if (!valid()) return ClosedError("write on closed pipe end");
  AFS_FAULT_POINT("ipc.pipe.write");
  // A truncate fault ships a partial payload and then fails as if the
  // peer vanished mid-message — the receiver sees a torn frame.
  const std::size_t keep = AFS_FAULT_TRUNCATE("ipc.pipe.write", bytes.size());
  const bool torn = keep < bytes.size();
  if (torn) bytes = bytes.first(keep);
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) return ClosedError("pipe peer closed");
      return IoError(std::string("pipe write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  if (torn) return ClosedError("pipe peer closed mid-write (fault)");
  return Status::Ok();
}

Status PipeEnd::WriteAll(ByteSpan bytes, Micros timeout) {
  if (timeout.count() <= 0) return WriteAll(bytes);
  if (!valid()) return ClosedError("write on closed pipe end");
  AFS_FAULT_POINT("ipc.pipe.write");
  // Same torn-write fault semantics as the unbounded path: ship a partial
  // payload, then fail as if the peer vanished mid-message.
  const std::size_t keep = AFS_FAULT_TRUNCATE("ipc.pipe.write", bytes.size());
  const bool torn = keep < bytes.size();
  if (torn) bytes = bytes.first(keep);

  // O_NONBLOCK for the transfer so a full pipe surfaces as EAGAIN (a
  // blocking pipe write parks until the whole payload fits), restored on
  // every exit so surrounding blocking users are unaffected.
  AFS_RETURN_IF_ERROR(SetNonblocking(true));
  Status result = Status::Ok();
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result = WaitWritable(timeout);
      if (!result.ok()) break;
      continue;
    }
    result = errno == EPIPE
                 ? ClosedError("pipe peer closed")
                 : IoError(std::string("pipe write: ") + std::strerror(errno));
    break;
  }
  const Status restored = SetNonblocking(false);
  if (result.ok()) result = restored;
  if (!result.ok()) return result;
  if (torn) return ClosedError("pipe peer closed mid-write (fault)");
  return Status::Ok();
}

Result<Pipe> Pipe::Create() {
  int fds[2];
  if (::pipe(fds) != 0) {
    return IoError(std::string("pipe: ") + std::strerror(errno));
  }
  Pipe p;
  p.read_end = PipeEnd(fds[0]);
  p.write_end = PipeEnd(fds[1]);
  return p;
}

}  // namespace afs::ipc
