#include "ipc/pipe.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace afs::ipc {

void PipeEnd::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status PipeEnd::SetCloexec() {
  if (!valid()) return ClosedError("cloexec on closed pipe end");
  const int flags = ::fcntl(fd_, F_GETFD);
  if (flags < 0 || ::fcntl(fd_, F_SETFD, flags | FD_CLOEXEC) != 0) {
    return IoError(std::string("fcntl FD_CLOEXEC: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::size_t> PipeEnd::ReadSome(MutableByteSpan out) {
  if (!valid()) return ClosedError("read on closed pipe end");
  while (true) {
    const ssize_t n = ::read(fd_, out.data(), out.size());
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return IoError(std::string("pipe read: ") + std::strerror(errno));
  }
}

Status PipeEnd::ReadExact(MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         ReadSome(out.subspan(done, out.size() - done)));
    if (n == 0) return ClosedError("pipe peer closed mid-message");
    done += n;
  }
  return Status::Ok();
}

Status PipeEnd::WriteAll(ByteSpan bytes) {
  if (!valid()) return ClosedError("write on closed pipe end");
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) return ClosedError("pipe peer closed");
      return IoError(std::string("pipe write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<Pipe> Pipe::Create() {
  int fds[2];
  if (::pipe(fds) != 0) {
    return IoError(std::string("pipe: ") + std::strerror(errno));
  }
  Pipe p;
  p.read_end = PipeEnd(fds[0]);
  p.write_end = PipeEnd(fds[1]);
  return p;
}

}  // namespace afs::ipc
