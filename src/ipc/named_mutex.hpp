// Cross-process named mutex backed by an fcntl(2) file lock.  Paper
// Section 2.2: when multiple user processes open the same active file,
// multiple sentinels start and "synchronize amongst themselves … using
// semaphores, shared memory or other forms of IPC".  NamedMutex is that
// synchronization primitive; the locking-log sentinel serializes appends
// with it.
#pragma once

#include <string>

#include "common/status.hpp"

namespace afs::ipc {

class NamedMutex {
 public:
  // The name is materialized as a lock file at `<dir>/<name>.lock`.
  NamedMutex(std::string directory, std::string name);
  ~NamedMutex();

  NamedMutex(const NamedMutex&) = delete;
  NamedMutex& operator=(const NamedMutex&) = delete;
  NamedMutex(NamedMutex&& other) noexcept;
  NamedMutex& operator=(NamedMutex&& other) noexcept;

  // Blocks until the lock is acquired.  Process-scoped: recursive
  // acquisition from the same process deadlocks by design (matching a
  // non-recursive mutex).
  Status Lock();

  // Returns kBusy without blocking when another process holds the lock.
  Status TryLock();

  Status Unlock();

  bool held() const noexcept { return held_; }
  const std::string& path() const noexcept { return path_; }

 private:
  Status EnsureOpen();
  void CloseFd() noexcept;

  std::string path_;
  int fd_ = -1;
  bool held_ = false;
};

// RAII guard.
class NamedMutexGuard {
 public:
  explicit NamedMutexGuard(NamedMutex& mutex) : mutex_(mutex) {
    status_ = mutex_.Lock();
  }
  ~NamedMutexGuard() {
    // afs-lint: allow(status-discard: destructors cannot propagate; Lock succeeded)
    if (status_.ok()) (void)mutex_.Unlock();
  }
  NamedMutexGuard(const NamedMutexGuard&) = delete;
  NamedMutexGuard& operator=(const NamedMutexGuard&) = delete;

  const Status& status() const noexcept { return status_; }

 private:
  NamedMutex& mutex_;
  Status status_;
};

}  // namespace afs::ipc
