// Length-prefixed message framing over pipe ends.  The process-plus-control
// strategy sends typed commands ("read 50", "write 30", …) over the control
// pipe; frames give those commands boundaries on a byte-stream transport.
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ipc/pipe.hpp"

namespace afs::ipc {

// Maximum accepted frame payload.  Large enough for any control message or
// data block the strategies move; bounds memory on a corrupt length prefix.
inline constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

// Writes a u32 little-endian length followed by the payload.
Status WriteFrame(PipeEnd& pipe, ByteSpan payload);

// Reads one frame; kClosed at clean EOF (no partial frame read), kProtocol
// on oversized length, kClosed on truncation mid-frame.
Result<Buffer> ReadFrame(PipeEnd& pipe);

// Deadline-aware variant: waits up to `timeout` for the frame to *start*
// arriving (kTimeout otherwise), then reads it to completion.  A
// non-positive timeout blocks forever, same as the plain overload.
Result<Buffer> ReadFrame(PipeEnd& pipe, Micros timeout);

}  // namespace afs::ipc
