// Length-prefixed message framing over pipe ends.  The process-plus-control
// strategy sends typed commands ("read 50", "write 30", …) over the control
// pipe; frames give those commands boundaries on a byte-stream transport.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ipc/pipe.hpp"

namespace afs::ipc {

// Maximum accepted frame payload.  Large enough for any control message or
// data block the strategies move; bounds memory on a corrupt length prefix.
inline constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

// Writes a u32 little-endian length followed by the payload.
Status WriteFrame(PipeEnd& pipe, ByteSpan payload);

// Bounded variant: every stall against a full pipe waits at most `timeout`
// (kTimeout when the peer stops draining); non-positive = unbounded.
Status WriteFrame(PipeEnd& pipe, ByteSpan payload, Micros timeout);

// Reads one frame; kClosed at clean EOF (no partial frame read), kProtocol
// on oversized length, kClosed on truncation mid-frame.
Result<Buffer> ReadFrame(PipeEnd& pipe);

// Deadline-aware variant: waits up to `timeout` for the frame to *start*
// arriving (kTimeout otherwise), then reads it to completion.  A
// non-positive timeout blocks forever, same as the plain overload.
Result<Buffer> ReadFrame(PipeEnd& pipe, Micros timeout);

// Incremental frame reassembly for event-loop transports: feed whatever
// bytes arrived (Append), pop complete frames (Next).  The push-mode twin
// of ReadFrame — a readiness callback can never block waiting for the rest
// of a frame, so partial frames accumulate here between wakeups.
class FrameDecoder {
 public:
  // Buffers `bytes` (an arbitrary slice of the stream, frame-aligned or
  // not).  kProtocol once an in-progress frame's length prefix exceeds
  // kMaxFrameBytes; the decoder is then poisoned and must be discarded.
  Status Append(ByteSpan bytes);

  // Pops the next complete frame, or std::nullopt when more bytes are
  // needed.  Call in a loop: one Append may complete several frames.
  std::optional<Buffer> Next();

  // Bytes buffered but not yet returned (partial frame).  A non-zero value
  // at connection EOF means the peer died mid-frame.
  std::size_t pending_bytes() const noexcept { return buffer_.size(); }

 private:
  Buffer buffer_;
  bool poisoned_ = false;
};

}  // namespace afs::ipc
