#include "core/loop_host.hpp"

#include <cstdlib>
#include <utility>

#include "common/faultpoint.hpp"
#include "core/supervisor.hpp"
#include "obs/metrics.hpp"
#include "sentinel/dispatch.hpp"

namespace afs::core {

using sentinel::ControlMessage;
using sentinel::ControlOp;
using sentinel::ControlResponse;

namespace {

obs::Gauge& SessionsGauge() {
  static obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("core.loop.sessions");
  return gauge;
}

ControlResponse StatusResponse(Status status) {
  ControlResponse response;
  response.status = std::move(status);
  return response;
}

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long parsed = std::strtol(raw, nullptr, 10);
  return parsed > 0 ? static_cast<int>(parsed) : fallback;
}

// Unsigned env knob where an explicit 0 is meaningful ("unlimited"), so
// only an unset/empty variable falls back.
std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

}  // namespace

// ---------------------------------------------------------------------
// LoopSession

LoopSession::LoopSession(EventLoop& shard,
                         std::unique_ptr<sentinel::Sentinel> sent,
                         sentinel::SentinelContext ctx, CacheAssembly cache)
    : shard_(shard),
      sentinel_(std::move(sent)),
      ctx_(std::move(ctx)),
      cache_(std::move(cache)) {
  ctx_.cache = cache_.store.get();
  SessionsGauge().Add(1);
}

LoopSession::~LoopSession() {
  // Backstop for sessions torn down without ever reaching the shard (open
  // that failed before posting).  Normal paths released on the loop thread.
  sentinel_.reset();
  SessionsGauge().Add(-1);
}

void LoopSession::set_response_timeout(Micros timeout) {
  MutexLock lock(mu_);
  response_timeout_ = timeout;
}

void LoopSession::set_lease(std::shared_ptr<Lease> lease, Micros interval) {
  lease_ = std::move(lease);
  heartbeat_interval_ = interval;
}

void LoopSession::set_admission(AdmissionGate* shard_gate,
                                const AdmissionGate::Limits& link_limits,
                                OverloadPolicy policy) {
  shard_gate_ = shard_gate;
  overload_ = policy;
  if (link_limits.max_queue_bytes != 0 || link_limits.max_inflight != 0 ||
      link_limits.rate_bytes_per_second != 0) {
    link_gate_ = std::make_unique<AdmissionGate>(link_limits);
  }
}

Status LoopSession::AdmitOp(std::size_t cost) {
  Micros block_bound{0};
  {
    MutexLock lock(mu_);
    block_bound = response_timeout_;
  }
  if (link_gate_ != nullptr) {
    AFS_RETURN_IF_ERROR(
        AdmitWithPolicy(*link_gate_, cost, overload_, block_bound));
  }
  if (shard_gate_ != nullptr) {
    Status shard = AdmitWithPolicy(*shard_gate_, cost, overload_, block_bound);
    if (!shard.ok()) {
      if (link_gate_ != nullptr) link_gate_->Release(cost);
      return shard;
    }
  }
  return Status::Ok();
}

void LoopSession::ReleaseAdmission() {
  std::size_t cost;
  {
    MutexLock lock(mu_);
    cost = admitted_cost_;
    admitted_cost_ = 0;
  }
  if (cost == 0) return;
  if (link_gate_ != nullptr) link_gate_->Release(cost);
  if (shard_gate_ != nullptr) shard_gate_->Release(cost);
}

Status LoopSession::AF_SendControl(const ControlMessage& message) {
  AFS_FAULT_POINT("core.link.send");
  // Admission precedes the mailbox: a shed op fails with kOverloaded
  // without ever occupying the slot (no frame, no state change), so the
  // handle survives to retry it after the carried hint.
  const bool gated = (shard_gate_ != nullptr || link_gate_ != nullptr) &&
                     !AdmissionExempt(message.op);
  const std::size_t cost = gated ? ControlMessageCost(message) : 0;
  if (gated) AFS_RETURN_IF_ERROR(AdmitOp(cost));
  MutexLock lock(mu_);
  while (state_ != SlotState::kIdle && !closed_) {
    // The shard frees the slot per command, and ForceDown/Shutdown wake
    // every waiter with kClosed when the supervisor declares it dead.
    // afs-lint: allow(nonblocking: bounded by the slot protocol + ForceDown)
    cv_.Wait(mu_);
  }
  if (closed_) {
    admitted_cost_ = cost;
    lock.Unlock();
    ReleaseAdmission();
    return ClosedError("loop session closed");
  }
  admitted_cost_ = cost;
  message_ = message;  // inline lanes pass by reference (spans)
  state_ = SlotState::kCommand;
  lock.Unlock();
  // The doorbell, not a dedicated thread: the command is a task on the
  // session's shard, batched with every other ready session's commands.
  // Bound, not a lambda: Service() runs on the loop thread, and the member
  // pointer keeps its body out of this caller's non-blocking call graph.
  if (!shard_.TryPost(std::bind(&LoopSession::Service, shared_from_this()))) {
    if (!shard_.running()) {
      // Loop already wound down: keep the legacy inline-teardown path.
      shard_.Post(std::bind(&LoopSession::Service, shared_from_this()));
      return Status::Ok();
    }
    // The shard's task-count backstop (AFS_LOOP_QUEUE_LIMIT) tripped:
    // undo the slot claim and shed.  Nothing was posted, so the stream
    // stays synchronized.
    {
      MutexLock relock(mu_);
      if (state_ == SlotState::kCommand) state_ = SlotState::kIdle;
    }
    ReleaseAdmission();
    cv_.NotifyAll();
    constexpr std::int64_t kQueueFullHintMs = 5;
    overload_metrics::RecordShed(Micros{kQueueFullHintMs * 1000});
    return OverloadedError("loop shard run queue full", kQueueFullHintMs);
  }
  return Status::Ok();
}

Result<ControlResponse> LoopSession::AF_GetResponse() {
  AFS_FAULT_POINT("core.link.recv");
  MutexLock lock(mu_);
  const bool bounded = response_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(response_timeout_.count());
  while (state_ != SlotState::kResponse && !closed_) {
    if (!bounded) {
      // Unbounded only when the operator set op_timeout_ms=0 to opt out of
      // deadlines; ForceDown still wakes it with kClosed.
      // afs-lint: allow(nonblocking: operator opted out of the deadline)
      cv_.Wait(mu_);
    } else if (!cv_.WaitUntil(mu_, deadline)) {
      if (state_ == SlotState::kResponse || closed_) {
        break;  // answered (or closed) right at the wire
      }
      return TimeoutError("loop shard did not respond");
    }
  }
  // A delivered response outranks the closed latch: the close
  // acknowledgement and the failed-open banner both arrive with the latch
  // already set and must not be dropped.
  if (state_ != SlotState::kResponse) return ClosedError("loop session closed");
  ControlResponse response = std::move(response_);
  state_ = SlotState::kIdle;
  lock.Unlock();
  cv_.NotifyAll();
  return response;
}

void LoopSession::ForceDown() {
  bool post_release = false;
  {
    MutexLock lock(mu_);
    closed_ = true;
    if (!release_posted_) {
      release_posted_ = true;
      post_release = true;
    }
  }
  cv_.NotifyAll();
  if (post_release) {
    // Crash semantics: the sentinel is dropped without OnClose and a memory
    // cache's un-finalized state is lost — the loop analogue of SIGKILL,
    // and exactly the shape the recovery layer knows how to replay.
    shard_.Post([self = shared_from_this()] {
      self->ReleaseLoopState(Release::kCrash);
    });
  }
}

void LoopSession::Shutdown() {
  bool post_release = false;
  {
    MutexLock lock(mu_);
    closed_ = true;
    if (!release_posted_) {
      release_posted_ = true;
      post_release = true;
    }
  }
  cv_.NotifyAll();
  if (post_release) {
    shard_.Post([self = shared_from_this()] {
      self->ReleaseLoopState(Release::kImplicitClose);
    });
  }
}

void LoopSession::ServiceOpen() {
  // Crash window before the open is acknowledged — same recoverable point
  // the forked strategies expose (the application is parked on the banner).
  if (!fault::Hit("sentinel.dispatch.openack").ok()) {
    {
      MutexLock lock(mu_);
      closed_ = true;
      release_posted_ = true;
    }
    cv_.NotifyAll();
    ReleaseLoopState(Release::kCrash);
    return;
  }
  const Status open_status = sentinel_->OnOpen(ctx_);
  opened_ = open_status.ok();
  if (!opened_) {
    // Mirror the dispatch loop's lifecycle: a failed OnOpen means no
    // session — OnClose must not run.  The banner still ships below.
    {
      MutexLock lock(mu_);
      release_posted_ = true;
    }
    released_ = true;
    sentinel_.reset();
    cache_ = CacheAssembly{};
  } else {
    ArmHeartbeat();
  }
  Deliver(StatusResponse(open_status), /*closing=*/!opened_);
}

void LoopSession::Service() {
  ControlMessage msg;
  {
    MutexLock lock(mu_);
    if (closed_ || state_ != SlotState::kCommand) {
      lock.Unlock();
      ReleaseAdmission();  // raced ForceDown: the op will never be served
      return;
    }
    msg = message_;  // spans still reference the parked application's buffers
  }
  if (lease_) lease_->Renew();

  // The loop-host crash site: tears this session down without a response —
  // the application's waiter wakes with kClosed and supervision replays the
  // session — while every co-hosted session on the shard keeps serving.
  if (!fault::Hit("core.loop.crash").ok()) {
    {
      MutexLock lock(mu_);
      closed_ = true;
      release_posted_ = true;
    }
    cv_.NotifyAll();
    ReleaseLoopState(Release::kCrash);
    return;
  }

  sentinel::OpOutcome out =
      sentinel::PerformControlOp(*sentinel_, ctx_, msg, nullptr);
  if (lease_) lease_->Renew();
  switch (out.verdict) {
    case sentinel::OpVerdict::kCrashed:
    case sentinel::OpVerdict::kChannelBroken: {
      {
        MutexLock lock(mu_);
        closed_ = true;
        release_posted_ = true;
      }
      cv_.NotifyAll();
      ReleaseLoopState(Release::kCrash);
      return;
    }
    case sentinel::OpVerdict::kClosed: {
      // OnClose already ran inside PerformControlOp; finalize and drop the
      // sentinel before acknowledging, like the worker-thread epilogue.
      // afs-lint: allow(status-discard: close response carries OnClose's status)
      (void)cache_.Finalize();
      {
        MutexLock lock(mu_);
        release_posted_ = true;
      }
      released_ = true;
      sentinel_.reset();
      cache_ = CacheAssembly{};
      Deliver(std::move(out.response), /*closing=*/true);
      return;
    }
    case sentinel::OpVerdict::kRespond:
      Deliver(std::move(out.response), /*closing=*/false);
      return;
  }
}

void LoopSession::ReleaseLoopState(Release how) {
  ReleaseAdmission();  // a crash-torn op must not pin the shard's gate
  if (released_) return;
  released_ = true;
  if (how == Release::kImplicitClose && opened_ && sentinel_ != nullptr) {
    // Application vanished without the close protocol: implicit close so
    // aggregation/distribution side effects still complete.
    // afs-lint: allow(status-discard: nobody is left to receive the status)
    (void)sentinel_->OnClose(ctx_);
    // afs-lint: allow(status-discard: best-effort writeback on implicit close)
    (void)cache_.Finalize();
  }
  // Release::kCrash: no OnClose, no writeback — un-finalized state is lost.
  sentinel_.reset();
  cache_ = CacheAssembly{};
}

void LoopSession::HeartbeatTick() {
  {
    MutexLock lock(mu_);
    if (closed_) return;  // session over; let the timer chain end
  }
  // The timed firing itself is the heartbeat: a wedged shard (or a sentinel
  // op squatting on it) starves this renewal and the lease expires.
  if (lease_) lease_->Renew();
  ArmHeartbeat();
}

void LoopSession::ArmHeartbeat() {
  if (lease_ == nullptr || heartbeat_interval_.count() <= 0) return;
  shard_.AddTimer(heartbeat_interval_,
                  [self = shared_from_this()] { self->HeartbeatTick(); });
}

void LoopSession::Deliver(ControlResponse response, bool closing) {
  // The answered op leaves the admission domain here, not at collection:
  // the shard is free again even if the application is slow to wake.
  ReleaseAdmission();
  {
    MutexLock lock(mu_);
    response_ = std::move(response);
    state_ = SlotState::kResponse;
    if (closing) closed_ = true;
  }
  cv_.NotifyAll();
}

// ---------------------------------------------------------------------
// LoopHost

LoopHost& LoopHost::Global() {
  static LoopHost host(
      EnvInt("AFS_LOOP_SHARDS", 2),
      EventLoop::Options{
          EnvInt("AFS_LOOP_BATCH", 64),
          static_cast<std::size_t>(EnvU64("AFS_LOOP_QUEUE_LIMIT", 0))});
  return host;
}

LoopHost::LoopHost(int shards, EventLoop::Options options)
    : pool_(shards, options) {
  // Per-shard admission budgets (docs/OVERLOAD.md).  The default queue-byte
  // budget is a backstop against runaway buffering, far above any healthy
  // working set; 0 disables a budget entirely.
  AdmissionGate::Limits limits;
  limits.max_queue_bytes = static_cast<std::size_t>(
      EnvU64("AFS_LOOP_MAX_QUEUE_BYTES", std::uint64_t{256} << 20));
  limits.max_inflight =
      static_cast<int>(EnvU64("AFS_LOOP_MAX_INFLIGHT", 0));
  gates_.reserve(static_cast<std::size_t>(pool_.shard_count()));
  for (int i = 0; i < pool_.shard_count(); ++i) {
    gates_.push_back(std::make_unique<AdmissionGate>(limits));
  }
  // Touch the metric registries before any loop thread exists so their
  // singletons outlive the pool's threads at static teardown.
  SessionsGauge();
}

LoopHost::~LoopHost() { pool_.Stop(); }

int LoopHost::shard_count() const noexcept { return pool_.shard_count(); }

Result<std::shared_ptr<LoopSession>> LoopHost::Open(
    std::unique_ptr<sentinel::Sentinel> sent, sentinel::SentinelContext ctx,
    CacheAssembly cache, int shard_pin, Micros response_timeout,
    Micros heartbeat_interval, std::shared_ptr<Lease> lease,
    const AdmissionGate::Limits& link_limits, OverloadPolicy overload) {
  AFS_RETURN_IF_ERROR(pool_.Start());
  const std::size_t index = pool_.PickShard(shard_pin);
  EventLoop& shard = pool_.ShardAt(index);
  auto session = std::shared_ptr<LoopSession>(new LoopSession(
      shard, std::move(sent), std::move(ctx), std::move(cache)));
  session->set_response_timeout(response_timeout);
  session->set_admission(gates_[index].get(), link_limits, overload);
  if (lease != nullptr) session->set_lease(std::move(lease), heartbeat_interval);
  shard.Post([session] { session->ServiceOpen(); });
  return session;
}

}  // namespace afs::core
