#include "core/bundle.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/crc32.hpp"

namespace afs::core {
namespace {

Status Errno(const std::string& what) {
  if (errno == ENOENT) return NotFoundError(what + ": no such file");
  return IoError(what + ": " + std::strerror(errno));
}

// Longest header we are willing to parse (name + config).
constexpr std::size_t kMaxHeaderBytes = 1 << 20;

}  // namespace

Buffer EncodeBundleHeader(const sentinel::SentinelSpec& spec) {
  Buffer body;  // everything after the magic, before the crc
  AppendU16(body, kBundleVersion);
  AppendLenPrefixed(body, spec.name);
  AppendU32(body, static_cast<std::uint32_t>(spec.config.size()));
  for (const auto& [key, value] : spec.config) {
    AppendLenPrefixed(body, key);
    AppendLenPrefixed(body, value);
  }
  Buffer out;
  out.reserve(4 + body.size() + 4);
  out.insert(out.end(), kBundleMagic, kBundleMagic + 4);
  AppendBytes(out, ByteSpan(body));
  AppendU32(out, Crc32(ByteSpan(body)));
  return out;
}

Result<sentinel::SentinelSpec> DecodeBundleHeader(ByteSpan bytes,
                                                  std::size_t* header_size) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kBundleMagic, 4) != 0) {
    return CorruptError("not an active-file bundle (bad magic)");
  }
  ByteReader reader(bytes.subspan(4));
  sentinel::SentinelSpec spec;
  std::uint16_t version = 0;
  std::uint32_t nconfig = 0;
  if (!reader.ReadU16(version) || !reader.ReadLenPrefixedString(spec.name) ||
      !reader.ReadU32(nconfig)) {
    return CorruptError("truncated bundle header");
  }
  if (version != kBundleVersion) {
    return CorruptError("unsupported bundle version " +
                        std::to_string(version));
  }
  for (std::uint32_t i = 0; i < nconfig; ++i) {
    std::string key;
    std::string value;
    if (!reader.ReadLenPrefixedString(key) ||
        !reader.ReadLenPrefixedString(value)) {
      return CorruptError("truncated bundle config");
    }
    spec.config[key] = value;
  }
  const std::size_t body_len = reader.position();
  std::uint32_t stored_crc = 0;
  if (!reader.ReadU32(stored_crc)) {
    return CorruptError("truncated bundle crc");
  }
  const std::uint32_t actual_crc = Crc32(bytes.subspan(4, body_len));
  if (stored_crc != actual_crc) {
    return CorruptError("bundle header crc mismatch");
  }
  if (header_size != nullptr) *header_size = 4 + body_len + 4;
  return spec;
}

Status WriteBundle(const std::string& host_path,
                   const sentinel::SentinelSpec& spec, ByteSpan data) {
  Buffer content = EncodeBundleHeader(spec);
  AppendBytes(content, data);
  const int fd =
      ::open(host_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + host_path);
  std::size_t done = 0;
  while (done < content.size()) {
    const ssize_t n = ::write(fd, content.data() + done, content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("write " + host_path);
      ::close(fd);
      return status;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) return Errno("close " + host_path);
  return Status::Ok();
}

bool SniffBundle(const std::string& host_path) {
  const int fd = ::open(host_path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  char magic[4];
  const ssize_t n = ::read(fd, magic, 4);
  ::close(fd);
  return n == 4 && std::memcmp(magic, kBundleMagic, 4) == 0;
}

Result<std::unique_ptr<BundleFile>> BundleFile::Open(
    const std::string& host_path) {
  const int fd = ::open(host_path.c_str(), O_RDWR);
  if (fd < 0) return Errno("open " + host_path);

  Buffer head(kMaxHeaderBytes);
  ssize_t n = ::pread(fd, head.data(), head.size(), 0);
  if (n < 0) {
    const Status status = Errno("read " + host_path);
    ::close(fd);
    return status;
  }
  head.resize(static_cast<std::size_t>(n));
  std::size_t header_size = 0;
  Result<sentinel::SentinelSpec> spec =
      DecodeBundleHeader(ByteSpan(head), &header_size);
  if (!spec.ok()) {
    ::close(fd);
    return spec.status();
  }
  return std::unique_ptr<BundleFile>(
      new BundleFile(fd, std::move(*spec), header_size));
}

BundleFile::~BundleFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::size_t> BundleFile::ReadDataAt(std::uint64_t offset,
                                           MutableByteSpan out) {
  const ssize_t n = ::pread(fd_, out.data(), out.size(),
                            static_cast<off_t>(data_offset_ + offset));
  if (n < 0) return Errno("pread");
  return static_cast<std::size_t>(n);
}

Result<std::size_t> BundleFile::WriteDataAt(std::uint64_t offset,
                                            ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        ::pwrite(fd_, data.data() + done, data.size() - done,
                 static_cast<off_t>(data_offset_ + offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite");
    }
    done += static_cast<std::size_t>(n);
  }
  return done;
}

Result<std::uint64_t> BundleFile::DataSize() {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat");
  const std::uint64_t total = static_cast<std::uint64_t>(st.st_size);
  return total > data_offset_ ? total - data_offset_ : 0;
}

Status BundleFile::TruncateData(std::uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(data_offset_ + size)) != 0) {
    return Errno("ftruncate");
  }
  return Status::Ok();
}

Status BundleFile::Flush() {
  if (::fsync(fd_) != 0) return Errno("fsync");
  return Status::Ok();
}

Result<Buffer> BundleFile::ReadAllData() {
  AFS_ASSIGN_OR_RETURN(std::uint64_t size, DataSize());
  Buffer out(static_cast<std::size_t>(size));
  std::size_t done = 0;
  while (done < out.size()) {
    AFS_ASSIGN_OR_RETURN(
        std::size_t n,
        ReadDataAt(done, MutableByteSpan(out.data() + done, out.size() - done)));
    if (n == 0) break;  // concurrent truncation
    done += n;
  }
  out.resize(done);
  return out;
}

Status BundleFile::ReplaceData(ByteSpan data) {
  AFS_RETURN_IF_ERROR(TruncateData(data.size()));
  if (!data.empty()) {
    AFS_ASSIGN_OR_RETURN(std::size_t n, WriteDataAt(0, data));
    (void)n;
  }
  return Status::Ok();
}

}  // namespace afs::core
