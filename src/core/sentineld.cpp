#include "core/sentineld.hpp"

#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/faultpoint.hpp"
#include "core/bundle.hpp"
#include "core/links.hpp"
#include "core/resolvers.hpp"
#include "core/strategies.hpp"
#include "ipc/pipe.hpp"
#include "obs/stats.hpp"
#include "sentinel/dispatch.hpp"
#include "sentinel/stream.hpp"
#include "sentinels/builtin.hpp"
#include "util/strings.hpp"

namespace afs::core {
namespace {

struct Args {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key) const {
    auto it = values.find(key);
    return it == values.end() ? std::string() : it->second;
  }

  Result<int> GetFd(const std::string& key) const {
    std::uint64_t fd = 0;
    if (!ParseU64(Get(key), fd) || fd > INT_MAX) {
      return InvalidArgumentError("sentineld: bad or missing --" + key);
    }
    return static_cast<int>(fd);
  }

  // Optional numeric flag; 0 when absent or malformed.
  std::uint64_t GetU64(const std::string& key) const {
    std::uint64_t value = 0;
    if (!ParseU64(Get(key), value)) return 0;
    return value;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) continue;
    auto [key, value] = SplitOnce(arg.substr(2), '=');
    args.values[key] = value;
  }
  return args;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "sentineld: %s\n", status.ToString().c_str());
  return 2;
}

}  // namespace

int SentineldMain(int argc, char** argv) {
  // Faults must survive the exec boundary: a fault plan armed in the
  // launching application reaches this fresh image only via environment.
  (void)fault::InstallPlanFromEnv();
  // kill -USR1 <sentineld pid> dumps this process' metrics and spans to
  // stderr — the only stats surface a long-lived exec-mode sentinel has.
  obs::InstallStatsSignalDump(SIGUSR1);
  const Args args = ParseArgs(argc, argv);
  const std::string mode = args.Get("mode");
  const std::string bundle_path = args.Get("bundle");
  if (bundle_path.empty()) {
    return Fail(InvalidArgumentError("missing --bundle"));
  }

  // The bundle is this process' configuration: spec + data part.
  Result<std::unique_ptr<BundleFile>> bundle = BundleFile::Open(bundle_path);
  if (!bundle.ok()) return Fail(bundle.status());
  const sentinel::SentinelSpec spec = (*bundle)->spec();
  bundle->reset();

  Result<CacheAssembly> cache = AssembleCache(bundle_path, spec);
  if (!cache.ok()) return Fail(cache.status());

  sentinels::RegisterBuiltinSentinels();
  Result<std::unique_ptr<sentinel::Sentinel>> sent =
      sentinel::SentinelRegistry::Global().Create(spec);
  if (!sent.ok()) return Fail(sent.status());

  // Only socket-reachable remote sources exist across an exec boundary.
  static EnvironmentResolver resolver;
  sentinel::SentinelContext ctx;
  ctx.cache = cache->store.get();
  ctx.config = spec.config;
  ctx.resolver = &resolver;
  ctx.lock_dir = args.Get("lockdir");
  ctx.path = args.Get("path");

  int code = 0;
  if (mode == "control") {
    auto control_fd = args.GetFd("control-fd");
    auto response_fd = args.GetFd("response-fd");
    auto data_fd = args.GetFd("data-fd");
    if (!control_fd.ok()) return Fail(control_fd.status());
    if (!response_fd.ok()) return Fail(response_fd.status());
    if (!data_fd.ok()) return Fail(data_fd.status());
    PipeEndpointFds fds;
    fds.control_read = ipc::PipeEnd(*control_fd);
    fds.response_write = ipc::PipeEnd(*response_fd);
    fds.data_read = ipc::PipeEnd(*data_fd);
    PipeEndpoint endpoint(std::move(fds));
    // Supervised opens ask for idle heartbeats so the launching side's
    // lease protocol can tell "idle" from "dead".
    const std::uint64_t heartbeat_ms = args.GetU64("heartbeat-ms");
    if (heartbeat_ms > 0) {
      endpoint.set_heartbeat_interval(Micros{heartbeat_ms * 1000});
    }
    // Shared-memory data plane: the launching application created the ring
    // and passed its descriptor through the exec.  A failed attach is not
    // fatal — the endpoint simply never advertises kDataPlaneRev and every
    // payload stays on the pipes (docs/SHM_DATA_PLANE.md).
    std::shared_ptr<ipc::ShmRing> ring;
    if (!args.Get("shm-fd").empty()) {
      auto shm_fd = args.GetFd("shm-fd");
      if (shm_fd.ok()) {
        Result<std::shared_ptr<ipc::ShmRing>> attached =
            ipc::ShmRing::Attach(*shm_fd);
        if (attached.ok()) {
          ring = std::move(*attached);
          std::uint64_t threshold = args.GetU64("shm-threshold");
          if (threshold == 0) threshold = 4096;
          endpoint.set_shm(ring, static_cast<std::size_t>(threshold));
        } else {
          obs::Registry::Global().GetCounter("ipc.shm.fallbacks").Add(1);
        }
      }
    }
    code = sentinel::RunSentinelLoop(**sent, endpoint, ctx);
    // Mark the rings closed before exit so application-side waits end in
    // EOF/kClosed now instead of a timeout later.
    if (ring) ring->CloseAll();
  } else if (mode == "stream") {
    auto in_fd = args.GetFd("in-fd");
    auto out_fd = args.GetFd("out-fd");
    if (!in_fd.ok()) return Fail(in_fd.status());
    if (!out_fd.ok()) return Fail(out_fd.status());
    ipc::PipeEnd in(*in_fd);
    ipc::PipeEnd out(*out_fd);
    sentinel::StreamIo io;
    io.read_from_app = [&](MutableByteSpan span) { return in.ReadSome(span); };
    io.write_to_app = [&](ByteSpan data) { return out.WriteAll(data); };
    io.finish_output = [&]() { out.Close(); };
    // Re-attach after a supervised restart: resume the pumps where the
    // application already was instead of replaying from byte zero.
    sentinel::StreamResume resume;
    resume.read_pos = args.GetU64("resume-read");
    resume.write_pos = args.GetU64("resume-write");
    code = sentinel::RunStreamPump(**sent, io, ctx, resume);
  } else {
    return Fail(InvalidArgumentError("missing or bad --mode"));
  }
  const Status finalized = cache->Finalize();
  if (!finalized.ok()) return Fail(finalized);
  return code;
}

}  // namespace afs::core
