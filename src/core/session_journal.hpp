// Write-ahead session journal for supervised active-file handles.
//
// Every supervised handle owns one session record: enough replayable state
// (bundle path, strategy, logical file position, the operation in flight)
// to re-attach to a freshly restarted sentinel as if nothing happened.
// Mutations are journaled write-ahead — the OP line lands before the
// operation is attempted, the DONE line after it is acknowledged — so at
// any crash instant the journal names exactly which operation may have
// half-happened and must be retried (idempotent ops) or reported.
//
// The journal is a plain append-only text log (one event per line) plus an
// in-memory mirror used for lookups at runtime; the on-disk form is an
// audit trail a test (or a post-mortem) can replay.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"

namespace afs::core {

class SessionJournal {
 public:
  // One supervised handle's replayable state.
  struct Record {
    std::uint64_t id = 0;
    std::string strategy;
    std::string vfs_path;

    // The logical file pointer last acknowledged by a sentinel; replayed
    // as a seek on re-attach.
    std::int64_t position = 0;

    // The operation journaled write-ahead and not yet marked DONE; empty
    // when the session is quiescent.
    std::string inflight_op;
    std::int64_t inflight_offset = 0;
    std::uint64_t inflight_length = 0;

    int restarts = 0;
    bool degraded = false;
    bool closed = false;
  };

  // Opens (creating if needed) the journal at `path`.  Append-only; an
  // existing file keeps its history.
  explicit SessionJournal(std::string path);
  ~SessionJournal();

  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  // Allocates a session id unique within this journal's lifetime.
  std::uint64_t NextId();

  // Event writers.  Each appends one line and updates the mirror; the
  // line is flushed before the call returns (write-ahead ordering).
  Status RecordOpen(std::uint64_t id, const std::string& strategy,
                    const std::string& vfs_path);
  Status RecordOp(std::uint64_t id, const std::string& op,
                  std::int64_t offset, std::uint64_t length);
  Status RecordDone(std::uint64_t id, std::int64_t position);
  Status RecordRestart(std::uint64_t id, int restarts);
  Status RecordDegrade(std::uint64_t id, const std::string& mode);
  Status RecordClose(std::uint64_t id);

  // The mirror's current view of a session; nullopt for unknown ids.
  std::optional<Record> Lookup(std::uint64_t id) const;

  const std::string& path() const noexcept { return path_; }

 private:
  Status Append(const std::string& line) AFS_REQUIRES(mu_);

  const std::string path_;
  mutable Mutex mu_;
  std::FILE* file_ AFS_GUARDED_BY(mu_) = nullptr;
  std::uint64_t next_id_ AFS_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, Record> sessions_ AFS_GUARDED_BY(mu_);
};

// Replays a journal file into final per-session records, in first-OPEN
// order.  Unknown or malformed lines fail (the journal is ours; anything
// unparseable means a torn write or corruption worth surfacing).
Result<std::vector<SessionJournal::Record>> ReplayJournalFile(
    const std::string& path);

}  // namespace afs::core
