#include "core/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "core/session_journal.hpp"
#include "obs/metrics.hpp"

namespace afs::core {

namespace {

// How often the monitor thread walks the attached sessions.
constexpr Micros kMonitorTick{10'000};

// Replaying a crashed stream session means re-sending every write the
// application ever issued (stream writes are unacknowledged, so all are in
// doubt).  Past this many logged bytes the handle stops being restartable
// and a crash degrades instead.
constexpr std::size_t kWriteLogCap = 4u << 20;  // 4 MiB

long long ParseIntKey(const std::map<std::string, std::string>& config,
                      const char* key, long long fallback) {
  auto it = config.find(key);
  if (it == config.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

}  // namespace

// ---------------------------------------------------------------------
// DegradeMode / RestartPolicy

std::string_view DegradeModeName(DegradeMode mode) noexcept {
  switch (mode) {
    case DegradeMode::kFail: return "fail";
    case DegradeMode::kReadonly: return "readonly";
    case DegradeMode::kPassthrough: return "passthrough";
  }
  return "?";
}

Result<DegradeMode> ParseDegradeMode(std::string_view name) {
  if (name == "fail") return DegradeMode::kFail;
  if (name == "readonly") return DegradeMode::kReadonly;
  if (name == "passthrough") return DegradeMode::kPassthrough;
  return InvalidArgumentError("unknown degrade mode: " + std::string(name));
}

Result<RestartPolicy> RestartPolicy::FromSpec(
    const std::map<std::string, std::string>& config) {
  RestartPolicy policy;
  auto it = config.find("supervise");
  policy.supervised = it != config.end() && it->second == "1";

  policy.max_restarts = static_cast<int>(
      ParseIntKey(config, "restart_max", policy.max_restarts));
  if (policy.max_restarts < 0) policy.max_restarts = 0;

  const long long backoff_ms =
      ParseIntKey(config, "restart_backoff_ms", -1);
  if (backoff_ms >= 0) policy.backoff_initial = Micros{backoff_ms * 1000};
  const long long cap_ms =
      ParseIntKey(config, "restart_backoff_cap_ms", -1);
  if (cap_ms >= 0) policy.backoff_cap = Micros{cap_ms * 1000};

  const long long lease_ms = ParseIntKey(config, "lease_ms", 0);
  if (lease_ms > 0) policy.lease = Micros{lease_ms * 1000};

  auto degrade_it = config.find("degrade");
  if (degrade_it != config.end()) {
    AFS_ASSIGN_OR_RETURN(policy.degrade, ParseDegradeMode(degrade_it->second));
  }
  AFS_ASSIGN_OR_RETURN(policy.overload,
                       OverloadPolicyFromSpec(config, policy.overload));
  return policy;
}

// ---------------------------------------------------------------------
// Supervisor

// Shared between the monitor thread and the owning handle.  `dead` latches:
// once the sentinel behind this session is declared gone, only a Rebind
// (fresh probe after a restart) clears it.
struct Supervisor::Session {
  Mutex mu;
  SessionProbe probe AFS_GUARDED_BY(mu);
  Micros lease_timeout AFS_GUARDED_BY(mu){0};
  bool dead AFS_GUARDED_BY(mu) = false;
  bool detached AFS_GUARDED_BY(mu) = false;
};

namespace {

// One monitor pass over one session: drain heartbeats, then check the
// waitpid and lease arms; declare death and force the link down on either.
void CheckSession(Supervisor::Session& session) AFS_NONBLOCKING {
  std::function<void()> poll;
  {
    MutexLock lock(session.mu);
    if (session.dead || session.detached) return;
    poll = session.probe.poll_heartbeats;
  }
  if (poll) poll();

  MutexLock lock(session.mu);
  if (session.dead || session.detached) return;
  const char* cause = nullptr;
  if (session.probe.child != nullptr) {
    const std::optional<ipc::ExitStatus> ended = session.probe.child->Poll();
    if (ended.has_value()) cause = "sentinel process exited";
  }
  if (cause == nullptr && session.lease_timeout.count() > 0 &&
      session.probe.lease != nullptr &&
      session.probe.lease->Age() > session.lease_timeout) {
    cause = "sentinel lease expired";
    static obs::Counter& expiries =
        obs::Registry::Global().GetCounter("core.supervisor.lease_expiries");
    expiries.Add(1);
  } else if (cause != nullptr) {
    static obs::Counter& exits =
        obs::Registry::Global().GetCounter("core.supervisor.child_exits");
    exits.Add(1);
  }
  if (cause == nullptr) return;
  session.dead = true;
  AFS_LOG(kWarn, "afs.supervisor") << cause << "; forcing link down";
  std::function<void()> down = session.probe.force_down;
  lock.Unlock();
  // Wakes any application operation blocked on the dead link; it fails
  // with a transport error and the owning handle runs recovery.
  if (down) down();
}

}  // namespace

Supervisor::~Supervisor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  // Joins the loop thread; an in-flight sweep finishes first, and the
  // pending re-arm timer is discarded with the loop's timer list.
  loop_.Stop();
}

void Supervisor::EnsureLoopLocked() {
  if (running_) return;
  const Status started = loop_.Start();
  if (!started.ok()) {
    // No loop, no proactive monitoring; transport errors still surface
    // through the op path.  Left un-running so a later Attach retries.
    AFS_LOG(kWarn, "afs.supervisor")
        << "monitor loop failed to start: " << started.ToString();
    return;
  }
  running_ = true;
  loop_.AddTimer(kMonitorTick, [this] { MonitorTick(); });
}

// One firing of the monitor's timer wheel: sweep every attached session,
// then re-arm.  Re-arming from inside the callback (instead of a periodic
// timer) keeps a slow sweep from stacking overlapping firings.
void Supervisor::MonitorTick() {
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    MutexLock lock(mu_);
    if (stop_) return;
    snapshot = sessions_;
  }
  for (const auto& session : snapshot) CheckSession(*session);
  MutexLock lock(mu_);
  if (stop_) return;
  loop_.AddTimer(kMonitorTick, [this] { MonitorTick(); });
}

std::shared_ptr<Supervisor::Session> Supervisor::Attach(SessionProbe probe,
                                                        Micros lease) {
  auto session = std::make_shared<Session>();
  {
    MutexLock lock(session->mu);
    session->probe = std::move(probe);
    session->lease_timeout = lease;
  }
  MutexLock lock(mu_);
  sessions_.push_back(session);
  EnsureLoopLocked();
  return session;
}

void Supervisor::Rebind(const std::shared_ptr<Session>& session,
                        SessionProbe probe) {
  if (session == nullptr) return;
  MutexLock lock(session->mu);
  session->probe = std::move(probe);
  session->dead = false;
  if (session->probe.lease) session->probe.lease->Renew();
}

void Supervisor::Detach(const std::shared_ptr<Session>& session) {
  if (session == nullptr) return;
  {
    MutexLock lock(session->mu);
    session->detached = true;
    session->probe = SessionProbe{};
  }
  MutexLock lock(mu_);
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                  sessions_.end());
}

bool Supervisor::DeclaredDead(const std::shared_ptr<Session>& session) {
  if (session == nullptr) return false;
  MutexLock lock(session->mu);
  return session->dead;
}

void Supervisor::MarkDead(const std::shared_ptr<Session>& session) {
  if (session == nullptr) return;
  MutexLock lock(session->mu);
  session->dead = true;
}

// ---------------------------------------------------------------------
// Degraded fallback: serves the bundle's data part directly once the
// sentinel is permanently gone.  Thread-compatible — the owning
// SupervisedHandle serializes all calls.

namespace {

class DegradedHandle final : public vfs::FileHandle {
 public:
  // `split_pointers` mirrors stream-strategy semantics (independent read
  // and write streams, no seek); otherwise one shared file pointer.
  DegradedHandle(std::unique_ptr<BundleFile> bundle, bool writable,
                 bool split_pointers, std::uint64_t read_pos,
                 std::uint64_t write_pos)
      : bundle_(std::move(bundle)),
        writable_(writable),
        split_(split_pointers),
        read_pos_(read_pos),
        write_pos_(write_pos) {}

  Result<std::size_t> Read(MutableByteSpan out) override {
    AFS_ASSIGN_OR_RETURN(std::size_t n, bundle_->ReadDataAt(read_pos_, out));
    read_pos_ += n;
    if (!split_) write_pos_ = read_pos_;
    return n;
  }

  Result<std::size_t> Write(ByteSpan data) override {
    if (!writable_) {
      return PermissionDeniedError("active file degraded to readonly");
    }
    AFS_ASSIGN_OR_RETURN(std::size_t n,
                         bundle_->WriteDataAt(write_pos_, data));
    write_pos_ += n;
    if (!split_) read_pos_ = write_pos_;
    return n;
  }

  Result<std::uint64_t> Seek(std::int64_t offset,
                             vfs::SeekOrigin origin) override {
    if (split_) {
      return UnsupportedError("seek not supported by process strategy");
    }
    std::int64_t base = 0;
    switch (origin) {
      case vfs::SeekOrigin::kBegin: base = 0; break;
      case vfs::SeekOrigin::kCurrent:
        base = static_cast<std::int64_t>(read_pos_);
        break;
      case vfs::SeekOrigin::kEnd: {
        AFS_ASSIGN_OR_RETURN(std::uint64_t size, bundle_->DataSize());
        base = static_cast<std::int64_t>(size);
        break;
      }
    }
    const std::int64_t target = base + offset;
    if (target < 0) return OutOfRangeError("seek before start of file");
    read_pos_ = static_cast<std::uint64_t>(target);
    write_pos_ = read_pos_;
    return read_pos_;
  }

  Result<std::uint64_t> Size() override {
    if (split_) {
      return UnsupportedError("GetFileSize not supported by process strategy");
    }
    return bundle_->DataSize();
  }

  Status SetEndOfFile() override {
    if (split_) return UnsupportedError("SetEndOfFile");
    if (!writable_) {
      return PermissionDeniedError("active file degraded to readonly");
    }
    return bundle_->TruncateData(read_pos_);
  }

  Status Flush() override { return bundle_->Flush(); }

  Status Close() override {
    if (bundle_ == nullptr) return Status::Ok();
    const Status flushed = bundle_->Flush();
    bundle_.reset();
    return flushed;
  }

  BundleFile* bundle() noexcept { return bundle_.get(); }

 private:
  std::unique_ptr<BundleFile> bundle_;
  const bool writable_;
  const bool split_;
  std::uint64_t read_pos_;
  std::uint64_t write_pos_;
};

// Journal records are write-ahead best-effort: a lost record degrades crash
// recovery (replay may resume from a stale cursor) but must never fail the
// application's I/O.  The drop counter is how a sick journal disk surfaces.
void JournalDrop(const Status& recorded) {
  if (recorded.ok()) return;
  static obs::Counter& drops =
      obs::Registry::Global().GetCounter("core.supervisor.journal_drops");
  drops.Add(1);
}

// ---------------------------------------------------------------------
// SupervisedHandle: the tentpole.  Wraps a strategy-opened stub and keeps
// the application's view of the file intact across sentinel crashes.

class SupervisedHandle final : public vfs::FileHandle, public ActiveHandle {
 public:
  SupervisedHandle(Supervisor& supervisor, SessionJournal& journal,
                   const sentinel::SentinelRegistry& registry,
                   Strategy strategy, OpenRequest request,
                   RestartPolicy policy)
      : supervisor_(supervisor),
        journal_(journal),
        registry_(registry),
        strategy_(strategy),
        stream_(strategy == Strategy::kProcess),
        request_(std::move(request)),
        policy_(policy),
        id_(journal.NextId()) {}

  ~SupervisedHandle() override {
    MutexLock lock(mu_);
    if (!closed_) {
      DetachSession();
      inner_.reset();
      degraded_.reset();
      closed_ = true;
    }
  }

  // First open; crash-class failures (a sentinel killed before the open
  // acknowledgement) consume restart budget like any later crash.
  Status Open() {
    MutexLock lock(mu_);
    JournalDrop(journal_.RecordOpen(id_, std::string(StrategyName(strategy_)),
                              request_.vfs_path));
    while (true) {
      Status opened = OpenSessionLocked();
      if (opened.ok()) return Status::Ok();
      if (!CrashClass(opened)) return opened;  // legitimate open failure
      AFS_RETURN_IF_ERROR(NextRestartLocked("open"));
      if (mode_ == Mode::kDegraded) return Status::Ok();
    }
  }

  Result<std::size_t> Read(MutableByteSpan out) override {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) return degraded_->Read(out);
    JournalDrop(journal_.RecordOp(id_, "read", LogicalPos(), out.size()));
    while (true) {
      Result<std::size_t> got = inner_->Read(out);
      if (got.ok() && !(stream_ && *got == 0 && StreamEofWasCrash())) {
        if (stream_) {
          read_pos_ += *got;
        } else {
          position_ += static_cast<std::int64_t>(*got);
        }
        JournalDrop(journal_.RecordDone(id_, LogicalPos()));
        return got;
      }
      const Status failure =
          got.ok() ? ClosedError("sentinel died mid-stream") : got.status();
      if (!CrashClass(failure)) return failure;
      AFS_RETURN_IF_ERROR(RecoverLocked("read"));
      if (mode_ == Mode::kDegraded) return degraded_->Read(out);
    }
  }

  Result<std::size_t> Write(ByteSpan data) override {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) return degraded_->Write(data);
    JournalDrop(journal_.RecordOp(id_, "write",
                            stream_ ? static_cast<std::int64_t>(write_pos_)
                                    : position_,
                            data.size()));
    if (stream_) return StreamWrite(data);
    while (true) {
      Result<std::size_t> wrote = inner_->Write(data);
      if (wrote.ok()) {
        position_ += static_cast<std::int64_t>(*wrote);
        JournalDrop(journal_.RecordDone(id_, position_));
        return wrote;
      }
      if (!CrashClass(wrote.status())) return wrote;
      AFS_RETURN_IF_ERROR(RecoverLocked("write"));
      if (mode_ == Mode::kDegraded) return degraded_->Write(data);
    }
  }

  Result<std::uint64_t> Seek(std::int64_t offset,
                             vfs::SeekOrigin origin) override {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) return degraded_->Seek(offset, origin);
    if (stream_) return inner_->Seek(offset, origin);  // kUnsupported
    JournalDrop(journal_.RecordOp(id_, "seek", offset, 0));
    while (true) {
      Result<std::uint64_t> pos = inner_->Seek(offset, origin);
      if (pos.ok()) {
        position_ = static_cast<std::int64_t>(*pos);
        JournalDrop(journal_.RecordDone(id_, position_));
        return pos;
      }
      if (!CrashClass(pos.status())) return pos;
      AFS_RETURN_IF_ERROR(RecoverLocked("seek"));
      if (mode_ == Mode::kDegraded) return degraded_->Seek(offset, origin);
    }
  }

  Result<std::uint64_t> Size() override {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) return degraded_->Size();
    if (stream_) return inner_->Size();  // kUnsupported
    while (true) {
      Result<std::uint64_t> size = inner_->Size();
      if (size.ok() || !CrashClass(size.status())) return size;
      AFS_RETURN_IF_ERROR(RecoverLocked("size"));
      if (mode_ == Mode::kDegraded) return degraded_->Size();
    }
  }

  Status SetEndOfFile() override {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) return degraded_->SetEndOfFile();
    if (stream_) return inner_->SetEndOfFile();  // kUnsupported
    JournalDrop(journal_.RecordOp(id_, "seteof", position_, 0));
    while (true) {
      Status status = inner_->SetEndOfFile();
      if (status.ok()) {
        JournalDrop(journal_.RecordDone(id_, position_));
        return status;
      }
      if (!CrashClass(status)) return status;
      AFS_RETURN_IF_ERROR(RecoverLocked("seteof"));
      if (mode_ == Mode::kDegraded) return degraded_->SetEndOfFile();
    }
  }

  Status Flush() override {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) return degraded_->Flush();
    while (true) {
      Status status = inner_->Flush();
      if (status.ok() || !CrashClass(status)) return status;
      AFS_RETURN_IF_ERROR(RecoverLocked("flush"));
      if (mode_ == Mode::kDegraded) return degraded_->Flush();
    }
  }

  Result<std::size_t> ReadScatter(
      std::span<MutableByteSpan> segments) override {
    if (stream_) {
      return UnsupportedError("ReadFileScatter not supported on this handle");
    }
    std::size_t total = 0;
    for (auto& segment : segments) {
      AFS_ASSIGN_OR_RETURN(std::size_t n, Read(segment));
      total += n;
      if (n < segment.size()) break;
    }
    return total;
  }

  // Locks and application-specific commands are not idempotent, so a crash
  // mid-operation is NOT retried: the handle recovers (next operations
  // work) but this call reports the failure.
  Status LockRange(std::uint64_t offset, std::uint64_t length) override {
    return NonReplayable("lock", [&](vfs::FileHandle& h) {
      return h.LockRange(offset, length);
    });
  }
  Status UnlockRange(std::uint64_t offset, std::uint64_t length) override {
    return NonReplayable("unlock", [&](vfs::FileHandle& h) {
      return h.UnlockRange(offset, length);
    });
  }

  Result<Buffer> Control(ByteSpan request) override {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) {
      return UnsupportedError("control unavailable on a degraded handle");
    }
    auto* active = dynamic_cast<ActiveHandle*>(inner_.get());
    if (active == nullptr) {
      return UnsupportedError("strategy has no control channel");
    }
    JournalDrop(journal_.RecordOp(id_, "custom", LogicalPos(), request.size()));
    Result<Buffer> reply = active->Control(request);
    if (!reply.ok() && CrashClass(reply.status())) {
      (void)RecoverLocked("custom");  // heal the handle, report the failure
      return reply.status();
    }
    if (reply.ok()) JournalDrop(journal_.RecordDone(id_, LogicalPos()));
    return reply;
  }

  Status Close() override {
    MutexLock lock(mu_);
    if (closed_) return Status::Ok();
    Status status = Status::Ok();
    if (mode_ == Mode::kDegraded) {
      status = degraded_->Close();
    } else if (mode_ == Mode::kActive) {
      JournalDrop(journal_.RecordOp(id_, "close", LogicalPos(), 0));
      while (true) {
        status = inner_->Close();
        // The control strategies tolerate a sentinel that vanishes instead
        // of acking the close (their Close reports OK); under supervision a
        // child that died abnormally means OnClose never ran, so that is a
        // crash regardless of what the inner handle reported.
        if (status.ok() && ChildDiedAbnormally()) {
          status = ClosedError("sentinel died during close");
        }
        if (status.ok()) {
          JournalDrop(journal_.RecordDone(id_, LogicalPos()));
          break;
        }
        if (!CloseCrashClass(status)) break;
        // Crash during close: the sentinel's OnClose side effects are in
        // doubt.  Restart so they run on a live sentinel; when the budget
        // runs out, fall back per the degrade mode (a degraded close
        // flushes the data part, which is all that is left to do).
        Status recovered = RecoverLocked("close");
        if (!recovered.ok()) {
          status = recovered;
          break;
        }
        if (mode_ == Mode::kDegraded) {
          status = degraded_->Close();
          break;
        }
      }
    }
    DetachSession();
    inner_.reset();
    degraded_.reset();
    closed_ = true;
    JournalDrop(journal_.RecordClose(id_));
    return status;
  }

 private:
  enum class Mode : std::uint8_t { kActive, kDegraded, kFailed };

  Status Ready() AFS_REQUIRES(mu_) {
    if (closed_) return ClosedError("handle closed");
    if (mode_ == Mode::kFailed) {
      return ClosedError("active file failed permanently (degrade=fail)");
    }
    return Status::Ok();
  }

  std::int64_t LogicalPos() const AFS_REQUIRES(mu_) {
    return stream_ ? static_cast<std::int64_t>(read_pos_) : position_;
  }

  Micros HeartbeatInterval() const {
    if (policy_.lease.count() <= 0) return Micros{0};
    // Three beats per lease keeps one lost wakeup from a false positive.
    const std::int64_t third = policy_.lease.count() / 3;
    return Micros{third > 1000 ? third : 1000};
  }

  bool ChildDiedAbnormally() AFS_REQUIRES(mu_) {
    if (child_ == nullptr) return false;
    const std::optional<ipc::ExitStatus> ended = child_->Poll();
    return ended.has_value() && !ended->clean();
  }

  // A raw-stream EOF is ambiguous: a finished pump closes its output end,
  // but so does the kernel tearing down a killed sentinel.  The teardown is
  // not atomic: the EOF routinely becomes visible to the application before
  // either the child is reapable or the companion pipe reports its reader
  // gone (measured up to ~8ms apart under load).  So no single instant
  // probe can classify the EOF; instead, wait for whichever durable signal
  // settles first:
  //   - child exits            -> crash iff the exit was abnormal;
  //   - reader present, and it STAYS present across the teardown window
  //                            -> genuine end-of-data (a healthy pump holds
  //                               the app->sentinel read end until close);
  //   - reader gone but child never reapable within the deadline
  //                            -> the child is mid-exit: a crash.
  bool StreamEofWasCrash() AFS_REQUIRES(mu_) {
    if (child_ == nullptr) return false;
    constexpr auto kStep = std::chrono::microseconds(500);
    constexpr int kIters = 200;        // 100ms hard deadline
    constexpr int kConfirmStreak = 40;  // reader must hold ~20ms to be trusted
    int alive_streak = 0;
    bool reader_gone = false;
    for (int i = 0; i < kIters; ++i) {
      const std::optional<ipc::ExitStatus> ended = child_->Poll();
      if (ended.has_value()) return !ended->clean();
      if (peer_alive_) {
        if (peer_alive_()) {
          if (++alive_streak >= kConfirmStreak) return false;
        } else {
          alive_streak = 0;
          reader_gone = true;
        }
      }
      std::this_thread::sleep_for(kStep);
    }
    // Deadline passed with the child running.  A live pump would have held
    // its read end the whole time; if the reader ever vanished, the child
    // is stuck mid-exit and the EOF was its death, not end-of-data.
    return reader_gone;
  }

  // Transport failures that mean "the sentinel is gone", as opposed to
  // sentinel-side operation errors (which pass through untouched).
  bool CrashClass(const Status& status) AFS_REQUIRES(mu_) {
    switch (status.code()) {
      case ErrorCode::kClosed:
      case ErrorCode::kTimeout:
        return true;
      case ErrorCode::kIoError:
        return ChildDiedAbnormally();
      default:
        return false;
    }
  }

  // Close additionally reports an abnormal child exit as kInternal
  // ("sentinel exited with code N"); that is a crash too.
  bool CloseCrashClass(const Status& status) AFS_REQUIRES(mu_) {
    if (CrashClass(status)) return true;
    return status.code() == ErrorCode::kInternal && ChildDiedAbnormally();
  }

  template <typename Fn>
  Status NonReplayable(const char* op, Fn&& attempt) {
    MutexLock lock(mu_);
    AFS_RETURN_IF_ERROR(Ready());
    if (mode_ == Mode::kDegraded) return attempt(*degraded_);
    JournalDrop(journal_.RecordOp(id_, op, LogicalPos(), 0));
    Status status = attempt(*inner_);
    if (!status.ok() && CrashClass(status)) {
      (void)RecoverLocked(op);
      return status;
    }
    if (status.ok()) JournalDrop(journal_.RecordDone(id_, LogicalPos()));
    return status;
  }

  // Stream writes are fire-and-forget, so the crash retry IS the replay:
  // the restarted pump re-applies the whole logged write sequence from
  // position zero (positional OnWrite makes that idempotent), and this
  // write rides along — it must not be sent again afterwards.
  Result<std::size_t> StreamWrite(ByteSpan data) AFS_REQUIRES(mu_) {
    AppendWriteLog(data);
    Result<std::size_t> wrote = inner_->Write(data);
    if (wrote.ok()) {
      write_pos_ += *wrote;
      JournalDrop(journal_.RecordDone(id_, LogicalPos()));
      return wrote;
    }
    if (!CrashClass(wrote.status())) return wrote;
    AFS_RETURN_IF_ERROR(RecoverLocked("write"));
    if (mode_ == Mode::kDegraded) return degraded_->Write(data);
    // Recovery replayed the log (this write included).
    write_pos_ += data.size();
    JournalDrop(journal_.RecordDone(id_, LogicalPos()));
    return data.size();
  }

  void AppendWriteLog(ByteSpan data) AFS_REQUIRES(mu_) {
    if (write_log_bytes_ + data.size() > kWriteLogCap) {
      if (!write_log_overflow_) {
        write_log_overflow_ = true;
        AFS_LOG(kWarn, "afs.supervisor")
            << request_.vfs_path << ": write log exceeded "
            << kWriteLogCap << " bytes; a crash now degrades instead of "
            << "restarting";
      }
      return;
    }
    write_log_.emplace_back(data.begin(), data.end());
    write_log_bytes_ += data.size();
  }

  // Spawns one session (sentinel + probe) and registers it with the
  // monitor.  On success the handle is active.
  Status OpenSessionLocked() AFS_REQUIRES(mu_) {
    OpenRequest request = request_;
    request.heartbeat_interval = HeartbeatInterval();
    if (stream_) {
      request.resume_read_pos = read_pos_;
      request.resume_write_pos = 0;  // the write log replays from zero
    }
    SessionProbe probe;
    Result<std::unique_ptr<vfs::FileHandle>> opened =
        OpenWithStrategy(strategy_, registry_, request, &probe);
    AFS_RETURN_IF_ERROR(opened.status());
    DetachSession();  // drop any previous incarnation before installing
    child_ = probe.child;
    peer_alive_ = probe.peer_alive;
    inner_ = std::move(*opened);
    session_ = supervisor_.Attach(std::move(probe), policy_.lease);
    return Status::Ok();
  }

  // Replays the session record onto a fresh sentinel: file pointer for
  // command strategies, the write log for the stream strategy.
  Status ReplayLocked() AFS_REQUIRES(mu_) {
    static obs::Counter& replays =
        obs::Registry::Global().GetCounter("core.supervisor.session_replays");
    replays.Add(1);
    if (stream_) {
      for (const Buffer& logged : write_log_) {
        AFS_ASSIGN_OR_RETURN(std::size_t n, inner_->Write(ByteSpan(logged)));
        if (n != logged.size()) {
          return IoError("short write during session replay");
        }
      }
      return Status::Ok();
    }
    if (position_ == 0) return Status::Ok();
    AFS_ASSIGN_OR_RETURN(std::uint64_t pos,
                         inner_->Seek(position_, vfs::SeekOrigin::kBegin));
    if (static_cast<std::int64_t>(pos) != position_) {
      return IoError("seek replay landed at the wrong position");
    }
    return Status::Ok();
  }

  // Consumes one unit of restart budget (with backoff) or degrades.
  // Returns OK when the caller may retry (restarted or degraded); an error
  // when the handle is permanently failed.
  Status NextRestartLocked(const char* why) AFS_REQUIRES(mu_) {
    DetachSession();
    inner_.reset();
    if (restarts_ >= policy_.max_restarts ||
        (stream_ && write_log_overflow_)) {
      return DegradeLocked(why);
    }
    ++restarts_;
    static obs::Counter& restarts =
        obs::Registry::Global().GetCounter("core.supervisor.restarts");
    restarts.Add(1);
    JournalDrop(journal_.RecordRestart(id_, restarts_));
    // Doubling delay, recomputed from the attempt number so the budget is
    // global to the handle rather than per-operation.
    Micros delay = policy_.backoff_initial;
    for (int i = 1; i < restarts_ && delay < policy_.backoff_cap; ++i) {
      delay = delay * 2 > policy_.backoff_cap ? policy_.backoff_cap
                                              : delay * 2;
    }
    Backoff backoff(1, delay, policy_.backoff_cap);
    (void)backoff.Next(SteadyClock::Instance());
    AFS_LOG(kWarn, "afs.supervisor")
        << request_.vfs_path << ": restarting sentinel after crash during "
        << why << " (attempt " << restarts_ << "/" << policy_.max_restarts
        << ")";
    return Status::Ok();
  }

  // Full crash recovery: tear down, restart with backoff, re-attach,
  // replay.  OK = retry the interrupted operation (active again or
  // degraded); error = permanently failed.
  Status RecoverLocked(const char* why) AFS_REQUIRES(mu_) {
    Supervisor::MarkDead(session_);
    while (true) {
      AFS_RETURN_IF_ERROR(NextRestartLocked(why));
      if (mode_ == Mode::kDegraded) return Status::Ok();
      Status opened = OpenSessionLocked();
      if (!opened.ok()) continue;  // crashed again before the open-ack
      Status replayed = ReplayLocked();
      if (!replayed.ok()) {
        AFS_LOG(kWarn, "afs.supervisor")
            << request_.vfs_path << ": session replay failed ("
            << replayed.ToString() << "); retrying";
        continue;
      }
      return Status::Ok();
    }
  }

  // Restart budget exhausted (or restart impossible): fall back to the
  // bundle's data part per the declared degrade mode.
  Status DegradeLocked(const char* why) AFS_REQUIRES(mu_) {
    DetachSession();
    inner_.reset();
    static obs::Counter& degrades =
        obs::Registry::Global().GetCounter("core.supervisor.degrades");
    degrades.Add(1);
    JournalDrop(journal_.RecordDegrade(
        id_, std::string(DegradeModeName(policy_.degrade))));
    if (policy_.degrade == DegradeMode::kFail) {
      mode_ = Mode::kFailed;
      AFS_LOG(kError, "afs.supervisor")
          << request_.vfs_path << ": sentinel permanently failed during "
          << why << " after " << restarts_ << " restart(s)";
      return ClosedError("sentinel permanently failed (crash during " +
                         std::string(why) + ")");
    }
    Result<std::unique_ptr<BundleFile>> bundle =
        BundleFile::Open(request_.host_path);
    if (!bundle.ok()) {
      mode_ = Mode::kFailed;
      return ClosedError("cannot degrade: " + bundle.status().ToString());
    }
    const bool writable = policy_.degrade == DegradeMode::kPassthrough;
    auto fallback = std::make_unique<DegradedHandle>(
        std::move(*bundle), writable, stream_,
        stream_ ? read_pos_ : static_cast<std::uint64_t>(position_),
        stream_ ? write_pos_ : static_cast<std::uint64_t>(position_));
    if (stream_ && writable && !write_log_overflow_) {
      // Make the data part byte-exact: unacknowledged stream writes may or
      // may not have been applied by the dead sentinel, so re-apply the
      // whole log positionally.
      std::uint64_t offset = 0;
      for (const Buffer& logged : write_log_) {
        Result<std::size_t> n =
            fallback->bundle()->WriteDataAt(offset, ByteSpan(logged));
        if (!n.ok()) {
          mode_ = Mode::kFailed;
          return ClosedError("cannot degrade: " + n.status().ToString());
        }
        offset += *n;
      }
    }
    degraded_ = std::move(fallback);
    mode_ = Mode::kDegraded;
    AFS_LOG(kWarn, "afs.supervisor")
        << request_.vfs_path << ": degraded to "
        << DegradeModeName(policy_.degrade) << " after crash during " << why;
    return Status::Ok();
  }

  void DetachSession() AFS_REQUIRES(mu_) {
    if (session_ != nullptr) {
      supervisor_.Detach(session_);
      session_.reset();
    }
    child_.reset();
    // Must drop before inner_ does: the closure probes a descriptor the
    // inner handle owns.
    peer_alive_ = nullptr;
  }

  Supervisor& supervisor_;
  SessionJournal& journal_;
  const sentinel::SentinelRegistry& registry_;
  const Strategy strategy_;
  const bool stream_;
  const OpenRequest request_;
  const RestartPolicy policy_;
  const std::uint64_t id_;

  Mutex mu_;
  std::unique_ptr<vfs::FileHandle> inner_ AFS_GUARDED_BY(mu_);
  std::unique_ptr<DegradedHandle> degraded_ AFS_GUARDED_BY(mu_);
  std::shared_ptr<Supervisor::Session> session_ AFS_GUARDED_BY(mu_);
  std::shared_ptr<ipc::ProcessWatch> child_ AFS_GUARDED_BY(mu_);
  std::function<bool()> peer_alive_ AFS_GUARDED_BY(mu_);
  Mode mode_ AFS_GUARDED_BY(mu_) = Mode::kActive;
  bool closed_ AFS_GUARDED_BY(mu_) = false;
  int restarts_ AFS_GUARDED_BY(mu_) = 0;

  // Replayable session state (mirrored write-ahead in the journal).
  std::int64_t position_ AFS_GUARDED_BY(mu_) = 0;   // command strategies
  std::uint64_t read_pos_ AFS_GUARDED_BY(mu_) = 0;  // stream strategy
  std::uint64_t write_pos_ AFS_GUARDED_BY(mu_) = 0;
  std::vector<Buffer> write_log_ AFS_GUARDED_BY(mu_);
  std::size_t write_log_bytes_ AFS_GUARDED_BY(mu_) = 0;
  bool write_log_overflow_ AFS_GUARDED_BY(mu_) = false;
};

}  // namespace

Result<std::unique_ptr<vfs::FileHandle>> OpenSupervised(
    Supervisor& supervisor, SessionJournal& journal,
    const sentinel::SentinelRegistry& registry, Strategy strategy,
    const OpenRequest& request, const RestartPolicy& policy) {
  if (strategy == Strategy::kDirect) {
    return UnsupportedError(
        "direct strategy runs the sentinel in the caller's frame and "
        "cannot be supervised");
  }
  auto handle = std::make_unique<SupervisedHandle>(
      supervisor, journal, registry, strategy, request, policy);
  AFS_RETURN_IF_ERROR(handle->Open());
  return std::unique_ptr<vfs::FileHandle>(std::move(handle));
}

}  // namespace afs::core
