#include "core/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "obs/metrics.hpp"

namespace afs::core {

namespace {

// Loop instrumentation, aggregated across shards (docs/OBSERVABILITY.md).
struct LoopMetrics {
  obs::Counter& wakeups;
  obs::Counter& dispatches;
  obs::Histogram& batch;
  obs::Gauge& queue_depth;

  LoopMetrics()
      : wakeups(obs::Registry::Global().GetCounter("core.loop.wakeups")),
        dispatches(obs::Registry::Global().GetCounter("core.loop.dispatches")),
        batch(obs::Registry::Global().GetHistogram("core.loop.batch")),
        queue_depth(obs::Registry::Global().GetGauge("core.loop.queue_depth")) {
  }

  static LoopMetrics& Global() {
    static LoopMetrics metrics;
    return metrics;
  }
};

std::uint32_t ToEpollMask(std::uint32_t events) {
  std::uint32_t mask = 0;
  if (events & EventLoop::kReadable) mask |= EPOLLIN;
  if (events & EventLoop::kWritable) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

EventLoop::EventLoop(Options options) : options_(options) {
  if (options_.batch_limit < 1) options_.batch_limit = 1;
}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  if (running_.load()) return Status::Ok();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return IoError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return IoError(std::string("eventfd: ") + std::strerror(err));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const int err = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return IoError(std::string("epoll_ctl add wakeup: ") + std::strerror(err));
  }
  {
    MutexLock lock(mu_);
    stop_ = false;
  }
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void EventLoop::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  Ring();
  if (thread_.joinable()) thread_.join();
  // Final drain: teardown tasks posted while the loop wound down (implicit
  // closes, connection unregisters) still run, on the stopping thread.
  std::vector<std::function<void()>> leftover;
  {
    MutexLock lock(mu_);
    leftover.swap(queue_);
    timers_.clear();
    fds_.clear();
  }
  LoopMetrics::Global().queue_depth.Add(
      -static_cast<std::int64_t>(leftover.size()));
  for (auto& task : leftover) task();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

void EventLoop::Ring() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  // afs-lint: allow(nonblocking: eventfd doorbell; an 8-byte counter write never parks)
  while (::write(wake_fd_, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

void EventLoop::Post(std::function<void()> task) {
  bool run_inline = false;
  {
    MutexLock lock(mu_);
    if (stop_ && !running_.load()) {
      // Loop already gone: run the task in the caller (teardown paths post
      // cleanup work after Stop; dropping it would leak sessions).
      run_inline = true;
    } else {
      queue_.push_back(std::move(task));
    }
  }
  if (run_inline) {
    task();
    return;
  }
  LoopMetrics::Global().queue_depth.Add(1);
  Ring();
}

bool EventLoop::TryPost(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stop_ && !running_.load()) return false;
    if (options_.queue_limit != 0 && queue_.size() >= options_.queue_limit) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  LoopMetrics::Global().queue_depth.Add(1);
  Ring();
  return true;
}

std::size_t EventLoop::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

std::uint64_t EventLoop::AddTimer(Micros delay, std::function<void()> fn) {
  const auto due = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(std::max<std::int64_t>(
                       0, delay.count()));
  std::uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_timer_id_++;
    timers_.push_back(Timer{due, id, std::move(fn)});
  }
  Ring();  // the new deadline may be nearer than the current epoll timeout
  return id;
}

void EventLoop::CancelTimer(std::uint64_t id) {
  MutexLock lock(mu_);
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [id](const Timer& t) { return t.id == id; }),
                timers_.end());
}

Status EventLoop::RegisterFd(int fd, std::uint32_t events,
                             std::function<void(std::uint32_t)> callback) {
  if (fd < 0) return InvalidArgumentError("RegisterFd: bad descriptor");
  if (epoll_fd_ < 0) return ClosedError("event loop not started");
  {
    MutexLock lock(mu_);
    fds_[fd] = std::move(callback);
  }
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    const int err = errno;
    MutexLock lock(mu_);
    fds_.erase(fd);
    return IoError(std::string("epoll_ctl add: ") + std::strerror(err));
  }
  return Status::Ok();
}

Status EventLoop::ModifyFd(int fd, std::uint32_t events) {
  if (epoll_fd_ < 0) return ClosedError("event loop not started");
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return IoError(std::string("epoll_ctl mod: ") + std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::UnregisterFd(int fd) {
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  MutexLock lock(mu_);
  fds_.erase(fd);
}

int EventLoop::NextTimeoutMsLocked() {
  if (!queue_.empty()) return 0;  // posted work pending: poll, don't park
  if (timers_.empty()) return 1000;  // idle heartbeat; the doorbell wakes us
  auto soonest = timers_.front().due;
  for (const Timer& t : timers_) soonest = std::min(soonest, t.due);
  const auto now = std::chrono::steady_clock::now();
  if (soonest <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      soonest - now)
                      .count() +
                  1;
  return static_cast<int>(std::min<long long>(ms, 1000));
}

void EventLoop::FireDueTimers() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::function<void()>> due;
  {
    MutexLock lock(mu_);
    auto it = timers_.begin();
    while (it != timers_.end()) {
      if (it->due <= now) {
        due.push_back(std::move(it->fn));
        it = timers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& fn : due) fn();
}

std::size_t EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    MutexLock lock(mu_);
    const std::size_t take = std::min(
        queue_.size(), static_cast<std::size_t>(options_.batch_limit));
    batch.assign(std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.begin() + take));
    queue_.erase(queue_.begin(), queue_.begin() + take);
  }
  if (!batch.empty()) {
    LoopMetrics& metrics = LoopMetrics::Global();
    metrics.queue_depth.Add(-static_cast<std::int64_t>(batch.size()));
    metrics.dispatches.Add(batch.size());
    metrics.batch.Record(batch.size());
  }
  for (auto& task : batch) task();
  return batch.size();
}

void EventLoop::Run() {
  thread_id_.store(std::this_thread::get_id());
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  LoopMetrics& metrics = LoopMetrics::Global();
  while (true) {
    int timeout_ms;
    {
      MutexLock lock(mu_);
      if (stop_) return;
      timeout_ms = NextTimeoutMsLocked();
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) return;  // epoll fd gone: shutting down
    metrics.wakeups.Add(1);
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t count = 0;
        // afs-lint: allow(nonblocking: EFD_NONBLOCK drain of the doorbell counter)
        while (::read(wake_fd_, &count, sizeof(count)) < 0 && errno == EINTR) {
        }
        continue;
      }
      std::function<void(std::uint32_t)> callback;
      {
        MutexLock lock(mu_);
        auto it = fds_.find(fd);
        if (it != fds_.end()) callback = it->second;
      }
      std::uint32_t ready = 0;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        ready |= kReadable;
      }
      if (events[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) {
        ready |= kWritable;
      }
      if (callback) callback(ready);
    }
    FireDueTimers();
    DrainPosted();
  }
}

// ---------------------------------------------------------------------
// EventLoopPool

EventLoopPool::EventLoopPool(int shards, EventLoop::Options options) {
  if (shards < 1) shards = 1;
  loops_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(options));
  }
}

Status EventLoopPool::Start() {
  for (auto& loop : loops_) AFS_RETURN_IF_ERROR(loop->Start());
  return Status::Ok();
}

void EventLoopPool::Stop() {
  for (auto& loop : loops_) loop->Stop();
}

EventLoop& EventLoopPool::Shard(int pin) { return ShardAt(PickShard(pin)); }

std::size_t EventLoopPool::PickShard(int pin) {
  const std::size_t count = loops_.size();
  if (pin >= 0) return static_cast<std::size_t>(pin) % count;
  return cursor_.fetch_add(1, std::memory_order_relaxed) % count;
}

}  // namespace afs::core
