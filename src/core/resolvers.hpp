// RemoteResolver implementations: how sentinels reach remote information
// sources named in their spec config.
//
//   "sock:<path>"          — Unix-domain socket (net::SocketClient).  Safe
//                            across fork, so this is the resolver the
//                            process-based strategies need for remote work.
//   "sim:<node>:<service>" — a SimNet service, reached from a fixed client
//                            node.  In-process strategies only.
//
// EnvironmentResolver combines both and picks by URL scheme.
#pragma once

#include <memory>
#include <string>

#include "net/simnet.hpp"
#include "net/socket_transport.hpp"
#include "sentinel/context.hpp"

namespace afs::core {

class SocketResolver final : public sentinel::RemoteResolver {
 public:
  Result<std::unique_ptr<net::Transport>> Connect(
      const std::string& url) override;
};

class SimNetResolver final : public sentinel::RemoteResolver {
 public:
  // All connections originate at `client_node`.
  SimNetResolver(net::SimNet& net, std::string client_node)
      : net_(net), client_node_(std::move(client_node)) {}

  Result<std::unique_ptr<net::Transport>> Connect(
      const std::string& url) override;

 private:
  net::SimNet& net_;
  std::string client_node_;
};

// Scheme-dispatching resolver.  The SimNet half is optional.
class EnvironmentResolver final : public sentinel::RemoteResolver {
 public:
  EnvironmentResolver() = default;
  EnvironmentResolver(net::SimNet* net, std::string client_node)
      : simnet_(net == nullptr
                    ? nullptr
                    : std::make_unique<SimNetResolver>(*net,
                                                       std::move(client_node))) {}

  Result<std::unique_ptr<net::Transport>> Connect(
      const std::string& url) override;

 private:
  SocketResolver socket_;
  std::unique_ptr<SimNetResolver> simnet_;
};

}  // namespace afs::core
