// Concrete SentinelLink / SentinelEndpoint transports.
//
//   PipeLink / PipeEndpoint  — three anonymous pipes (control, response,
//     write-data), the paper's process-plus-control strategy (Section 4.2).
//     Every operation costs kernel copies and two protection-domain
//     crossings; that cost is the point of the Figure 6 comparison.
//
//   ThreadRendezvous — one in-process rendezvous slot guarded by a mutex
//     and condition variables ("events and shared memory", Appendix A.3),
//     the DLL-with-thread strategy.  Data moves through the inline lanes of
//     ControlMessage, giving one user-level copy per transfer.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "core/overload.hpp"
#include "ipc/pipe.hpp"
#include "ipc/shm_ring.hpp"
#include "sentinel/endpoint.hpp"

namespace afs::core {

class Lease;  // core/supervisor.hpp

// Shared-memory data-plane knobs parsed from the active-file spec
// (docs/SHM_DATA_PLANE.md): `shm_threshold` is the payload size at which
// bulk bytes leave the pipes for the ring ("off" disables the ring
// entirely), `shm_ring_bytes` the per-direction ring capacity.
struct ShmConfig {
  bool enabled = true;
  std::size_t threshold = 4096;
  std::size_t ring_bytes = std::size_t{1} << 20;
};

ShmConfig ParseShmConfig(const std::map<std::string, std::string>& config);

struct PipeLinkFds {
  // Application side.
  ipc::PipeEnd control_write;   // command frames ->
  ipc::PipeEnd response_read;   // <- response frames (the "read pipe")
  ipc::PipeEnd data_write;      // raw write payloads -> (the "write pipe")
};

struct PipeEndpointFds {
  // Sentinel side.
  ipc::PipeEnd control_read;
  ipc::PipeEnd response_write;
  ipc::PipeEnd data_read;
};

// Creates the three pipes and deals the ends to each side.
Result<std::pair<PipeLinkFds, PipeEndpointFds>> CreatePipePair();

class PipeLink final : public sentinel::SentinelLink {
 public:
  explicit PipeLink(PipeLinkFds fds) : fds_(std::move(fds)) {}

  Status AF_SendControl(const sentinel::ControlMessage& message)
      AFS_NONBLOCKING override;
  Result<sentinel::ControlResponse> AF_GetResponse() AFS_NONBLOCKING
      override;

  // Bounds every AF_GetResponse wait: a sentinel that never answers costs
  // the application kTimeout instead of a hang.  Non-positive (the default)
  // waits forever.
  void set_response_timeout(Micros timeout) noexcept {
    response_timeout_ = timeout;
  }

  // Installs the liveness lease this link renews whenever any frame —
  // heartbeat or real response — arrives from the sentinel.
  void set_lease(std::shared_ptr<Lease> lease) noexcept {
    lease_ = std::move(lease);
  }

  // Monitor-thread entry: drains frames that are already pending without
  // blocking.  Heartbeats renew the lease and are discarded; a real
  // response that races the poll is stashed for the next AF_GetResponse.
  // A no-op while an application operation owns the read side (that
  // operation observes liveness itself).
  void PollHeartbeats() AFS_NONBLOCKING;

  // Closes all application-side ends; the sentinel sees EOF.
  void Shutdown();

  // Marks all application-side ends close-on-exec (exec-mode sentinels).
  Status SetCloexec();

  // Attaches the shared ring (docs/PROTOCOL.md §3.5).  Payloads of at
  // least `threshold` bytes ride it — but only once the peer has
  // advertised the shm data plane in a response extension; until then
  // everything stays on the pipes.
  void set_shm(std::shared_ptr<ipc::ShmRing> ring, std::size_t threshold);

  // Per-link admission budgets (docs/OVERLOAD.md): every op charges its
  // cost before the control frame leaves; a shed op fails with kOverloaded
  // before any byte hits the wire, so the stream stays usable.  Configure
  // before the link is shared.
  void set_admission(AdmissionGate::Limits limits, OverloadPolicy policy);

  // What a congested shm ring does to a bulk payload (docs/OVERLOAD.md):
  // kBrownout (the default) drops back to the pipe lane for this op,
  // kShed fails it with kOverloaded, kBlock keeps the classic bounded
  // ring write.  Configure before the link is shared.
  void set_overload(OverloadPolicy policy) noexcept { overload_ = policy; }

  // Latched from response extensions: 0 until the sentinel's first frame
  // arrives, kDataPlaneRev once a ring-capable peer has answered.
  std::uint8_t peer_rev() const noexcept override {
    return peer_rev_.load(std::memory_order_relaxed);
  }

 private:
  // Latches the peer's advertised revision and, for a shm-lane response,
  // pulls its payload off the ring — into the stashed destination spans of
  // the op in flight when present, into response.payload otherwise.
  Status AdoptResponse(sentinel::ControlResponse& response)
      AFS_REQUIRES(read_mu_);

  Result<sentinel::ControlResponse> GetResponseInternal() AFS_NONBLOCKING;

  void ReleaseAdmission();

  // afs-lint: allow(guarded-member: fd table fixed at construction; read_mu_ serializes response readers)
  PipeLinkFds fds_;
  // afs-lint: allow(guarded-member: configured before the link is shared)
  Micros response_timeout_{0};
  // afs-lint: allow(guarded-member: configured before the link is shared)
  std::shared_ptr<Lease> lease_;
  // afs-lint: allow(guarded-member: configured before the link is shared)
  std::shared_ptr<ipc::ShmRing> ring_;
  // afs-lint: allow(guarded-member: configured before the link is shared)
  std::size_t shm_threshold_ = 4096;
  // afs-lint: allow(guarded-member: configured before the link is shared)
  std::unique_ptr<AdmissionGate> gate_;
  // afs-lint: allow(guarded-member: configured before the link is shared)
  OverloadPolicy overload_ = OverloadPolicy::kBrownout;
  // Monotonic latch; atomic so LinkHandle can gate vectored ops on it
  // without taking the read lock.
  std::atomic<std::uint8_t> peer_rev_{0};

  // Serializes readers of the response pipe: the application operation in
  // flight vs. the supervisor's heartbeat drain.
  Mutex read_mu_;
  std::optional<sentinel::ControlResponse> pending_ AFS_GUARDED_BY(read_mu_);
  // Cost of the admitted op in flight; zero when none.  Swap-to-zero on
  // release keeps the gate balanced when Shutdown races a response.
  std::size_t admitted_cost_ AFS_GUARDED_BY(read_mu_) = 0;
  // Destination spans of the op in flight (inline_out / vec_out), stashed
  // at send so a shm-lane response scatters ring bytes straight into the
  // caller's buffers — the zero-extra-copy read path.
  std::vector<MutableByteSpan> scatter_ AFS_GUARDED_BY(read_mu_);
};

class PipeEndpoint final : public sentinel::SentinelEndpoint {
 public:
  explicit PipeEndpoint(PipeEndpointFds fds) : fds_(std::move(fds)) {}

  Result<sentinel::ControlMessage> AF_GetControl() AFS_NONBLOCKING override;
  Result<Buffer> AF_GetDataFromAppl(std::size_t length)
      AFS_NONBLOCKING override;
  Status AF_SendResponse(const sentinel::ControlResponse& response)
      AFS_NONBLOCKING override;

  // When positive, an idle AF_GetControl emits a heartbeat response every
  // `interval` instead of blocking forever — the sentinel side of the
  // lease protocol.  Set before the dispatch loop starts.
  void set_heartbeat_interval(Micros interval) noexcept {
    heartbeat_interval_ = interval;
  }

  // Attaches the shared ring (set before the dispatch loop starts).  Once
  // attached, every response advertises kDataPlaneRev and payloads of at
  // least `threshold` bytes ride the ring; inbound shm-lane writes are
  // drained from it instead of the data pipe.
  void set_shm(std::shared_ptr<ipc::ShmRing> ring,
               std::size_t threshold) noexcept {
    ring_ = std::move(ring);
    shm_threshold_ = threshold;
  }

  // Congested-ring behavior for response payloads (docs/OVERLOAD.md).  A
  // response cannot be dropped, so kShed degrades to kBrownout here: the
  // payload rides the response frame instead of the stalled ring.  kBlock
  // keeps the classic bounded ring write.  Set before the loop starts.
  void set_overload(OverloadPolicy policy) noexcept { overload_ = policy; }

 private:
  PipeEndpointFds fds_;
  Micros heartbeat_interval_{0};
  std::shared_ptr<ipc::ShmRing> ring_;
  std::size_t shm_threshold_ = 4096;
  OverloadPolicy overload_ = OverloadPolicy::kBrownout;
  // Lane byte of the command being served (single dispatch thread): tells
  // AF_GetDataFromAppl which lane carries the write payload.
  std::uint8_t last_lane_ = 0;
};

// Both halves of the thread strategy's connection in one object.  The
// application stub and the sentinel thread rendezvous on a single
// in-flight command; ControlMessage's inline lanes pass application
// buffers to the sentinel by reference.
class ThreadRendezvous final : public sentinel::SentinelLink,
                               public sentinel::SentinelEndpoint {
 public:
  ThreadRendezvous() = default;

  // SentinelLink (application side).
  Status AF_SendControl(const sentinel::ControlMessage& message)
      AFS_NONBLOCKING override;
  Result<sentinel::ControlResponse> AF_GetResponse() AFS_NONBLOCKING
      override;

  // SentinelEndpoint (sentinel side).
  Result<sentinel::ControlMessage> AF_GetControl() AFS_NONBLOCKING override;
  Result<Buffer> AF_GetDataFromAppl(std::size_t length)
      AFS_NONBLOCKING override;
  Status AF_SendResponse(const sentinel::ControlResponse& response)
      AFS_NONBLOCKING override;

  // Wakes both sides with kClosed; further traffic fails.
  void Shutdown();

  // Bounds the application's AF_GetResponse wait; kTimeout when the
  // sentinel thread does not answer in time.  Non-positive waits forever.
  void set_response_timeout(Micros timeout) noexcept;

  // Installs the shared-memory lease the sentinel thread renews from
  // inside its waits (the in-process analogue of heartbeat frames).  The
  // thread wakes every `interval` while idle just to stamp the lease.
  void set_lease(std::shared_ptr<Lease> lease, Micros interval);

  // Per-link admission budgets (docs/OVERLOAD.md); configure before the
  // sentinel thread starts.  A shed op fails with kOverloaded without
  // touching the rendezvous slot, so the command stream stays usable.
  void set_admission(AdmissionGate::Limits limits, OverloadPolicy policy);

 private:
  enum class SlotState { kIdle, kCommand, kResponse };

  void ReleaseAdmission();

  // afs-lint: allow(guarded-member: configured before the link is shared)
  std::unique_ptr<AdmissionGate> gate_;
  // afs-lint: allow(guarded-member: configured before the link is shared)
  OverloadPolicy overload_ = OverloadPolicy::kShed;

  Mutex mu_;
  CondVar cv_;
  SlotState state_ AFS_GUARDED_BY(mu_) = SlotState::kIdle;
  // Shutdown is a flag, not a slot state: a response already posted when
  // Shutdown() lands (the failed-open banner) must still reach the
  // application before AF_GetResponse starts reporting kClosed.
  bool shutdown_ AFS_GUARDED_BY(mu_) = false;
  Micros response_timeout_ AFS_GUARDED_BY(mu_){0};
  std::shared_ptr<Lease> lease_ AFS_GUARDED_BY(mu_);
  Micros lease_interval_ AFS_GUARDED_BY(mu_){0};
  // Cost of the admitted op in flight; zero when none (swap-to-zero
  // release keeps the gate balanced when Shutdown races a response).
  std::size_t admitted_cost_ AFS_GUARDED_BY(mu_) = 0;
  sentinel::ControlMessage message_ AFS_GUARDED_BY(mu_);
  sentinel::ControlResponse response_ AFS_GUARDED_BY(mu_);
};

}  // namespace afs::core
