// Concrete SentinelLink / SentinelEndpoint transports.
//
//   PipeLink / PipeEndpoint  — three anonymous pipes (control, response,
//     write-data), the paper's process-plus-control strategy (Section 4.2).
//     Every operation costs kernel copies and two protection-domain
//     crossings; that cost is the point of the Figure 6 comparison.
//
//   ThreadRendezvous — one in-process rendezvous slot guarded by a mutex
//     and condition variables ("events and shared memory", Appendix A.3),
//     the DLL-with-thread strategy.  Data moves through the inline lanes of
//     ControlMessage, giving one user-level copy per transfer.
#pragma once

#include <memory>
#include <optional>

#include "common/mutex.hpp"
#include "ipc/pipe.hpp"
#include "sentinel/endpoint.hpp"

namespace afs::core {

class Lease;  // core/supervisor.hpp

struct PipeLinkFds {
  // Application side.
  ipc::PipeEnd control_write;   // command frames ->
  ipc::PipeEnd response_read;   // <- response frames (the "read pipe")
  ipc::PipeEnd data_write;      // raw write payloads -> (the "write pipe")
};

struct PipeEndpointFds {
  // Sentinel side.
  ipc::PipeEnd control_read;
  ipc::PipeEnd response_write;
  ipc::PipeEnd data_read;
};

// Creates the three pipes and deals the ends to each side.
Result<std::pair<PipeLinkFds, PipeEndpointFds>> CreatePipePair();

class PipeLink final : public sentinel::SentinelLink {
 public:
  explicit PipeLink(PipeLinkFds fds) : fds_(std::move(fds)) {}

  Status AF_SendControl(const sentinel::ControlMessage& message)
      AFS_NONBLOCKING override;
  Result<sentinel::ControlResponse> AF_GetResponse() AFS_NONBLOCKING
      override;

  // Bounds every AF_GetResponse wait: a sentinel that never answers costs
  // the application kTimeout instead of a hang.  Non-positive (the default)
  // waits forever.
  void set_response_timeout(Micros timeout) noexcept {
    response_timeout_ = timeout;
  }

  // Installs the liveness lease this link renews whenever any frame —
  // heartbeat or real response — arrives from the sentinel.
  void set_lease(std::shared_ptr<Lease> lease) noexcept {
    lease_ = std::move(lease);
  }

  // Monitor-thread entry: drains frames that are already pending without
  // blocking.  Heartbeats renew the lease and are discarded; a real
  // response that races the poll is stashed for the next AF_GetResponse.
  // A no-op while an application operation owns the read side (that
  // operation observes liveness itself).
  void PollHeartbeats() AFS_NONBLOCKING;

  // Closes all application-side ends; the sentinel sees EOF.
  void Shutdown();

  // Marks all application-side ends close-on-exec (exec-mode sentinels).
  Status SetCloexec();

 private:
  // afs-lint: allow(guarded-member: fd table fixed at construction; read_mu_ serializes response readers)
  PipeLinkFds fds_;
  // afs-lint: allow(guarded-member: configured before the link is shared)
  Micros response_timeout_{0};
  // afs-lint: allow(guarded-member: configured before the link is shared)
  std::shared_ptr<Lease> lease_;

  // Serializes readers of the response pipe: the application operation in
  // flight vs. the supervisor's heartbeat drain.
  Mutex read_mu_;
  std::optional<sentinel::ControlResponse> pending_ AFS_GUARDED_BY(read_mu_);
};

class PipeEndpoint final : public sentinel::SentinelEndpoint {
 public:
  explicit PipeEndpoint(PipeEndpointFds fds) : fds_(std::move(fds)) {}

  Result<sentinel::ControlMessage> AF_GetControl() AFS_NONBLOCKING override;
  Result<Buffer> AF_GetDataFromAppl(std::size_t length)
      AFS_NONBLOCKING override;
  Status AF_SendResponse(const sentinel::ControlResponse& response)
      AFS_NONBLOCKING override;

  // When positive, an idle AF_GetControl emits a heartbeat response every
  // `interval` instead of blocking forever — the sentinel side of the
  // lease protocol.  Set before the dispatch loop starts.
  void set_heartbeat_interval(Micros interval) noexcept {
    heartbeat_interval_ = interval;
  }

 private:
  PipeEndpointFds fds_;
  Micros heartbeat_interval_{0};
};

// Both halves of the thread strategy's connection in one object.  The
// application stub and the sentinel thread rendezvous on a single
// in-flight command; ControlMessage's inline lanes pass application
// buffers to the sentinel by reference.
class ThreadRendezvous final : public sentinel::SentinelLink,
                               public sentinel::SentinelEndpoint {
 public:
  ThreadRendezvous() = default;

  // SentinelLink (application side).
  Status AF_SendControl(const sentinel::ControlMessage& message)
      AFS_NONBLOCKING override;
  Result<sentinel::ControlResponse> AF_GetResponse() AFS_NONBLOCKING
      override;

  // SentinelEndpoint (sentinel side).
  Result<sentinel::ControlMessage> AF_GetControl() AFS_NONBLOCKING override;
  Result<Buffer> AF_GetDataFromAppl(std::size_t length)
      AFS_NONBLOCKING override;
  Status AF_SendResponse(const sentinel::ControlResponse& response)
      AFS_NONBLOCKING override;

  // Wakes both sides with kClosed; further traffic fails.
  void Shutdown();

  // Bounds the application's AF_GetResponse wait; kTimeout when the
  // sentinel thread does not answer in time.  Non-positive waits forever.
  void set_response_timeout(Micros timeout) noexcept;

  // Installs the shared-memory lease the sentinel thread renews from
  // inside its waits (the in-process analogue of heartbeat frames).  The
  // thread wakes every `interval` while idle just to stamp the lease.
  void set_lease(std::shared_ptr<Lease> lease, Micros interval);

 private:
  enum class SlotState { kIdle, kCommand, kResponse };

  Mutex mu_;
  CondVar cv_;
  SlotState state_ AFS_GUARDED_BY(mu_) = SlotState::kIdle;
  // Shutdown is a flag, not a slot state: a response already posted when
  // Shutdown() lands (the failed-open banner) must still reach the
  // application before AF_GetResponse starts reporting kClosed.
  bool shutdown_ AFS_GUARDED_BY(mu_) = false;
  Micros response_timeout_ AFS_GUARDED_BY(mu_){0};
  std::shared_ptr<Lease> lease_ AFS_GUARDED_BY(mu_);
  Micros lease_interval_ AFS_GUARDED_BY(mu_){0};
  sentinel::ControlMessage message_ AFS_GUARDED_BY(mu_);
  sentinel::ControlResponse response_ AFS_GUARDED_BY(mu_);
};

}  // namespace afs::core
