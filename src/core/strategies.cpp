#include "core/strategies.hpp"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>
#include <utility>

#include "common/faultpoint.hpp"
#include "common/mutex.hpp"
#include "core/links.hpp"
#include "core/loop_host.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "core/supervisor.hpp"
#include "ipc/process.hpp"
#include "sentinel/dispatch.hpp"
#include "sentinel/stream.hpp"

namespace afs::core {

using sentinel::ControlMessage;
using sentinel::ControlOp;
using sentinel::ControlResponse;
using sentinel::SentinelContext;

std::string_view StrategyName(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kProcess: return "process";
    case Strategy::kProcessControl: return "process_control";
    case Strategy::kThread: return "thread";
    case Strategy::kDirect: return "direct";
    case Strategy::kLoop: return "loop";
  }
  return "?";
}

Result<Strategy> ParseStrategy(std::string_view name) {
  if (name == "process") return Strategy::kProcess;
  if (name == "process_control") return Strategy::kProcessControl;
  if (name == "thread") return Strategy::kThread;
  if (name == "direct") return Strategy::kDirect;
  if (name == "loop") return Strategy::kLoop;
  return InvalidArgumentError("unknown strategy: " + std::string(name));
}

std::string_view CacheModeName(CacheMode mode) noexcept {
  switch (mode) {
    case CacheMode::kNone: return "none";
    case CacheMode::kDisk: return "disk";
    case CacheMode::kMemory: return "memory";
  }
  return "?";
}

Result<CacheMode> ParseCacheMode(std::string_view name) {
  if (name == "none") return CacheMode::kNone;
  if (name == "disk") return CacheMode::kDisk;
  if (name == "memory") return CacheMode::kMemory;
  return InvalidArgumentError("unknown cache mode: " + std::string(name));
}

Status CacheAssembly::Finalize() {
  if (mode != CacheMode::kMemory || !writeback || store == nullptr ||
      bundle == nullptr) {
    return Status::Ok();
  }
  auto* memory = static_cast<sentinel::MemoryDataStore*>(store.get());
  return bundle->ReplaceData(ByteSpan(memory->contents()));
}

Result<CacheAssembly> AssembleCache(const std::string& host_path,
                                    const sentinel::SentinelSpec& spec) {
  CacheAssembly assembly;
  auto cache_it = spec.config.find("cache");
  if (cache_it != spec.config.end()) {
    AFS_ASSIGN_OR_RETURN(assembly.mode, ParseCacheMode(cache_it->second));
  }
  auto wb_it = spec.config.find("writeback");
  if (wb_it != spec.config.end()) assembly.writeback = wb_it->second != "0";

  if (assembly.mode == CacheMode::kNone) return assembly;

  AFS_ASSIGN_OR_RETURN(std::unique_ptr<BundleFile> opened,
                       BundleFile::Open(host_path));
  assembly.bundle = std::shared_ptr<BundleFile>(std::move(opened));
  if (assembly.mode == CacheMode::kDisk) {
    assembly.store = std::make_unique<BundleDataStore>(assembly.bundle);
  } else {
    AFS_ASSIGN_OR_RETURN(Buffer data, assembly.bundle->ReadAllData());
    assembly.store =
        std::make_unique<sentinel::MemoryDataStore>(std::move(data));
    if (!assembly.writeback) {
      // Nothing will be written back at close, so the bundle — and its
      // descriptor — is dead weight for the rest of the session.  Dropping
      // it here is what keeps a memory-cache open descriptor-free, which
      // the loop strategy's 100k-handle saturation target depends on.
      assembly.bundle.reset();
    }
  }
  return assembly;
}

namespace {

// Per-operation response deadline from the "op_timeout_ms" config key.
// Zero (the default) preserves the historical block-forever behavior; any
// positive value is the strategy-independent bound on how long one file
// operation may wait for its sentinel.
Micros OpTimeout(const OpenRequest& request) {
  auto it = request.spec.config.find("op_timeout_ms");
  if (it == request.spec.config.end()) return Micros{0};
  const long long ms = std::strtoll(it->second.c_str(), nullptr, 10);
  return ms > 0 ? Micros{ms * 1000} : Micros{0};
}

// The spec's overload policy (docs/OVERLOAD.md): how this link behaves at
// a saturated queueing point.  kShed is the admission default; the shm
// ring lane separately defaults to kBrownout (pipes stay available).
Result<OverloadPolicy> SpecOverloadPolicy(const OpenRequest& request,
                                          OverloadPolicy fallback) {
  return OverloadPolicyFromSpec(request.spec.config, fallback);
}

// Bound on one shm-ring stream leg (mirrors the pipe bound in links.cpp):
// ten seconds of a full/empty ring means the peer stopped participating.
constexpr Micros kRingIoTimeout{10'000'000};

// Poll cadence for ring-mode stream reads: each elapsed slice re-checks
// peer liveness before re-arming the wait.
constexpr Micros kRingPollSlice{200'000};

// Wire segment table of a vectored op: u32 count then the u32 segment
// lengths; `total` receives the summed payload size.
template <typename Seg>
Buffer EncodeVecTable(std::span<Seg> segments, std::size_t* total) {
  Buffer table;
  table.reserve(4 + 4 * segments.size());
  AppendU32(table, static_cast<std::uint32_t>(segments.size()));
  *total = 0;
  for (const auto& segment : segments) {
    AppendU32(table, static_cast<std::uint32_t>(segment.size()));
    *total += segment.size();
  }
  return table;
}

// Creates the shared ring for a process-strategy open, or null when the
// spec disabled it / setup failed (counted; pipes carry everything then).
std::shared_ptr<ipc::ShmRing> CreateRingOrFallback(const ShmConfig& shm) {
  if (!shm.enabled) return nullptr;
  Result<std::shared_ptr<ipc::ShmRing>> created =
      ipc::ShmRing::Create(shm.ring_bytes);
  if (created.ok()) return std::move(*created);
  static obs::Counter& fallbacks =
      obs::Registry::Global().GetCounter("ipc.shm.fallbacks");
  fallbacks.Add(1);
  return nullptr;
}

SentinelContext BuildContext(const OpenRequest& request,
                             const CacheAssembly& cache) {
  SentinelContext ctx;
  ctx.cache = cache.store.get();
  ctx.config = request.spec.config;
  ctx.resolver = request.resolver;
  ctx.lock_dir = request.lock_dir;
  ctx.path = request.vfs_path;
  return ctx;
}

// ---------------------------------------------------------------------
// Stub for the command strategies (process-plus-control and thread): a
// FileHandle whose every operation becomes a control message.
class LinkHandle final : public vfs::FileHandle, public ActiveHandle {
 public:
  LinkHandle(sentinel::SentinelLink* link, std::shared_ptr<void> keepalive,
             std::function<void()> cleanup)
      : link_(link),
        keepalive_(std::move(keepalive)),
        cleanup_(std::move(cleanup)) {}

  ~LinkHandle() override {
    MutexLock lock(mu_);
    if (!closed_) RunCleanup();
  }

  Result<std::size_t> Read(MutableByteSpan out) override {
    MutexLock lock(mu_);
    ControlMessage msg;
    msg.op = ControlOp::kRead;
    msg.length = static_cast<std::uint32_t>(out.size());
    msg.inline_out = out;
    AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
    if (!resp.payload.empty()) {
      // Pipe lane: the data arrived in the response frame.
      const std::size_t n = std::min(resp.payload.size(), out.size());
      std::memcpy(out.data(), resp.payload.data(), n);
      return n;
    }
    return static_cast<std::size_t>(resp.number);
  }

  Result<std::size_t> Write(ByteSpan data) override {
    MutexLock lock(mu_);
    ControlMessage msg;
    msg.op = ControlOp::kWrite;
    msg.length = static_cast<std::uint32_t>(data.size());
    msg.inline_in = data;
    AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
    return static_cast<std::size_t>(resp.number);
  }

  Result<std::uint64_t> Seek(std::int64_t offset,
                             vfs::SeekOrigin origin) override {
    MutexLock lock(mu_);
    ControlMessage msg;
    msg.op = ControlOp::kSeek;
    msg.offset = offset;
    msg.origin = static_cast<std::uint8_t>(origin);
    AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
    return resp.number;
  }

  Result<std::uint64_t> Size() override {
    MutexLock lock(mu_);
    ControlMessage msg;
    msg.op = ControlOp::kGetSize;
    AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
    return resp.number;
  }

  Status SetEndOfFile() override { return SimpleOp(ControlOp::kSetEof); }
  Status Flush() override { return SimpleOp(ControlOp::kFlush); }

  Result<std::size_t> ReadScatter(
      std::span<MutableByteSpan> segments) override {
    {
      MutexLock lock(mu_);
      if (!closed_ && !poisoned_ &&
          link_->peer_rev() >= sentinel::kDataPlaneRev) {
        // Rev-2 peers take the whole scatter list in one crossing: the
        // segment table rides the control frame, the bytes come back on
        // the response lane (ring or frame) and land in the segments.
        ControlMessage msg;
        msg.op = ControlOp::kReadVec;
        std::size_t total = 0;
        msg.payload = EncodeVecTable(segments, &total);
        msg.length = static_cast<std::uint32_t>(total);
        msg.vec_out.assign(segments.begin(), segments.end());
        AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
        if (!resp.payload.empty()) {
          // Pipe lane: scatter the concatenated frame payload.
          std::size_t at = 0;
          for (auto& segment : segments) {
            const std::size_t n =
                std::min(segment.size(), resp.payload.size() - at);
            std::memcpy(segment.data(), resp.payload.data() + at, n);
            at += n;
            if (at == resp.payload.size()) break;
          }
          return at;
        }
        return static_cast<std::size_t>(resp.number);
      }
    }
    // Pre-rev-2 peer: the control channel still makes vectored reads
    // expressible (paper §4.2) — they decompose into sequential reads at
    // the sentinel's position, one crossing each.
    std::size_t total = 0;
    for (auto& segment : segments) {
      AFS_ASSIGN_OR_RETURN(std::size_t n, Read(segment));
      total += n;
      if (n < segment.size()) break;
    }
    return total;
  }

  Result<std::size_t> WriteGather(std::span<ByteSpan> segments) override {
    {
      MutexLock lock(mu_);
      if (!closed_ && !poisoned_ &&
          link_->peer_rev() >= sentinel::kDataPlaneRev) {
        // One crossing for the whole gather list; the segments travel
        // concatenated on the write lane (ring or pipe).
        ControlMessage msg;
        msg.op = ControlOp::kWriteVec;
        std::size_t total = 0;
        msg.payload = EncodeVecTable(segments, &total);
        msg.length = static_cast<std::uint32_t>(total);
        msg.vec_in.assign(segments.begin(), segments.end());
        AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
        return static_cast<std::size_t>(resp.number);
      }
    }
    std::size_t total = 0;
    for (ByteSpan segment : segments) {
      AFS_ASSIGN_OR_RETURN(std::size_t n, Write(segment));
      total += n;
      if (n < segment.size()) break;
    }
    return total;
  }

  Status LockRange(std::uint64_t offset, std::uint64_t length) override {
    return RangeOp(ControlOp::kLock, offset, length);
  }
  Status UnlockRange(std::uint64_t offset, std::uint64_t length) override {
    return RangeOp(ControlOp::kUnlock, offset, length);
  }

  // Application-specific command (exposed via ActiveFileManager::Control).
  Result<Buffer> Control(ByteSpan request) override {
    MutexLock lock(mu_);
    ControlMessage msg;
    msg.op = ControlOp::kCustom;
    msg.payload.assign(request.begin(), request.end());
    AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
    return std::move(resp.payload);
  }

  // Tears the connection down without the close protocol; used when the
  // open banner reports failure (the sentinel loop has already exited).
  void Abort() {
    MutexLock lock(mu_);
    RunCleanup();
  }

  Status Close() override {
    MutexLock lock(mu_);
    if (closed_) return Status::Ok();
    ControlMessage msg;
    msg.op = ControlOp::kClose;
    Status status = Status::Ok();
    Result<ControlResponse> resp = RoundTrip(msg);
    if (resp.ok()) {
      status = resp->status;
    } else if (resp.status().code() != ErrorCode::kClosed) {
      status = resp.status();
    }
    RunCleanup();
    return status;
  }

 private:
  // One command/response exchange with the sentinel — the rendezvous
  // path the event-loop refactor must multiplex.
  Result<ControlResponse> RoundTrip(ControlMessage& msg)
      AFS_NONBLOCKING AFS_REQUIRES(mu_) {
    if (closed_) return ClosedError("handle closed");
    if (poisoned_) return ClosedError("handle poisoned by transport failure");
    // The link leg of the trace: the sentinel parents its own span on this
    // one (the ids travel in the message's trailing extension), and the
    // spans it ships back in the response are adopted below — after this
    // hop the local TraceLog holds the full app→link→sentinel tree.
    obs::Span span("link.roundtrip");
    msg.trace_id = span.trace_id();
    msg.parent_span = span.span_id();
    static obs::Counter& roundtrips =
        obs::Registry::Global().GetCounter("core.link.roundtrips");
    static obs::Histogram& latency =
        obs::Registry::Global().GetHistogram("core.link.roundtrip_us");
    const std::uint64_t n = roundtrips.Increment();
    obs::ScopedLatencyTimer timer((n & 63) == 0 ? &latency : nullptr);
    AFS_FAULT_POINT("core.link.roundtrip");
    Status sent = link_->AF_SendControl(msg);
    if (sent.code() == ErrorCode::kOverloaded) {
      // Shed before any frame left the link: the command/response stream
      // is still synchronized, so the handle stays usable — kOverloaded is
      // retryable (after the carried hint), never poisonous.
      return sent;
    }
    if (!sent.ok()) return Poison(std::move(sent));
    Result<ControlResponse> resp = link_->AF_GetResponse();
    if (!resp.ok()) return Poison(resp.status());
    if (!resp->remote_spans.empty()) {
      obs::TraceLog::Global().AppendAll(std::move(resp->remote_spans));
    }
    if (msg.op != ControlOp::kClose && !resp->status.ok()) {
      if (resp->status.code() == ErrorCode::kOverloaded &&
          resp->retry_after_ms > 0 && RetryAfterHintMs(resp->status) == 0) {
        // Fold the wire's typed retry-after (protocol v3, §3.6) back into
        // the status so Status-only seams above us keep the hint.
        return OverloadedError(resp->status.message(), resp->retry_after_ms);
      }
      return resp->status;  // sentinel-side failure becomes the op's status
    }
    return std::move(*resp);
  }

  // A transport failure mid-round-trip desynchronizes the command/response
  // stream (a late response would answer the wrong command), so the handle
  // is dead from here on: this op reports what happened — kTimeout stays
  // kTimeout, anything else collapses to kClosed — and every later op gets
  // kClosed immediately instead of blocking on a broken link.
  Status Poison(Status cause) AFS_REQUIRES(mu_) {
    poisoned_ = true;
    if (cause.code() == ErrorCode::kTimeout ||
        cause.code() == ErrorCode::kClosed) {
      return cause;
    }
    return ClosedError("sentinel link failed: " + cause.ToString());
  }

  Status SimpleOp(ControlOp op) {
    MutexLock lock(mu_);
    ControlMessage msg;
    msg.op = op;
    AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
    (void)resp;
    return Status::Ok();
  }

  Status RangeOp(ControlOp op, std::uint64_t offset, std::uint64_t length) {
    MutexLock lock(mu_);
    ControlMessage msg;
    msg.op = op;
    msg.offset = static_cast<std::int64_t>(offset);
    msg.range_len = length;
    AFS_ASSIGN_OR_RETURN(ControlResponse resp, RoundTrip(msg));
    (void)resp;
    return Status::Ok();
  }

  void RunCleanup() AFS_REQUIRES(mu_) {
    closed_ = true;
    if (cleanup_) {
      cleanup_();
      cleanup_ = nullptr;
    }
  }

  Mutex mu_;
  sentinel::SentinelLink* link_ AFS_GUARDED_BY(mu_);
  // afs-lint: allow(guarded-member: set at construction; only extends the resource bundle's lifetime)
  std::shared_ptr<void> keepalive_;
  std::function<void()> cleanup_ AFS_GUARDED_BY(mu_);
  bool closed_ AFS_GUARDED_BY(mu_) = false;
  bool poisoned_ AFS_GUARDED_BY(mu_) = false;
};

// ---------------------------------------------------------------------
// DLL-only strategy: operations call the sentinel directly.
class DirectHandle final : public vfs::FileHandle, public ActiveHandle {
 public:
  DirectHandle(std::unique_ptr<sentinel::Sentinel> sent, SentinelContext ctx,
               CacheAssembly cache)
      : sentinel_(std::move(sent)),
        ctx_(std::move(ctx)),
        cache_(std::move(cache)) {
    ctx_.cache = cache_.store.get();
  }

  ~DirectHandle() override {
    MutexLock lock(mu_);
    if (!closed_) (void)DoClose();
  }

  Result<std::size_t> Read(MutableByteSpan out) override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    // Same span name the dispatch loop uses, so direct-strategy traces
    // have the same shape as command-strategy ones minus the link leg.
    obs::Span span("sentinel.read");
    AFS_FAULT_POINT("core.direct.op");
    AFS_ASSIGN_OR_RETURN(std::size_t n, sentinel_->OnRead(ctx_, out));
    ctx_.position += n;
    return n;
  }

  Result<std::size_t> Write(ByteSpan data) override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    obs::Span span("sentinel.write");
    AFS_FAULT_POINT("core.direct.op");
    AFS_ASSIGN_OR_RETURN(std::size_t n, sentinel_->OnWrite(ctx_, data));
    ctx_.position += n;
    return n;
  }

  Result<std::uint64_t> Seek(std::int64_t offset,
                             vfs::SeekOrigin origin) override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    return sentinel_->OnSeek(ctx_, offset, origin);
  }

  Result<std::uint64_t> Size() override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    return sentinel_->OnGetSize(ctx_);
  }

  Status SetEndOfFile() override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    return sentinel_->OnSetEof(ctx_);
  }

  Status Flush() override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    return sentinel_->OnFlush(ctx_);
  }

  Result<std::size_t> ReadScatter(
      std::span<MutableByteSpan> segments) override {
    std::size_t total = 0;
    for (auto& segment : segments) {
      AFS_ASSIGN_OR_RETURN(std::size_t n, Read(segment));
      total += n;
      if (n < segment.size()) break;
    }
    return total;
  }

  Status LockRange(std::uint64_t offset, std::uint64_t length) override {
    MutexLock lock(mu_);
    return sentinel_->OnLock(ctx_, offset, length);
  }
  Status UnlockRange(std::uint64_t offset, std::uint64_t length) override {
    MutexLock lock(mu_);
    return sentinel_->OnUnlock(ctx_, offset, length);
  }

  Result<Buffer> Control(ByteSpan request) override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    return sentinel_->OnControl(ctx_, request);
  }

  Status Close() override {
    MutexLock lock(mu_);
    return DoClose();
  }

  Status Open() {
    MutexLock lock(mu_);
    const Status status = sentinel_->OnOpen(ctx_);
    // Mirror the dispatch loop's lifecycle: a failed OnOpen means no
    // session — OnClose must not run and nothing is written back.
    opened_ = status.ok();
    if (!opened_) closed_ = true;
    return status;
  }

 private:
  Status DoClose() AFS_REQUIRES(mu_) {
    if (closed_) return Status::Ok();
    closed_ = true;
    const Status status = sentinel_->OnClose(ctx_);
    const Status flushed = cache_.Finalize();
    return status.ok() ? flushed : status;
  }

  Mutex mu_;
  std::unique_ptr<sentinel::Sentinel> sentinel_ AFS_GUARDED_BY(mu_);
  SentinelContext ctx_ AFS_GUARDED_BY(mu_);
  CacheAssembly cache_ AFS_GUARDED_BY(mu_);
  bool opened_ AFS_GUARDED_BY(mu_) = false;
  bool closed_ AFS_GUARDED_BY(mu_) = false;
};

// ---------------------------------------------------------------------
// Plain process strategy stub: raw pipe ends, no control channel.
class ProcessHandle final : public vfs::FileHandle {
 public:
  ProcessHandle(ipc::PipeEnd to_sentinel, ipc::PipeEnd from_sentinel,
                std::shared_ptr<ipc::ProcessWatch> child, Micros read_timeout,
                std::shared_ptr<ipc::ShmRing> ring = nullptr)
      : to_sentinel_(std::move(to_sentinel)),
        from_sentinel_(std::move(from_sentinel)),
        child_(std::move(child)),
        read_timeout_(read_timeout),
        ring_(std::move(ring)) {}

  Result<std::size_t> Read(MutableByteSpan out) override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    // Raw byte stream, no control frames: the trace cannot cross into the
    // sentinel here, so this app-side span is the leaf of the trace.
    obs::Span span("link.stream.read");
    if (ring_) {
      // Ring mode: bytes only ever travel the ring; the pipes stay open
      // purely as liveness probes.  Each elapsed slice re-checks the
      // outbound pipe — it turns readable (EOF) exactly when a sentinel
      // died without closing the ring.
      const bool bounded = read_timeout_.count() > 0;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(read_timeout_.count());
      while (true) {
        Micros slice = kRingPollSlice;
        if (bounded) {
          const auto left =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  deadline - std::chrono::steady_clock::now());
          if (left.count() <= 0) {
            return TimeoutError("stream sentinel stopped producing");
          }
          slice = std::min(slice, Micros{left.count()});
        }
        Result<std::size_t> n =
            ring_->ReadSome(ipc::ShmRing::kToApp, out, slice);
        if (n.ok() || n.status().code() != ErrorCode::kTimeout) return n;
        Result<bool> eof = from_sentinel_.Poll();
        if (!eof.ok() || *eof) return std::size_t{0};  // sentinel is gone
      }
    }
    // A sentinel that stops producing must cost kTimeout, not a hang; a
    // dead one closes its end and the read below reports EOF.
    AFS_RETURN_IF_ERROR(from_sentinel_.WaitReadable(read_timeout_));
    return from_sentinel_.ReadSome(out);
  }

  Result<std::size_t> Write(ByteSpan data) override {
    MutexLock lock(mu_);
    if (closed_) return ClosedError("handle closed");
    obs::Span span("link.stream.write");
    if (ring_) {
      AFS_RETURN_IF_ERROR(
          ring_->Write(ipc::ShmRing::kToSentinel, data, kRingIoTimeout));
      return data.size();
    }
    AFS_RETURN_IF_ERROR(to_sentinel_.WriteAll(data));
    return data.size();
  }

  // No control channel: these cannot travel to the sentinel (paper §4.1 —
  // "operations such as ReadFileScatter (or seek in Unix) and GetFileSize
  // cannot be implemented").
  Result<std::uint64_t> Seek(std::int64_t, vfs::SeekOrigin) override {
    return UnsupportedError("seek not supported by process strategy");
  }
  Result<std::uint64_t> Size() override {
    return UnsupportedError("GetFileSize not supported by process strategy");
  }

  Status Close() override {
    MutexLock lock(mu_);
    if (closed_) return Status::Ok();
    closed_ = true;
    if (ring_) ring_->CloseAll();  // ring-mode EOF for the sentinel's pump
    to_sentinel_.Close();    // sentinel's writer loop sees EOF
    from_sentinel_.Close();  // unblocks an eagerly-pushing sentinel (EPIPE)
    // Bounded reap: a wedged sentinel is escalated TERM -> KILL rather
    // than blocking Close forever.
    const ipc::ExitStatus ended = child_->Shutdown();
    if (!ended.clean()) {
      return InternalError("sentinel exited with code " +
                           std::to_string(ended.code));
    }
    return Status::Ok();
  }

 private:
  Mutex mu_;
  ipc::PipeEnd to_sentinel_ AFS_GUARDED_BY(mu_);
  ipc::PipeEnd from_sentinel_ AFS_GUARDED_BY(mu_);
  std::shared_ptr<ipc::ProcessWatch> child_ AFS_GUARDED_BY(mu_);
  const Micros read_timeout_;
  // Bulk data plane when non-null (fork mode only; an exec'd stream binary
  // has no handshake to learn about the ring).
  std::shared_ptr<ipc::ShmRing> ring_ AFS_GUARDED_BY(mu_);
  bool closed_ AFS_GUARDED_BY(mu_) = false;
};

// ---------------------------------------------------------------------

Result<std::unique_ptr<vfs::FileHandle>> OpenDirect(
    const sentinel::SentinelRegistry& registry, const OpenRequest& request) {
  AFS_ASSIGN_OR_RETURN(CacheAssembly cache,
                       AssembleCache(request.host_path, request.spec));
  AFS_ASSIGN_OR_RETURN(std::unique_ptr<sentinel::Sentinel> sent,
                       registry.Create(request.spec));
  SentinelContext ctx = BuildContext(request, cache);
  auto handle = std::make_unique<DirectHandle>(std::move(sent),
                                               std::move(ctx),
                                               std::move(cache));
  AFS_RETURN_IF_ERROR(handle->Open());
  return std::unique_ptr<vfs::FileHandle>(std::move(handle));
}

Result<std::unique_ptr<vfs::FileHandle>> OpenThread(
    const sentinel::SentinelRegistry& registry, const OpenRequest& request,
    SessionProbe* probe) {
  struct Resources {
    ThreadRendezvous rendezvous;
    std::unique_ptr<sentinel::Sentinel> sent;
    SentinelContext ctx;
    CacheAssembly cache;
    std::thread worker;
  };
  auto res = std::make_shared<Resources>();
  AFS_ASSIGN_OR_RETURN(res->cache,
                       AssembleCache(request.host_path, request.spec));
  AFS_ASSIGN_OR_RETURN(res->sent, registry.Create(request.spec));
  res->ctx = BuildContext(request, res->cache);

  res->rendezvous.set_response_timeout(OpTimeout(request));
  {
    // Per-link admission (docs/OVERLOAD.md): ops charge the gate before
    // touching the rendezvous slot; saturation sheds with kOverloaded.
    AFS_ASSIGN_OR_RETURN(OverloadPolicy policy,
                         SpecOverloadPolicy(request, OverloadPolicy::kShed));
    const AdmissionGate::Limits admit =
        AdmissionLimitsFromSpec(request.spec.config);
    if (AdmissionConfigured(admit)) {
      res->rendezvous.set_admission(admit, policy);
    }
  }
  if (probe != nullptr && request.heartbeat_interval.count() > 0) {
    // In-process lease: the sentinel thread stamps shared memory from
    // inside its waits — no frames involved.
    auto lease = std::make_shared<Lease>();
    res->rendezvous.set_lease(lease, request.heartbeat_interval);
    probe->lease = std::move(lease);
  }
  if (probe != nullptr) {
    probe->force_down = [res] { res->rendezvous.Shutdown(); };
  }

  // "Inject" the sentinel: a thread inside the application's process.
  Resources* raw = res.get();
  res->worker = std::thread([raw] {
    (void)sentinel::RunSentinelLoop(*raw->sent, raw->rendezvous, raw->ctx);
    // afs-lint: allow(status-discard: loop already exited; cache dir is temp-scoped)
    (void)raw->cache.Finalize();
    // The loop can exit on its own (injected fault, dispatch failure)
    // while the stub still waits for a response; close the slot so that
    // wait ends in kClosed instead of hanging.
    raw->rendezvous.Shutdown();
  });

  auto cleanup = [res]() {
    res->rendezvous.Shutdown();
    if (res->worker.joinable()) res->worker.join();
  };
  auto handle = std::make_unique<LinkHandle>(&res->rendezvous, res, cleanup);

  // Open banner: OnOpen's status decides whether the open succeeds.
  Result<ControlResponse> banner = res->rendezvous.AF_GetResponse();
  if (!banner.ok() || !banner->status.ok()) {
    handle->Abort();
    return banner.ok() ? banner->status : banner.status();
  }
  return std::unique_ptr<vfs::FileHandle>(std::move(handle));
}

// Event-loop strategy: the sentinel is neither a process nor a dedicated
// thread — it is state serviced by a shard of the global LoopHost pool.
Result<std::unique_ptr<vfs::FileHandle>> OpenLoop(
    const sentinel::SentinelRegistry& registry, const OpenRequest& request,
    SessionProbe* probe) {
  AFS_ASSIGN_OR_RETURN(CacheAssembly cache,
                       AssembleCache(request.host_path, request.spec));
  AFS_ASSIGN_OR_RETURN(std::unique_ptr<sentinel::Sentinel> sent,
                       registry.Create(request.spec));
  SentinelContext ctx = BuildContext(request, cache);

  // "loop_shard" pins co-tenant bundles onto one shard (shared-fate tests,
  // cache locality); unset falls back to round-robin placement.
  int shard_pin = -1;
  if (auto it = request.spec.config.find("loop_shard");
      it != request.spec.config.end()) {
    shard_pin = static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
  }

  std::shared_ptr<Lease> lease;
  if (probe != nullptr && request.heartbeat_interval.count() > 0) {
    // In-process lease, renewed by the shard's heartbeat timer and around
    // every serviced command — a wedged shard starves it.
    lease = std::make_shared<Lease>();
  }

  // Admission (docs/OVERLOAD.md): every command charges the shard's gate
  // (shared with its co-tenants) and, when the spec bounds this link, a
  // per-link gate on top.
  AFS_ASSIGN_OR_RETURN(OverloadPolicy overload,
                       SpecOverloadPolicy(request, OverloadPolicy::kShed));

  AFS_ASSIGN_OR_RETURN(
      std::shared_ptr<LoopSession> session,
      LoopHost::Global().Open(std::move(sent), std::move(ctx),
                              std::move(cache), shard_pin, OpTimeout(request),
                              request.heartbeat_interval, lease,
                              AdmissionLimitsFromSpec(request.spec.config),
                              overload));
  if (probe != nullptr) {
    probe->lease = std::move(lease);
    probe->force_down = [session] { session->ForceDown(); };
  }

  auto cleanup = [session]() { session->Shutdown(); };
  auto handle = std::make_unique<LinkHandle>(session.get(), session, cleanup);

  // Open banner: OnOpen's status decides whether the open succeeds.
  Result<ControlResponse> banner = session->AF_GetResponse();
  if (!banner.ok() || !banner->status.ok()) {
    handle->Abort();
    return banner.ok() ? banner->status : banner.status();
  }
  return std::unique_ptr<vfs::FileHandle>(std::move(handle));
}

// The "exec" config key switches the process strategies to the paper's
// literal model: the active part is an external sentinel executable,
// launched fresh rather than forked from the application.
std::string ExecPath(const OpenRequest& request) {
  auto it = request.spec.config.find("exec");
  return it == request.spec.config.end() ? std::string() : it->second;
}

Result<std::unique_ptr<vfs::FileHandle>> OpenProcessControl(
    const sentinel::SentinelRegistry& registry, const OpenRequest& request,
    SessionProbe* probe) {
  struct Resources {
    std::unique_ptr<PipeLink> link;
    std::shared_ptr<ipc::ProcessWatch> child;
  };
  ipc::IgnoreSigpipe();

  AFS_ASSIGN_OR_RETURN(auto pipes, CreatePipePair());
  auto res = std::make_shared<Resources>();
  res->link = std::make_unique<PipeLink>(std::move(pipes.first));
  res->link->set_response_timeout(OpTimeout(request));

  // Overload handling (docs/OVERLOAD.md): the ring lane defaults to
  // brownout (a congested ring reroutes bulk bytes onto the pipes); the
  // spec's `overload` key switches the whole link to shed or block, and
  // admit_* keys add per-link admission budgets.
  AFS_ASSIGN_OR_RETURN(OverloadPolicy overload,
                       SpecOverloadPolicy(request, OverloadPolicy::kBrownout));
  res->link->set_overload(overload);
  const AdmissionGate::Limits admit =
      AdmissionLimitsFromSpec(request.spec.config);
  if (AdmissionConfigured(admit)) res->link->set_admission(admit, overload);

  std::shared_ptr<Lease> lease;
  if (probe != nullptr && request.heartbeat_interval.count() > 0) {
    lease = std::make_shared<Lease>();
    res->link->set_lease(lease);
  }

  // Shared-memory bulk data plane (docs/SHM_DATA_PLANE.md): the
  // application creates the ring; the sentinel attaches via fork
  // inheritance or the --shm-fd handle.  Any setup failure falls back to
  // pipes — the classic data plane stays fully functional.
  const ShmConfig shm = ParseShmConfig(request.spec.config);
  std::shared_ptr<ipc::ShmRing> ring = CreateRingOrFallback(shm);

  const std::string exec_path = ExecPath(request);
  if (!exec_path.empty()) {
    // fork+exec of the sentinel executable; it reopens the bundle itself.
    // The app-side ends must not leak into the exec'd image, or the
    // sentinel never observes EOF when the application closes.  (The ring
    // descriptor, by contrast, is deliberately inheritable.)
    AFS_RETURN_IF_ERROR(res->link->SetCloexec());
    PipeEndpointFds fds = std::move(pipes.second);
    std::vector<std::string> argv = {
        exec_path, "--mode=control",
        "--control-fd=" + std::to_string(fds.control_read.fd()),
        "--response-fd=" + std::to_string(fds.response_write.fd()),
        "--data-fd=" + std::to_string(fds.data_read.fd()),
        "--bundle=" + request.host_path, "--path=" + request.vfs_path,
        "--lockdir=" + request.lock_dir};
    if (request.heartbeat_interval.count() > 0) {
      argv.push_back("--heartbeat-ms=" +
                     std::to_string(request.heartbeat_interval.count() / 1000));
    }
    if (ring) {
      // An older binary ignores the flag and never stamps kDataPlaneRev in
      // its responses, so the link keeps everything on pipes (§3.5).
      argv.push_back("--shm-fd=" + std::to_string(ring->fd()));
      argv.push_back("--shm-threshold=" + std::to_string(shm.threshold));
    }
    Result<ipc::ChildProcess> spawned = ipc::SpawnExec(argv);
    AFS_RETURN_IF_ERROR(spawned.status());
    res->child = std::make_shared<ipc::ProcessWatch>(std::move(*spawned));
    // fds destruct here: the parent's copies close, the child's survive
    // the exec.
  } else {
    AFS_ASSIGN_OR_RETURN(CacheAssembly cache,
                         AssembleCache(request.host_path, request.spec));
    AFS_ASSIGN_OR_RETURN(std::unique_ptr<sentinel::Sentinel> sent,
                         registry.Create(request.spec));
    SentinelContext ctx = BuildContext(request, cache);

    PipeEndpoint endpoint(std::move(pipes.second));
    endpoint.set_heartbeat_interval(request.heartbeat_interval);
    if (ring) endpoint.set_shm(ring, shm.threshold);
    endpoint.set_overload(overload);
    // The child's copy of the stack keeps every referenced object alive:
    // it runs the loop inside this call frame and _exit()s.
    Result<ipc::ChildProcess> spawned = ipc::SpawnFunction([&]() -> int {
      // NOTE: the link has no ring attached yet (set_shm below runs only
      // in the parent, after the fork), so this Shutdown touches only the
      // child's copies of the app-side pipe ends — a ring CloseAll here
      // would poison the shared mapping for the parent too.
      res->link->Shutdown();
      const int code = sentinel::RunSentinelLoop(*sent, endpoint, ctx);
      // afs-lint: allow(status-discard: child is about to _exit; exit code is the loop's)
      (void)cache.Finalize();
      // Mark the shared rings closed before _exit so application-side
      // waits end in EOF/kClosed now instead of a timeout later.
      if (ring) ring->CloseAll();
      return code;
    });
    AFS_RETURN_IF_ERROR(spawned.status());
    res->child = std::make_shared<ipc::ProcessWatch>(std::move(*spawned));
    // Parent's copies of the sentinel-side ends close here (scope exit),
    // so EOF propagates if either side dies.
  }
  // Attach the ring to the application side only after the child exists:
  // the fork-mode child's frame must not carry a ring-owning link (see the
  // Shutdown note above).
  if (ring) res->link->set_shm(ring, shm.threshold);

  if (probe != nullptr) {
    probe->lease = lease;
    probe->child = res->child;
    probe->force_down = [res] { res->child->Kill(); };
    probe->poll_heartbeats = [res] { res->link->PollHeartbeats(); };
  }

  auto cleanup = [res]() {
    res->link->Shutdown();
    (void)res->child->Shutdown();
  };
  auto handle = std::make_unique<LinkHandle>(res->link.get(), res, cleanup);

  Result<ControlResponse> banner = res->link->AF_GetResponse();
  if (!banner.ok() || !banner->status.ok()) {
    handle->Abort();
    return banner.ok() ? banner->status : banner.status();
  }
  return std::unique_ptr<vfs::FileHandle>(std::move(handle));
}

// Fills the probe for a freshly spawned stream/exec sentinel child.  No
// lease: the raw byte streams carry no heartbeat frames, so liveness for
// this strategy rests on waitpid alone.
void FillChildProbe(SessionProbe* probe,
                    const std::shared_ptr<ipc::ProcessWatch>& watch,
                    int to_sentinel_fd) {
  if (probe == nullptr) return;
  probe->child = watch;
  probe->force_down = [watch] { watch->Kill(); };
  // The fd stays stable when the PipeEnd moves into the handle; the
  // supervised handle clears this closure before that handle is destroyed.
  probe->peer_alive = [to_sentinel_fd] {
    return ipc::PipeWriterHasReader(to_sentinel_fd);
  };
}

Result<std::unique_ptr<vfs::FileHandle>> OpenProcess(
    const sentinel::SentinelRegistry& registry, const OpenRequest& request,
    SessionProbe* probe) {
  ipc::IgnoreSigpipe();
  // app -> sentinel (the sentinel's standard input in the paper's model).
  AFS_ASSIGN_OR_RETURN(ipc::Pipe inbound, ipc::Pipe::Create());
  // sentinel -> app (its standard output).
  AFS_ASSIGN_OR_RETURN(ipc::Pipe outbound, ipc::Pipe::Create());

  const std::string exec_path = ExecPath(request);
  if (!exec_path.empty()) {
    AFS_RETURN_IF_ERROR(inbound.write_end.SetCloexec());
    AFS_RETURN_IF_ERROR(outbound.read_end.SetCloexec());
    std::vector<std::string> argv = {
        exec_path, "--mode=stream",
        "--in-fd=" + std::to_string(inbound.read_end.fd()),
        "--out-fd=" + std::to_string(outbound.write_end.fd()),
        "--bundle=" + request.host_path, "--path=" + request.vfs_path,
        "--lockdir=" + request.lock_dir};
    if (request.resume_read_pos > 0 || request.resume_write_pos > 0) {
      argv.push_back("--resume-read=" +
                     std::to_string(request.resume_read_pos));
      argv.push_back("--resume-write=" +
                     std::to_string(request.resume_write_pos));
    }
    Result<ipc::ChildProcess> spawned = ipc::SpawnExec(argv);
    AFS_RETURN_IF_ERROR(spawned.status());
    inbound.read_end.Close();
    outbound.write_end.Close();
    auto watch = std::make_shared<ipc::ProcessWatch>(std::move(*spawned));
    FillChildProbe(probe, watch, inbound.write_end.fd());
    return std::unique_ptr<vfs::FileHandle>(std::make_unique<ProcessHandle>(
        std::move(inbound.write_end), std::move(outbound.read_end),
        std::move(watch), OpTimeout(request)));
  }

  AFS_ASSIGN_OR_RETURN(CacheAssembly cache,
                       AssembleCache(request.host_path, request.spec));
  AFS_ASSIGN_OR_RETURN(std::unique_ptr<sentinel::Sentinel> sent,
                       registry.Create(request.spec));
  SentinelContext ctx = BuildContext(request, cache);
  const sentinel::StreamResume resume{request.resume_read_pos,
                                      request.resume_write_pos};

  // Fork-mode streams ride the shared ring (same image on both sides, no
  // handshake needed); the pipes stay open as pure liveness probes.  An
  // exec'd stream binary keeps the classic pipe plane — the raw byte
  // protocol has no banner to advertise the ring through.
  const ShmConfig shm = ParseShmConfig(request.spec.config);
  std::shared_ptr<ipc::ShmRing> ring = CreateRingOrFallback(shm);

  Result<ipc::ChildProcess> spawned = ipc::SpawnFunction([&]() -> int {
    // Child's copies of the application-side ends must close for EOF.
    inbound.write_end.Close();
    outbound.read_end.Close();
    sentinel::StreamIo io;
    if (ring) {
      io.read_from_app = [&](MutableByteSpan out) -> Result<std::size_t> {
        // Bounded slices with a liveness probe between them: an
        // application that died without closing the ring leaves its pipe
        // end — which carries no data in ring mode — at EOF (readable).
        while (true) {
          Result<std::size_t> n = ring->ReadSome(ipc::ShmRing::kToSentinel,
                                                 out, kRingPollSlice);
          if (n.ok() || n.status().code() != ErrorCode::kTimeout) return n;
          Result<bool> eof = inbound.read_end.Poll();
          if (!eof.ok() || *eof) return std::size_t{0};  // app is gone
        }
      };
      io.write_to_app = [&](ByteSpan data) {
        return ring->Write(ipc::ShmRing::kToApp, data, kRingIoTimeout);
      };
      io.finish_output = [&]() {
        ring->CloseDir(ipc::ShmRing::kToApp);
        outbound.write_end.Close();
      };
    } else {
      io.read_from_app = [&](MutableByteSpan out) {
        return inbound.read_end.ReadSome(out);
      };
      io.write_to_app = [&](ByteSpan data) {
        return outbound.write_end.WriteAll(data);
      };
      io.finish_output = [&]() { outbound.write_end.Close(); };
    }
    const int code = sentinel::RunStreamPump(*sent, io, ctx, resume);
    // afs-lint: allow(status-discard: child is about to _exit; exit code is the pump's)
    (void)cache.Finalize();
    // Mark the rings closed before _exit so application-side waits end in
    // EOF now instead of a liveness-probe round trip later.
    if (ring) ring->CloseAll();
    return code;
  });
  AFS_RETURN_IF_ERROR(spawned.status());

  // Parent's copies of the sentinel-side ends.
  inbound.read_end.Close();
  outbound.write_end.Close();

  auto watch = std::make_shared<ipc::ProcessWatch>(std::move(*spawned));
  FillChildProbe(probe, watch, inbound.write_end.fd());
  return std::unique_ptr<vfs::FileHandle>(std::make_unique<ProcessHandle>(
      std::move(inbound.write_end), std::move(outbound.read_end),
      std::move(watch), OpTimeout(request), std::move(ring)));
}

}  // namespace

Result<std::unique_ptr<vfs::FileHandle>> OpenWithStrategy(
    Strategy strategy, const sentinel::SentinelRegistry& registry,
    const OpenRequest& request, SessionProbe* probe) {
  AFS_FAULT_POINT("core.strategy.open");
  // One open counter per strategy (core.open.process, core.open.thread,
  // ...).  Opens fork/spawn anyway, so the registry lookup is noise here.
  obs::Registry::Global()
      .GetCounter(std::string("core.open.") +
                  std::string(StrategyName(strategy)))
      .Add(1);
  switch (strategy) {
    case Strategy::kProcess:
      return OpenProcess(registry, request, probe);
    case Strategy::kProcessControl:
      return OpenProcessControl(registry, request, probe);
    case Strategy::kThread:
      return OpenThread(registry, request, probe);
    case Strategy::kDirect:
      return OpenDirect(registry, request);
    case Strategy::kLoop:
      return OpenLoop(registry, request, probe);
  }
  return InvalidArgumentError("bad strategy");
}

}  // namespace afs::core
