// Event-loop sentinel host: many sentinels per process, one shard thread
// per event loop, no per-session descriptors.
//
// A LoopSession is the loop-strategy sibling of ThreadRendezvous: the
// application side posts one in-flight command into a mailbox slot and
// parks in AF_GetResponse; instead of a dedicated sentinel thread waking
// on a condition variable, the command is posted onto the session's shard
// (core/event_loop.hpp), whose loop thread services it through
// sentinel::PerformControlOp and delivers the response back into the slot.
// The shard's run queue is the data plane: one eventfd doorbell per shard,
// batched drains, and the inline ControlMessage lanes carrying payloads by
// reference — which is how ≥100k concurrent handles fit under an ordinary
// RLIMIT_NOFILE (see docs/EVENT_LOOP.md).
//
// Supervision: the session's lease is renewed by a shard timer while the
// shard is responsive and around every serviced command, so a wedged loop
// or a wedged sentinel op starves the lease and the supervisor forces the
// session down.  ForceDown is the loop analogue of SIGKILL: waiters wake
// with kClosed, the sentinel is dropped without OnClose, and un-finalized
// cache state is lost — exactly the crash shape the recovery layer replays.
#pragma once

#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "core/event_loop.hpp"
#include "core/overload.hpp"
#include "core/strategies.hpp"
#include "sentinel/endpoint.hpp"
#include "sentinel/sentinel.hpp"

namespace afs::core {

class Lease;  // core/supervisor.hpp

class LoopSession final : public sentinel::SentinelLink,
                          public std::enable_shared_from_this<LoopSession> {
 public:
  ~LoopSession() override;

  LoopSession(const LoopSession&) = delete;
  LoopSession& operator=(const LoopSession&) = delete;

  // SentinelLink (application side).
  Status AF_SendControl(const sentinel::ControlMessage& message)
      AFS_NONBLOCKING override;
  Result<sentinel::ControlResponse> AF_GetResponse() AFS_NONBLOCKING
      override;

  // Supervisor's force-down: the loop analogue of SIGKILL.  Blocked
  // application waiters wake with kClosed; the sentinel is dropped without
  // OnClose (crash semantics — un-finalized cache state is lost).
  void ForceDown();

  // Application cleanup without the close protocol (handle destruction,
  // failed banner): posts an implicit close so sentinel side effects still
  // complete, mirroring the dispatch loop's application-vanished path.
  void Shutdown();

 private:
  friend class LoopHost;

  enum class SlotState : std::uint8_t { kIdle, kCommand, kResponse };
  enum class Release : std::uint8_t { kImplicitClose, kCrash };

  LoopSession(EventLoop& shard, std::unique_ptr<sentinel::Sentinel> sent,
              sentinel::SentinelContext ctx, CacheAssembly cache);

  void set_response_timeout(Micros timeout);
  void set_lease(std::shared_ptr<Lease> lease, Micros interval);

  // Admission wiring (docs/OVERLOAD.md): the shared per-shard gate plus
  // optional per-link budgets from the spec (admit_bps/admit_burst/
  // admit_inflight).  Configured before the session is shared.
  void set_admission(AdmissionGate* shard_gate,
                     const AdmissionGate::Limits& link_limits,
                     OverloadPolicy policy);

  // Loop-thread entries.
  void ServiceOpen();
  void Service();
  void ReleaseLoopState(Release how);
  void HeartbeatTick();
  void ArmHeartbeat();

  // Admission bracket around one serviced command.  Admit charges the
  // link gate then the shard gate; Release undoes both exactly once
  // (swap-to-zero under mu_), however the op ends.
  Status AdmitOp(std::size_t cost) AFS_NONBLOCKING;
  void ReleaseAdmission();

  // Posts `response` into the mailbox slot; `closing` latches the session
  // shut (a posted response still outranks the latch, so the close
  // acknowledgement is never dropped).
  void Deliver(sentinel::ControlResponse response, bool closing);

  EventLoop& shard_;

  // Loop-thread-confined sentinel state (only ServiceOpen/Service/
  // ReleaseLoopState touch these, all on the shard thread).
  // afs-lint: allow(guarded-member: shard-thread confined; see class comment)
  std::unique_ptr<sentinel::Sentinel> sentinel_;
  // afs-lint: allow(guarded-member: shard-thread confined; see class comment)
  sentinel::SentinelContext ctx_;
  // afs-lint: allow(guarded-member: shard-thread confined; see class comment)
  CacheAssembly cache_;
  // afs-lint: allow(guarded-member: shard-thread confined; see class comment)
  bool opened_ = false;
  // afs-lint: allow(guarded-member: shard-thread confined; see class comment)
  bool released_ = false;

  // Configured before the session is shared (LoopHost::Open).
  // afs-lint: allow(guarded-member: configured before the session is shared)
  std::shared_ptr<Lease> lease_;
  // afs-lint: allow(guarded-member: configured before the session is shared)
  Micros heartbeat_interval_{0};
  // afs-lint: allow(guarded-member: configured before the session is shared)
  AdmissionGate* shard_gate_ = nullptr;  // owned by LoopHost; outlives us
  // afs-lint: allow(guarded-member: configured before the session is shared)
  std::unique_ptr<AdmissionGate> link_gate_;
  // afs-lint: allow(guarded-member: configured before the session is shared)
  OverloadPolicy overload_ = OverloadPolicy::kShed;

  Mutex mu_;
  CondVar cv_;
  SlotState state_ AFS_GUARDED_BY(mu_) = SlotState::kIdle;
  bool closed_ AFS_GUARDED_BY(mu_) = false;
  bool release_posted_ AFS_GUARDED_BY(mu_) = false;
  Micros response_timeout_ AFS_GUARDED_BY(mu_){0};
  // Cost of the admitted command in flight; zero when none.
  std::size_t admitted_cost_ AFS_GUARDED_BY(mu_) = 0;
  sentinel::ControlMessage message_ AFS_GUARDED_BY(mu_);
  sentinel::ControlResponse response_ AFS_GUARDED_BY(mu_);
};

// The process-wide shard pool hosting loop-strategy sessions.  Sized by
// AFS_LOOP_SHARDS (default 2); per-wakeup batching by AFS_LOOP_BATCH.
class LoopHost {
 public:
  // Lazily constructed, torn down (loops joined) at process exit.
  static LoopHost& Global();

  LoopHost(int shards, EventLoop::Options options);
  ~LoopHost();

  LoopHost(const LoopHost&) = delete;
  LoopHost& operator=(const LoopHost&) = delete;

  int shard_count() const noexcept;

  // Stands up one session: places it on a shard (`shard_pin` >= 0 pins, see
  // the "loop_shard" spec key; negative round-robins), posts the OnOpen
  // banner task, and arms the lease heartbeat timer.  The caller must wait
  // for the banner via AF_GetResponse.
  Result<std::shared_ptr<LoopSession>> Open(
      std::unique_ptr<sentinel::Sentinel> sent, sentinel::SentinelContext ctx,
      CacheAssembly cache, int shard_pin, Micros response_timeout,
      Micros heartbeat_interval, std::shared_ptr<Lease> lease,
      const AdmissionGate::Limits& link_limits = {},
      OverloadPolicy overload = OverloadPolicy::kShed);

  // The admission gate guarding shard `index`'s run queue (budgets from
  // AFS_LOOP_MAX_QUEUE_BYTES / AFS_LOOP_MAX_INFLIGHT; docs/OVERLOAD.md).
  AdmissionGate& ShardGate(std::size_t index) { return *gates_[index]; }

 private:
  EventLoopPool pool_;
  // One gate per shard, sized like the pool; immutable after construction.
  std::vector<std::unique_ptr<AdmissionGate>> gates_;
};

}  // namespace afs::core
