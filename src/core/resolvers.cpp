#include "core/resolvers.hpp"

#include "util/strings.hpp"

namespace afs::core {

Result<std::unique_ptr<net::Transport>> SocketResolver::Connect(
    const std::string& url) {
  if (!StartsWith(url, "sock:")) {
    return InvalidArgumentError("not a sock: url: " + url);
  }
  return std::unique_ptr<net::Transport>(
      std::make_unique<net::SocketClient>(url.substr(5)));
}

Result<std::unique_ptr<net::Transport>> SimNetResolver::Connect(
    const std::string& url) {
  if (!StartsWith(url, "sim:")) {
    return InvalidArgumentError("not a sim: url: " + url);
  }
  const auto [node, service] = SplitOnce(url.substr(4), ':');
  if (node.empty() || service.empty()) {
    return InvalidArgumentError("sim: url needs node:service: " + url);
  }
  return net_.Connect(client_node_, node, service);
}

Result<std::unique_ptr<net::Transport>> EnvironmentResolver::Connect(
    const std::string& url) {
  if (StartsWith(url, "sock:")) return socket_.Connect(url);
  if (StartsWith(url, "sim:")) {
    if (simnet_ == nullptr) {
      return UnsupportedError("no SimNet configured for " + url);
    }
    return simnet_->Connect(url);
  }
  return InvalidArgumentError("unknown remote url scheme: " + url);
}

}  // namespace afs::core
