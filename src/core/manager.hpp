// ActiveFileManager: the public entry point of the library.
//
// Installing a manager on a vfs::FileApi is the moral equivalent of the
// paper's DLL injection + IAT rewrite: from that moment, any CreateFile on
// a ".af" path whose content is a valid bundle spawns/injects the
// configured sentinel, and the application receives a handle
// indistinguishable from a passive file's.  Everything else falls through
// untouched.
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "core/strategies.hpp"
#include "core/supervisor.hpp"
#include "sentinel/registry.hpp"
#include "vfs/file_api.hpp"

namespace afs::core {

class SessionJournal;

struct ManagerOptions {
  // Used when a bundle's config carries no "strategy" key.
  Strategy default_strategy = Strategy::kThread;

  // Directory (host path) for cross-sentinel lock files; defaults to
  // "<root>/.afs-locks" of the FileApi.
  std::string lock_dir;

  // How sentinels reach remote sources; may be null for purely local
  // active files.  Not owned; must outlive the manager.
  sentinel::RemoteResolver* resolver = nullptr;
};

class ActiveFileManager final : public vfs::OpenInterceptor {
 public:
  ActiveFileManager(vfs::FileApi& api, sentinel::SentinelRegistry& registry,
                    ManagerOptions options = ManagerOptions());
  ~ActiveFileManager() override;

  ActiveFileManager(const ActiveFileManager&) = delete;
  ActiveFileManager& operator=(const ActiveFileManager&) = delete;

  // Installs/removes this manager as an interceptor on the FileApi.
  // Idempotent; the destructor uninstalls automatically.
  void Install();
  void Uninstall();
  bool installed() const noexcept { return installed_; }

  // Authoring: writes a bundle at `path` (which must carry the ".af"
  // extension) with the given sentinel spec and initial data part.
  Status CreateActiveFile(const std::string& path,
                          const sentinel::SentinelSpec& spec,
                          ByteSpan initial_data = {});

  // Reads back the spec of an existing active file.
  Result<sentinel::SentinelSpec> ReadSpec(const std::string& path) const;

  // Reads/replaces the data part without running the sentinel (authoring
  // and test staging).
  Result<Buffer> ReadDataPart(const std::string& path) const;
  Status WriteDataPart(const std::string& path, ByteSpan data);

  // Sends an application-specific command to the sentinel behind an open
  // handle (kUnsupported for the plain process strategy).
  Result<Buffer> Control(vfs::HandleId handle, ByteSpan request);

  // vfs::OpenInterceptor.
  Result<std::unique_ptr<vfs::FileHandle>> TryOpen(
      vfs::FileApi& api, const std::string& path,
      const vfs::OpenOptions& options) override;

  // The session journal backing supervised opens (lives in the lock dir).
  SessionJournal& session_journal() noexcept { return *journal_; }

 private:
  vfs::FileApi& api_;
  sentinel::SentinelRegistry& registry_;
  ManagerOptions options_;
  bool installed_ = false;

  // Supervision plumbing: bundles whose spec opts in ("supervise=1") are
  // opened through OpenSupervised with these; everything else keeps the
  // classic unsupervised path.
  Supervisor supervisor_;
  std::unique_ptr<SessionJournal> journal_;
};

}  // namespace afs::core
