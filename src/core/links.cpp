#include "core/links.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/faultpoint.hpp"
#include "core/supervisor.hpp"
#include "ipc/framing.hpp"

namespace afs::core {

using sentinel::ControlMessage;
using sentinel::ControlOp;
using sentinel::ControlResponse;
using sentinel::DecodeControlMessage;
using sentinel::DecodeControlResponse;
using sentinel::EncodeControlMessage;
using sentinel::EncodeControlResponse;

namespace {

// Default bound on any single pipe transfer leg that is not covered by an
// operator-configured deadline.  Pipe legs complete in microseconds when
// the peer is alive (the capacity is one kernel buffer); ten seconds of a
// full pipe means the peer stopped draining — fail with kTimeout instead
// of parking a thread forever.
constexpr Micros kPipeIoTimeout{10'000'000};

// Idle re-arm slice for the endpoint's command wait when no heartbeat
// cadence is configured: the wait becomes a sequence of bounded polls.
constexpr Micros kIdleWaitSlice{500'000};

// Total bulk bytes a message would push through the write lane.
std::size_t OutboundPayloadSize(const ControlMessage& message) {
  if (message.op == ControlOp::kWrite) return message.inline_in.size();
  if (message.op == ControlOp::kWriteVec) {
    std::size_t total = 0;
    for (ByteSpan segment : message.vec_in) total += segment.size();
    return total;
  }
  return 0;
}

// Retry hint for an op shed off a congested shm ring: the reader has a
// whole ring of buffered bytes to drain first, so the hint is coarser
// than the admission default.
constexpr std::int64_t kRingShedHintMs = 25;

// A ring is congested when earlier bytes are still parked in it: the link
// protocol runs one op at a time and the peer drains the lane fully per
// op, so at send time a healthy ring is empty.  Payloads larger than the
// whole ring stream through a draining reader and are exempt.
bool RingCongested(const ipc::ShmRing& ring, int dir, std::size_t out_len) {
  const std::size_t capacity = ring.ring_bytes();
  const std::size_t free_bytes = capacity - ring.buffered(dir);
  return free_bytes < std::min(out_len, capacity);
}

}  // namespace

ShmConfig ParseShmConfig(const std::map<std::string, std::string>& config) {
  ShmConfig parsed;
  if (auto it = config.find("shm_threshold"); it != config.end()) {
    if (it->second == "off") {
      parsed.enabled = false;
    } else {
      const long value = std::strtol(it->second.c_str(), nullptr, 10);
      if (value > 0) parsed.threshold = static_cast<std::size_t>(value);
    }
  }
  if (auto it = config.find("shm_ring_bytes"); it != config.end()) {
    const long value = std::strtol(it->second.c_str(), nullptr, 10);
    if (value > 0) parsed.ring_bytes = static_cast<std::size_t>(value);
  }
  return parsed;
}

Result<std::pair<PipeLinkFds, PipeEndpointFds>> CreatePipePair() {
  AFS_ASSIGN_OR_RETURN(ipc::Pipe control, ipc::Pipe::Create());
  AFS_ASSIGN_OR_RETURN(ipc::Pipe response, ipc::Pipe::Create());
  AFS_ASSIGN_OR_RETURN(ipc::Pipe data, ipc::Pipe::Create());
  PipeLinkFds link;
  link.control_write = std::move(control.write_end);
  link.response_read = std::move(response.read_end);
  link.data_write = std::move(data.write_end);
  PipeEndpointFds endpoint;
  endpoint.control_read = std::move(control.read_end);
  endpoint.response_write = std::move(response.write_end);
  endpoint.data_read = std::move(data.read_end);
  return std::make_pair(std::move(link), std::move(endpoint));
}

void PipeLink::set_shm(std::shared_ptr<ipc::ShmRing> ring,
                       std::size_t threshold) {
  ring_ = std::move(ring);
  shm_threshold_ = threshold;
}

void PipeLink::set_admission(AdmissionGate::Limits limits,
                             OverloadPolicy policy) {
  gate_ = std::make_unique<AdmissionGate>(limits);
  overload_ = policy;
}

void PipeLink::ReleaseAdmission() {
  std::size_t cost;
  {
    MutexLock lock(read_mu_);
    cost = admitted_cost_;
    admitted_cost_ = 0;
  }
  if (cost != 0 && gate_ != nullptr) gate_->Release(cost);
}

Status PipeLink::AF_SendControl(const ControlMessage& message) {
  AFS_FAULT_POINT("core.link.send");
  // Outbound legs are bounded by the op deadline when configured, by the
  // generic pipe bound otherwise: a sentinel that stopped draining its
  // control pipe costs this op kTimeout, never a parked application.
  const Micros bound =
      response_timeout_.count() > 0 ? response_timeout_ : kPipeIoTimeout;
  // Admission precedes every wire byte: a shed op fails with kOverloaded
  // while the command/response stream is still synchronized, so the handle
  // survives to retry it.  Teardown ops are exempt — a shed close leaks.
  if (gate_ != nullptr && !AdmissionExempt(message.op)) {
    const std::size_t cost = ControlMessageCost(message);
    AFS_RETURN_IF_ERROR(
        AdmitWithPolicy(*gate_, cost, overload_, response_timeout_));
    MutexLock lock(read_mu_);
    admitted_cost_ = cost;
  }
  // Bulk payloads at/above the threshold leave the pipes for the ring —
  // but only once the peer has advertised the shm data plane, so a
  // pre-rev-2 sentinel never faces frames whose bytes it cannot find.
  const std::size_t out_len = OutboundPayloadSize(message);
  bool use_ring =
      ring_ != nullptr && out_len >= shm_threshold_ && out_len > 0 &&
      peer_rev_.load(std::memory_order_relaxed) >= sentinel::kDataPlaneRev;
  if (use_ring && overload_ != OverloadPolicy::kBlock &&
      RingCongested(*ring_, ipc::ShmRing::kToSentinel, out_len)) {
    // Slow-consumer defense: the lane decision must precede the control
    // frame, so a congested ring is handled here — brownout reroutes this
    // op's bytes onto the pipes; shed refuses it before any byte moves.
    // (kBlock keeps the classic deadline-bounded ring write below.)
    if (overload_ == OverloadPolicy::kShed) {
      ReleaseAdmission();
      overload_metrics::RecordShed(Micros{kRingShedHintMs * 1000});
      return OverloadedError("shm ring congested (slow consumer)",
                             kRingShedHintMs);
    }
    overload_metrics::RecordBrownout();
    use_ring = false;
  }
  {
    // Stash the op's destination spans so a shm-lane response can scatter
    // ring bytes straight into the caller's buffers.
    MutexLock lock(read_mu_);
    scatter_.clear();
    if (!message.inline_out.empty()) scatter_.push_back(message.inline_out);
    scatter_.insert(scatter_.end(), message.vec_out.begin(),
                    message.vec_out.end());
  }
  AFS_RETURN_IF_ERROR(ipc::WriteFrame(
      fds_.control_write,
      EncodeControlMessage(message, use_ring ? sentinel::kLaneShm : 0),
      bound));
  if (out_len == 0) return Status::Ok();
  if (use_ring) {
    if (message.op == ControlOp::kWrite) {
      return ring_->Write(ipc::ShmRing::kToSentinel, message.inline_in,
                          bound);
    }
    for (ByteSpan segment : message.vec_in) {
      AFS_RETURN_IF_ERROR(
          ring_->Write(ipc::ShmRing::kToSentinel, segment, bound));
    }
    return Status::Ok();
  }
  if (message.op == ControlOp::kWrite) {
    // The paper's write path: command on the control channel, then the
    // payload bytes on the write pipe.
    return fds_.data_write.WriteAll(message.inline_in, bound);
  }
  for (ByteSpan segment : message.vec_in) {
    // Gather segments travel the write pipe concatenated; the sentinel
    // slices them back apart from the message's segment table.
    if (!segment.empty()) {
      AFS_RETURN_IF_ERROR(fds_.data_write.WriteAll(segment, bound));
    }
  }
  return Status::Ok();
}

Status PipeLink::AdoptResponse(ControlResponse& response) {
  if (response.peer_rev > peer_rev_.load(std::memory_order_relaxed)) {
    peer_rev_.store(response.peer_rev, std::memory_order_relaxed);
  }
  if ((response.lane & sentinel::kLaneShm) == 0 || response.lane_len == 0) {
    return Status::Ok();
  }
  if (!ring_) {
    return ProtocolError("shm-lane response without an attached ring");
  }
  const Micros bound =
      response_timeout_.count() > 0 ? response_timeout_ : kPipeIoTimeout;
  std::size_t remaining = response.lane_len;
  for (MutableByteSpan dst : scatter_) {
    if (remaining == 0) break;
    MutableByteSpan take = dst.first(std::min(dst.size(), remaining));
    AFS_RETURN_IF_ERROR(ring_->ReadExact(ipc::ShmRing::kToApp, take, bound));
    remaining -= take.size();
  }
  if (remaining > 0) {
    // No (or not enough) stashed spans — kCustom replies and any overflow
    // land in the payload buffer, exactly as a pipe-lane frame would.
    const std::size_t at = response.payload.size();
    response.payload.resize(at + remaining);
    AFS_RETURN_IF_ERROR(
        ring_->ReadExact(ipc::ShmRing::kToApp,
                         MutableByteSpan(response.payload).subspan(at),
                         bound));
  }
  return Status::Ok();
}

Result<ControlResponse> PipeLink::AF_GetResponse() {
  Result<ControlResponse> result = GetResponseInternal();
  // The op leaves the admission domain with its response (or its failure);
  // swap-to-zero makes this idempotent with the Shutdown backstop.
  ReleaseAdmission();
  return result;
}

Result<ControlResponse> PipeLink::GetResponseInternal() {
  AFS_FAULT_POINT("core.link.recv");
  MutexLock lock(read_mu_);
  if (pending_.has_value()) {
    // The heartbeat drain raced a real response off the pipe; hand it over.
    ControlResponse stashed = std::move(*pending_);
    pending_.reset();
    if (lease_) lease_->Renew();
    return stashed;
  }
  const bool bounded = response_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(response_timeout_.count());
  while (true) {
    Micros remaining = response_timeout_;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        return TimeoutError("sentinel did not respond in time");
      }
      remaining = Micros{left.count()};
    }
    AFS_ASSIGN_OR_RETURN(Buffer frame,
                         ipc::ReadFrame(fds_.response_read, remaining));
    AFS_ASSIGN_OR_RETURN(ControlResponse response,
                         DecodeControlResponse(ByteSpan(frame)));
    if (lease_) lease_->Renew();
    // Every frame — heartbeat or answer — latches the peer's data-plane
    // revision; a shm-lane answer additionally drains its ring payload.
    AFS_RETURN_IF_ERROR(AdoptResponse(response));
    // Heartbeats only renew the lease; keep waiting (against the same
    // overall deadline) for the real answer.
    if (!response.heartbeat) return response;
  }
}

void PipeLink::PollHeartbeats() {
  if (!read_mu_.TryLock()) return;  // an op owns the pipe and sees liveness
  while (!pending_.has_value()) {
    Result<bool> ready = fds_.response_read.Poll();
    if (!ready.ok() || !*ready) break;
    Result<Buffer> frame = ipc::ReadFrame(fds_.response_read, Micros{50'000});
    if (!frame.ok()) break;  // EOF/garbage: the lease expires on its own
    Result<ControlResponse> response = DecodeControlResponse(ByteSpan(*frame));
    if (!response.ok()) break;
    if (lease_) lease_->Renew();
    // A real response racing the drain still owns its ring payload; adopt
    // it here (into the in-flight op's stashed spans) before stashing the
    // frame.  On failure the channel is desynchronized — stop draining and
    // let the waiting op time out / the lease expire.
    if (!AdoptResponse(*response).ok()) break;
    if (!response->heartbeat) pending_ = std::move(*response);
  }
  read_mu_.Unlock();
}

void PipeLink::Shutdown() {
  ReleaseAdmission();  // an op abandoned mid-flight must not pin the gate
  // Taking the read lock fences out a concurrent heartbeat drain so the
  // descriptors are never closed under an in-flight poll.
  MutexLock lock(read_mu_);
  fds_.control_write.Close();
  fds_.response_read.Close();
  fds_.data_write.Close();
  if (ring_) ring_->CloseAll();
}

Status PipeLink::SetCloexec() {
  AFS_RETURN_IF_ERROR(fds_.control_write.SetCloexec());
  AFS_RETURN_IF_ERROR(fds_.response_read.SetCloexec());
  return fds_.data_write.SetCloexec();
}

Result<ControlMessage> PipeEndpoint::AF_GetControl() {
  AFS_FAULT_POINT("sentinel.endpoint.recv");
  // The idle wait is a chain of bounded slices, never one unbounded park:
  // with a heartbeat cadence each elapsed slice emits a liveness frame;
  // without one the slice silently re-arms until a command (or EOF) lands.
  const Micros slice = heartbeat_interval_.count() > 0 ? heartbeat_interval_
                                                       : kIdleWaitSlice;
  while (true) {
    const Status ready = fds_.control_read.WaitReadable(slice);
    if (ready.ok()) break;
    if (ready.code() != ErrorCode::kTimeout) return ready;
    if (heartbeat_interval_.count() > 0) {
      // Idle past one interval: tell the application side we are alive.
      // Heartbeats advertise the data-plane revision too, so the link
      // learns about the ring even before the first real answer.
      ControlResponse beat;
      beat.heartbeat = true;
      AFS_RETURN_IF_ERROR(ipc::WriteFrame(
          fds_.response_write,
          EncodeControlResponse(beat, ring_ ? sentinel::kDataPlaneRev : 0, 0),
          kPipeIoTimeout));
    }
  }
  // Readable now, so the frame-start wait is satisfied instantly; the
  // bound covers only a peer dying mid-frame.
  AFS_ASSIGN_OR_RETURN(Buffer frame,
                       ipc::ReadFrame(fds_.control_read, kPipeIoTimeout));
  AFS_ASSIGN_OR_RETURN(ControlMessage message,
                       DecodeControlMessage(ByteSpan(frame)));
  // Remember which lane this command's payload travels; the dispatch loop
  // calls AF_GetDataFromAppl before the next AF_GetControl.
  last_lane_ = message.lane;
  return message;
}

Result<Buffer> PipeEndpoint::AF_GetDataFromAppl(std::size_t length) {
  AFS_FAULT_POINT("sentinel.endpoint.data");
  Buffer data(length);
  if (ring_ && (last_lane_ & sentinel::kLaneShm) != 0) {
    AFS_RETURN_IF_ERROR(ring_->ReadExact(ipc::ShmRing::kToSentinel,
                                         MutableByteSpan(data),
                                         kPipeIoTimeout));
    return data;
  }
  // The control frame announcing these bytes already arrived; the payload
  // is right behind it, so a stall is a dead application, not idleness.
  AFS_RETURN_IF_ERROR(
      fds_.data_read.ReadExact(MutableByteSpan(data), kPipeIoTimeout));
  return data;
}

Status PipeEndpoint::AF_SendResponse(const ControlResponse& response) {
  AFS_FAULT_POINT("sentinel.endpoint.send");
  // Bulk response payloads ride the ring (frame carries only their length);
  // the application created the ring, so it can always drain the lane.
  bool use_ring = ring_ != nullptr && !response.heartbeat &&
                  response.payload.size() >= shm_threshold_ &&
                  !response.payload.empty();
  if (use_ring && overload_ != OverloadPolicy::kBlock &&
      RingCongested(*ring_, ipc::ShmRing::kToApp, response.payload.size())) {
    // Slow-consumer defense, response side: a response cannot be dropped,
    // so shed degrades to brownout — the payload rides the frame instead
    // of a ring whose reader stopped draining.
    overload_metrics::RecordBrownout();
    use_ring = false;
  }
  AFS_RETURN_IF_ERROR(ipc::WriteFrame(
      fds_.response_write,
      EncodeControlResponse(response, ring_ ? sentinel::kDataPlaneRev : 0,
                            use_ring ? sentinel::kLaneShm : 0),
      kPipeIoTimeout));
  if (use_ring) {
    return ring_->Write(ipc::ShmRing::kToApp, ByteSpan(response.payload),
                        kPipeIoTimeout);
  }
  return Status::Ok();
}

Status ThreadRendezvous::AF_SendControl(const ControlMessage& message) {
  AFS_FAULT_POINT("core.link.send");
  // Admission precedes the slot: a shed op fails with kOverloaded without
  // ever occupying the rendezvous, so the handle survives to retry it.
  // (AdmitFor can wait, so the session mutex must not be held here.)
  // Teardown ops are exempt — a shed close leaks.
  std::size_t cost = 0;
  if (gate_ != nullptr && !AdmissionExempt(message.op)) {
    Micros block_bound{0};
    {
      MutexLock lock(mu_);
      block_bound = response_timeout_;
    }
    cost = ControlMessageCost(message);
    AFS_RETURN_IF_ERROR(AdmitWithPolicy(*gate_, cost, overload_, block_bound));
  }
  MutexLock lock(mu_);
  while (state_ != SlotState::kIdle && !shutdown_) {
    // The sentinel thread frees the slot per command, and Shutdown() wakes
    // every waiter with kClosed when the supervisor declares it dead.
    // afs-lint: allow(nonblocking: bounded by the slot protocol + Shutdown)
    cv_.Wait(mu_);
  }
  if (shutdown_) {
    lock.Unlock();
    if (cost != 0) gate_->Release(cost);
    return ClosedError("rendezvous closed");
  }
  admitted_cost_ = cost;
  message_ = message;  // inline lanes pass by reference (spans)
  state_ = SlotState::kCommand;
  lock.Unlock();
  cv_.NotifyAll();
  return Status::Ok();
}

Result<ControlResponse> ThreadRendezvous::AF_GetResponse() {
  AFS_FAULT_POINT("core.link.recv");
  MutexLock lock(mu_);
  const bool bounded = response_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(response_timeout_.count());
  while (state_ != SlotState::kResponse && !shutdown_) {
    if (!bounded) {
      // Unbounded only when the operator set op_timeout_ms=0 to opt out of
      // deadlines; Shutdown() still wakes it with kClosed.
      // afs-lint: allow(nonblocking: operator opted out of the deadline)
      cv_.Wait(mu_);
    } else if (!cv_.WaitUntil(mu_, deadline)) {
      if (state_ == SlotState::kResponse || shutdown_) {
        break;  // answered (or closed) right at the wire
      }
      return TimeoutError("sentinel thread did not respond");
    }
  }
  // A posted response outranks shutdown: the sentinel loop answers and
  // then exits (failed-open banner, injected fault), and that last answer
  // must not be dropped.
  if (state_ != SlotState::kResponse) return ClosedError("rendezvous closed");
  ControlResponse response = std::move(response_);
  state_ = SlotState::kIdle;
  lock.Unlock();
  cv_.NotifyAll();
  return response;
}

Result<ControlMessage> ThreadRendezvous::AF_GetControl() {
  AFS_FAULT_POINT("sentinel.endpoint.recv");
  MutexLock lock(mu_);
  while (state_ != SlotState::kCommand && !shutdown_) {
    if (lease_ != nullptr && lease_interval_.count() > 0) {
      // Idle renewal: the timed wakeup itself is the heartbeat — the lease
      // stamp is the shared memory both sides agree on.
      lease_->Renew();
      (void)cv_.WaitUntil(mu_, std::chrono::steady_clock::now() +
                                   std::chrono::microseconds(
                                       lease_interval_.count()));
    } else {
      // Idle park point when no lease is installed (in-process tests);
      // AF_SendControl and Shutdown() are the only writers and both notify.
      // afs-lint: allow(nonblocking: idle park; both slot writers notify)
      cv_.Wait(mu_);
    }
  }
  if (shutdown_) return ClosedError("rendezvous closed");
  if (lease_) lease_->Renew();
  // The slot stays occupied (kCommand) while the sentinel works; the
  // response transition frees it.
  return message_;
}

Result<Buffer> ThreadRendezvous::AF_GetDataFromAppl(std::size_t length) {
  // In-process writes always travel the inline lane; only a zero-length
  // write could get here, and that needs no bytes.
  if (length == 0) return Buffer{};
  return InternalError("thread rendezvous has no out-of-line data lane");
}

Status ThreadRendezvous::AF_SendResponse(const ControlResponse& response) {
  AFS_FAULT_POINT("sentinel.endpoint.send");
  MutexLock lock(mu_);
  if (shutdown_) {
    lock.Unlock();
    ReleaseAdmission();
    return ClosedError("rendezvous closed");
  }
  if (lease_) lease_->Renew();
  response_ = response;
  state_ = SlotState::kResponse;
  lock.Unlock();
  // The answered op leaves the admission domain here, not at consumption:
  // the sentinel is free again even if the application is slow to collect.
  ReleaseAdmission();
  cv_.NotifyAll();
  return Status::Ok();
}

void ThreadRendezvous::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  ReleaseAdmission();  // an op abandoned mid-flight must not pin the gate
  cv_.NotifyAll();
}

void ThreadRendezvous::ReleaseAdmission() {
  std::size_t cost;
  {
    MutexLock lock(mu_);
    cost = admitted_cost_;
    admitted_cost_ = 0;
  }
  if (cost != 0 && gate_ != nullptr) gate_->Release(cost);
}

void ThreadRendezvous::set_admission(AdmissionGate::Limits limits,
                                     OverloadPolicy policy) {
  gate_ = std::make_unique<AdmissionGate>(limits);
  overload_ = policy;
}

void ThreadRendezvous::set_response_timeout(Micros timeout) noexcept {
  MutexLock lock(mu_);
  response_timeout_ = timeout;
}

void ThreadRendezvous::set_lease(std::shared_ptr<Lease> lease,
                                 Micros interval) {
  MutexLock lock(mu_);
  lease_ = std::move(lease);
  lease_interval_ = interval;
  lock.Unlock();
  // Wake an idle sentinel thread so it picks up the timed-wait cadence.
  cv_.NotifyAll();
}

}  // namespace afs::core
