#include "core/links.hpp"

#include <chrono>

#include "common/faultpoint.hpp"
#include "core/supervisor.hpp"
#include "ipc/framing.hpp"

namespace afs::core {

using sentinel::ControlMessage;
using sentinel::ControlOp;
using sentinel::ControlResponse;
using sentinel::DecodeControlMessage;
using sentinel::DecodeControlResponse;
using sentinel::EncodeControlMessage;
using sentinel::EncodeControlResponse;

namespace {

// Default bound on any single pipe transfer leg that is not covered by an
// operator-configured deadline.  Pipe legs complete in microseconds when
// the peer is alive (the capacity is one kernel buffer); ten seconds of a
// full pipe means the peer stopped draining — fail with kTimeout instead
// of parking a thread forever.
constexpr Micros kPipeIoTimeout{10'000'000};

// Idle re-arm slice for the endpoint's command wait when no heartbeat
// cadence is configured: the wait becomes a sequence of bounded polls.
constexpr Micros kIdleWaitSlice{500'000};

}  // namespace

Result<std::pair<PipeLinkFds, PipeEndpointFds>> CreatePipePair() {
  AFS_ASSIGN_OR_RETURN(ipc::Pipe control, ipc::Pipe::Create());
  AFS_ASSIGN_OR_RETURN(ipc::Pipe response, ipc::Pipe::Create());
  AFS_ASSIGN_OR_RETURN(ipc::Pipe data, ipc::Pipe::Create());
  PipeLinkFds link;
  link.control_write = std::move(control.write_end);
  link.response_read = std::move(response.read_end);
  link.data_write = std::move(data.write_end);
  PipeEndpointFds endpoint;
  endpoint.control_read = std::move(control.read_end);
  endpoint.response_write = std::move(response.write_end);
  endpoint.data_read = std::move(data.read_end);
  return std::make_pair(std::move(link), std::move(endpoint));
}

Status PipeLink::AF_SendControl(const ControlMessage& message) {
  AFS_FAULT_POINT("core.link.send");
  // Outbound legs are bounded by the op deadline when configured, by the
  // generic pipe bound otherwise: a sentinel that stopped draining its
  // control pipe costs this op kTimeout, never a parked application.
  const Micros bound =
      response_timeout_.count() > 0 ? response_timeout_ : kPipeIoTimeout;
  AFS_RETURN_IF_ERROR(ipc::WriteFrame(fds_.control_write,
                                      EncodeControlMessage(message), bound));
  if (message.op == ControlOp::kWrite && !message.inline_in.empty()) {
    // The paper's write path: command on the control channel, then the
    // payload bytes on the write pipe.
    AFS_RETURN_IF_ERROR(fds_.data_write.WriteAll(message.inline_in, bound));
  }
  return Status::Ok();
}

Result<ControlResponse> PipeLink::AF_GetResponse() {
  AFS_FAULT_POINT("core.link.recv");
  MutexLock lock(read_mu_);
  if (pending_.has_value()) {
    // The heartbeat drain raced a real response off the pipe; hand it over.
    ControlResponse stashed = std::move(*pending_);
    pending_.reset();
    if (lease_) lease_->Renew();
    return stashed;
  }
  const bool bounded = response_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(response_timeout_.count());
  while (true) {
    Micros remaining = response_timeout_;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        return TimeoutError("sentinel did not respond in time");
      }
      remaining = Micros{left.count()};
    }
    AFS_ASSIGN_OR_RETURN(Buffer frame,
                         ipc::ReadFrame(fds_.response_read, remaining));
    AFS_ASSIGN_OR_RETURN(ControlResponse response,
                         DecodeControlResponse(ByteSpan(frame)));
    if (lease_) lease_->Renew();
    // Heartbeats only renew the lease; keep waiting (against the same
    // overall deadline) for the real answer.
    if (!response.heartbeat) return response;
  }
}

void PipeLink::PollHeartbeats() {
  if (!read_mu_.TryLock()) return;  // an op owns the pipe and sees liveness
  while (!pending_.has_value()) {
    Result<bool> ready = fds_.response_read.Poll();
    if (!ready.ok() || !*ready) break;
    Result<Buffer> frame = ipc::ReadFrame(fds_.response_read, Micros{50'000});
    if (!frame.ok()) break;  // EOF/garbage: the lease expires on its own
    Result<ControlResponse> response = DecodeControlResponse(ByteSpan(*frame));
    if (!response.ok()) break;
    if (lease_) lease_->Renew();
    if (!response->heartbeat) pending_ = std::move(*response);
  }
  read_mu_.Unlock();
}

void PipeLink::Shutdown() {
  // Taking the read lock fences out a concurrent heartbeat drain so the
  // descriptors are never closed under an in-flight poll.
  MutexLock lock(read_mu_);
  fds_.control_write.Close();
  fds_.response_read.Close();
  fds_.data_write.Close();
}

Status PipeLink::SetCloexec() {
  AFS_RETURN_IF_ERROR(fds_.control_write.SetCloexec());
  AFS_RETURN_IF_ERROR(fds_.response_read.SetCloexec());
  return fds_.data_write.SetCloexec();
}

Result<ControlMessage> PipeEndpoint::AF_GetControl() {
  AFS_FAULT_POINT("sentinel.endpoint.recv");
  // The idle wait is a chain of bounded slices, never one unbounded park:
  // with a heartbeat cadence each elapsed slice emits a liveness frame;
  // without one the slice silently re-arms until a command (or EOF) lands.
  const Micros slice = heartbeat_interval_.count() > 0 ? heartbeat_interval_
                                                       : kIdleWaitSlice;
  while (true) {
    const Status ready = fds_.control_read.WaitReadable(slice);
    if (ready.ok()) break;
    if (ready.code() != ErrorCode::kTimeout) return ready;
    if (heartbeat_interval_.count() > 0) {
      // Idle past one interval: tell the application side we are alive.
      ControlResponse beat;
      beat.heartbeat = true;
      AFS_RETURN_IF_ERROR(ipc::WriteFrame(
          fds_.response_write, EncodeControlResponse(beat), kPipeIoTimeout));
    }
  }
  // Readable now, so the frame-start wait is satisfied instantly; the
  // bound covers only a peer dying mid-frame.
  AFS_ASSIGN_OR_RETURN(Buffer frame,
                       ipc::ReadFrame(fds_.control_read, kPipeIoTimeout));
  return DecodeControlMessage(ByteSpan(frame));
}

Result<Buffer> PipeEndpoint::AF_GetDataFromAppl(std::size_t length) {
  AFS_FAULT_POINT("sentinel.endpoint.data");
  Buffer data(length);
  // The control frame announcing these bytes already arrived; the payload
  // is right behind it, so a stall is a dead application, not idleness.
  AFS_RETURN_IF_ERROR(
      fds_.data_read.ReadExact(MutableByteSpan(data), kPipeIoTimeout));
  return data;
}

Status PipeEndpoint::AF_SendResponse(const ControlResponse& response) {
  AFS_FAULT_POINT("sentinel.endpoint.send");
  return ipc::WriteFrame(fds_.response_write, EncodeControlResponse(response),
                         kPipeIoTimeout);
}

Status ThreadRendezvous::AF_SendControl(const ControlMessage& message) {
  AFS_FAULT_POINT("core.link.send");
  MutexLock lock(mu_);
  while (state_ != SlotState::kIdle && !shutdown_) {
    // The sentinel thread frees the slot per command, and Shutdown() wakes
    // every waiter with kClosed when the supervisor declares it dead.
    // afs-lint: allow(nonblocking: bounded by the slot protocol + Shutdown)
    cv_.Wait(mu_);
  }
  if (shutdown_) return ClosedError("rendezvous closed");
  message_ = message;  // inline lanes pass by reference (spans)
  state_ = SlotState::kCommand;
  lock.Unlock();
  cv_.NotifyAll();
  return Status::Ok();
}

Result<ControlResponse> ThreadRendezvous::AF_GetResponse() {
  AFS_FAULT_POINT("core.link.recv");
  MutexLock lock(mu_);
  const bool bounded = response_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(response_timeout_.count());
  while (state_ != SlotState::kResponse && !shutdown_) {
    if (!bounded) {
      // Unbounded only when the operator set op_timeout_ms=0 to opt out of
      // deadlines; Shutdown() still wakes it with kClosed.
      // afs-lint: allow(nonblocking: operator opted out of the deadline)
      cv_.Wait(mu_);
    } else if (!cv_.WaitUntil(mu_, deadline)) {
      if (state_ == SlotState::kResponse || shutdown_) {
        break;  // answered (or closed) right at the wire
      }
      return TimeoutError("sentinel thread did not respond");
    }
  }
  // A posted response outranks shutdown: the sentinel loop answers and
  // then exits (failed-open banner, injected fault), and that last answer
  // must not be dropped.
  if (state_ != SlotState::kResponse) return ClosedError("rendezvous closed");
  ControlResponse response = std::move(response_);
  state_ = SlotState::kIdle;
  lock.Unlock();
  cv_.NotifyAll();
  return response;
}

Result<ControlMessage> ThreadRendezvous::AF_GetControl() {
  AFS_FAULT_POINT("sentinel.endpoint.recv");
  MutexLock lock(mu_);
  while (state_ != SlotState::kCommand && !shutdown_) {
    if (lease_ != nullptr && lease_interval_.count() > 0) {
      // Idle renewal: the timed wakeup itself is the heartbeat — the lease
      // stamp is the shared memory both sides agree on.
      lease_->Renew();
      (void)cv_.WaitUntil(mu_, std::chrono::steady_clock::now() +
                                   std::chrono::microseconds(
                                       lease_interval_.count()));
    } else {
      // Idle park point when no lease is installed (in-process tests);
      // AF_SendControl and Shutdown() are the only writers and both notify.
      // afs-lint: allow(nonblocking: idle park; both slot writers notify)
      cv_.Wait(mu_);
    }
  }
  if (shutdown_) return ClosedError("rendezvous closed");
  if (lease_) lease_->Renew();
  // The slot stays occupied (kCommand) while the sentinel works; the
  // response transition frees it.
  return message_;
}

Result<Buffer> ThreadRendezvous::AF_GetDataFromAppl(std::size_t length) {
  // In-process writes always travel the inline lane; only a zero-length
  // write could get here, and that needs no bytes.
  if (length == 0) return Buffer{};
  return InternalError("thread rendezvous has no out-of-line data lane");
}

Status ThreadRendezvous::AF_SendResponse(const ControlResponse& response) {
  AFS_FAULT_POINT("sentinel.endpoint.send");
  MutexLock lock(mu_);
  if (shutdown_) return ClosedError("rendezvous closed");
  if (lease_) lease_->Renew();
  response_ = response;
  state_ = SlotState::kResponse;
  lock.Unlock();
  cv_.NotifyAll();
  return Status::Ok();
}

void ThreadRendezvous::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

void ThreadRendezvous::set_response_timeout(Micros timeout) noexcept {
  MutexLock lock(mu_);
  response_timeout_ = timeout;
}

void ThreadRendezvous::set_lease(std::shared_ptr<Lease> lease,
                                 Micros interval) {
  MutexLock lock(mu_);
  lease_ = std::move(lease);
  lease_interval_ = interval;
  lock.Unlock();
  // Wake an idle sentinel thread so it picks up the timed-wait cadence.
  cv_.NotifyAll();
}

}  // namespace afs::core
