// afs::core supervision layer: keeps active files usable across sentinel
// crashes (the paper's Section 3 contract — "the application sees an
// ordinary file" — extended to hold when the sentinel dies).
//
// Three cooperating pieces:
//
//   Lease / SessionProbe — per-link liveness.  Process-backed sentinels are
//     watched with waitpid (non-blocking) plus heartbeat frames on the
//     response pipe; in-process (DLL-with-thread) sentinels renew a
//     shared-memory lease stamp from inside their dispatch wait.  A
//     sentinel is declared dead on lease expiry or child exit — not only
//     when a pipe finally reports EPIPE.
//
//   Supervisor — a monitor thread polling every attached session.  A dead
//     or wedged sentinel is forced down (SIGKILL / rendezvous shutdown) so
//     any application operation blocked on it wakes immediately with a
//     transport error instead of hanging.
//
//   OpenSupervised — wraps a strategy-opened handle in a stub that owns a
//     replayable session record (SessionJournal): on a crash it restarts
//     the sentinel with bounded backoff (RestartPolicy), re-attaches by
//     replaying the file-pointer position, retries the interrupted
//     idempotent operation exactly once, and — when restarts are exhausted
//     — degrades per the bundle's declared mode (passthrough/readonly)
//     instead of poisoning the handle.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "core/event_loop.hpp"
#include "core/overload.hpp"
#include "core/strategies.hpp"
#include "ipc/process.hpp"
#include "vfs/file_handle.hpp"

namespace afs::core {

class SessionJournal;

// A monotonically renewed liveness stamp shared between the sentinel side
// (which renews) and the supervisor (which measures age).  Lock-free: the
// renewing side may be an injected thread's wait loop or a pipe drain.
class Lease {
 public:
  Lease() { Renew(); }

  void Renew() noexcept {
    stamp_us_.store(NowUs(), std::memory_order_release);
  }

  Micros Age() const noexcept {
    return Micros{NowUs() - stamp_us_.load(std::memory_order_acquire)};
  }

  static std::int64_t NowUs() noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::atomic<std::int64_t> stamp_us_{0};
};

// What a bundle falls back to when its sentinel is permanently dead
// (restart budget exhausted or restart disabled).
enum class DegradeMode : std::uint8_t {
  kFail = 0,         // poisoned handle (historical behavior)
  kReadonly = 1,     // serve the bundle's data part, reject writes
  kPassthrough = 2,  // serve the bundle's data part read-write
};

std::string_view DegradeModeName(DegradeMode mode) noexcept;
Result<DegradeMode> ParseDegradeMode(std::string_view name);

// Per-bundle supervision settings, parsed from reserved spec config keys:
//   "supervise"          : "1" enables the supervisor wrapper
//   "restart_max"        : restart budget per handle lifetime (default 3)
//   "restart_backoff_ms" : initial restart backoff (default 2ms, doubling)
//   "restart_backoff_cap_ms" : backoff ceiling (default 100ms)
//   "lease_ms"           : liveness lease; 0 (default) disables proactive
//                          heartbeat/lease checking (transport errors and
//                          waitpid still detect death)
//   "degrade"            : fail | readonly | passthrough (default fail)
struct RestartPolicy {
  bool supervised = false;
  int max_restarts = 3;
  Micros backoff_initial{2'000};
  Micros backoff_cap{100'000};
  Micros lease{0};
  DegradeMode degrade = DegradeMode::kFail;
  // The `overload=` spec key (docs/OVERLOAD.md): supervisor-visible so
  // operators can audit how a supervised session behaves at saturation.
  // The strategies consume the same key when building the link; a shed
  // (kOverloaded) op is an ordinary op error and never burns a restart.
  OverloadPolicy overload = OverloadPolicy::kShed;

  static Result<RestartPolicy> FromSpec(
      const std::map<std::string, std::string>& config);
};

// Introspection a strategy hands back so one open can be supervised.
// Everything here must be safe to use from the monitor thread while the
// owning handle runs operations.
struct SessionProbe {
  // Renewed by the sentinel side (pipe heartbeat drain or rendezvous wait).
  std::shared_ptr<Lease> lease;

  // The sentinel's host process for the process strategies; null when the
  // sentinel shares the application's process.
  std::shared_ptr<ipc::ProcessWatch> child;

  // Forces the link down so blocked application operations wake with a
  // transport error (SIGKILL the child / shut the rendezvous).
  std::function<void()> force_down;

  // Drains pending heartbeat frames into the lease (pipe transports).
  std::function<void()> poll_heartbeats;

  // Stream strategy only: true while the sentinel still holds the read end
  // of the app->sentinel pipe.  A raw-stream EOF is ambiguous (finished
  // pump vs. killed child before waitpid can see it); this probe resolves
  // it instantly.  Valid only while the owning handle's inner session is
  // alive — the supervised handle drops it before tearing the session down.
  std::function<bool()> peer_alive;
};

// The monitor.  One instance per ActiveFileManager; its sweep runs on a
// private event loop's timer wheel (core/event_loop.hpp), started lazily
// with the first attached session and stopped with the supervisor.
class Supervisor {
 public:
  Supervisor() = default;
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // One supervised open's liveness state, shared between the monitor and
  // the owning handle.
  struct Session;

  // Registers a session; `lease` of 0 disables lease-expiry checking for
  // it (child-exit detection still applies when the probe has a child).
  std::shared_ptr<Session> Attach(SessionProbe probe, Micros lease);

  // Replaces the probe after a restart (new child / new rendezvous).
  void Rebind(const std::shared_ptr<Session>& session, SessionProbe probe);

  // Unregisters; the session's probe is dropped.
  void Detach(const std::shared_ptr<Session>& session);

  // True when the monitor (or a failed operation) declared the sentinel
  // behind `session` dead and it has not been rebound since.
  static bool DeclaredDead(const std::shared_ptr<Session>& session);

  // Marks a session dead from the op path (transport failure observed).
  static void MarkDead(const std::shared_ptr<Session>& session);

 private:
  void EnsureLoopLocked() AFS_REQUIRES(mu_);
  void MonitorTick();

  Mutex mu_;
  std::vector<std::shared_ptr<Session>> sessions_ AFS_GUARDED_BY(mu_);
  bool stop_ AFS_GUARDED_BY(mu_) = false;
  bool running_ AFS_GUARDED_BY(mu_) = false;
  // The monitor's timer wheel: a self-rearming kMonitorTick timer sweeps
  // the sessions.  Start/Stop are internally synchronized.
  // afs-lint: allow(guarded-member: EventLoop is internally synchronized)
  EventLoop loop_;
};

// Opens `request` under supervision: the returned handle transparently
// restarts its sentinel per `policy` and replays position/state so the
// application never observes the crash (or degrades per the declared
// mode).  `journal` records the replayable session state write-ahead.
// Direct-strategy opens are not supervisable (the sentinel runs in the
// caller's frame) and are rejected with kUnsupported.
Result<std::unique_ptr<vfs::FileHandle>> OpenSupervised(
    Supervisor& supervisor, SessionJournal& journal,
    const sentinel::SentinelRegistry& registry, Strategy strategy,
    const OpenRequest& request, const RestartPolicy& policy);

}  // namespace afs::core
