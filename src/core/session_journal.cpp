#include "core/session_journal.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/faultpoint.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace afs::core {

namespace {

// Applies one parsed event to a record; shared by the live mirror and the
// offline replayer so the two can never disagree.
Status ApplyEvent(SessionJournal::Record& record, const std::string& event,
                  std::istringstream& rest) {
  if (event == "OPEN") {
    rest >> record.strategy;
    std::string path;
    std::getline(rest, path);
    if (!path.empty() && path.front() == ' ') path.erase(0, 1);
    record.vfs_path = path;
    return Status::Ok();
  }
  if (event == "OP") {
    rest >> record.inflight_op >> record.inflight_offset >>
        record.inflight_length;
    return Status::Ok();
  }
  if (event == "DONE") {
    rest >> record.position;
    record.inflight_op.clear();
    record.inflight_offset = 0;
    record.inflight_length = 0;
    return Status::Ok();
  }
  if (event == "RESTART") {
    rest >> record.restarts;
    return Status::Ok();
  }
  if (event == "DEGRADE") {
    record.degraded = true;
    return Status::Ok();
  }
  if (event == "CLOSE") {
    record.closed = true;
    record.inflight_op.clear();
    return Status::Ok();
  }
  return ProtocolError("unknown journal event: " + event);
}

}  // namespace

SessionJournal::SessionJournal(std::string path) : path_(std::move(path)) {
  MutexLock lock(mu_);
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    AFS_LOG(kWarn, "afs.journal")
        << "cannot open session journal " << path_ << ": "
        << std::strerror(errno) << " (journaling disabled)";
  }
}

SessionJournal::~SessionJournal() {
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

std::uint64_t SessionJournal::NextId() {
  MutexLock lock(mu_);
  return next_id_++;
}

Status SessionJournal::Append(const std::string& line) {
  if (file_ == nullptr) return Status::Ok();  // journaling disabled
  AFS_FAULT_POINT("core.journal.append");
  if (std::fputs(line.c_str(), file_) < 0 || std::fputc('\n', file_) < 0 ||
      std::fflush(file_) != 0) {
    return IoError("session journal append failed: " +
                   std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

Status SessionJournal::RecordOpen(std::uint64_t id, const std::string& strategy,
                                  const std::string& vfs_path) {
  MutexLock lock(mu_);
  Record& record = sessions_[id];
  record.id = id;
  record.strategy = strategy;
  record.vfs_path = vfs_path;
  return Append("OPEN " + std::to_string(id) + " " + strategy + " " +
                vfs_path);
}

Status SessionJournal::RecordOp(std::uint64_t id, const std::string& op,
                                std::int64_t offset, std::uint64_t length) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return NotFoundError("unknown session id");
  it->second.inflight_op = op;
  it->second.inflight_offset = offset;
  it->second.inflight_length = length;
  return Append("OP " + std::to_string(id) + " " + op + " " +
                std::to_string(offset) + " " + std::to_string(length));
}

Status SessionJournal::RecordDone(std::uint64_t id, std::int64_t position) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return NotFoundError("unknown session id");
  it->second.position = position;
  it->second.inflight_op.clear();
  it->second.inflight_offset = 0;
  it->second.inflight_length = 0;
  return Append("DONE " + std::to_string(id) + " " + std::to_string(position));
}

Status SessionJournal::RecordRestart(std::uint64_t id, int restarts) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return NotFoundError("unknown session id");
  it->second.restarts = restarts;
  return Append("RESTART " + std::to_string(id) + " " +
                std::to_string(restarts));
}

Status SessionJournal::RecordDegrade(std::uint64_t id,
                                     const std::string& mode) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return NotFoundError("unknown session id");
  it->second.degraded = true;
  return Append("DEGRADE " + std::to_string(id) + " " + mode);
}

Status SessionJournal::RecordClose(std::uint64_t id) {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return NotFoundError("unknown session id");
  it->second.closed = true;
  it->second.inflight_op.clear();
  return Append("CLOSE " + std::to_string(id));
}

std::optional<SessionJournal::Record> SessionJournal::Lookup(
    std::uint64_t id) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

Result<std::vector<SessionJournal::Record>> ReplayJournalFile(
    const std::string& path) {
  static obs::Counter& replays =
      obs::Registry::Global().GetCounter("core.journal.replays");
  replays.Add(1);
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return IoError("cannot open journal " + path + ": " +
                   std::string(std::strerror(errno)));
  }
  std::map<std::uint64_t, SessionJournal::Record> sessions;
  std::vector<std::uint64_t> order;
  std::string line;
  char buf[4096];
  Status status = Status::Ok();
  while (std::fgets(buf, sizeof(buf), file) != nullptr) {
    line.assign(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string event;
    std::uint64_t id = 0;
    if (!(in >> event >> id)) {
      status = ProtocolError("malformed journal line: " + line);
      break;
    }
    auto [it, inserted] = sessions.try_emplace(id);
    if (inserted) {
      it->second.id = id;
      order.push_back(id);
    }
    status = ApplyEvent(it->second, event, in);
    if (!status.ok()) break;
  }
  std::fclose(file);
  AFS_RETURN_IF_ERROR(status);
  std::vector<SessionJournal::Record> records;
  records.reserve(order.size());
  for (std::uint64_t id : order) records.push_back(sessions[id]);
  return records;
}

}  // namespace afs::core
