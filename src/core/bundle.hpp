// The active-file container ("bundle").
//
// The paper packages an active file's two passive components — the data
// part and the active part — into a single NTFS file using alternate data
// streams, so that copy/rename/delete carry both (Appendix A).  NTFS
// streams don't exist here, so the bundle is a self-describing container:
//
//   magic "AFB1" | u16 version | lp sentinel-name | u32 nconfig |
//   (lp key | lp value)* | u32 header-crc | <data part ... to EOF>
//
// The active part is the sentinel name + config (resolved against a
// SentinelRegistry at open); the data part is everything after the header
// and is read/written in place by sentinels through BundleDataStore.
// Because the container is one host file, plain host-level directory
// operations give exactly the paper's Section 2.1 semantics.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "sentinel/context.hpp"
#include "sentinel/registry.hpp"

namespace afs::core {

inline constexpr char kBundleMagic[4] = {'A', 'F', 'B', '1'};
inline constexpr std::uint16_t kBundleVersion = 1;

// Serializes the active part.  The returned bytes are the container prefix
// up to (and including) the header CRC.
Buffer EncodeBundleHeader(const sentinel::SentinelSpec& spec);

// Parses a container prefix.  On success, *header_size is the data-part
// offset.  kCorrupt on bad magic/CRC/truncation.
Result<sentinel::SentinelSpec> DecodeBundleHeader(ByteSpan bytes,
                                                  std::size_t* header_size);

// Writes a complete container (header + data part) at host_path,
// replacing any existing file.
Status WriteBundle(const std::string& host_path,
                   const sentinel::SentinelSpec& spec, ByteSpan data);

// True when the file exists and begins with the bundle magic.
bool SniffBundle(const std::string& host_path);

// An open container.  Thread-compatible: data-region operations use
// positional I/O and an internal mutex for the size bookkeeping.
class BundleFile {
 public:
  static Result<std::unique_ptr<BundleFile>> Open(
      const std::string& host_path);
  ~BundleFile();

  BundleFile(const BundleFile&) = delete;
  BundleFile& operator=(const BundleFile&) = delete;

  const sentinel::SentinelSpec& spec() const noexcept { return spec_; }
  std::uint64_t data_offset() const noexcept { return data_offset_; }

  // Data-region I/O (offsets are data-relative).
  Result<std::size_t> ReadDataAt(std::uint64_t offset, MutableByteSpan out);
  Result<std::size_t> WriteDataAt(std::uint64_t offset, ByteSpan data);
  Result<std::uint64_t> DataSize();
  Status TruncateData(std::uint64_t size);
  Status Flush();

  Result<Buffer> ReadAllData();
  Status ReplaceData(ByteSpan data);

 private:
  BundleFile(int fd, sentinel::SentinelSpec spec, std::uint64_t data_offset)
      : fd_(fd), spec_(std::move(spec)), data_offset_(data_offset) {}

  int fd_ = -1;
  sentinel::SentinelSpec spec_;
  std::uint64_t data_offset_ = 0;
};

// DataStore adapter exposing a bundle's data region as the sentinel's
// cache — the on-disk caching path (Figure 5, path 2).
class BundleDataStore final : public sentinel::DataStore {
 public:
  explicit BundleDataStore(std::shared_ptr<BundleFile> bundle)
      : bundle_(std::move(bundle)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             MutableByteSpan out) override {
    return bundle_->ReadDataAt(offset, out);
  }
  Result<std::size_t> WriteAt(std::uint64_t offset, ByteSpan data) override {
    return bundle_->WriteDataAt(offset, data);
  }
  Result<std::uint64_t> Size() override { return bundle_->DataSize(); }
  Status Truncate(std::uint64_t size) override {
    return bundle_->TruncateData(size);
  }
  Status Flush() override { return bundle_->Flush(); }

 private:
  std::shared_ptr<BundleFile> bundle_;
};

}  // namespace afs::core
