// The epoll data plane (ROADMAP item 1): a small pool of event loops, one
// per shard, each multiplexing many sentinel sessions on a single thread.
//
// One EventLoop owns one epoll instance, one eventfd doorbell, a run queue
// of posted tasks, and a timer wheel.  Producers (application threads
// posting commands, the supervisor arming lease ticks) never block: Post()
// is a short lock plus an 8-byte eventfd write.  The loop thread drains up
// to `batch_limit` posted tasks per wakeup — the frame-batching knob that
// amortizes one epoll_wait over many ready requests — then fires due
// timers and dispatches fd readiness callbacks.
//
// EventLoopPool deals sessions across shards round-robin (or by explicit
// pin, see the "loop_shard" spec key in docs/EVENT_LOOP.md).  Loop-hosted
// sessions carry no per-session descriptors at all: the per-shard doorbell
// is the only fd the data plane costs, which is what lets one process hold
// 100k concurrent open handles under an ordinary RLIMIT_NOFILE.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"

namespace afs::core {

class EventLoop {
 public:
  struct Options {
    // Posted tasks drained per wakeup before the loop re-checks readiness;
    // bounds the latency a burst can impose on timers and fd events.
    int batch_limit = 64;
    // Backstop bound on the posted-task queue, enforced by TryPost only
    // (Post always succeeds: teardown and release tasks must never drop).
    // 0 = unlimited.  AFS_LOOP_QUEUE_LIMIT for the global pool.
    std::size_t queue_limit = 0;
  };

  EventLoop() : EventLoop(Options{}) {}
  explicit EventLoop(Options options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Creates the epoll/eventfd pair and spawns the loop thread.  Idempotent.
  Status Start();

  // Stops the loop and joins its thread.  Tasks already posted still run
  // (the final drain) so teardown work — implicit closes, unregistered
  // connections — is never silently dropped.  Idempotent.
  void Stop();

  // Enqueues `task` for the loop thread and rings the doorbell.  Cheap and
  // bounded (mutex push + eventfd write); safe from any thread, including
  // the loop thread itself.
  void Post(std::function<void()> task) AFS_NONBLOCKING;

  // Admission-checked Post: refuses (returns false, task not enqueued)
  // when the posted-task queue already holds `queue_limit` tasks.  The
  // admission layer (core/overload.hpp) sheds with kOverloaded on a false
  // return; internal work keeps using Post.
  bool TryPost(std::function<void()> task) AFS_NONBLOCKING;

  // Posted-but-undrained task count (admission introspection).
  std::size_t queue_depth() const AFS_NONBLOCKING;

  // Arms a one-shot timer `delay` from now; returns an id for CancelTimer.
  // Repeating cadences re-arm from inside their callback, which keeps a
  // wedged callback from stacking overlapping firings.
  std::uint64_t AddTimer(Micros delay, std::function<void()> fn)
      AFS_NONBLOCKING;
  void CancelTimer(std::uint64_t id);

  // Registers `fd` for readiness callbacks.  `events` is a bitmask of
  // kReadable/kWritable; the callback receives the ready mask.  The fd is
  // not owned.  Callbacks run on the loop thread.
  static constexpr std::uint32_t kReadable = 1;
  static constexpr std::uint32_t kWritable = 2;
  Status RegisterFd(int fd, std::uint32_t events,
                    std::function<void(std::uint32_t)> callback);
  Status ModifyFd(int fd, std::uint32_t events);
  void UnregisterFd(int fd);

  bool OnLoopThread() const noexcept {
    return std::this_thread::get_id() == thread_id_.load();
  }
  bool running() const noexcept { return running_.load(); }

 private:
  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id;
    std::function<void()> fn;
  };

  void Run();
  void Ring() AFS_NONBLOCKING;
  int NextTimeoutMsLocked() AFS_REQUIRES(mu_);
  void FireDueTimers();
  std::size_t DrainPosted();

  // afs-lint: allow(guarded-member: clamped at construction, constant afterwards)
  Options options_;

  mutable Mutex mu_;
  // afs-lint: allow(bounded-queue: Options::queue_limit backstop via TryPost; admission gates cap bytes upstream)
  std::vector<std::function<void()>> queue_ AFS_GUARDED_BY(mu_);
  std::vector<Timer> timers_ AFS_GUARDED_BY(mu_);
  std::uint64_t next_timer_id_ AFS_GUARDED_BY(mu_) = 1;
  std::map<int, std::function<void(std::uint32_t)>> fds_ AFS_GUARDED_BY(mu_);
  bool stop_ AFS_GUARDED_BY(mu_) = false;

  // afs-lint: allow(guarded-member: created by Start before the thread runs; closed after join)
  int epoll_fd_ = -1;
  // afs-lint: allow(guarded-member: created by Start before the thread runs; closed after join)
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> thread_id_{};
  // afs-lint: allow(guarded-member: Start() spawns, Stop() joins; owner thread only)
  std::thread thread_;
};

// The shard pool: N loops, round-robin placement.  Shard count is fixed at
// construction (AFS_LOOP_SHARDS for the global pool).
class EventLoopPool {
 public:
  explicit EventLoopPool(int shards, EventLoop::Options options = {});
  ~EventLoopPool() = default;

  EventLoopPool(const EventLoopPool&) = delete;
  EventLoopPool& operator=(const EventLoopPool&) = delete;

  Status Start();
  void Stop();

  int shard_count() const noexcept { return static_cast<int>(loops_.size()); }

  // Shard by explicit index (pinning; wraps modulo the pool) or by the
  // round-robin cursor when `pin` is negative.
  EventLoop& Shard(int pin = -1);

  // Placement split in two so a caller can pair per-shard state (the loop
  // host's admission gates) with the loop the cursor picked.
  std::size_t PickShard(int pin = -1);
  EventLoop& ShardAt(std::size_t index) { return *loops_[index]; }

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace afs::core
