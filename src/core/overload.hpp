// Overload protection: bounded admission for every queueing point on the
// request path.
//
// The paper's active-file host is shared infrastructure — one sentineld
// multiplexing many applications — and a shared host that queues without
// bound converts "too much traffic" into ballooning memory, wedged shards,
// and timeouts for everyone.  This module makes saturation a *handled*
// state instead: each queueing domain (a loop shard, a rendezvous slot, a
// link's bulk lane) owns an AdmissionGate; an op either gets capacity
// charged against the gate's budgets or is shed immediately with
// kOverloaded and a retry-after hint the whole stack propagates
// (docs/OVERLOAD.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "sentinel/control.hpp"
#include "util/rate_limiter.hpp"

namespace afs::core {

// What a saturated queueing point does with the op that found it full
// (the `overload=` spec key; docs/OVERLOAD.md):
//   kShed     — fail fast with kOverloaded + retry-after (the default);
//   kBrownout — degrade instead of queueing: bulk payloads leave the shm
//               ring for pipes, admission sheds only after a short grace
//               wait;
//   kBlock    — classic backpressure: wait (bounded by the op deadline)
//               for capacity, shedding only when the wait expires.
enum class OverloadPolicy : std::uint8_t { kShed = 0, kBrownout = 1,
                                           kBlock = 2 };

std::string_view OverloadPolicyName(OverloadPolicy policy) noexcept;
Result<OverloadPolicy> ParseOverloadPolicy(std::string_view name);

// Parses the `overload` spec key from a sentinel config; `fallback` when
// the key is absent.
Result<OverloadPolicy> OverloadPolicyFromSpec(
    const std::map<std::string, std::string>& config, OverloadPolicy fallback);

// One queueing domain's admission budgets.  Thread-safe; Admit/Release
// pairs bracket an op's residence in the domain (queued + being served).
class AdmissionGate {
 public:
  struct Limits {
    std::size_t max_queue_bytes = 0;   // 0 = unlimited
    int max_inflight = 0;              // 0 = unlimited
    std::uint64_t rate_bytes_per_second = 0;  // token bucket; 0 = unlimited
    std::uint64_t burst_bytes = 0;     // bucket depth; 0 = rate (min 4 KiB)
  };

  explicit AdmissionGate(Limits limits);

  // Charges `bytes` against the budgets.  Ok() means admitted — the
  // caller MUST Release(bytes) exactly once when the op leaves the
  // domain.  kOverloaded (with a retry-after hint in both the message and
  // the returned hint slot) means shed: nothing was charged.
  Status Admit(std::size_t bytes);

  // Blocking variant for the kBlock policy: waits for byte/inflight
  // capacity up to `timeout` before shedding.  Rate-limiter shortfalls
  // also wait (in slices) while the bucket refills.
  Status AdmitFor(std::size_t bytes, Micros timeout);

  void Release(std::size_t bytes);

  std::size_t queue_bytes() const;
  int inflight() const;

 private:
  Status TryAdmitLocked(std::size_t bytes, Micros* retry_after)
      AFS_REQUIRES(mu_);
  Status ShedLocked(std::size_t bytes, Micros retry_after) AFS_REQUIRES(mu_);

  const Limits limits_;
  mutable Mutex mu_;
  CondVar capacity_;           // signalled by Release
  RateLimiter limiter_ AFS_GUARDED_BY(mu_);  // rate 0 => pass-through
  std::size_t queue_bytes_ AFS_GUARDED_BY(mu_) = 0;
  int inflight_ AFS_GUARDED_BY(mu_) = 0;
};

// Per-link admission budgets from the active-file spec (docs/OVERLOAD.md):
// admit_queue_bytes, admit_inflight, admit_bps, admit_burst.  Absent keys
// leave their budget unlimited.
AdmissionGate::Limits AdmissionLimitsFromSpec(
    const std::map<std::string, std::string>& config);

// True when any budget in `limits` is actually bounding.
bool AdmissionConfigured(const AdmissionGate::Limits& limits) noexcept;

// Policy-shaped admission: kShed fails fast, kBrownout grants a short
// grace wait before shedding, kBlock waits out `block_bound` (falling back
// to one second when the op carries no deadline).
Status AdmitWithPolicy(AdmissionGate& gate, std::size_t cost,
                       OverloadPolicy policy, Micros block_bound);

// Bytes one control op charges against an AdmissionGate: a fixed framing
// overhead plus the larger of the bulk lanes it moves (writes charge their
// source spans, reads the destination they asked to fill).
std::size_t ControlMessageCost(const sentinel::ControlMessage& message)
    noexcept;

// Ops that must never be shed: teardown releases resources, so refusing a
// kClose under load would leak the very capacity the gate is protecting
// ("no collateral damage", docs/OVERLOAD.md).  Its cost is a fixed 64
// bytes — exempting it cannot be gamed into unbounded queue growth.
inline bool AdmissionExempt(sentinel::ControlOp op) noexcept {
  return op == sentinel::ControlOp::kClose;
}

// Process-wide shed/admit accounting (core.overload.* in
// docs/OBSERVABILITY.md).  Call sites on hot paths cache the references.
namespace overload_metrics {
void RecordAdmitted();
void RecordShed(Micros retry_after);
void RecordBrownout();
void AddQueueBytes(std::int64_t delta);
}  // namespace overload_metrics

}  // namespace afs::core
