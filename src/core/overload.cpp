#include "core/overload.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace afs::core {

namespace {

// Retry hint when no token bucket is configured to derive one from: long
// enough that a retry loop is not a busy loop, short enough that a burst
// drains promptly once capacity frees.
constexpr Micros kDefaultRetryAfter{5'000};

// kBlock waits are sliced so a Release (or Close) is never missed for
// longer than this even if a notify races the wait.
constexpr Micros kBlockWaitSlice{10'000};

std::uint64_t BurstFor(const AdmissionGate::Limits& limits) {
  if (limits.burst_bytes != 0) return limits.burst_bytes;
  return std::max<std::uint64_t>(limits.rate_bytes_per_second, 4096);
}

}  // namespace

AdmissionGate::Limits AdmissionLimitsFromSpec(
    const std::map<std::string, std::string>& config) {
  AdmissionGate::Limits limits;
  auto parse = [&config](const char* key) -> std::uint64_t {
    auto it = config.find(key);
    if (it == config.end()) return 0;
    return std::strtoull(it->second.c_str(), nullptr, 10);
  };
  limits.max_queue_bytes = static_cast<std::size_t>(
      parse("admit_queue_bytes"));
  limits.max_inflight = static_cast<int>(parse("admit_inflight"));
  limits.rate_bytes_per_second = parse("admit_bps");
  limits.burst_bytes = parse("admit_burst");
  return limits;
}

bool AdmissionConfigured(const AdmissionGate::Limits& limits) noexcept {
  return limits.max_queue_bytes != 0 || limits.max_inflight != 0 ||
         limits.rate_bytes_per_second != 0;
}

Status AdmitWithPolicy(AdmissionGate& gate, std::size_t cost,
                       OverloadPolicy policy, Micros block_bound) {
  // kBrownout's grace: long enough for a draining queue to free capacity,
  // short enough that a saturated one still sheds promptly.
  constexpr Micros kBrownoutGrace{5'000};
  constexpr Micros kDefaultBlockBound{1'000'000};
  switch (policy) {
    case OverloadPolicy::kShed:
      return gate.Admit(cost);
    case OverloadPolicy::kBrownout:
      return gate.AdmitFor(cost, kBrownoutGrace);
    case OverloadPolicy::kBlock:
      return gate.AdmitFor(
          cost, block_bound.count() > 0 ? block_bound : kDefaultBlockBound);
  }
  return gate.Admit(cost);
}

std::size_t ControlMessageCost(const sentinel::ControlMessage& message)
    noexcept {
  // Fixed per-op overhead keeps zero-byte ops (seek, flush, lock) from
  // admitting for free: an in-flight budget must see them too.
  constexpr std::size_t kMessageOverhead = 64;
  std::size_t bulk = message.inline_in.size();
  for (ByteSpan segment : message.vec_in) bulk += segment.size();
  bulk = std::max<std::size_t>(bulk, message.length);
  return kMessageOverhead + message.payload.size() + bulk;
}

std::string_view OverloadPolicyName(OverloadPolicy policy) noexcept {
  switch (policy) {
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kBrownout: return "brownout";
    case OverloadPolicy::kBlock: return "block";
  }
  return "?";
}

Result<OverloadPolicy> ParseOverloadPolicy(std::string_view name) {
  if (name == "shed") return OverloadPolicy::kShed;
  if (name == "brownout") return OverloadPolicy::kBrownout;
  if (name == "block") return OverloadPolicy::kBlock;
  return InvalidArgumentError("unknown overload policy: " + std::string(name));
}

Result<OverloadPolicy> OverloadPolicyFromSpec(
    const std::map<std::string, std::string>& config,
    OverloadPolicy fallback) {
  auto it = config.find("overload");
  if (it == config.end()) return fallback;
  return ParseOverloadPolicy(it->second);
}

namespace overload_metrics {

void RecordAdmitted() {
  static obs::Counter& admitted =
      obs::Registry::Global().GetCounter("core.overload.admitted");
  admitted.Add(1);
}

void RecordShed(Micros retry_after) {
  static obs::Counter& shed =
      obs::Registry::Global().GetCounter("core.overload.shed");
  static obs::Histogram& hint =
      obs::Registry::Global().GetHistogram("core.overload.retry_after_ms");
  shed.Add(1);
  hint.Record(static_cast<std::uint64_t>(
      std::max<std::int64_t>(retry_after.count() / 1000, 0)));
}

void RecordBrownout() {
  static obs::Counter& brownouts =
      obs::Registry::Global().GetCounter("core.overload.brownouts");
  brownouts.Add(1);
}

void AddQueueBytes(std::int64_t delta) {
  static obs::Gauge& queue_bytes =
      obs::Registry::Global().GetGauge("core.overload.queue_bytes");
  queue_bytes.Add(delta);
}

}  // namespace overload_metrics

AdmissionGate::AdmissionGate(Limits limits)
    : limits_(limits),
      limiter_(SteadyClock::Instance(), limits.rate_bytes_per_second,
               BurstFor(limits)) {}

Status AdmissionGate::TryAdmitLocked(std::size_t bytes, Micros* retry_after) {
  *retry_after = kDefaultRetryAfter;
  if (limits_.max_inflight > 0 && inflight_ >= limits_.max_inflight) {
    return OverloadedError("in-flight budget exhausted");
  }
  if (limits_.max_queue_bytes > 0 &&
      queue_bytes_ + bytes > limits_.max_queue_bytes && queue_bytes_ > 0) {
    // An op larger than the whole budget still admits into an empty gate —
    // a budget must bound queue growth, not ban big transfers outright.
    return OverloadedError("queue-byte budget exhausted");
  }
  Micros bucket_wait{0};
  if (!limiter_.TryReserve(bytes, &bucket_wait)) {
    *retry_after = bucket_wait;
    return OverloadedError("admission rate exceeded");
  }
  queue_bytes_ += bytes;
  ++inflight_;
  return Status::Ok();
}

Status AdmissionGate::ShedLocked(std::size_t bytes, Micros retry_after) {
  (void)bytes;
  overload_metrics::RecordShed(retry_after);
  const std::int64_t hint_ms =
      std::max<std::int64_t>(retry_after.count() / 1000, 1);
  return OverloadedError("admission shed", hint_ms);
}

Status AdmissionGate::Admit(std::size_t bytes) {
  MutexLock lock(mu_);
  Micros retry_after{0};
  Status admitted = TryAdmitLocked(bytes, &retry_after);
  if (!admitted.ok()) {
    return ShedLocked(bytes, retry_after);
  }
  overload_metrics::RecordAdmitted();
  overload_metrics::AddQueueBytes(static_cast<std::int64_t>(bytes));
  return Status::Ok();
}

Status AdmissionGate::AdmitFor(std::size_t bytes, Micros timeout) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout.count());
  MutexLock lock(mu_);
  Micros retry_after{0};
  while (true) {
    Status admitted = TryAdmitLocked(bytes, &retry_after);
    if (admitted.ok()) {
      overload_metrics::RecordAdmitted();
      overload_metrics::AddQueueBytes(static_cast<std::int64_t>(bytes));
      return Status::Ok();
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ShedLocked(bytes, retry_after);
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    const auto slice = std::min<std::chrono::microseconds>(
        remaining, std::chrono::microseconds(kBlockWaitSlice.count()));
    (void)capacity_.WaitUntil(mu_, now + slice);
  }
}

void AdmissionGate::Release(std::size_t bytes) {
  {
    MutexLock lock(mu_);
    queue_bytes_ = bytes > queue_bytes_ ? 0 : queue_bytes_ - bytes;
    if (inflight_ > 0) --inflight_;
  }
  overload_metrics::AddQueueBytes(-static_cast<std::int64_t>(bytes));
  capacity_.NotifyAll();
}

std::size_t AdmissionGate::queue_bytes() const {
  MutexLock lock(mu_);
  return queue_bytes_;
}

int AdmissionGate::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

}  // namespace afs::core
