// Exec-mode sentinels: the paper's literal model, where "when an active
// file is opened, the associated executable is run as a sentinel process"
// (Section 2).  When a bundle's config carries an "exec" key, the process
// strategies fork+exec that binary instead of running sentinel code in a
// forked copy of the application.  The child receives its pipe file
// descriptors and the bundle location on the command line and serves the
// same wire protocol, so the application-side stubs cannot tell the
// difference.
//
// A sentinel executable is any program whose main() calls SentineldMain
// after registering the sentinels it provides (see
// examples/afs_sentineld.cpp for the stock binary with the built-ins).
#pragma once

#include "common/status.hpp"

namespace afs::core {

// Command-line contract (produced by the strategies, parsed here):
//   --mode=control | stream
//   --control-fd=N --response-fd=N --data-fd=N      (mode=control)
//   --in-fd=N --out-fd=N                            (mode=stream)
//   --bundle=<host path of the container>
//   --path=<vfs path, for the sentinel's context>
//   --lockdir=<named-mutex directory>
// Returns the process exit code.  Errors before the protocol starts are
// reported on stderr and via a nonzero exit code.
int SentineldMain(int argc, char** argv);

}  // namespace afs::core
