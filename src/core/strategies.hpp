// The four implementation strategies of paper Section 4 / Figure 4.
//
//   kProcess         — sentinel in a forked child, two anonymous pipes on
//                      its standard streams; only read/write/close can
//                      travel (Section 4.1's stated limitation).
//   kProcessControl  — child plus a control channel carrying typed
//                      commands, supporting the full file API (Section 4.2).
//   kThread          — sentinel as an in-process thread over a shared-
//                      memory rendezvous ("DLL-with-thread", Section 4.3).
//   kDirect          — file operations call sentinel routines directly
//                      ("DLL-only", Section 4.4); no extra thread, no
//                      context switch.
//
// Plus one post-paper strategy:
//
//   kLoop            — sentinel sessions hosted on a shared pool of epoll
//                      event loops (core/loop_host.hpp): many sentinels
//                      per shard thread, no per-session descriptors.
#pragma once

#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "core/bundle.hpp"
#include "sentinel/context.hpp"
#include "sentinel/registry.hpp"
#include "vfs/file_handle.hpp"

namespace afs::core {

struct SessionProbe;  // core/supervisor.hpp

// Optional capability of active-file handles: application-specific
// commands tunneled to the sentinel's OnControl (the control channel's
// extensibility, paper Section 4.2).  Obtained by dynamic_cast from the
// vfs::FileHandle, or via ActiveFileManager::Control.  The plain process
// strategy has no control channel and does not implement it.
class ActiveHandle {
 public:
  virtual ~ActiveHandle() = default;
  virtual Result<Buffer> Control(ByteSpan request) = 0;
};

enum class Strategy : std::uint8_t {
  kProcess = 1,
  kProcessControl = 2,
  kThread = 3,
  kDirect = 4,
  // Post-paper addition (the event-loop data plane): sentinel sessions
  // multiplexed onto a small shard pool of epoll loops instead of one
  // dedicated thread or process per open — see docs/EVENT_LOOP.md.
  kLoop = 5,
};

std::string_view StrategyName(Strategy strategy) noexcept;
Result<Strategy> ParseStrategy(std::string_view name);

enum class CacheMode : std::uint8_t { kNone = 0, kDisk = 1, kMemory = 2 };

std::string_view CacheModeName(CacheMode mode) noexcept;
Result<CacheMode> ParseCacheMode(std::string_view name);

// The sentinel's view of the data part for one open, assembled per cache
// mode.  kMemory loads the bundle's data region at open and (by default)
// writes it back at close; kDisk operates on the region in place; kNone
// exposes no data part.
struct CacheAssembly {
  std::unique_ptr<sentinel::DataStore> store;  // null for kNone
  std::shared_ptr<BundleFile> bundle;          // null for kNone
  CacheMode mode = CacheMode::kDisk;
  bool writeback = true;

  // Persists a memory cache back into the bundle.  Called after the
  // sentinel's OnClose, in whichever process the sentinel ran in.
  Status Finalize();
};

Result<CacheAssembly> AssembleCache(const std::string& host_path,
                                    const sentinel::SentinelSpec& spec);

// Everything a strategy needs to stand up one sentinel for one open.
struct OpenRequest {
  std::string vfs_path;   // what the application opened
  std::string host_path;  // the bundle on the host filesystem
  sentinel::SentinelSpec spec;
  sentinel::RemoteResolver* resolver = nullptr;  // may be null
  std::string lock_dir;

  // Supervision extras (set by core/supervisor.cpp, zero by default):
  // positive → the sentinel side emits idle heartbeats / renews its lease
  // at this cadence.
  Micros heartbeat_interval{0};
  // Stream-strategy re-attach: the reader pump starts streaming at
  // resume_read_pos and the first inbound write applies at
  // resume_write_pos, so a restarted sentinel resumes mid-file instead of
  // replaying from byte zero.
  std::uint64_t resume_read_pos = 0;
  std::uint64_t resume_write_pos = 0;
};

// Builds the application-side FileHandle (the "stub") for the given
// strategy, spawning/injecting the sentinel as a side effect.  On error
// nothing is left running.  A non-null `probe` is filled with the
// session's liveness hooks (lease, child watch, force-down) for the
// supervisor; pass nullptr when the open is unsupervised.
Result<std::unique_ptr<vfs::FileHandle>> OpenWithStrategy(
    Strategy strategy, const sentinel::SentinelRegistry& registry,
    const OpenRequest& request, SessionProbe* probe = nullptr);

}  // namespace afs::core
