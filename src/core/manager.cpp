#include "core/manager.hpp"

#include <filesystem>

#include "common/faultpoint.hpp"
#include "core/bundle.hpp"
#include "core/session_journal.hpp"
#include "vfs/paths.hpp"

namespace afs::core {

ActiveFileManager::ActiveFileManager(vfs::FileApi& api,
                                     sentinel::SentinelRegistry& registry,
                                     ManagerOptions options)
    : api_(api), registry_(registry), options_(std::move(options)) {
  if (options_.lock_dir.empty()) {
    options_.lock_dir = api_.root_dir() + "/.afs-locks";
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.lock_dir, ec);
  journal_ =
      std::make_unique<SessionJournal>(options_.lock_dir + "/sessions.journal");
}

ActiveFileManager::~ActiveFileManager() { Uninstall(); }

void ActiveFileManager::Install() {
  if (installed_) return;
  api_.InstallInterceptor(this);
  installed_ = true;
}

void ActiveFileManager::Uninstall() {
  if (!installed_) return;
  api_.RemoveInterceptor(this);
  installed_ = false;
}

Status ActiveFileManager::CreateActiveFile(const std::string& path,
                                           const sentinel::SentinelSpec& spec,
                                           ByteSpan initial_data) {
  if (!vfs::IsActiveFilePath(path)) {
    return InvalidArgumentError("active files need the '" +
                                std::string(vfs::kActiveFileExtension) +
                                "' extension: " + path);
  }
  if (!registry_.Has(spec.name)) {
    return NotFoundError("no sentinel registered as '" + spec.name + "'");
  }
  if (spec.config.count("cache") != 0) {
    AFS_RETURN_IF_ERROR(ParseCacheMode(spec.config.at("cache")).status());
  }
  if (spec.config.count("strategy") != 0) {
    AFS_RETURN_IF_ERROR(ParseStrategy(spec.config.at("strategy")).status());
  }
  AFS_ASSIGN_OR_RETURN(std::string host, api_.HostPath(path));
  return WriteBundle(host, spec, initial_data);
}

Result<sentinel::SentinelSpec> ActiveFileManager::ReadSpec(
    const std::string& path) const {
  AFS_ASSIGN_OR_RETURN(std::string host, api_.HostPath(path));
  AFS_ASSIGN_OR_RETURN(std::unique_ptr<BundleFile> bundle,
                       BundleFile::Open(host));
  return bundle->spec();
}

Result<Buffer> ActiveFileManager::ReadDataPart(const std::string& path) const {
  AFS_ASSIGN_OR_RETURN(std::string host, api_.HostPath(path));
  AFS_ASSIGN_OR_RETURN(std::unique_ptr<BundleFile> bundle,
                       BundleFile::Open(host));
  return bundle->ReadAllData();
}

Status ActiveFileManager::WriteDataPart(const std::string& path,
                                        ByteSpan data) {
  AFS_ASSIGN_OR_RETURN(std::string host, api_.HostPath(path));
  AFS_ASSIGN_OR_RETURN(std::unique_ptr<BundleFile> bundle,
                       BundleFile::Open(host));
  return bundle->ReplaceData(data);
}

Result<Buffer> ActiveFileManager::Control(vfs::HandleId handle,
                                          ByteSpan request) {
  vfs::FileHandle* raw = api_.RawHandle(handle);
  if (raw == nullptr) {
    return InvalidArgumentError("bad handle " + std::to_string(handle));
  }
  auto* active = dynamic_cast<ActiveHandle*>(raw);
  if (active == nullptr) {
    return UnsupportedError(
        "handle has no control channel (passive file or plain process "
        "strategy)");
  }
  return active->Control(request);
}

Result<std::unique_ptr<vfs::FileHandle>> ActiveFileManager::TryOpen(
    vfs::FileApi& api, const std::string& path,
    const vfs::OpenOptions& options) {
  (void)options;  // sentinels define their own open semantics
  // The stub's test (paper A.2): is this an active file?  Non-.af paths
  // and .af files that are not bundles fall through to the passive path.
  if (!vfs::IsActiveFilePath(path)) {
    return std::unique_ptr<vfs::FileHandle>();
  }
  AFS_ASSIGN_OR_RETURN(std::string host, api.HostPath(path));
  if (!SniffBundle(host)) {
    return std::unique_ptr<vfs::FileHandle>();
  }
  AFS_FAULT_POINT("core.manager.open");

  AFS_ASSIGN_OR_RETURN(std::unique_ptr<BundleFile> bundle,
                       BundleFile::Open(host));
  OpenRequest request;
  request.vfs_path = path;
  request.host_path = host;
  request.spec = bundle->spec();
  request.resolver = options_.resolver;
  request.lock_dir = options_.lock_dir;
  bundle.reset();  // strategies reopen as needed per cache mode

  Strategy strategy = options_.default_strategy;
  auto it = request.spec.config.find("strategy");
  if (it != request.spec.config.end()) {
    AFS_ASSIGN_OR_RETURN(strategy, ParseStrategy(it->second));
  }

  // Bundles that opt in ("supervise=1") get the crash-recovering wrapper;
  // everybody else keeps the classic handle and its fail-fast semantics.
  AFS_ASSIGN_OR_RETURN(RestartPolicy policy,
                       RestartPolicy::FromSpec(request.spec.config));
  if (policy.supervised) {
    return OpenSupervised(supervisor_, *journal_, registry_, strategy,
                          request, policy);
  }
  return OpenWithStrategy(strategy, registry_, request);
}

}  // namespace afs::core
