// Deterministic PRNG (xoshiro256**).  Sentinel examples (random-file data
// generation) and workload generators need reproducible streams; std::mt19937
// state is bulky for per-sentinel embedding and unspecified across platforms
// for distributions, so we own both the generator and the mapping.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace afs {

class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into four lanes.
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      lane = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  std::uint32_t NextU32() noexcept {
    return static_cast<std::uint32_t>(NextU64() >> 32);
  }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextU64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  double NextDouble() noexcept {  // [0, 1)
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  void Fill(MutableByteSpan out) noexcept {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
      std::uint64_t v = NextU64();
      for (int k = 0; k < 8; ++k) {
        out[i++] = static_cast<std::uint8_t>(v >> (8 * k));
      }
    }
    if (i < out.size()) {
      std::uint64_t v = NextU64();
      for (; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(v & 0xff);
        v >>= 8;
      }
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace afs
