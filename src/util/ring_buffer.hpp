// Fixed-capacity byte ring buffer.  This is the data plane of the
// shared-memory channel used by the DLL-with-thread strategy: application
// stubs produce into it and the sentinel thread consumes from it (and vice
// versa) with exactly one user-level copy per side — the property the paper
// credits for the thread strategy's advantage over pipes (Section 4.3).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/bytes.hpp"

namespace afs {

class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : data_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const noexcept { return data_.size(); }
  std::size_t size() const noexcept { return size_; }
  std::size_t free_space() const noexcept { return capacity() - size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == capacity(); }

  // Copies up to bytes.size() in; returns how many were accepted.
  std::size_t Write(ByteSpan bytes) noexcept {
    const std::size_t n = std::min(bytes.size(), free_space());
    for (std::size_t copied = 0; copied < n;) {
      const std::size_t chunk =
          std::min(n - copied, capacity() - write_pos_);
      std::memcpy(&data_[write_pos_], bytes.data() + copied, chunk);
      write_pos_ = (write_pos_ + chunk) % capacity();
      copied += chunk;
    }
    size_ += n;
    return n;
  }

  // Copies up to out.size() bytes out; returns how many were produced.
  std::size_t Read(MutableByteSpan out) noexcept {
    const std::size_t n = std::min(out.size(), size_);
    for (std::size_t copied = 0; copied < n;) {
      const std::size_t chunk = std::min(n - copied, capacity() - read_pos_);
      std::memcpy(out.data() + copied, &data_[read_pos_], chunk);
      read_pos_ = (read_pos_ + chunk) % capacity();
      copied += chunk;
    }
    size_ -= n;
    return n;
  }

  // Non-consuming read of up to out.size() bytes from the front.
  std::size_t Peek(MutableByteSpan out) const noexcept {
    const std::size_t n = std::min(out.size(), size_);
    std::size_t pos = read_pos_;
    for (std::size_t copied = 0; copied < n;) {
      const std::size_t chunk = std::min(n - copied, capacity() - pos);
      std::memcpy(out.data() + copied, &data_[pos], chunk);
      pos = (pos + chunk) % capacity();
      copied += chunk;
    }
    return n;
  }

  // Drops up to n bytes from the front; returns how many were dropped.
  std::size_t Discard(std::size_t n) noexcept {
    n = std::min(n, size_);
    read_pos_ = (read_pos_ + n) % capacity();
    size_ -= n;
    return n;
  }

  void Clear() noexcept {
    read_pos_ = write_pos_ = 0;
    size_ = 0;
  }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t read_pos_ = 0;
  std::size_t write_pos_ = 0;
  std::size_t size_ = 0;
};

}  // namespace afs
