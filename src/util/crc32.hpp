// CRC-32 (IEEE 802.3 polynomial, reflected).  Guards bundle TOCs and codec
// frames against corruption.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace afs {

// One-shot CRC of a byte span (initial value 0).
std::uint32_t Crc32(ByteSpan bytes) noexcept;

// Incremental form: feed the previous return value back in as `seed`.
std::uint32_t Crc32Update(std::uint32_t seed, ByteSpan bytes) noexcept;

}  // namespace afs
