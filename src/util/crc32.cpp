#include "util/crc32.hpp"

#include <array>

namespace afs {
namespace {

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const auto table = BuildTable();
  return table;
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t seed, ByteSpan bytes) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& table = Table();
  for (std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(ByteSpan bytes) noexcept { return Crc32Update(0, bytes); }

}  // namespace afs
