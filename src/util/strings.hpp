// Small string utilities used by protocol parsers (mail headers, registry
// text rendering, sentinel spec key=value configs).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace afs {

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits into at most two pieces at the first occurrence of sep; returns
// {s, ""} when sep is absent.
std::pair<std::string, std::string> SplitOnce(std::string_view s, char sep);

// Splits on '\n', dropping a trailing '\r' on each line.
std::vector<std::string> SplitLines(std::string_view s);

std::string TrimWhitespace(std::string_view s);
std::string ToLowerAscii(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow.
bool ParseU64(std::string_view s, std::uint64_t& out);

}  // namespace afs
