#include "util/strings.hpp"

#include <cctype>
#include <cstdint>

namespace afs {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::pair<std::string, std::string> SplitOnce(std::string_view s, char sep) {
  const std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) {
    return {std::string(s), std::string()};
  }
  return {std::string(s.substr(0, pos)), std::string(s.substr(pos + 1))};
}

std::vector<std::string> SplitLines(std::string_view s) {
  std::vector<std::string> lines = Split(s, '\n');
  for (auto& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  // A trailing newline yields one spurious empty tail element.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string TrimWhitespace(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ParseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace afs
