// Bounded MPMC blocking queue.  Used for SimNet message delivery and for
// handing control commands between application stubs and sentinel threads.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.hpp"

namespace afs {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = SIZE_MAX)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks while full; returns false if the queue was closed.
  bool Push(T item) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  // Deadline push: blocks while full up to `timeout`, then gives up.
  // Returns false on timeout or when the queue was closed — including a
  // Close() that lands while the pusher is parked on a full queue (the
  // shutdown-while-full case: Close wakes not_full_ waiters too).
  bool PushFor(T item, std::chrono::microseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) {
        if (!not_full_.WaitUntil(mu_, deadline)) break;
      }
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks while empty; nullopt if closed and drained.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  // Pop with timeout; nullopt on timeout or when closed and drained.
  std::optional<T> PopFor(std::chrono::microseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      if (!not_empty_.WaitUntil(mu_, deadline)) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  // Unblocks all waiters; further pushes fail, pops drain then fail.
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  // afs-lint: allow(bounded-queue: size capped at capacity_ by Push/PushFor/TryPush)
  std::deque<T> items_ AFS_GUARDED_BY(mu_);
  bool closed_ AFS_GUARDED_BY(mu_) = false;
};

}  // namespace afs
