// Bounded MPMC blocking queue.  Used for SimNet message delivery and for
// handing control commands between application stubs and sentinel threads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace afs {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = SIZE_MAX)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks while full; returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty; nullopt if closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Pop with timeout; nullopt on timeout or when closed and drained.
  std::optional<T> PopFor(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Unblocks all waiters; further pushes fail, pops drain then fail.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace afs
