// Token-bucket rate limiter.  SimNet uses one per link to model bandwidth
// (e.g. 100 Mbps Fast Ethernet from the paper's testbed): each message must
// acquire its size in byte-tokens before delivery.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/clock.hpp"
#include "common/mutex.hpp"

namespace afs {

class RateLimiter {
 public:
  // bytes_per_second == 0 means unlimited.
  RateLimiter(Clock& clock, std::uint64_t bytes_per_second,
              std::uint64_t burst_bytes = 64 * 1024)
      : clock_(clock),
        rate_(bytes_per_second),
        burst_(std::max<std::uint64_t>(burst_bytes, 1)),
        tokens_(static_cast<double>(burst_)),
        last_(clock.Now()) {}

  // Returns the delay the caller must observe before the transfer of
  // `bytes` may complete.  Tokens are debited immediately (a message in
  // flight occupies the link), so callers can queue delivery without
  // sleeping on the limiter's own thread.
  Micros ReserveDelay(std::uint64_t bytes) {
    if (rate_ == 0) return Micros(0);
    MutexLock lock(mu_);
    Refill();
    tokens_ -= static_cast<double>(bytes);
    if (tokens_ >= 0) return Micros(0);
    const double deficit = -tokens_;
    const double seconds = deficit / static_cast<double>(rate_);
    return Micros(static_cast<std::int64_t>(seconds * 1e6) + 1);
  }

  // Admission-gate variant: debits tokens ONLY when the transfer can
  // proceed now.  Returns true (and charges `bytes`) when tokens cover the
  // transfer; otherwise leaves the bucket untouched and reports via
  // `retry_after` how long until they would — the shed path's retry hint.
  // A shed op never happened, so it must not consume budget the way
  // ReserveDelay's queue-and-wait contract does.
  bool TryReserve(std::uint64_t bytes, Micros* retry_after) {
    if (rate_ == 0) return true;
    MutexLock lock(mu_);
    Refill();
    if (tokens_ >= static_cast<double>(bytes)) {
      tokens_ -= static_cast<double>(bytes);
      return true;
    }
    if (retry_after != nullptr) {
      const double deficit = static_cast<double>(bytes) - tokens_;
      const double seconds = deficit / static_cast<double>(rate_);
      *retry_after = Micros(static_cast<std::int64_t>(seconds * 1e6) + 1);
    }
    return false;
  }

  std::uint64_t rate_bytes_per_second() const noexcept { return rate_; }

 private:
  void Refill() AFS_REQUIRES(mu_) {
    const Micros now = clock_.Now();
    const double elapsed_s =
        static_cast<double>((now - last_).count()) / 1e6;
    last_ = now;
    tokens_ = std::min(static_cast<double>(burst_),
                       tokens_ + elapsed_s * static_cast<double>(rate_));
  }

  Clock& clock_;
  const std::uint64_t rate_;
  const std::uint64_t burst_;
  Mutex mu_;
  double tokens_ AFS_GUARDED_BY(mu_);
  Micros last_ AFS_GUARDED_BY(mu_);
};

}  // namespace afs
