// Compression codecs.  The paper's per-file compression example (Section 3,
// "Input and output filtering") needs real codecs so that the filtering
// sentinel demonstrably transforms data; different active files can pick
// different algorithms — exactly the per-file flexibility the paper
// contrasts against whole-filesystem compression.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace afs::codec {

class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string_view name() const noexcept = 0;

  // Pure transforms; Decode(Encode(x)) == x for every byte string x.
  virtual Buffer Encode(ByteSpan input) const = 0;
  virtual Result<Buffer> Decode(ByteSpan input) const = 0;
};

// Pass-through codec (the "null filter" degenerate case).
std::unique_ptr<Codec> MakeIdentityCodec();

// Byte-oriented run-length codec; effective on repetitive data.
std::unique_ptr<Codec> MakeRleCodec();

// LZ77 with a 4 KiB sliding window and greedy longest-match parsing.
std::unique_ptr<Codec> MakeLz77Codec();

// Looks up a codec by name ("identity", "rle", "lz77"); kNotFound otherwise.
Result<std::unique_ptr<Codec>> MakeCodec(std::string_view name);

// Names of all built-in codecs, for parameterized tests and benches.
std::vector<std::string> BuiltinCodecNames();

}  // namespace afs::codec
