#include "codec/codec.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace afs::codec {
namespace {

class IdentityCodec final : public Codec {
 public:
  std::string_view name() const noexcept override { return "identity"; }

  Buffer Encode(ByteSpan input) const override {
    return Buffer(input.begin(), input.end());
  }

  Result<Buffer> Decode(ByteSpan input) const override {
    return Buffer(input.begin(), input.end());
  }
};

// RLE wire format: a sequence of (control, payload) units.
//   control < 0x80: literal run of (control+1) bytes follows.
//   control >= 0x80: repeat next byte (control-0x80+2) times  [2..129].
class RleCodec final : public Codec {
 public:
  std::string_view name() const noexcept override { return "rle"; }

  Buffer Encode(ByteSpan input) const override {
    Buffer out;
    out.reserve(input.size() / 2 + 8);
    std::size_t i = 0;
    while (i < input.size()) {
      // Measure the run starting at i.
      std::size_t run = 1;
      while (i + run < input.size() && input[i + run] == input[i] &&
             run < 129) {
        ++run;
      }
      if (run >= 2) {
        out.push_back(static_cast<std::uint8_t>(0x80 + run - 2));
        out.push_back(input[i]);
        i += run;
        continue;
      }
      // Collect literals until the next run of >= 3 (a 2-run inside
      // literals is cheaper left literal) or the 128-literal cap.
      std::size_t lit_start = i;
      while (i < input.size() && i - lit_start < 128) {
        std::size_t ahead = 1;
        while (i + ahead < input.size() && input[i + ahead] == input[i] &&
               ahead < 3) {
          ++ahead;
        }
        if (ahead >= 3) break;
        ++i;
      }
      if (i == lit_start) {  // at a run boundary with zero literals
        continue;
      }
      out.push_back(static_cast<std::uint8_t>(i - lit_start - 1));
      out.insert(out.end(), input.begin() + lit_start, input.begin() + i);
    }
    return out;
  }

  Result<Buffer> Decode(ByteSpan input) const override {
    Buffer out;
    std::size_t i = 0;
    while (i < input.size()) {
      const std::uint8_t control = input[i++];
      if (control < 0x80) {
        const std::size_t count = control + 1u;
        if (i + count > input.size()) {
          return CorruptError("rle literal run truncated");
        }
        out.insert(out.end(), input.begin() + i, input.begin() + i + count);
        i += count;
      } else {
        if (i >= input.size()) return CorruptError("rle repeat truncated");
        const std::size_t count = static_cast<std::size_t>(control - 0x80) + 2;
        out.insert(out.end(), count, input[i++]);
      }
    }
    return out;
  }
};

// LZ77 wire format: token stream.
//   0x00 len u8, bytes...        : literal block (len in [1,255])
//   0x01 dist u16 len u16        : copy `len` bytes from `dist` back.
constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 65535;

class Lz77Codec final : public Codec {
 public:
  std::string_view name() const noexcept override { return "lz77"; }

  Buffer Encode(ByteSpan input) const override {
    Buffer out;
    out.reserve(input.size() / 2 + 16);
    // Chained hash table over 4-byte prefixes.
    std::array<std::int32_t, 1 << 13> head;
    head.fill(-1);
    std::vector<std::int32_t> prev(input.size(), -1);

    Buffer literals;
    auto flush_literals = [&] {
      std::size_t off = 0;
      while (off < literals.size()) {
        const std::size_t chunk = std::min<std::size_t>(255, literals.size() - off);
        out.push_back(0x00);
        out.push_back(static_cast<std::uint8_t>(chunk));
        out.insert(out.end(), literals.begin() + off,
                   literals.begin() + off + chunk);
        off += chunk;
      }
      literals.clear();
    };

    auto hash4 = [&](std::size_t pos) {
      std::uint32_t v;
      std::memcpy(&v, input.data() + pos, 4);
      return (v * 2654435761u) >> (32 - 13);
    };

    std::size_t i = 0;
    while (i < input.size()) {
      std::size_t best_len = 0;
      std::size_t best_dist = 0;
      if (i + kMinMatch <= input.size()) {
        const std::uint32_t h = hash4(i);
        std::int32_t cand = head[h];
        int probes = 32;
        while (cand >= 0 && probes-- > 0 &&
               i - static_cast<std::size_t>(cand) <= kWindow) {
          const std::size_t c = static_cast<std::size_t>(cand);
          std::size_t len = 0;
          const std::size_t limit =
              std::min(input.size() - i, kMaxMatch);
          while (len < limit && input[c + len] == input[i + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_dist = i - c;
          }
          cand = prev[c];
        }
      }
      if (best_len >= kMinMatch) {
        flush_literals();
        out.push_back(0x01);
        AppendU16(out, static_cast<std::uint16_t>(best_dist));
        AppendU16(out, static_cast<std::uint16_t>(best_len));
        // Index every position inside the match.
        const std::size_t end = i + best_len;
        while (i < end) {
          if (i + kMinMatch <= input.size()) {
            const std::uint32_t h = hash4(i);
            prev[i] = head[h];
            head[h] = static_cast<std::int32_t>(i);
          }
          ++i;
        }
      } else {
        if (i + kMinMatch <= input.size()) {
          const std::uint32_t h = hash4(i);
          prev[i] = head[h];
          head[h] = static_cast<std::int32_t>(i);
        }
        literals.push_back(input[i]);
        ++i;
      }
    }
    flush_literals();
    return out;
  }

  Result<Buffer> Decode(ByteSpan input) const override {
    Buffer out;
    ByteReader reader(input);
    while (!reader.empty()) {
      std::uint8_t tag = 0;
      if (!reader.ReadU8(tag)) return CorruptError("lz77 tag truncated");
      if (tag == 0x00) {
        std::uint8_t len = 0;
        ByteSpan bytes;
        if (!reader.ReadU8(len) || !reader.ReadBytes(len, bytes)) {
          return CorruptError("lz77 literal truncated");
        }
        out.insert(out.end(), bytes.begin(), bytes.end());
      } else if (tag == 0x01) {
        std::uint16_t dist = 0;
        std::uint16_t len = 0;
        if (!reader.ReadU16(dist) || !reader.ReadU16(len)) {
          return CorruptError("lz77 match truncated");
        }
        if (dist == 0 || dist > out.size()) {
          return CorruptError("lz77 match distance out of range");
        }
        // Byte-by-byte: matches may overlap their own output.
        std::size_t src = out.size() - dist;
        for (std::size_t k = 0; k < len; ++k) {
          out.push_back(out[src + k]);
        }
      } else {
        return CorruptError("lz77 unknown tag");
      }
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Codec> MakeIdentityCodec() {
  return std::make_unique<IdentityCodec>();
}

std::unique_ptr<Codec> MakeRleCodec() { return std::make_unique<RleCodec>(); }

std::unique_ptr<Codec> MakeLz77Codec() {
  return std::make_unique<Lz77Codec>();
}

Result<std::unique_ptr<Codec>> MakeCodec(std::string_view name) {
  if (name == "identity") return MakeIdentityCodec();
  if (name == "rle") return MakeRleCodec();
  if (name == "lz77") return MakeLz77Codec();
  return NotFoundError("no codec named '" + std::string(name) + "'");
}

std::vector<std::string> BuiltinCodecNames() {
  return {"identity", "rle", "lz77"};
}

}  // namespace afs::codec
