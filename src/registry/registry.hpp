// Hierarchical typed key/value store modelled on the Windows registry.
// Substrate for the paper's configuration example (Section 3): a sentinel
// renders a registry subtree as a plain-text file, and parses edits written
// back by the application into registry mutations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"

namespace afs::reg {

// Value types mirror the common REG_SZ / REG_DWORD / REG_BINARY trio.
using Value = std::variant<std::string, std::uint32_t, Buffer>;

enum class ValueType { kString, kDword, kBinary };

ValueType TypeOf(const Value& v) noexcept;
std::string_view TypeName(ValueType t) noexcept;

// Thread-safe registry.  Paths are '/'-separated, e.g.
// "Software/ActiveFiles/Cache"; the empty path names the root key.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Creates the key and any missing ancestors.  Ok if it already exists.
  Status CreateKey(std::string_view path);

  // Deletes the key and its entire subtree; kNotFound if absent; the root
  // key cannot be deleted.
  Status DeleteKey(std::string_view path);

  bool KeyExists(std::string_view path) const;

  // Sets a value under an existing key (kNotFound if the key is absent).
  Status SetValue(std::string_view key_path, std::string_view name,
                  Value value);

  Result<Value> GetValue(std::string_view key_path,
                         std::string_view name) const;

  Status DeleteValue(std::string_view key_path, std::string_view name);

  // Immediate child key names, sorted.
  Result<std::vector<std::string>> ListKeys(std::string_view path) const;

  // Value names under a key, sorted.
  Result<std::vector<std::string>> ListValues(std::string_view path) const;

  // Renders the subtree at `path` in the text format below; parseable back
  // by ApplyText.  Format (one key header per line, then its values):
  //   [Software/ActiveFiles]
  //   mode = str:eager
  //   limit = dw:4096
  //   blob = bin:0a0b0c
  Result<std::string> RenderText(std::string_view path = "") const;

  // Replaces the subtree at `path` with the parsed content.  The text uses
  // paths relative to `path`.  On a parse error nothing is modified.
  Status ApplyText(std::string_view path, std::string_view text);

  // Monotone counter bumped by every successful mutation; the registry
  // sentinel uses it to cheaply detect staleness of its rendered view.
  std::uint64_t revision() const;

  // Persistence: the text format round-trips, so hives save and load as
  // ordinary files.  Load replaces the whole tree atomically (nothing
  // changes on a parse error).
  Status SaveToFile(const std::string& host_path) const;
  Status LoadFromFile(const std::string& host_path);

 private:
  struct Key {
    std::map<std::string, Key> children;
    std::map<std::string, Value> values;
  };

  // nullptr when absent.
  Key* FindKey(std::string_view path) AFS_REQUIRES(mu_);
  const Key* FindKey(std::string_view path) const AFS_REQUIRES(mu_);
  Key* EnsureKey(std::string_view path) AFS_REQUIRES(mu_);

  static void RenderKey(const Key& key, const std::string& rel_path,
                        std::string& out);

  mutable Mutex mu_;
  Key root_ AFS_GUARDED_BY(mu_);
  std::uint64_t revision_ AFS_GUARDED_BY(mu_) = 0;
};

// Parses / renders a single value in the text encoding ("str:x", "dw:42",
// "bin:0a0b").  Exposed for tests and for the registry sentinel.
std::string RenderValue(const Value& v);
Result<Value> ParseValue(std::string_view text);

}  // namespace afs::reg
