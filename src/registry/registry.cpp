#include "registry/registry.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "common/faultpoint.hpp"
#include "util/strings.hpp"

namespace afs::reg {

ValueType TypeOf(const Value& v) noexcept {
  if (std::holds_alternative<std::string>(v)) return ValueType::kString;
  if (std::holds_alternative<std::uint32_t>(v)) return ValueType::kDword;
  return ValueType::kBinary;
}

std::string_view TypeName(ValueType t) noexcept {
  switch (t) {
    case ValueType::kString: return "str";
    case ValueType::kDword: return "dw";
    case ValueType::kBinary: return "bin";
  }
  return "?";
}

namespace {

std::vector<std::string> PathComponents(std::string_view path) {
  std::vector<std::string> parts;
  for (auto& part : Split(path, '/')) {
    if (!part.empty()) parts.push_back(std::move(part));
  }
  return parts;
}

constexpr char kHexDigits[] = "0123456789abcdef";

std::string HexEncode(ByteSpan bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

bool HexDecode(std::string_view hex, Buffer& out) {
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

}  // namespace

std::string RenderValue(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kString:
      return "str:" + std::get<std::string>(v);
    case ValueType::kDword:
      return "dw:" + std::to_string(std::get<std::uint32_t>(v));
    case ValueType::kBinary:
      return "bin:" + HexEncode(std::get<Buffer>(v));
  }
  return {};
}

Result<Value> ParseValue(std::string_view text) {
  auto [tag, body] = SplitOnce(text, ':');
  if (tag == "str") return Value(std::string(body));
  if (tag == "dw") {
    std::uint64_t n = 0;
    if (!ParseU64(body, n) || n > 0xFFFFFFFFull) {
      return ProtocolError("bad dword value: " + std::string(text));
    }
    return Value(static_cast<std::uint32_t>(n));
  }
  if (tag == "bin") {
    Buffer bytes;
    if (!HexDecode(body, bytes)) {
      return ProtocolError("bad binary value: " + std::string(text));
    }
    return Value(std::move(bytes));
  }
  return ProtocolError("unknown value tag: " + std::string(text));
}

Registry::Key* Registry::FindKey(std::string_view path) {
  Key* node = &root_;
  for (const auto& part : PathComponents(path)) {
    auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = &it->second;
  }
  return node;
}

const Registry::Key* Registry::FindKey(std::string_view path) const {
  // Standard const/non-const forwarding: the non-const overload never
  // mutates, it only returns a pointer whose constness the caller's own
  // constness restores here.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast)
  return const_cast<Registry*>(this)->FindKey(path);
}

Registry::Key* Registry::EnsureKey(std::string_view path) {
  Key* node = &root_;
  for (const auto& part : PathComponents(path)) {
    node = &node->children[part];
  }
  return node;
}

Status Registry::CreateKey(std::string_view path) {
  MutexLock lock(mu_);
  EnsureKey(path);
  ++revision_;
  return Status::Ok();
}

Status Registry::DeleteKey(std::string_view path) {
  const auto parts = PathComponents(path);
  if (parts.empty()) return InvalidArgumentError("cannot delete root key");
  MutexLock lock(mu_);
  Key* node = &root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    auto it = node->children.find(parts[i]);
    if (it == node->children.end()) {
      return NotFoundError("no key: " + std::string(path));
    }
    node = &it->second;
  }
  if (node->children.erase(parts.back()) == 0) {
    return NotFoundError("no key: " + std::string(path));
  }
  ++revision_;
  return Status::Ok();
}

bool Registry::KeyExists(std::string_view path) const {
  MutexLock lock(mu_);
  return FindKey(path) != nullptr;
}

Status Registry::SetValue(std::string_view key_path, std::string_view name,
                          Value value) {
  if (name.empty()) return InvalidArgumentError("empty value name");
  MutexLock lock(mu_);
  Key* key = FindKey(key_path);
  if (key == nullptr) return NotFoundError("no key: " + std::string(key_path));
  key->values[std::string(name)] = std::move(value);
  ++revision_;
  return Status::Ok();
}

Result<Value> Registry::GetValue(std::string_view key_path,
                                 std::string_view name) const {
  MutexLock lock(mu_);
  const Key* key = FindKey(key_path);
  if (key == nullptr) return NotFoundError("no key: " + std::string(key_path));
  auto it = key->values.find(std::string(name));
  if (it == key->values.end()) {
    return NotFoundError("no value '" + std::string(name) + "' under '" +
                         std::string(key_path) + "'");
  }
  return it->second;
}

Status Registry::DeleteValue(std::string_view key_path,
                             std::string_view name) {
  MutexLock lock(mu_);
  Key* key = FindKey(key_path);
  if (key == nullptr) return NotFoundError("no key: " + std::string(key_path));
  if (key->values.erase(std::string(name)) == 0) {
    return NotFoundError("no value '" + std::string(name) + "'");
  }
  ++revision_;
  return Status::Ok();
}

Result<std::vector<std::string>> Registry::ListKeys(
    std::string_view path) const {
  MutexLock lock(mu_);
  const Key* key = FindKey(path);
  if (key == nullptr) return NotFoundError("no key: " + std::string(path));
  std::vector<std::string> names;
  names.reserve(key->children.size());
  for (const auto& [name, child] : key->children) names.push_back(name);
  return names;
}

Result<std::vector<std::string>> Registry::ListValues(
    std::string_view path) const {
  MutexLock lock(mu_);
  const Key* key = FindKey(path);
  if (key == nullptr) return NotFoundError("no key: " + std::string(path));
  std::vector<std::string> names;
  names.reserve(key->values.size());
  for (const auto& [name, value] : key->values) names.push_back(name);
  return names;
}

void Registry::RenderKey(const Key& key, const std::string& rel_path,
                         std::string& out) {
  out += "[" + rel_path + "]\n";
  for (const auto& [name, value] : key.values) {
    out += name + " = " + RenderValue(value) + "\n";
  }
  for (const auto& [name, child] : key.children) {
    RenderKey(child, rel_path.empty() ? name : rel_path + "/" + name, out);
  }
}

Result<std::string> Registry::RenderText(std::string_view path) const {
  MutexLock lock(mu_);
  const Key* key = FindKey(path);
  if (key == nullptr) return NotFoundError("no key: " + std::string(path));
  std::string out;
  RenderKey(*key, "", out);
  return out;
}

Status Registry::ApplyText(std::string_view path, std::string_view text) {
  // Parse into a staging tree first so a mid-text error mutates nothing.
  Key staged;
  Key* current = &staged;
  for (const auto& raw_line : SplitLines(text)) {
    const std::string line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return ProtocolError("unterminated key header: " + line);
      }
      const std::string rel(line.substr(1, line.size() - 2));
      current = &staged;
      for (const auto& part : PathComponents(rel)) {
        current = &current->children[part];
      }
      continue;
    }
    const auto [raw_name, raw_value] = SplitOnce(line, '=');
    const std::string name = TrimWhitespace(raw_name);
    if (name.empty() || raw_value.empty()) {
      return ProtocolError("bad value line: " + line);
    }
    AFS_ASSIGN_OR_RETURN(Value value, ParseValue(TrimWhitespace(raw_value)));
    current->values[name] = std::move(value);
  }

  MutexLock lock(mu_);
  *EnsureKey(path) = std::move(staged);
  ++revision_;
  return Status::Ok();
}

std::uint64_t Registry::revision() const {
  MutexLock lock(mu_);
  return revision_;
}

Status Registry::SaveToFile(const std::string& host_path) const {
  AFS_ASSIGN_OR_RETURN(std::string text, RenderText(""));
  // Crash-safe save: stage into a sibling temp file (same directory, so the
  // final rename(2) cannot cross filesystems), fsync the staged bytes, then
  // atomically swap it in.  A crash at any instant leaves either the old
  // hive or the new one — never a torn mix.
  const std::string tmp_path =
      host_path + ".tmp." + std::to_string(::getpid());
  FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (f == nullptr) return IoError("registry: cannot write " + tmp_path);
  auto fail = [&](const std::string& what) {
    std::fclose(f);
    ::unlink(tmp_path.c_str());
    return IoError("registry: " + what + " " + tmp_path);
  };
  if (std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
    return fail("short write to");
  }
  // Crash window between the staged write and the publishing rename: a
  // kill here must leave the previous hive untouched.
  if (Status injected = fault::Hit("registry.save.partial"); !injected.ok()) {
    return fail("fault-injected save abort for");
  }
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    return fail("cannot flush");
  }
  if (std::fclose(f) != 0) {
    ::unlink(tmp_path.c_str());
    return IoError("registry: close failed for " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), host_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return IoError("registry: cannot publish " + host_path);
  }
  return Status::Ok();
}

Status Registry::LoadFromFile(const std::string& host_path) {
  FILE* f = std::fopen(host_path.c_str(), "r");
  if (f == nullptr) return NotFoundError("registry: no file " + host_path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ApplyText("", text);
}

}  // namespace afs::reg
