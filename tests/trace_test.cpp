// Cross-process trace propagation through the sentinel IPC path.
//
// The claim under test: one application-level operation on an active file
// yields ONE causally-linked span tree, no matter which of the four
// command strategies mediates it — including when the sentinel lives in
// another process (the ids cross the pipe in the control frame's trailing
// extension, and the sentinel's spans ride the response back), and
// including across a PR-4 supervised restart (the replacement sentinel's
// spans join the same trace).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "afs.hpp"
#include "common/faultpoint.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

using core::Strategy;
using sentinel::SentinelSpec;
using test::TempDir;

// One sandboxed manager + one null-filter active file with the given
// config, mirroring the recovery_test harness.
struct Sandbox {
  explicit Sandbox(const std::map<std::string, std::string>& config)
      : api(tmp.path() + "/root") {
    sentinels::RegisterBuiltinSentinels();
    manager = std::make_unique<core::ActiveFileManager>(
        api, sentinel::SentinelRegistry::Global());
    manager->Install();
    SentinelSpec spec;
    spec.name = "null";
    for (const auto& [key, value] : config) spec.config[key] = value;
    EXPECT_OK(
        manager->CreateActiveFile("file.af", spec, AsBytes("0123456789")));
  }

  TempDir tmp;
  vfs::FileApi api;
  std::unique_ptr<core::ActiveFileManager> manager;
};

std::vector<obs::SpanRecord> SpansOfTrace(std::uint64_t trace_id) {
  std::vector<obs::SpanRecord> out;
  for (obs::SpanRecord& span : obs::TraceLog::Global().Snapshot()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

const obs::SpanRecord* FindByName(const std::vector<obs::SpanRecord>& spans,
                                  const std::string& name) {
  for (const obs::SpanRecord& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

const obs::SpanRecord* FindById(const std::vector<obs::SpanRecord>& spans,
                                std::uint64_t span_id) {
  for (const obs::SpanRecord& span : spans) {
    if (span.span_id == span_id) return &span;
  }
  return nullptr;
}

// Walks parent links from `span` to the trace root; fails the test (and
// returns false) on a dangling parent.  Bounded: a cycle cannot loop it
// past the span count.
bool ChainReachesRoot(const std::vector<obs::SpanRecord>& spans,
                      const obs::SpanRecord* span) {
  for (std::size_t hops = 0; hops <= spans.size(); ++hops) {
    if (span->parent_id == 0) return true;
    span = FindById(spans, span->parent_id);
    if (span == nullptr) return false;
  }
  return false;  // cycle
}

// Opens the file, reads 4 bytes under a TraceScope, closes, and returns
// the spans of that one trace.
std::vector<obs::SpanRecord> TracedRead(Sandbox& box) {
  obs::TraceLog::Global().Clear();
  std::uint64_t trace_id = 0;
  {
    obs::TraceScope trace("test.traced_read");
    trace_id = trace.trace_id();
    auto handle = box.api.OpenFile("file.af", vfs::OpenMode::kRead);
    EXPECT_OK(handle.status());
    if (!handle.ok()) return {};
    Buffer buf(4);
    auto read = box.api.ReadFile(*handle, MutableByteSpan(buf));
    EXPECT_OK(read.status());
    EXPECT_OK(box.api.CloseHandle(*handle));
    EXPECT_EQ(ToString(ByteSpan(buf.data(), read.ok() ? *read : 0)), "0123");
  }
  return SpansOfTrace(trace_id);
}

// Strategy-parameterized: every strategy must produce one connected tree
// rooted at the TraceScope, with the strategy's own layers present.
class TracePropagationTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(TracePropagationTest, OneReadYieldsOneConnectedSpanTree) {
  const Strategy strategy = GetParam();
  Sandbox box({{"strategy", std::string(core::StrategyName(strategy))}});
  const std::vector<obs::SpanRecord> spans = TracedRead(box);
  ASSERT_FALSE(spans.empty());

  // Every span of the trace chains back to the single root.
  const obs::SpanRecord* root = FindByName(spans, "test.traced_read");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  for (const obs::SpanRecord& span : spans) {
    SCOPED_TRACE("span=" + span.name);
    EXPECT_TRUE(ChainReachesRoot(spans, &span));
  }

  // The vfs stub layer always shows up.
  const obs::SpanRecord* vfs_read = FindByName(spans, "vfs.read");
  ASSERT_NE(vfs_read, nullptr);
  EXPECT_EQ(vfs_read->parent_id, root->span_id);

  switch (strategy) {
    case Strategy::kProcessControl:
    case Strategy::kThread:
    case Strategy::kLoop: {
      // Control strategies: the dispatch loop's span crossed back over
      // the link, parented under the app-side roundtrip span.
      const obs::SpanRecord* sentinel_read =
          FindByName(spans, "sentinel.read");
      ASSERT_NE(sentinel_read, nullptr);
      const obs::SpanRecord* roundtrip =
          FindById(spans, sentinel_read->parent_id);
      ASSERT_NE(roundtrip, nullptr);
      EXPECT_EQ(roundtrip->name, "link.roundtrip");
      if (strategy == Strategy::kProcessControl) {
        // The whole point: the sentinel span was recorded in ANOTHER
        // process and still links into this tree.
        EXPECT_NE(sentinel_read->pid, roundtrip->pid);
      }
      break;
    }
    case Strategy::kProcess:
      // Stream strategy has no control frames; the app-side pump span is
      // the deepest layer.
      EXPECT_NE(FindByName(spans, "link.stream.read"), nullptr);
      break;
    case Strategy::kDirect:
      EXPECT_NE(FindByName(spans, "sentinel.read"), nullptr);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, TracePropagationTest,
    ::testing::Values(Strategy::kDirect, Strategy::kThread,
                      Strategy::kProcess, Strategy::kProcessControl,
                      Strategy::kLoop),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      return std::string(core::StrategyName(info.param));
    });

// A supervised restart mid-trace.  The canonical recovery_test sequence
// (open, read, write, seek, read, close) dispatches its commands as
// n1..n5; kill@n4 murders the sentinel during the second read.  The
// supervisor restarts it transparently — and the REPLACEMENT sentinel's
// spans must land in the SAME trace as the first incarnation's: the
// application's causal story has no seam.
TEST(TraceRecoveryTest, SpansSurviveSupervisedRestartIntoSameTrace) {
  Sandbox box({{"strategy", "process_control"},
               {"supervise", "1"},
               {"restart_backoff_ms", "1"}});
  const std::uint64_t restarts_before = obs::Registry::Global()
                                            .GetCounter(
                                                "core.supervisor.restarts")
                                            .Value();
  auto plan = fault::ParsePlan("seed=1;sentinel.dispatch.op=kill@n4");
  ASSERT_OK(plan.status());
  fault::InstallPlan(std::move(*plan));
  ::setenv("AFS_FAULT_PLAN", "seed=1;sentinel.dispatch.op=kill@n4", 1);

  obs::TraceLog::Global().Clear();
  std::uint64_t trace_id = 0;
  {
    obs::TraceScope trace("test.traced_sequence");
    trace_id = trace.trace_id();
    auto handle = box.api.OpenFile("file.af", vfs::OpenMode::kReadWrite);
    ASSERT_OK(handle.status());
    Buffer buf(4);
    EXPECT_OK(box.api.ReadFile(*handle, MutableByteSpan(buf)).status());
    EXPECT_OK(box.api.WriteFile(*handle, AsBytes("WXYZ")).status());
    EXPECT_OK(
        box.api.SetFilePointer(*handle, 0, vfs::SeekOrigin::kBegin).status());
    auto read2 = box.api.ReadFile(*handle, MutableByteSpan(buf));
    EXPECT_OK(read2.status());
    EXPECT_EQ(ToString(ByteSpan(buf.data(), read2.ok() ? *read2 : 0)),
              "0123");
    EXPECT_OK(box.api.CloseHandle(*handle));
  }
  const std::vector<obs::SpanRecord> spans = SpansOfTrace(trace_id);

  ::unsetenv("AFS_FAULT_PLAN");
  fault::ClearPlan();

  // The restart actually happened.
  EXPECT_GT(obs::Registry::Global()
                .GetCounter("core.supervisor.restarts")
                .Value(),
            restarts_before);

  ASSERT_FALSE(spans.empty());
  const obs::SpanRecord* root = FindByName(spans, "test.traced_sequence");
  ASSERT_NE(root, nullptr);
  for (const obs::SpanRecord& span : spans) {
    SCOPED_TRACE("span=" + span.name);
    EXPECT_TRUE(ChainReachesRoot(spans, &span));
  }
  // Spans from TWO sentinel incarnations (distinct pids, both different
  // from the application's) chain into this one trace.
  std::vector<std::uint32_t> sentinel_pids;
  for (const obs::SpanRecord& span : spans) {
    if (span.name.rfind("sentinel.", 0) == 0 &&
        std::find(sentinel_pids.begin(), sentinel_pids.end(), span.pid) ==
            sentinel_pids.end()) {
      sentinel_pids.push_back(span.pid);
    }
  }
  EXPECT_GE(sentinel_pids.size(), 2u);
  for (const std::uint32_t pid : sentinel_pids) {
    EXPECT_NE(pid, static_cast<std::uint32_t>(::getpid()));
  }
}

}  // namespace
}  // namespace afs
