// Control-protocol codec tests plus link/endpoint transports in isolation.
#include <gtest/gtest.h>

#include <thread>

#include "core/links.hpp"
#include "sentinel/control.hpp"
#include "test_util.hpp"

namespace afs::sentinel {
namespace {

TEST(ControlCodecTest, MessageRoundTrip) {
  ControlMessage msg;
  msg.op = ControlOp::kSeek;
  msg.length = 123;
  msg.offset = -45;
  msg.origin = 2;
  msg.range_len = 999;
  msg.payload = ToBuffer("custom");

  auto decoded = DecodeControlMessage(ByteSpan(EncodeControlMessage(msg)));
  ASSERT_OK(decoded.status());
  EXPECT_EQ(decoded->op, ControlOp::kSeek);
  EXPECT_EQ(decoded->length, 123u);
  EXPECT_EQ(decoded->offset, -45);
  EXPECT_EQ(decoded->origin, 2);
  EXPECT_EQ(decoded->range_len, 999u);
  EXPECT_EQ(ToString(ByteSpan(decoded->payload)), "custom");
  // Inline lanes never cross the wire.
  EXPECT_TRUE(decoded->inline_in.empty());
  EXPECT_TRUE(decoded->inline_out.empty());
}

TEST(ControlCodecTest, AllOpsSurvive) {
  for (auto op : {ControlOp::kRead, ControlOp::kWrite, ControlOp::kSeek,
                  ControlOp::kGetSize, ControlOp::kSetEof, ControlOp::kFlush,
                  ControlOp::kLock, ControlOp::kUnlock, ControlOp::kCustom,
                  ControlOp::kClose}) {
    ControlMessage msg;
    msg.op = op;
    auto decoded = DecodeControlMessage(ByteSpan(EncodeControlMessage(msg)));
    ASSERT_OK(decoded.status());
    EXPECT_EQ(decoded->op, op);
  }
}

TEST(ControlCodecTest, GarbageRejected) {
  Buffer junk = {0x00};
  EXPECT_EQ(DecodeControlMessage(ByteSpan(junk)).status().code(),
            ErrorCode::kProtocolError);
  Buffer bad_op = EncodeControlMessage(ControlMessage{});
  bad_op[0] = 0xEE;
  EXPECT_EQ(DecodeControlMessage(ByteSpan(bad_op)).status().code(),
            ErrorCode::kProtocolError);
}

TEST(ControlCodecTest, ResponseRoundTrip) {
  ControlResponse resp;
  resp.status = OutOfRangeError("past eof");
  resp.number = 777;
  resp.payload = ToBuffer("tail");
  auto decoded = DecodeControlResponse(ByteSpan(EncodeControlResponse(resp)));
  ASSERT_OK(decoded.status());
  EXPECT_EQ(decoded->status.code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(decoded->status.message(), "past eof");
  EXPECT_EQ(decoded->number, 777u);
  EXPECT_EQ(ToString(ByteSpan(decoded->payload)), "tail");
}

TEST(ControlCodecTest, OverloadedResponseCarriesTypedRetryAfter) {
  // The responder only tagged the hint into the status message; the v3
  // encoder lifts it into the typed field so every peer sees it uniformly.
  ControlResponse resp;
  resp.status = OverloadedError("admission shed", 25);
  auto decoded = DecodeControlResponse(ByteSpan(EncodeControlResponse(resp)));
  ASSERT_OK(decoded.status());
  EXPECT_EQ(decoded->status.code(), ErrorCode::kOverloaded);
  EXPECT_EQ(decoded->retry_after_ms, 25u);
  EXPECT_EQ(RetryAfterHintMs(decoded->status), 25);
}

TEST(ControlCodecTest, ExplicitRetryAfterFieldBeatsTheMessageTag) {
  ControlResponse resp;
  resp.status = OverloadedError("admission shed", 25);
  resp.retry_after_ms = 40;  // the typed field is authoritative
  auto decoded = DecodeControlResponse(ByteSpan(EncodeControlResponse(resp)));
  ASSERT_OK(decoded.status());
  EXPECT_EQ(decoded->retry_after_ms, 40u);
}

TEST(ControlCodecTest, V2ResponseWithoutOverloadExtensionDecodes) {
  // A v2 peer's frame ends at lane_len; the decoder must leave the hint at
  // its zero default instead of rejecting the shorter extension.
  ControlResponse resp;  // empty message and payload: fixed layout below
  Buffer wire = EncodeControlResponse(resp);
  // flags(1) + code(2) + msg(4+0) + number(8) + payload(4+0) = offset 19.
  ASSERT_EQ(wire[19], kControlExtVersion);
  wire[19] = 2;
  wire.resize(wire.size() - 4);  // drop the v3 retry_after_ms field
  auto decoded = DecodeControlResponse(ByteSpan(wire));
  ASSERT_OK(decoded.status());
  EXPECT_EQ(decoded->retry_after_ms, 0u);
}

TEST(ControlCodecTest, TruncatedOverloadExtensionRejected) {
  ControlResponse resp;
  Buffer wire = EncodeControlResponse(resp);
  wire.resize(wire.size() - 2);  // declared v3, but the field is torn
  EXPECT_EQ(DecodeControlResponse(ByteSpan(wire)).status().code(),
            ErrorCode::kProtocolError);
}

// ---- transports -------------------------------------------------------

TEST(PipeLinkTest, CommandAndResponseCrossPipes) {
  auto pair = core::CreatePipePair();
  ASSERT_OK(pair.status());
  core::PipeLink link(std::move(pair->first));
  core::PipeEndpoint endpoint(std::move(pair->second));

  std::thread sentinel_side([&] {
    auto msg = endpoint.AF_GetControl();
    ASSERT_OK(msg.status());
    EXPECT_EQ(msg->op, ControlOp::kWrite);
    EXPECT_EQ(msg->length, 5u);
    // Write payload travels out-of-line on the write pipe.
    auto data = endpoint.AF_GetDataFromAppl(5);
    ASSERT_OK(data.status());
    EXPECT_EQ(ToString(ByteSpan(*data)), "hello");
    ControlResponse resp;
    resp.number = 5;
    ASSERT_OK(endpoint.AF_SendResponse(resp));
  });

  ControlMessage msg;
  msg.op = ControlOp::kWrite;
  msg.length = 5;
  const std::string payload = "hello";
  msg.inline_in = AsBytes(payload);
  ASSERT_OK(link.AF_SendControl(msg));
  auto resp = link.AF_GetResponse();
  ASSERT_OK(resp.status());
  EXPECT_EQ(resp->number, 5u);
  sentinel_side.join();
}

TEST(PipeLinkTest, ShutdownGivesEofToEndpoint) {
  auto pair = core::CreatePipePair();
  ASSERT_OK(pair.status());
  core::PipeLink link(std::move(pair->first));
  core::PipeEndpoint endpoint(std::move(pair->second));
  link.Shutdown();
  EXPECT_EQ(endpoint.AF_GetControl().status().code(), ErrorCode::kClosed);
}

TEST(ThreadRendezvousTest, InlineLanesPassUserBuffers) {
  core::ThreadRendezvous rendezvous;

  std::thread sentinel_side([&] {
    auto msg = rendezvous.AF_GetControl();
    ASSERT_OK(msg.status());
    EXPECT_EQ(msg->op, ControlOp::kRead);
    // Fill the application's buffer directly — the one-copy path.
    ASSERT_FALSE(msg->inline_out.empty());
    std::memcpy(msg->inline_out.data(), "direct", 6);
    ControlResponse resp;
    resp.number = 6;
    ASSERT_OK(rendezvous.AF_SendResponse(resp));
  });

  Buffer user_buffer(6);
  ControlMessage msg;
  msg.op = ControlOp::kRead;
  msg.length = 6;
  msg.inline_out = MutableByteSpan(user_buffer);
  ASSERT_OK(rendezvous.AF_SendControl(msg));
  auto resp = rendezvous.AF_GetResponse();
  ASSERT_OK(resp.status());
  EXPECT_EQ(resp->number, 6u);
  EXPECT_EQ(ToString(ByteSpan(user_buffer)), "direct");
  sentinel_side.join();
}

TEST(ThreadRendezvousTest, ShutdownUnblocksBothSides) {
  core::ThreadRendezvous rendezvous;
  std::thread waiter([&] {
    EXPECT_EQ(rendezvous.AF_GetControl().status().code(), ErrorCode::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  rendezvous.Shutdown();
  waiter.join();
  ControlMessage msg;
  EXPECT_EQ(rendezvous.AF_SendControl(msg).code(), ErrorCode::kClosed);
  EXPECT_EQ(rendezvous.AF_GetResponse().status().code(), ErrorCode::kClosed);
}

TEST(ThreadRendezvousTest, SequentialCommands) {
  core::ThreadRendezvous rendezvous;
  std::thread sentinel_side([&] {
    for (int i = 0; i < 100; ++i) {
      auto msg = rendezvous.AF_GetControl();
      ASSERT_OK(msg.status());
      ControlResponse resp;
      resp.number = msg->length * 2;
      ASSERT_OK(rendezvous.AF_SendResponse(resp));
    }
  });
  for (int i = 0; i < 100; ++i) {
    ControlMessage msg;
    msg.op = ControlOp::kGetSize;
    msg.length = static_cast<std::uint32_t>(i);
    ASSERT_OK(rendezvous.AF_SendControl(msg));
    auto resp = rendezvous.AF_GetResponse();
    ASSERT_OK(resp.status());
    EXPECT_EQ(resp->number, static_cast<std::uint64_t>(i) * 2);
  }
  sentinel_side.join();
}

}  // namespace
}  // namespace afs::sentinel
