// NotificationHub + notify sentinel tests (the Watchdogs-style
// access-notification side effect, paper Sections 1 and 7).
#include <gtest/gtest.h>

#include "afs.hpp"
#include "sentinels/notify.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

using core::ActiveFileManager;
using sentinel::SentinelSpec;
using sentinels::AccessEvent;
using sentinels::NotificationHub;
using test::TempDir;

TEST(NotificationHubTest, PublishReachesMatchingSubscribersOnly) {
  NotificationHub hub;
  std::vector<std::string> a_events;
  std::vector<std::string> b_events;
  hub.Subscribe("a", [&](const AccessEvent& e) {
    a_events.push_back(e.operation);
  });
  hub.Subscribe("b", [&](const AccessEvent& e) {
    b_events.push_back(e.operation);
  });
  hub.Publish("a", AccessEvent{"p", "read", 0, 1});
  hub.Publish("a", AccessEvent{"p", "write", 0, 1});
  hub.Publish("b", AccessEvent{"p", "close", 0, 0});
  EXPECT_EQ(a_events, (std::vector<std::string>{"read", "write"}));
  EXPECT_EQ(b_events, (std::vector<std::string>{"close"}));
  EXPECT_EQ(hub.PublishedCount("a"), 2u);
  EXPECT_EQ(hub.PublishedCount("b"), 1u);
  EXPECT_EQ(hub.PublishedCount("nope"), 0u);
}

TEST(NotificationHubTest, UnsubscribeStopsDelivery) {
  NotificationHub hub;
  int count = 0;
  const auto id = hub.Subscribe("t", [&](const AccessEvent&) { ++count; });
  hub.Publish("t", AccessEvent{});
  hub.Unsubscribe(id);
  hub.Publish("t", AccessEvent{});
  EXPECT_EQ(count, 1);
}

TEST(NotificationHubTest, MultipleSubscribersSameTopic) {
  NotificationHub hub;
  int count = 0;
  hub.Subscribe("t", [&](const AccessEvent&) { ++count; });
  hub.Subscribe("t", [&](const AccessEvent&) { ++count; });
  hub.Publish("t", AccessEvent{});
  EXPECT_EQ(count, 2);
}

class NotifySentinelTest : public ::testing::Test {
 protected:
  NotifySentinelTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global()) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ActiveFileManager manager_;
};

TEST_F(NotifySentinelTest, FileAccessTriggersEvents) {
  SentinelSpec spec;
  spec.name = "notify";
  spec.config["topic"] = "watched-doc";
  spec.config["strategy"] = "thread";  // sentinel publishes in-process
  ASSERT_OK(manager_.CreateActiveFile("doc.af", spec, AsBytes("contents")));

  std::vector<AccessEvent> events;
  std::mutex mu;
  const auto id = NotificationHub::Global().Subscribe(
      "watched-doc", [&](const AccessEvent& e) {
        std::lock_guard<std::mutex> lock(mu);
        events.push_back(e);
      });

  auto handle = api_.OpenFile("doc.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  Buffer out(4);
  ASSERT_OK(api_.ReadFile(*handle, MutableByteSpan(out)).status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("mod")).status());
  ASSERT_OK(api_.CloseHandle(*handle));
  NotificationHub::Global().Unsubscribe(id);

  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].operation, "open");
  EXPECT_EQ(events[1].operation, "read");
  EXPECT_EQ(events[1].bytes, 4u);
  EXPECT_EQ(events[2].operation, "write");
  EXPECT_EQ(events[2].bytes, 3u);
  EXPECT_EQ(events[3].operation, "close");
  for (const auto& event : events) EXPECT_EQ(event.path, "doc.af");
}

TEST_F(NotifySentinelTest, EventFilterRestrictsPublishing) {
  SentinelSpec spec;
  spec.name = "notify";
  spec.config["topic"] = "writes-only";
  spec.config["events"] = "write";
  spec.config["strategy"] = "direct";
  ASSERT_OK(manager_.CreateActiveFile("w.af", spec));

  int writes = 0;
  int others = 0;
  const auto id = NotificationHub::Global().Subscribe(
      "writes-only", [&](const AccessEvent& e) {
        (e.operation == "write" ? writes : others)++;
      });

  auto handle = api_.OpenFile("w.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("a")).status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("b")).status());
  Buffer out(1);
  ASSERT_OK(api_.SetFilePointer(*handle, 0, vfs::SeekOrigin::kBegin).status());
  ASSERT_OK(api_.ReadFile(*handle, MutableByteSpan(out)).status());
  ASSERT_OK(api_.CloseHandle(*handle));
  NotificationHub::Global().Unsubscribe(id);

  EXPECT_EQ(writes, 2);
  EXPECT_EQ(others, 0);
}

TEST_F(NotifySentinelTest, DataPartStillBehavesNormally) {
  SentinelSpec spec;
  spec.name = "notify";
  spec.config["strategy"] = "direct";
  ASSERT_OK(manager_.CreateActiveFile("n.af", spec, AsBytes("base")));
  auto content = api_.ReadWholeFile("n.af");
  ASSERT_OK(content.status());
  EXPECT_EQ(ToString(ByteSpan(*content)), "base");
}

}  // namespace
}  // namespace afs
