// Property test of the paper's central claim: "from the perspective of the
// end-application, active files are indistinguishable from non-active
// files" (Section 1).  We run randomized operation sequences against a
// null-filter active file and a plain passive file side by side and demand
// identical observable results — same return values, same data, same sizes,
// same final contents — across every command strategy and cache mode.
#include <gtest/gtest.h>

#include "afs.hpp"
#include "test_util.hpp"
#include "util/prng.hpp"

namespace afs {
namespace {

using core::ActiveFileManager;
using core::Strategy;
using sentinel::SentinelSpec;
using test::TempDir;

struct Scenario {
  Strategy strategy;
  std::string cache;
  std::uint64_t seed;
  bool pipelined = false;  // wrap the null filter in a pipeline stage
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return std::string(StrategyName(info.param.strategy)) + "_" +
         info.param.cache + "_s" + std::to_string(info.param.seed) +
         (info.param.pipelined ? "_piped" : "");
}

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {
 protected:
  EquivalenceTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global()) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ActiveFileManager manager_;
};

TEST_P(EquivalenceTest, RandomOperationSequencesMatchPassiveFile) {
  const Scenario& scenario = GetParam();
  SentinelSpec spec;
  if (scenario.pipelined) {
    // Composition must not change semantics: pipeline(null, null) is
    // still a passive file.
    spec.name = "pipeline";
    spec.config["chain"] = "null,null";
  } else {
    spec.name = "null";
  }
  spec.config["cache"] = scenario.cache;
  spec.config["strategy"] = std::string(StrategyName(scenario.strategy));
  ASSERT_OK(manager_.CreateActiveFile("active.af", spec));
  ASSERT_OK(api_.WriteWholeFile("passive.bin", {}));

  auto active = api_.OpenFile("active.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(active.status());
  auto passive = api_.OpenFile("passive.bin", vfs::OpenMode::kReadWrite);
  ASSERT_OK(passive.status());

  Prng prng(scenario.seed);
  for (int step = 0; step < 200; ++step) {
    const auto op = prng.NextBelow(6);
    switch (op) {
      case 0: {  // write a random chunk
        Buffer chunk(1 + prng.NextBelow(64));
        prng.Fill(MutableByteSpan(chunk));
        auto wa = api_.WriteFile(*active, ByteSpan(chunk));
        auto wp = api_.WriteFile(*passive, ByteSpan(chunk));
        ASSERT_OK(wa.status());
        ASSERT_OK(wp.status());
        ASSERT_EQ(*wa, *wp) << "step " << step;
        break;
      }
      case 1: {  // read a chunk
        Buffer outa(1 + prng.NextBelow(64));
        Buffer outp(outa.size());
        auto ra = api_.ReadFile(*active, MutableByteSpan(outa));
        auto rp = api_.ReadFile(*passive, MutableByteSpan(outp));
        ASSERT_OK(ra.status());
        ASSERT_OK(rp.status());
        ASSERT_EQ(*ra, *rp) << "step " << step;
        outa.resize(*ra);
        outp.resize(*rp);
        ASSERT_EQ(outa, outp) << "step " << step;
        break;
      }
      case 2: {  // absolute seek within [0, 2*size]
        auto size = api_.GetFileSize(*passive);
        ASSERT_OK(size.status());
        const auto target =
            static_cast<std::int64_t>(prng.NextBelow(2 * *size + 1));
        auto sa = api_.SetFilePointer(*active, target, vfs::SeekOrigin::kBegin);
        auto sp =
            api_.SetFilePointer(*passive, target, vfs::SeekOrigin::kBegin);
        ASSERT_OK(sa.status());
        ASSERT_OK(sp.status());
        ASSERT_EQ(*sa, *sp) << "step " << step;
        break;
      }
      case 3: {  // seek from end
        auto sa = api_.SetFilePointer(*active, 0, vfs::SeekOrigin::kEnd);
        auto sp = api_.SetFilePointer(*passive, 0, vfs::SeekOrigin::kEnd);
        ASSERT_OK(sa.status());
        ASSERT_OK(sp.status());
        ASSERT_EQ(*sa, *sp) << "step " << step;
        break;
      }
      case 4: {  // size query
        auto za = api_.GetFileSize(*active);
        auto zp = api_.GetFileSize(*passive);
        ASSERT_OK(za.status());
        ASSERT_OK(zp.status());
        ASSERT_EQ(*za, *zp) << "step " << step;
        break;
      }
      case 5: {  // occasionally truncate at the current pointer
        if (prng.NextBelow(4) != 0) break;
        ASSERT_OK(api_.SetEndOfFile(*active));
        ASSERT_OK(api_.SetEndOfFile(*passive));
        break;
      }
    }
  }

  ASSERT_OK(api_.CloseHandle(*active));
  ASSERT_OK(api_.CloseHandle(*passive));

  // Final persisted contents agree byte for byte.
  auto active_data = manager_.ReadDataPart("active.af");
  ASSERT_OK(active_data.status());
  auto passive_data = api_.ReadWholeFile("passive.bin");
  ASSERT_OK(passive_data.status());
  EXPECT_EQ(*active_data, *passive_data);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (Strategy strategy : {Strategy::kProcessControl, Strategy::kThread,
                            Strategy::kDirect}) {
    for (const char* cache : {"disk", "memory"}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        scenarios.push_back({strategy, cache, seed, false});
      }
    }
  }
  // Pipelined variants: one seed per strategy is plenty.
  for (Strategy strategy : {Strategy::kProcessControl, Strategy::kThread,
                            Strategy::kDirect}) {
    scenarios.push_back({strategy, "disk", 4ull, true});
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(Equivalence, EquivalenceTest,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

}  // namespace
}  // namespace afs
