// Property test of the paper's central claim: "from the perspective of the
// end-application, active files are indistinguishable from non-active
// files" (Section 1).  We run randomized operation sequences against a
// null-filter active file and a plain passive file side by side and demand
// identical observable results — same return values, same data, same sizes,
// same final contents — across every command strategy and cache mode.
#include <gtest/gtest.h>

#include <thread>

#include "afs.hpp"
#include "codec/codec.hpp"
#include "common/faultpoint.hpp"
#include "ipc/pipe.hpp"
#include "test_util.hpp"
#include "util/blocking_queue.hpp"
#include "util/prng.hpp"
#include "util/ring_buffer.hpp"

namespace afs {
namespace {

using core::ActiveFileManager;
using core::Strategy;
using sentinel::SentinelSpec;
using test::TempDir;

struct Scenario {
  Strategy strategy;
  std::string cache;
  std::uint64_t seed;
  bool pipelined = false;  // wrap the null filter in a pipeline stage
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return std::string(StrategyName(info.param.strategy)) + "_" +
         info.param.cache + "_s" + std::to_string(info.param.seed) +
         (info.param.pipelined ? "_piped" : "");
}

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {
 protected:
  EquivalenceTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global()) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ActiveFileManager manager_;
};

TEST_P(EquivalenceTest, RandomOperationSequencesMatchPassiveFile) {
  const Scenario& scenario = GetParam();
  SentinelSpec spec;
  if (scenario.pipelined) {
    // Composition must not change semantics: pipeline(null, null) is
    // still a passive file.
    spec.name = "pipeline";
    spec.config["chain"] = "null,null";
  } else {
    spec.name = "null";
  }
  spec.config["cache"] = scenario.cache;
  spec.config["strategy"] = std::string(StrategyName(scenario.strategy));
  ASSERT_OK(manager_.CreateActiveFile("active.af", spec));
  ASSERT_OK(api_.WriteWholeFile("passive.bin", {}));

  auto active = api_.OpenFile("active.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(active.status());
  auto passive = api_.OpenFile("passive.bin", vfs::OpenMode::kReadWrite);
  ASSERT_OK(passive.status());

  Prng prng(scenario.seed);
  for (int step = 0; step < 200; ++step) {
    const auto op = prng.NextBelow(6);
    switch (op) {
      case 0: {  // write a random chunk
        Buffer chunk(1 + prng.NextBelow(64));
        prng.Fill(MutableByteSpan(chunk));
        auto wa = api_.WriteFile(*active, ByteSpan(chunk));
        auto wp = api_.WriteFile(*passive, ByteSpan(chunk));
        ASSERT_OK(wa.status());
        ASSERT_OK(wp.status());
        ASSERT_EQ(*wa, *wp) << "step " << step;
        break;
      }
      case 1: {  // read a chunk
        Buffer outa(1 + prng.NextBelow(64));
        Buffer outp(outa.size());
        auto ra = api_.ReadFile(*active, MutableByteSpan(outa));
        auto rp = api_.ReadFile(*passive, MutableByteSpan(outp));
        ASSERT_OK(ra.status());
        ASSERT_OK(rp.status());
        ASSERT_EQ(*ra, *rp) << "step " << step;
        outa.resize(*ra);
        outp.resize(*rp);
        ASSERT_EQ(outa, outp) << "step " << step;
        break;
      }
      case 2: {  // absolute seek within [0, 2*size]
        auto size = api_.GetFileSize(*passive);
        ASSERT_OK(size.status());
        const auto target =
            static_cast<std::int64_t>(prng.NextBelow(2 * *size + 1));
        auto sa = api_.SetFilePointer(*active, target, vfs::SeekOrigin::kBegin);
        auto sp =
            api_.SetFilePointer(*passive, target, vfs::SeekOrigin::kBegin);
        ASSERT_OK(sa.status());
        ASSERT_OK(sp.status());
        ASSERT_EQ(*sa, *sp) << "step " << step;
        break;
      }
      case 3: {  // seek from end
        auto sa = api_.SetFilePointer(*active, 0, vfs::SeekOrigin::kEnd);
        auto sp = api_.SetFilePointer(*passive, 0, vfs::SeekOrigin::kEnd);
        ASSERT_OK(sa.status());
        ASSERT_OK(sp.status());
        ASSERT_EQ(*sa, *sp) << "step " << step;
        break;
      }
      case 4: {  // size query
        auto za = api_.GetFileSize(*active);
        auto zp = api_.GetFileSize(*passive);
        ASSERT_OK(za.status());
        ASSERT_OK(zp.status());
        ASSERT_EQ(*za, *zp) << "step " << step;
        break;
      }
      case 5: {  // occasionally truncate at the current pointer
        if (prng.NextBelow(4) != 0) break;
        ASSERT_OK(api_.SetEndOfFile(*active));
        ASSERT_OK(api_.SetEndOfFile(*passive));
        break;
      }
    }
  }

  ASSERT_OK(api_.CloseHandle(*active));
  ASSERT_OK(api_.CloseHandle(*passive));

  // Final persisted contents agree byte for byte.
  auto active_data = manager_.ReadDataPart("active.af");
  ASSERT_OK(active_data.status());
  auto passive_data = api_.ReadWholeFile("passive.bin");
  ASSERT_OK(passive_data.status());
  EXPECT_EQ(*active_data, *passive_data);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (Strategy strategy : {Strategy::kProcessControl, Strategy::kThread,
                            Strategy::kDirect}) {
    for (const char* cache : {"disk", "memory"}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        scenarios.push_back({strategy, cache, seed, false});
      }
    }
  }
  // Pipelined variants: one seed per strategy is plenty.
  for (Strategy strategy : {Strategy::kProcessControl, Strategy::kThread,
                            Strategy::kDirect}) {
    scenarios.push_back({strategy, "disk", 4ull, true});
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(Equivalence, EquivalenceTest,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

// ---- seeded property tests -----------------------------------------------
// Each case runs many independent seeds and tags every assertion with the
// seed, so a failure line is a one-number repro.

// Random payloads with runs (RLE's case) and noise (LZ77's worst case)
// mixed, sized to cross each codec's internal block/window boundaries.
Buffer RandomPayload(Prng& prng) {
  Buffer payload(prng.NextBelow(6000));
  std::size_t i = 0;
  while (i < payload.size()) {
    if (prng.NextBelow(2) == 0) {
      const auto byte = static_cast<std::uint8_t>(prng.NextBelow(256));
      const std::size_t run =
          std::min<std::size_t>(1 + prng.NextBelow(300), payload.size() - i);
      std::fill_n(payload.begin() + static_cast<std::ptrdiff_t>(i), run,
                  byte);
      i += run;
    } else {
      const std::size_t run =
          std::min<std::size_t>(1 + prng.NextBelow(100), payload.size() - i);
      prng.Fill(MutableByteSpan(payload.data() + i, run));
      i += run;
    }
  }
  return payload;
}

TEST(CodecPropertyTest, EncodeDecodeRoundTripsEverySeed) {
  for (const std::string& name : codec::BuiltinCodecNames()) {
    auto codec = codec::MakeCodec(name);
    ASSERT_OK(codec.status());
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      SCOPED_TRACE("codec=" + name + " seed=" + std::to_string(seed));
      Prng prng(seed * 0x9E3779B9ull);
      const Buffer payload = RandomPayload(prng);
      const Buffer encoded = (*codec)->Encode(ByteSpan(payload));
      auto decoded = (*codec)->Decode(ByteSpan(encoded));
      ASSERT_OK(decoded.status());
      ASSERT_EQ(*decoded, payload);
    }
  }
}

TEST(RingBufferPropertyTest, PartialChunkedTransferPreservesByteStream) {
  // Push a payload through a small ring with a randomized interleaving of
  // partial writes and partial reads; the ring is a FIFO, so the output
  // must be byte-identical regardless of the chunking schedule.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Prng prng(seed);
    Buffer input(1 + prng.NextBelow(4096));
    prng.Fill(MutableByteSpan(input));
    RingBuffer ring(1 + prng.NextBelow(64));

    Buffer output;
    output.reserve(input.size());
    std::size_t written = 0;
    Buffer scratch(64);
    while (output.size() < input.size()) {
      if (written < input.size() && prng.NextBelow(2) == 0) {
        const std::size_t want =
            std::min<std::size_t>(1 + prng.NextBelow(48),
                                  input.size() - written);
        written += ring.Write(ByteSpan(input.data() + written, want));
      } else {
        const std::size_t want = 1 + prng.NextBelow(48);
        const std::size_t got =
            ring.Read(MutableByteSpan(scratch.data(), want));
        output.insert(output.end(), scratch.begin(),
                      scratch.begin() + static_cast<std::ptrdiff_t>(got));
      }
    }
    ASSERT_EQ(output, input);
    ASSERT_TRUE(ring.empty());
  }
}

TEST(BlockingQueuePropertyTest, ConcurrentProducersDeliverExactlyOnceInOrder) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Prng prng(seed);
    const int producers = 2 + static_cast<int>(prng.NextBelow(3));
    const int per_producer = 50 + static_cast<int>(prng.NextBelow(200));
    BlockingQueue<std::pair<int, int>> queue(1 + prng.NextBelow(8));

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&queue, p, per_producer] {
        for (int i = 0; i < per_producer; ++i) {
          ASSERT_TRUE(queue.Push({p, i}));
        }
      });
    }
    // Single consumer: per-producer order must survive the bounded queue's
    // blocking/wakeup churn, and nothing may be lost or duplicated.
    std::vector<int> next(static_cast<std::size_t>(producers), 0);
    for (int total = producers * per_producer; total > 0; --total) {
      auto item = queue.Pop();
      ASSERT_TRUE(item.has_value());
      ASSERT_EQ(item->second, next[static_cast<std::size_t>(item->first)]++);
    }
    for (auto& t : threads) t.join();
    queue.Close();
    ASSERT_FALSE(queue.Pop().has_value());
  }
}

TEST(PipeFaultPropertyTest, ReadExactSurvivesInjectedShortReads) {
  // Arm probabilistic short reads on the pipe site: ReadExact must still
  // assemble the exact byte stream — short reads are retried, only EOF is
  // fatal.  This is the framework's truncate semantics under test, seeded
  // and replayable.
  std::uint64_t total_triggers = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("replay: AFS_FAULT_PLAN=\"seed=" + std::to_string(seed) +
                 ";ipc.pipe.read=truncate:3@p0.5\"");
    auto plan = fault::ParsePlan("seed=" + std::to_string(seed) +
                                 ";ipc.pipe.read=truncate:3@p0.5");
    ASSERT_OK(plan.status());

    Prng prng(seed);
    Buffer payload(512 + prng.NextBelow(2048));
    prng.Fill(MutableByteSpan(payload));

    auto pipe = ipc::Pipe::Create();
    ASSERT_OK(pipe.status());
    std::thread writer([&] {
      ASSERT_OK(pipe->write_end.WriteAll(ByteSpan(payload)));
      pipe->write_end.Close();
    });

    Buffer received(payload.size());
    {
      fault::ScopedFaultPlan scoped(std::move(*plan));
      ASSERT_OK(pipe->read_end.ReadExact(MutableByteSpan(received)));
      total_triggers += fault::TriggeredCount();
    }
    writer.join();
    ASSERT_EQ(received, payload);
  }
  // A p-trigger is a per-hit coin flip: a payload the kernel hands over in
  // one read() gives it a single chance per seed, so individual seeds may
  // legitimately never fire.  Across eight seeds at p=0.5 a silent sweep
  // means the site is disarmed, not unlucky.
  EXPECT_GT(total_triggers, 0u);
}

}  // namespace
}  // namespace afs
