// HTTP-like protocol tests: conformance, ranges, revalidation headers,
// robustness against malformed requests.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "afs.hpp"
#include "net/http_server.hpp"
#include "test_util.hpp"

namespace afs::net {
namespace {

using test::TempDir;

class HttpTest : public ::testing::Test {
 protected:
  HttpTest()
      : server_(test::UniqueSocketPath(tmp_.path(), "http"), store_) {
    EXPECT_TRUE(server_.Start().ok());
  }
  ~HttpTest() override { server_.Stop(); }

  TempDir tmp_;
  FileServer store_;
  HttpServer server_;
};

TEST_F(HttpTest, GetPutHeadRoundTrip) {
  HttpClient client(server_.socket_path());
  ASSERT_OK(client.Put("doc.txt", AsBytes("http body")));
  auto body = client.Get("doc.txt");
  ASSERT_OK(body.status());
  EXPECT_EQ(ToString(ByteSpan(*body)), "http body");
  auto size = client.Head("doc.txt");
  ASSERT_OK(size.status());
  EXPECT_EQ(*size, 9u);
}

TEST_F(HttpTest, NotFoundIs404) {
  HttpClient client(server_.socket_path());
  EXPECT_EQ(client.Get("missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(client.Head("missing").status().code(), ErrorCode::kNotFound);
}

TEST_F(HttpTest, RangeRequests) {
  ASSERT_OK(store_.Put("r", AsBytes("0123456789")));
  HttpClient client(server_.socket_path());
  auto part = client.GetRange("r", 2, 5);
  ASSERT_OK(part.status());
  EXPECT_EQ(ToString(ByteSpan(*part)), "2345");
  // Range clamped at EOF.
  part = client.GetRange("r", 8, 100);
  ASSERT_OK(part.status());
  EXPECT_EQ(ToString(ByteSpan(*part)), "89");
}

TEST_F(HttpTest, RevisionHeaderAdvances) {
  HttpClient client(server_.socket_path());
  ASSERT_OK(client.Put("v", AsBytes("one")));
  auto r1 = client.Request("GET", "v");
  ASSERT_OK(r1.status());
  ASSERT_OK(client.Put("v", AsBytes("two")));
  auto r2 = client.Request("GET", "v");
  ASSERT_OK(r2.status());
  EXPECT_LT(r1->headers.at("x-revision"), r2->headers.at("x-revision"));
}

TEST_F(HttpTest, BinaryBodiesSurvive) {
  HttpClient client(server_.socket_path());
  Buffer binary(777);
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<std::uint8_t>((i * 7) & 0xff);
  }
  ASSERT_OK(client.Put("bin", ByteSpan(binary)));
  auto back = client.Get("bin");
  ASSERT_OK(back.status());
  EXPECT_EQ(*back, binary);
}

TEST_F(HttpTest, UnknownMethodIs405AndBadRequestIs400) {
  HttpClient client(server_.socket_path());
  auto response = client.Request("BREW", "coffee");
  ASSERT_OK(response.status());
  EXPECT_EQ(response->status_code, 405);

  // Raw garbage request line.
  test::RawUnixClient raw(server_.socket_path());
  ASSERT_GE(raw.fd(), 0);
  ASSERT_TRUE(raw.Send("NONSENSE\r\n\r\n"));
  EXPECT_NE(raw.Receive().find("400"), std::string::npos);
  raw.Close();

  // The server keeps serving afterwards.
  ASSERT_OK(client.Put("alive", AsBytes("yes")));
}

TEST_F(HttpTest, PutWithoutContentLengthIs400) {
  test::RawUnixClient raw(server_.socket_path());
  ASSERT_GE(raw.fd(), 0);
  ASSERT_TRUE(raw.Send("PUT /x HTTP/1.0\r\nHost: afs\r\n\r\n"));
  EXPECT_NE(raw.Receive().find("400"), std::string::npos);
}

TEST_F(HttpTest, ConcurrentClients) {
  ASSERT_OK(store_.Put("c", AsBytes("shared")));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      HttpClient client(server_.socket_path());
      for (int i = 0; i < 15; ++i) {
        if (!client.Get("c").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- the http sentinel end-to-end ----------------------------------------

TEST_F(HttpTest, SentinelFetchEditStore) {
  ASSERT_OK(store_.Put("page", AsBytes("hypertext body")));
  test::TempDir ws;
  vfs::FileApi api(ws.path() + "/root");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api,
                                  afs::sentinel::SentinelRegistry::Global());
  manager.Install();

  afs::sentinel::SentinelSpec spec;
  spec.name = "http";
  spec.config["url"] = "http:" + server_.socket_path();
  spec.config["file"] = "page";
  ASSERT_OK(manager.CreateActiveFile("page.af", spec));

  auto content = api.ReadWholeFile("page.af");
  ASSERT_OK(content.status());
  EXPECT_EQ(ToString(ByteSpan(*content)), "hypertext body");

  auto handle = api.OpenFile("page.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api.WriteFile(*handle, AsBytes("HYPERTEXT")).status());
  ASSERT_OK(api.CloseHandle(*handle));
  auto server_side = store_.Get("page");
  ASSERT_OK(server_side.status());
  EXPECT_EQ(ToString(ByteSpan(*server_side)), "HYPERTEXT body");
}

TEST_F(HttpTest, SentinelDemandPagingWithoutCache) {
  ASSERT_OK(store_.Put("big", AsBytes("0123456789abcdef")));
  test::TempDir ws;
  vfs::FileApi api(ws.path() + "/root");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api,
                                  afs::sentinel::SentinelRegistry::Global());
  manager.Install();

  afs::sentinel::SentinelSpec spec;
  spec.name = "http";
  spec.config["url"] = "http:" + server_.socket_path();
  spec.config["file"] = "big";
  spec.config["cache"] = "none";
  ASSERT_OK(manager.CreateActiveFile("big.af", spec));

  auto handle = api.OpenFile("big.af", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());
  EXPECT_EQ(*api.GetFileSize(*handle), 16u);  // HEAD
  ASSERT_OK(api.SetFilePointer(*handle, 10, vfs::SeekOrigin::kBegin).status());
  Buffer out(4);
  ASSERT_OK(api.ReadFile(*handle, MutableByteSpan(out)).status());  // Range
  EXPECT_EQ(ToString(ByteSpan(out)), "abcd");
  // Writes without a local copy are refused.
  EXPECT_EQ(api.WriteFile(*handle, AsBytes("x")).status().code(),
            ErrorCode::kUnsupported);
  ASSERT_OK(api.CloseHandle(*handle));
}

// ---- stats surface ---------------------------------------------------------

// GET /stats is the same renderer over the same registry snapshot as the
// in-process surfaces (afsctl stats, the SIGUSR1 dump): with nothing
// recording in between, the served body and a local render are
// byte-identical.  Batched op counters (obs::OpPair) publish on the
// snapshotting thread, so this thread drains its own pending from earlier
// tests first — otherwise the local render would see counts the server
// thread's render cannot.
TEST_F(HttpTest, StatsEndpointMatchesLocalRender) {
  (void)obs::Registry::Global().TakeSnapshot();
  HttpClient client(server_.socket_path());
  auto json = client.Request("GET", "stats");
  ASSERT_OK(json.status());
  EXPECT_EQ(json->status_code, 200);
  EXPECT_EQ(json->headers.at("content-type"), "application/json");
  EXPECT_EQ(ToString(ByteSpan(json->body)), obs::StatsJson());
  // The request itself is metered; the counter made it into its own dump.
  EXPECT_NE(ToString(ByteSpan(json->body)).find("\"net.http.stats_requests\""),
            std::string::npos);

  auto text = client.Request("GET", "stats.txt");
  ASSERT_OK(text.status());
  EXPECT_EQ(text->headers.at("content-type"), "text/plain");
  EXPECT_EQ(ToString(ByteSpan(text->body)), obs::StatsText());
}

TEST_F(HttpTest, StatsEndpointCountsRequestsAndHonorsHead) {
  HttpClient client(server_.socket_path());
  const std::uint64_t before = obs::Registry::Global()
                                   .GetCounter("net.http.stats_requests")
                                   .Value();
  ASSERT_OK(client.Request("GET", "stats").status());
  auto head = client.Request("HEAD", "stats");
  ASSERT_OK(head.status());
  EXPECT_EQ(head->status_code, 200);
  EXPECT_TRUE(head->body.empty());
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("net.http.stats_requests")
                .Value(),
            before + 2);
  // The stats namespace is reserved ahead of the store: a file named
  // "stats" in the store is shadowed, not served.
  ASSERT_OK(store_.Put("stats", AsBytes("shadowed")));
  auto got = client.Request("GET", "stats");
  ASSERT_OK(got.status());
  EXPECT_NE(ToString(ByteSpan(got->body)), "shadowed");
}

}  // namespace
}  // namespace afs::net
