// Codec tests: exact round trips (including property-style sweeps over
// generated inputs), compression effectiveness, and corrupt-input safety.
#include <gtest/gtest.h>

#include "codec/codec.hpp"
#include "util/prng.hpp"

namespace afs {
namespace {

class CodecRoundTripTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<codec::Codec> Make() {
    auto result = codec::MakeCodec(GetParam());
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST_P(CodecRoundTripTest, EmptyInput) {
  auto c = Make();
  const Buffer encoded = c->Encode({});
  auto decoded = c->Decode(ByteSpan(encoded));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST_P(CodecRoundTripTest, ShortAscii) {
  auto c = Make();
  const Buffer input = ToBuffer("hello, world");
  auto decoded = c->Decode(ByteSpan(c->Encode(ByteSpan(input))));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, input);
}

TEST_P(CodecRoundTripTest, AllByteValues) {
  auto c = Make();
  Buffer input(512);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  auto decoded = c->Decode(ByteSpan(c->Encode(ByteSpan(input))));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, input);
}

TEST_P(CodecRoundTripTest, LongRuns) {
  auto c = Make();
  Buffer input;
  input.insert(input.end(), 1000, 'a');
  input.insert(input.end(), 1, 'b');
  input.insert(input.end(), 500, 'c');
  auto decoded = c->Decode(ByteSpan(c->Encode(ByteSpan(input))));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, input);
}

// Property sweep: random buffers of many sizes and entropy profiles.
TEST_P(CodecRoundTripTest, RandomBuffersRoundTrip) {
  auto c = Make();
  Prng prng(0xC0DEC);
  for (std::size_t size : {1u, 2u, 3u, 7u, 64u, 255u, 256u, 1000u, 4096u,
                           10000u}) {
    for (int alphabet : {2, 16, 256}) {
      Buffer input(size);
      for (auto& b : input) {
        b = static_cast<std::uint8_t>(
            prng.NextBelow(static_cast<std::uint64_t>(alphabet)));
      }
      auto decoded = c->Decode(ByteSpan(c->Encode(ByteSpan(input))));
      ASSERT_TRUE(decoded.ok())
          << GetParam() << " size=" << size << " alphabet=" << alphabet;
      ASSERT_EQ(*decoded, input)
          << GetParam() << " size=" << size << " alphabet=" << alphabet;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTripTest,
                         ::testing::ValuesIn(codec::BuiltinCodecNames()),
                         [](const auto& info) { return info.param; });

TEST(CodecTest, UnknownNameFails) {
  EXPECT_EQ(codec::MakeCodec("zpaq").status().code(), ErrorCode::kNotFound);
}

TEST(CodecTest, NamesMatch) {
  for (const auto& name : codec::BuiltinCodecNames()) {
    auto c = codec::MakeCodec(name);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ((*c)->name(), name);
  }
}

TEST(RleTest, CompressesRuns) {
  auto c = codec::MakeRleCodec();
  Buffer input(10000, 'z');
  const Buffer encoded = c->Encode(ByteSpan(input));
  EXPECT_LT(encoded.size(), input.size() / 20);
}

TEST(Lz77Test, CompressesRepetitiveText) {
  auto c = codec::MakeLz77Codec();
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog. ";
  }
  const Buffer encoded = c->Encode(AsBytes(text));
  EXPECT_LT(encoded.size(), text.size() / 4);
}

TEST(Lz77Test, OverlappingMatchDecodes) {
  // "ababab..." forces matches that copy from their own output.
  auto c = codec::MakeLz77Codec();
  Buffer input;
  for (int i = 0; i < 1000; ++i) input.push_back(i % 2 ? 'a' : 'b');
  auto decoded = c->Decode(ByteSpan(c->Encode(ByteSpan(input))));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, input);
}

TEST(RleTest, TruncatedLiteralFailsCleanly) {
  auto c = codec::MakeRleCodec();
  Buffer bad = {0x05, 'a', 'b'};  // claims 6 literals, has 2
  EXPECT_EQ(c->Decode(ByteSpan(bad)).status().code(), ErrorCode::kCorrupt);
}

TEST(RleTest, TruncatedRepeatFailsCleanly) {
  auto c = codec::MakeRleCodec();
  Buffer bad = {0x85};  // repeat marker with no byte
  EXPECT_EQ(c->Decode(ByteSpan(bad)).status().code(), ErrorCode::kCorrupt);
}

TEST(Lz77Test, BadDistanceFailsCleanly) {
  auto c = codec::MakeLz77Codec();
  Buffer bad;
  bad.push_back(0x01);       // match token
  AppendU16(bad, 100);       // distance 100 into empty output
  AppendU16(bad, 4);
  EXPECT_EQ(c->Decode(ByteSpan(bad)).status().code(), ErrorCode::kCorrupt);
}

TEST(Lz77Test, UnknownTagFailsCleanly) {
  auto c = codec::MakeLz77Codec();
  Buffer bad = {0x77};
  EXPECT_EQ(c->Decode(ByteSpan(bad)).status().code(), ErrorCode::kCorrupt);
}

TEST(Lz77Test, FuzzDecodeNeverCrashes) {
  auto c = codec::MakeLz77Codec();
  auto r = codec::MakeRleCodec();
  Prng prng(0xF422);
  for (int i = 0; i < 200; ++i) {
    Buffer junk(prng.NextBelow(200));
    prng.Fill(MutableByteSpan(junk));
    (void)c->Decode(ByteSpan(junk));  // must return, not crash
    (void)r->Decode(ByteSpan(junk));
  }
}

}  // namespace
}  // namespace afs
