// Unit tests for the common layer: Status/Result, byte codecs, clocks.
#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), ErrorCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(UnsupportedError("").code(), ErrorCode::kUnsupported);
  EXPECT_EQ(IoError("").code(), ErrorCode::kIoError);
  EXPECT_EQ(ClosedError("").code(), ErrorCode::kClosed);
  EXPECT_EQ(TimeoutError("").code(), ErrorCode::kTimeout);
  EXPECT_EQ(ProtocolError("").code(), ErrorCode::kProtocolError);
  EXPECT_EQ(RemoteError("").code(), ErrorCode::kRemoteError);
  EXPECT_EQ(BusyError("").code(), ErrorCode::kBusy);
  EXPECT_EQ(OutOfRangeError("").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(CorruptError("").code(), ErrorCode::kCorrupt);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "OK");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnsupported), "UNSUPPORTED");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kCorrupt), "CORRUPT");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

Result<int> Doubler(Result<int> in) {
  AFS_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_EQ(Doubler(IoError("disk on fire")).status().code(),
            ErrorCode::kIoError);
}

TEST(BytesTest, IntegerRoundTrips) {
  Buffer buf;
  AppendU16(buf, 0xBEEF);
  AppendU32(buf, 0xDEADBEEF);
  AppendU64(buf, 0x0123456789ABCDEFull);
  ByteReader reader{ByteSpan(buf)};
  std::uint16_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  ASSERT_TRUE(reader.ReadU16(a));
  ASSERT_TRUE(reader.ReadU32(b));
  ASSERT_TRUE(reader.ReadU64(c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_TRUE(reader.empty());
}

TEST(BytesTest, LittleEndianLayout) {
  Buffer buf;
  AppendU32(buf, 0x04030201u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(BytesTest, LenPrefixedRoundTrip) {
  Buffer buf;
  AppendLenPrefixed(buf, std::string_view("hello"));
  AppendLenPrefixed(buf, std::string_view(""));
  ByteReader reader{ByteSpan(buf)};
  std::string a;
  std::string b;
  ASSERT_TRUE(reader.ReadLenPrefixedString(a));
  ASSERT_TRUE(reader.ReadLenPrefixedString(b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
}

TEST(BytesTest, UnderflowLeavesCursorUnchanged) {
  Buffer buf;
  AppendU16(buf, 7);
  ByteReader reader{ByteSpan(buf)};
  std::uint32_t v32 = 0;
  EXPECT_FALSE(reader.ReadU32(v32));
  std::uint16_t v16 = 0;
  EXPECT_TRUE(reader.ReadU16(v16));  // cursor was not consumed by the miss
  EXPECT_EQ(v16, 7);
}

TEST(BytesTest, TruncatedLenPrefixFails) {
  Buffer buf;
  AppendU32(buf, 100);  // claims 100 bytes, provides none
  ByteReader reader{ByteSpan(buf)};
  ByteSpan out;
  EXPECT_FALSE(reader.ReadLenPrefixed(out));
}

TEST(BytesTest, StringBridges) {
  const std::string s = "bytes\x00with nul";
  Buffer b = ToBuffer(s);
  EXPECT_EQ(ToString(ByteSpan(b)), s);
  EXPECT_EQ(AsBytes(s).size(), s.size());
}

TEST(ClockTest, SteadyClockAdvances) {
  auto& clock = SteadyClock::Instance();
  const Micros t0 = clock.Now();
  clock.SleepFor(Micros(2000));
  EXPECT_GE((clock.Now() - t0).count(), 2000);
}

TEST(ClockTest, ManualClockBlocksUntilAdvanced) {
  ManualClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepFor(Micros(1000));
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  clock.Advance(Micros(999));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  clock.Advance(Micros(1));
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(clock.Now(), Micros(1000));
}

}  // namespace
}  // namespace afs
