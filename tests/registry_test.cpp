// Registry substrate tests: CRUD, typed values, text render/parse round
// trip, and atomicity of ApplyText.
#include <gtest/gtest.h>

#include "registry/registry.hpp"
#include "test_util.hpp"

namespace afs::reg {
namespace {

TEST(RegistryTest, CreateAndExists) {
  Registry r;
  EXPECT_TRUE(r.KeyExists(""));  // root always exists
  EXPECT_FALSE(r.KeyExists("a/b"));
  ASSERT_OK(r.CreateKey("a/b/c"));
  EXPECT_TRUE(r.KeyExists("a"));
  EXPECT_TRUE(r.KeyExists("a/b"));
  EXPECT_TRUE(r.KeyExists("a/b/c"));
}

TEST(RegistryTest, SetGetValueOfEachType) {
  Registry r;
  ASSERT_OK(r.CreateKey("app"));
  ASSERT_OK(r.SetValue("app", "name", Value(std::string("afs"))));
  ASSERT_OK(r.SetValue("app", "limit", Value(std::uint32_t{4096})));
  ASSERT_OK(r.SetValue("app", "blob", Value(Buffer{1, 2, 3})));

  auto name = r.GetValue("app", "name");
  ASSERT_OK(name.status());
  EXPECT_EQ(std::get<std::string>(*name), "afs");
  auto limit = r.GetValue("app", "limit");
  ASSERT_OK(limit.status());
  EXPECT_EQ(std::get<std::uint32_t>(*limit), 4096u);
  auto blob = r.GetValue("app", "blob");
  ASSERT_OK(blob.status());
  EXPECT_EQ(std::get<Buffer>(*blob), (Buffer{1, 2, 3}));
}

TEST(RegistryTest, MissingLookupsFail) {
  Registry r;
  EXPECT_EQ(r.GetValue("nope", "x").status().code(), ErrorCode::kNotFound);
  ASSERT_OK(r.CreateKey("k"));
  EXPECT_EQ(r.GetValue("k", "x").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.SetValue("nope", "x", Value(std::uint32_t{1})).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(r.DeleteValue("k", "x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.DeleteKey("nope").code(), ErrorCode::kNotFound);
}

TEST(RegistryTest, DeleteKeyRemovesSubtree) {
  Registry r;
  ASSERT_OK(r.CreateKey("a/b/c"));
  ASSERT_OK(r.DeleteKey("a/b"));
  EXPECT_TRUE(r.KeyExists("a"));
  EXPECT_FALSE(r.KeyExists("a/b"));
  EXPECT_FALSE(r.KeyExists("a/b/c"));
}

TEST(RegistryTest, CannotDeleteRoot) {
  Registry r;
  EXPECT_EQ(r.DeleteKey("").code(), ErrorCode::kInvalidArgument);
}

TEST(RegistryTest, ListKeysAndValuesSorted) {
  Registry r;
  ASSERT_OK(r.CreateKey("k/z"));
  ASSERT_OK(r.CreateKey("k/a"));
  ASSERT_OK(r.SetValue("k", "v2", Value(std::uint32_t{2})));
  ASSERT_OK(r.SetValue("k", "v1", Value(std::uint32_t{1})));
  auto keys = r.ListKeys("k");
  ASSERT_OK(keys.status());
  EXPECT_EQ(*keys, (std::vector<std::string>{"a", "z"}));
  auto values = r.ListValues("k");
  ASSERT_OK(values.status());
  EXPECT_EQ(*values, (std::vector<std::string>{"v1", "v2"}));
}

TEST(RegistryTest, RevisionBumpsOnMutation) {
  Registry r;
  const auto r0 = r.revision();
  ASSERT_OK(r.CreateKey("x"));
  ASSERT_OK(r.SetValue("x", "v", Value(std::uint32_t{1})));
  ASSERT_OK(r.DeleteValue("x", "v"));
  ASSERT_OK(r.DeleteKey("x"));
  EXPECT_EQ(r.revision(), r0 + 4);
}

TEST(ValueTextTest, RenderAndParse) {
  EXPECT_EQ(RenderValue(Value(std::string("hi"))), "str:hi");
  EXPECT_EQ(RenderValue(Value(std::uint32_t{42})), "dw:42");
  EXPECT_EQ(RenderValue(Value(Buffer{0x0a, 0xff})), "bin:0aff");

  auto s = ParseValue("str:hello world");
  ASSERT_OK(s.status());
  EXPECT_EQ(std::get<std::string>(*s), "hello world");
  auto d = ParseValue("dw:7");
  ASSERT_OK(d.status());
  EXPECT_EQ(std::get<std::uint32_t>(*d), 7u);
  auto b = ParseValue("bin:0aFF");
  ASSERT_OK(b.status());
  EXPECT_EQ(std::get<Buffer>(*b), (Buffer{0x0a, 0xff}));
}

TEST(ValueTextTest, ParseErrors) {
  EXPECT_FALSE(ParseValue("dw:notanumber").ok());
  EXPECT_FALSE(ParseValue("dw:4294967296").ok());  // > u32
  EXPECT_FALSE(ParseValue("bin:0a0").ok());        // odd length
  EXPECT_FALSE(ParseValue("bin:zz").ok());
  EXPECT_FALSE(ParseValue("wat:1").ok());
}

TEST(RegistryTextTest, RenderParseRoundTrip) {
  Registry r;
  ASSERT_OK(r.CreateKey("sw/app"));
  ASSERT_OK(r.SetValue("sw/app", "mode", Value(std::string("eager"))));
  ASSERT_OK(r.SetValue("sw/app", "limit", Value(std::uint32_t{512})));
  ASSERT_OK(r.SetValue("sw", "root", Value(Buffer{0xde, 0xad})));

  auto text = r.RenderText("sw");
  ASSERT_OK(text.status());

  Registry copy;
  ASSERT_OK(copy.ApplyText("sw", *text));
  auto text2 = copy.RenderText("sw");
  ASSERT_OK(text2.status());
  EXPECT_EQ(*text, *text2);
  EXPECT_EQ(std::get<std::uint32_t>(*copy.GetValue("sw/app", "limit")), 512u);
}

TEST(RegistryTextTest, ApplyReplacesSubtree) {
  Registry r;
  ASSERT_OK(r.CreateKey("k"));
  ASSERT_OK(r.SetValue("k", "old", Value(std::uint32_t{1})));
  ASSERT_OK(r.ApplyText("k", "[]\nnew = dw:2\n"));
  EXPECT_EQ(r.GetValue("k", "old").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(std::get<std::uint32_t>(*r.GetValue("k", "new")), 2u);
}

TEST(RegistryTextTest, ApplyIsAtomicOnParseError) {
  Registry r;
  ASSERT_OK(r.CreateKey("k"));
  ASSERT_OK(r.SetValue("k", "keep", Value(std::uint32_t{1})));
  const auto rev = r.revision();
  const Status bad = r.ApplyText("k", "[]\nok = dw:1\nbroken line\n");
  EXPECT_EQ(bad.code(), ErrorCode::kProtocolError);
  EXPECT_EQ(r.revision(), rev);  // nothing happened
  EXPECT_OK(r.GetValue("k", "keep").status());
}

TEST(RegistryTextTest, CommentsAndBlanksIgnored) {
  Registry r;
  ASSERT_OK(r.ApplyText("", "# comment\n\n; also comment\n[k]\nv = dw:3\n"));
  EXPECT_EQ(std::get<std::uint32_t>(*r.GetValue("k", "v")), 3u);
}

TEST(RegistryTextTest, NestedKeysRender) {
  Registry r;
  ASSERT_OK(r.CreateKey("a/b"));
  ASSERT_OK(r.SetValue("a/b", "v", Value(std::uint32_t{9})));
  auto text = r.RenderText("");
  ASSERT_OK(text.status());
  EXPECT_NE(text->find("[a/b]"), std::string::npos);
  EXPECT_NE(text->find("v = dw:9"), std::string::npos);
}


TEST(RegistryPersistenceTest, SaveLoadRoundTrip) {
  test::TempDir tmp;
  const std::string hive = tmp.path() + "/hive.reg";
  Registry original;
  ASSERT_OK(original.CreateKey("sw/app"));
  ASSERT_OK(original.SetValue("sw/app", "mode", Value(std::string("x"))));
  ASSERT_OK(original.SetValue("sw", "n", Value(std::uint32_t{7})));
  ASSERT_OK(original.SetValue("sw", "blob", Value(Buffer{1, 2})));
  ASSERT_OK(original.SaveToFile(hive));

  Registry loaded;
  ASSERT_OK(loaded.LoadFromFile(hive));
  EXPECT_EQ(*loaded.RenderText(""), *original.RenderText(""));
  EXPECT_EQ(std::get<std::uint32_t>(*loaded.GetValue("sw", "n")), 7u);
}

TEST(RegistryPersistenceTest, LoadMissingFileFails) {
  Registry r;
  EXPECT_EQ(r.LoadFromFile("/no/such/hive").code(), ErrorCode::kNotFound);
}

TEST(RegistryPersistenceTest, LoadIsAtomicOnCorruptHive) {
  test::TempDir tmp;
  const std::string hive = tmp.path() + "/bad.reg";
  FILE* f = std::fopen(hive.c_str(), "w");
  std::fputs("[k]\nbroken line without equals\n", f);
  std::fclose(f);
  Registry r;
  ASSERT_OK(r.CreateKey("keep"));
  EXPECT_FALSE(r.LoadFromFile(hive).ok());
  EXPECT_TRUE(r.KeyExists("keep"));  // untouched
}

}  // namespace
}  // namespace afs::reg
