// afsctl CLI tests (AFSCTL_PATH injected by CMake) and assorted edge-case
// coverage for host files and the shm channel.
#include <gtest/gtest.h>

#include <cstdio>

#include "afs.hpp"
#include "ipc/shm_channel.hpp"
#include "test_util.hpp"
#include "util/prng.hpp"

#ifndef AFSCTL_PATH
#error "AFSCTL_PATH must be defined by the build"
#endif

namespace afs {
namespace {

using test::TempDir;

// Runs a command line, returns {exit code, stdout}.
std::pair<int, std::string> RunCommand(const std::string& command) {
  FILE* pipe = ::popen((command + " 2>/dev/null").c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int status = ::pclose(pipe);
  return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, output};
}

class AfsctlTest : public ::testing::Test {
 protected:
  std::string Ctl(const std::string& args) {
    return std::string(AFSCTL_PATH) + " " + tmp_.path() + "/ws " + args;
  }
  TempDir tmp_;
};

TEST_F(AfsctlTest, CreateWriteCatDataSpec) {
  auto [code, out] = RunCommand(Ctl("create notes.af compress codec=rle"));
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("created notes.af"), std::string::npos);

  std::tie(code, out) = RunCommand(Ctl("write notes.af aaaaaaaaaaaaaaaaaaaaaaaa"));
  EXPECT_EQ(code, 0);

  std::tie(code, out) = RunCommand(Ctl("cat notes.af"));
  EXPECT_EQ(code, 0);
  EXPECT_EQ(out, "aaaaaaaaaaaaaaaaaaaaaaaa");

  std::tie(code, out) = RunCommand(Ctl("data notes.af"));
  EXPECT_EQ(code, 0);
  EXPECT_EQ(out.substr(0, 4), "AFC1");  // compressed image, not plaintext

  std::tie(code, out) = RunCommand(Ctl("spec notes.af"));
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("sentinel: compress"), std::string::npos);
  EXPECT_NE(out.find("codec = rle"), std::string::npos);
}

TEST_F(AfsctlTest, LsAndSentinels) {
  (void)RunCommand(Ctl("create a.af null"));
  auto [code, out] = RunCommand(Ctl("ls"));
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("a.af"), std::string::npos);

  std::tie(code, out) = RunCommand(Ctl("sentinels"));
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("compress"), std::string::npos);
  EXPECT_NE(out.find("pipeline"), std::string::npos);
}

TEST_F(AfsctlTest, StatsDumpsMetricsAndTracedSpanTree) {
  (void)RunCommand(Ctl("create t.af null strategy=process_control"));
  (void)RunCommand(Ctl("write t.af hello"));

  // Bare stats: metric sections render even with no traced operation.
  auto [code, out] = RunCommand(Ctl("stats"));
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("== counters"), std::string::npos);
  EXPECT_NE(out.find("== traces"), std::string::npos);

  // With a path: the read runs under a TraceScope, so the dump carries
  // the linked span tree of that one read — including the sentinel-side
  // span that crossed the process boundary (process_control strategy).
  std::tie(code, out) = RunCommand(Ctl("stats t.af"));
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("afsctl.stats.read"), std::string::npos);
  EXPECT_NE(out.find("vfs.read"), std::string::npos);
  EXPECT_NE(out.find("link.roundtrip"), std::string::npos);
  EXPECT_NE(out.find("sentinel.read"), std::string::npos);
  // Nesting is indentation in the text renderer: the sentinel span sits
  // deeper than the roundtrip span that carried it.
  EXPECT_NE(out.find("\n      link.roundtrip"), std::string::npos);
  EXPECT_NE(out.find("\n        sentinel.read"), std::string::npos);

  // JSON mode renders the same snapshot as machine-readable JSON.
  std::tie(code, out) = RunCommand(Ctl("stats t.af --json"));
  EXPECT_EQ(code, 0);
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"vfs.read.count\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"sentinel.read\""), std::string::npos);

  // Reading a missing path still exits nonzero.
  EXPECT_EQ(RunCommand(Ctl("stats missing.af")).first, 1);
}

TEST_F(AfsctlTest, ErrorsExitNonzero) {
  EXPECT_EQ(RunCommand(Ctl("cat missing.af")).first, 1);
  EXPECT_EQ(RunCommand(Ctl("create bad.txt null")).first, 1);       // wrong ext
  EXPECT_EQ(RunCommand(Ctl("create x.af nosuchsentinel")).first, 1);
  EXPECT_EQ(RunCommand(Ctl("frobnicate x")).first, 2);               // usage
}

// ---- afs_lint fixture coverage ------------------------------------------
//
// Each check in tools/analyze/ has a seeded-violation fixture and a clean
// twin under tests/lint_fixtures/ (see its README.md).  These tests run
// the real linter over each pair, so a check that stops detecting its
// violation — or starts flagging the clean twin — fails ctest.

#ifndef AFS_SOURCE_DIR
#error "AFS_SOURCE_DIR must be defined by the build"
#endif

class LintFixtureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (RunCommand("python3 --version").first != 0)
      GTEST_SKIP() << "python3 not on PATH";
  }

  // Lints one fixture file with one check, baseline disabled.
  std::pair<int, std::string> Lint(const std::string& check,
                                   const std::string& fixture) {
    const std::string root(AFS_SOURCE_DIR);
    return RunCommand("python3 " + root + "/tools/analyze/afs_lint.py" +
                      " --root " + root + " --no-baseline --checks " + check +
                      " tests/lint_fixtures/" + fixture);
  }
};

TEST_F(LintFixtureTest, NonblockingFlagsSeededViolationOnly) {
  auto [code, out] = Lint("nonblocking", "nonblocking_bad.cpp");
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("[nonblocking]"), std::string::npos);
  EXPECT_NE(out.find("PumpOnce"), std::string::npos);
  EXPECT_NE(out.find("`read`"), std::string::npos);
  EXPECT_NE(out.find("Drain"), std::string::npos);  // the transitive chain

  std::tie(code, out) = Lint("nonblocking", "nonblocking_clean.cpp");
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintFixtureTest, StatusDiscardFlagsBothShapesOnly) {
  auto [code, out] = Lint("status-discard", "status_discard_bad.cpp");
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("(void)-cast"), std::string::npos);
  EXPECT_NE(out.find("overwritten"), std::string::npos);

  std::tie(code, out) = Lint("status-discard", "status_discard_clean.cpp");
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintFixtureTest, GuardedMemberFlagsUnannotatedMemberOnly) {
  auto [code, out] = Lint("guarded-member", "guarded_member_bad.cpp");
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("Tracker::count_"), std::string::npos);

  std::tie(code, out) = Lint("guarded-member", "guarded_member_clean.cpp");
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintFixtureTest, BoundedQueueFlagsBothShapesOnly) {
  auto [code, out] = Lint("bounded-queue", "bounded_queue_bad.cpp");
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("Relay::inflight_"), std::string::npos);
  EXPECT_NE(out.find("unbounded container"), std::string::npos);
  EXPECT_NE(out.find("Relay::outbuf_"), std::string::npos);
  EXPECT_NE(out.find("growable consumer buffer"), std::string::npos);
  EXPECT_EQ(out.find("samples_"), std::string::npos);  // neutral name exempt

  std::tie(code, out) = Lint("bounded-queue", "bounded_queue_clean.cpp");
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintFixtureTest, RegistryFlagsAllThreeShapesOnly) {
  // The registry check is textual over a tree, so the fixtures are
  // miniature trees selected via --root.
  const std::string root(AFS_SOURCE_DIR);
  const std::string cmd = "python3 " + root + "/tools/analyze/afs_lint.py" +
                          " --no-baseline --checks registry --root " + root +
                          "/tests/lint_fixtures/registry_tree";
  auto [code, out] = RunCommand(cmd);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("demo.fault.site"), std::string::npos);
  EXPECT_NE(out.find("never armed"), std::string::npos);
  EXPECT_NE(out.find("not documented"), std::string::npos);
  EXPECT_NE(out.find("demo.orphan.count"), std::string::npos);

  std::tie(code, out) = RunCommand(cmd + "_clean");
  EXPECT_EQ(code, 0) << out;
}

// ---- host-file / shm edge cases -----------------------------------------

TEST(HostFileEdgeTest, WriteOnReadOnlyHandleFails) {
  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  ASSERT_OK(api.WriteWholeFile("f", AsBytes("x")));
  auto handle = api.OpenFile("f", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());
  EXPECT_FALSE(api.WriteFile(*handle, AsBytes("y")).ok());
  ASSERT_OK(api.CloseHandle(*handle));
}

TEST(HostFileEdgeTest, ReadOnWriteOnlyHandleFails) {
  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  ASSERT_OK(api.WriteWholeFile("f", AsBytes("x")));
  auto handle = api.OpenFile("f", vfs::OpenMode::kWrite);
  ASSERT_OK(handle.status());
  Buffer out(1);
  EXPECT_FALSE(api.ReadFile(*handle, MutableByteSpan(out)).ok());
  ASSERT_OK(api.CloseHandle(*handle));
}

TEST(HostFileEdgeTest, TruncateExistingOnMissingFileFails) {
  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  vfs::OpenOptions options;
  options.mode = vfs::OpenMode::kWrite;
  options.disposition = vfs::Disposition::kTruncateExisting;
  EXPECT_EQ(api.CreateFile("absent", options).status().code(),
            ErrorCode::kNotFound);
}

TEST(HostFileEdgeTest, SeekBeforeStartFails) {
  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  ASSERT_OK(api.WriteWholeFile("f", AsBytes("abc")));
  auto handle = api.OpenFile("f", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());
  EXPECT_FALSE(
      api.SetFilePointer(*handle, -1, vfs::SeekOrigin::kBegin).ok());
  ASSERT_OK(api.CloseHandle(*handle));
}

TEST(ShmChannelStressTest, MegabyteThroughTinyRing) {
  ipc::ShmChannel channel(128);  // tiny ring: maximal wrap pressure
  Prng prng(0x517E55);
  Buffer payload(1 << 20);
  prng.Fill(MutableByteSpan(payload));

  std::thread writer([&] { ASSERT_OK(channel.Write(ByteSpan(payload))); });
  Buffer received;
  received.reserve(payload.size());
  Buffer chunk(313);  // deliberately unaligned with the ring size
  while (received.size() < payload.size()) {
    auto n = channel.ReadSome(MutableByteSpan(chunk));
    ASSERT_OK(n.status());
    ASSERT_GT(*n, 0u);
    received.insert(received.end(), chunk.begin(), chunk.begin() + *n);
  }
  writer.join();
  EXPECT_EQ(received, payload);
}

}  // namespace
}  // namespace afs
