// Overload-protection lane (docs/OVERLOAD.md): bounded admission, typed
// shed with retry-after hints, and graceful brownout across the stack —
// the AdmissionGate in isolation, the admit_* spec keys on real
// strategies, the loop host's shard budgets under 2x saturation, and the
// HTTP server's 503 + Retry-After shed path.
//
// Ordering note: the shard-budget saturation fixture is defined FIRST in
// this file because it must set AFS_LOOP_MAX_QUEUE_BYTES before anything
// instantiates the process-wide loop host (gtest runs suites in
// definition order).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "afs.hpp"
#include "core/overload.hpp"
#include "net/http_server.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

using core::AdmissionGate;
using core::OverloadPolicy;
using sentinel::SentinelSpec;
using test::TempDir;

// ---- shard budgets under 2x saturation (must run first; see header) -------

TEST(LoopSaturationTest, ShardBudgetShedsUnderSaturationAndDrainsToZero) {
  // A shard byte budget of 1 admits any op into an EMPTY gate (oversized
  // ops are never unservable) but sheds every op that finds another one
  // resident — so hammering many sessions concurrently MUST shed, and
  // every shed must carry kOverloaded, never a hang or a poisoned handle.
  ASSERT_EQ(::setenv("AFS_LOOP_MAX_QUEUE_BYTES", "1", 1), 0);

  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "loop";
  ASSERT_OK(manager.CreateActiveFile("sat.af", spec,
                                     AsBytes("0123456789abcdef")));

  obs::Counter& shed_counter =
      obs::Registry::Global().GetCounter("core.overload.shed");
  obs::Gauge& queue_bytes =
      obs::Registry::Global().GetGauge("core.overload.queue_bytes");
  const std::uint64_t shed_before = shed_counter.Value();

  // 2x saturation: twice as many concurrent sessions as a budget of
  // "one resident op per shard" can ever serve simultaneously.
  constexpr int kThreads = 16;
  constexpr int kOpsPerThread = 200;
  std::atomic<std::uint64_t> ok_ops{0};
  std::atomic<std::uint64_t> shed_ops{0};
  std::atomic<std::uint64_t> other_ops{0};
  // Open the sessions sequentially (a lone op always fits an empty gate),
  // then saturate them concurrently.
  std::vector<vfs::HandleId> handles;
  for (int t = 0; t < kThreads; ++t) {
    auto handle = api.OpenFile("sat.af", vfs::OpenMode::kReadWrite);
    ASSERT_OK(handle.status());
    handles.push_back(*handle);
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Buffer out(4);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Status status =
            api.ReadFile(handles[t], MutableByteSpan(out)).status();
        if (status.ok()) {
          ok_ops.fetch_add(1);
        } else if (status.code() == ErrorCode::kOverloaded) {
          shed_ops.fetch_add(1);
          // Every shed advertises when to come back.
          EXPECT_GT(RetryAfterHintMs(status), 0) << status.ToString();
        } else {
          other_ops.fetch_add(1);
          ADD_FAILURE() << "unexpected op failure: " << status.ToString();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (vfs::HandleId handle : handles) EXPECT_OK(api.CloseHandle(handle));

  // Saturation was handled, not queued: work was admitted, work was shed,
  // and nothing failed with a non-overload code.
  EXPECT_GT(ok_ops.load(), 0u);
  EXPECT_GT(shed_counter.Value(), shed_before);
  EXPECT_EQ(other_ops.load(), 0u);
  EXPECT_EQ(ok_ops.load() + shed_ops.load(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  // Admission accounting drains to zero once the storm passes: the
  // core.overload.queue_bytes gauge is exactly admitted-minus-released.
  EXPECT_EQ(queue_bytes.Value(), 0);
  EXPECT_EQ(api.open_handle_count(), 0u);
  ASSERT_EQ(::unsetenv("AFS_LOOP_MAX_QUEUE_BYTES"), 0);
}

// ---- AdmissionGate in isolation --------------------------------------------

TEST(AdmissionGateTest, InflightCapShedsThenRecoversOnRelease) {
  AdmissionGate gate({.max_inflight = 2});
  ASSERT_OK(gate.Admit(10));
  ASSERT_OK(gate.Admit(10));
  const Status third = gate.Admit(10);
  EXPECT_STATUS_CODE(third, ErrorCode::kOverloaded);
  EXPECT_GT(RetryAfterHintMs(third), 0);
  EXPECT_EQ(gate.inflight(), 2);
  gate.Release(10);
  EXPECT_OK(gate.Admit(10));
  gate.Release(10);
  gate.Release(10);
  EXPECT_EQ(gate.inflight(), 0);
  EXPECT_EQ(gate.queue_bytes(), 0u);
}

TEST(AdmissionGateTest, QueueByteCapShedsButNeverStrandsAnOversizedOp) {
  AdmissionGate gate({.max_queue_bytes = 100});
  // An op larger than the whole budget admits into an empty gate —
  // otherwise it could never run at all.
  ASSERT_OK(gate.Admit(500));
  EXPECT_EQ(gate.queue_bytes(), 500u);
  // But nothing else fits while it is resident.
  EXPECT_STATUS_CODE(gate.Admit(1), ErrorCode::kOverloaded);
  gate.Release(500);
  ASSERT_OK(gate.Admit(60));
  EXPECT_STATUS_CODE(gate.Admit(60), ErrorCode::kOverloaded);  // 120 > 100
  gate.Release(60);
  EXPECT_EQ(gate.queue_bytes(), 0u);
}

TEST(AdmissionGateTest, RateLimitShedsWithRetryHintAndWithoutDebiting) {
  AdmissionGate gate({.rate_bytes_per_second = 1000, .burst_bytes = 128});
  ASSERT_OK(gate.Admit(100));  // burst absorbs it
  const Status shed = gate.Admit(100);
  EXPECT_STATUS_CODE(shed, ErrorCode::kOverloaded);
  // 100 bytes at 1000 B/s is ~100ms away; the hint says so (>= 1ms).
  EXPECT_GE(RetryAfterHintMs(shed), 1);
  gate.Release(100);
}

TEST(AdmissionGateTest, AdmitForBlocksUntilCapacityFrees) {
  AdmissionGate gate({.max_inflight = 1});
  ASSERT_OK(gate.Admit(8));
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    gate.Release(8);
  });
  // kBlock semantics: the waiter rides out the occupancy instead of
  // shedding, bounded by its deadline.
  EXPECT_OK(gate.AdmitFor(8, Micros{5'000'000}));
  releaser.join();
  gate.Release(8);
  EXPECT_EQ(gate.inflight(), 0);
}

TEST(AdmissionGateTest, AdmitForShedsWhenTheDeadlineExpires) {
  AdmissionGate gate({.max_inflight = 1});
  ASSERT_OK(gate.Admit(8));
  const Status shed = gate.AdmitFor(8, Micros{20'000});
  EXPECT_STATUS_CODE(shed, ErrorCode::kOverloaded);
  EXPECT_GT(RetryAfterHintMs(shed), 0);
  gate.Release(8);
}

TEST(AdmitWithPolicyTest, PoliciesShapeTheWait) {
  AdmissionGate gate({.max_inflight = 1});
  ASSERT_OK(gate.Admit(8));
  // kShed fails immediately; kBrownout sheds after its short grace.
  EXPECT_STATUS_CODE(
      core::AdmitWithPolicy(gate, 8, OverloadPolicy::kShed, Micros{0}),
      ErrorCode::kOverloaded);
  EXPECT_STATUS_CODE(
      core::AdmitWithPolicy(gate, 8, OverloadPolicy::kBrownout, Micros{0}),
      ErrorCode::kOverloaded);
  // kBlock waits out the occupancy (released from another thread).
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    gate.Release(8);
  });
  EXPECT_OK(core::AdmitWithPolicy(gate, 8, OverloadPolicy::kBlock,
                                  Micros{5'000'000}));
  releaser.join();
  gate.Release(8);
}

// ---- spec plumbing ---------------------------------------------------------

TEST(OverloadSpecTest, PolicyNamesRoundTrip) {
  for (auto policy : {OverloadPolicy::kShed, OverloadPolicy::kBrownout,
                      OverloadPolicy::kBlock}) {
    auto parsed =
        core::ParseOverloadPolicy(core::OverloadPolicyName(policy));
    ASSERT_OK(parsed.status());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(core::ParseOverloadPolicy("panic").ok());
}

TEST(OverloadSpecTest, SpecKeysParseIntoLimits) {
  std::map<std::string, std::string> config;
  config["admit_queue_bytes"] = "4096";
  config["admit_inflight"] = "3";
  config["admit_bps"] = "1000000";
  config["admit_burst"] = "8192";
  config["overload"] = "brownout";
  const AdmissionGate::Limits limits = core::AdmissionLimitsFromSpec(config);
  EXPECT_EQ(limits.max_queue_bytes, 4096u);
  EXPECT_EQ(limits.max_inflight, 3);
  EXPECT_EQ(limits.rate_bytes_per_second, 1'000'000u);
  EXPECT_EQ(limits.burst_bytes, 8192u);
  EXPECT_TRUE(core::AdmissionConfigured(limits));
  EXPECT_FALSE(core::AdmissionConfigured(AdmissionGate::Limits{}));
  auto policy =
      core::OverloadPolicyFromSpec(config, OverloadPolicy::kShed);
  ASSERT_OK(policy.status());
  EXPECT_EQ(*policy, OverloadPolicy::kBrownout);
}

TEST(RetryAfterTagTest, HintSurvivesTheStatusMessage) {
  const Status status = OverloadedError("busy", 250);
  EXPECT_EQ(status.code(), ErrorCode::kOverloaded);
  EXPECT_EQ(RetryAfterHintMs(status), 250);
  EXPECT_EQ(RetryAfterHintMs(OverloadedError("no hint")), 0);
  EXPECT_EQ(RetryAfterHintMs(Status::Ok()), 0);
}

// ---- admit_* keys on real strategies ---------------------------------------

// Token-bucket admission on a link: the burst admits exactly one small op,
// so the second op in a tight loop is deterministically shed with a
// retry-after hint — and the handle keeps serving once the bucket refills
// (sheds never poison).
void RunRateLimitedStrategy(const char* strategy) {
  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = strategy;
  spec.config["admit_bps"] = "1000";
  spec.config["admit_burst"] = "128";  // one ~68-byte read, not two
  spec.config["overload"] = "shed";
  const std::string name = std::string(strategy) + "-rate.af";
  ASSERT_OK(manager.CreateActiveFile(name, spec, AsBytes("0123456789abcdef")));

  auto handle = api.OpenFile(name, vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  Buffer out(4);
  // The burst covers roughly one ~68-byte op (open-path traffic may have
  // taken a bite already), so a tight loop of reads must starve the
  // bucket within a few iterations — refill at 1 KB/s is no match.
  Status shed = Status::Ok();
  for (int i = 0; i < 50 && shed.ok(); ++i) {
    shed = api.ReadFile(*handle, MutableByteSpan(out)).status();
  }
  EXPECT_STATUS_CODE(shed, ErrorCode::kOverloaded);
  EXPECT_GE(RetryAfterHintMs(shed), 1) << shed.ToString();
  // The shed is transient by contract: once the bucket refills, the same
  // handle serves again.
  ASSERT_TRUE(test::PollUntil([&] {
    return api.ReadFile(*handle, MutableByteSpan(out)).status().ok();
  }));
  ASSERT_OK(api.CloseHandle(*handle));
  EXPECT_EQ(api.open_handle_count(), 0u);
}

TEST(StrategyAdmissionTest, ThreadLinkShedsOnRateBudget) {
  RunRateLimitedStrategy("thread");
}

TEST(StrategyAdmissionTest, LoopLinkShedsOnRateBudget) {
  RunRateLimitedStrategy("loop");
}

TEST(StrategyAdmissionTest, ProcessControlLinkShedsOnRateBudget) {
  RunRateLimitedStrategy("process_control");
}

TEST(StrategyAdmissionTest, BlockPolicyRidesOutTheBudgetInsteadOfShedding) {
  // Same starved token bucket, but overload=block: the op waits for the
  // refill (bounded by the op deadline) and succeeds instead of shedding.
  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "thread";
  spec.config["admit_bps"] = "2000";
  spec.config["admit_burst"] = "128";
  spec.config["overload"] = "block";
  spec.config["op_timeout_ms"] = "2000";
  ASSERT_OK(manager.CreateActiveFile("block.af", spec,
                                     AsBytes("0123456789abcdef")));

  auto handle = api.OpenFile("block.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  Buffer out(4);
  // Both ops succeed: the second waits ~35ms for tokens instead of
  // failing fast.
  ASSERT_OK(api.ReadFile(*handle, MutableByteSpan(out)).status());
  EXPECT_OK(api.ReadFile(*handle, MutableByteSpan(out)).status());
  ASSERT_OK(api.CloseHandle(*handle));
}

// ---- HTTP: 503 + Retry-After ----------------------------------------------

TEST(HttpOverloadTest, ConnectionCapShedsWith503AndRetryAfter) {
  TempDir tmp;
  net::FileServer files;
  ASSERT_OK(files.Put("k", AsBytes("v")));
  const std::string path = test::UniqueSocketPath(tmp.path(), "http503");
  net::HttpServer::Options options;
  options.max_connections = 1;
  options.retry_after_ms = 2000;
  net::HttpServer server(path, files, options);
  ASSERT_OK(server.Start());

  // Occupy the single connection slot with a client that never finishes
  // its request.
  test::RawUnixClient occupier(path);
  ASSERT_GE(occupier.fd(), 0);
  ASSERT_TRUE(occupier.Send("GET /k"));  // no terminator: holds the slot
  ASSERT_TRUE(
      test::PollUntil([&] { return server.active_connections() >= 1; }));

  // The next connection is shed at accept with the full typed story:
  // HTTP 503, Retry-After in seconds, kOverloaded with the ms hint.
  net::HttpClient client(path);
  auto raw = client.Request("GET", "k");
  ASSERT_OK(raw.status());
  EXPECT_EQ(raw->status_code, 503);
  ASSERT_TRUE(raw->headers.count("retry-after"));
  EXPECT_EQ(raw->headers.at("retry-after"), "2");
  const Status shed = client.Get("k").status();
  EXPECT_STATUS_CODE(shed, ErrorCode::kOverloaded);
  EXPECT_EQ(RetryAfterHintMs(shed), 2000);

  // Free the slot: the same server admits again — brownout, not outage.
  occupier.Close();
  ASSERT_TRUE(test::PollUntil([&] {
    auto got = client.Get("k");
    return got.ok() && ToString(ByteSpan(*got)) == "v";
  }));
  server.Stop();
}

}  // namespace
}  // namespace afs
