// Failure-injection tests: corrupted bundles, dying sentinels, failing
// remote services, and resource-cleanup guarantees.
#include <gtest/gtest.h>

#include <csignal>

#include "afs.hpp"
#include "common/faultpoint.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

using core::ActiveFileManager;
using core::ManagerOptions;
using core::Strategy;
using sentinel::SentinelSpec;
using test::TempDir;

class FailureTest : public ::testing::Test {
 protected:
  FailureTest()
      : api_(tmp_.path() + "/root"),
        net_(clock_),
        resolver_(&net_, "client"),
        manager_(api_, sentinel::SentinelRegistry::Global(), MakeOptions()) {
    sentinels::RegisterBuiltinSentinels();
    (void)net_.AddLink("client", "server", {});
    (void)net_.Mount("server", "files", files_);
    manager_.Install();
  }

  ManagerOptions MakeOptions() {
    ManagerOptions options;
    options.resolver = &resolver_;
    return options;
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ManualClock clock_;
  net::SimNet net_;
  net::FileServer files_;
  core::EnvironmentResolver resolver_;
  ActiveFileManager manager_;
};

TEST_F(FailureTest, TruncatedBundleHeaderFailsOpenCleanly) {
  SentinelSpec spec;
  spec.name = "null";
  ASSERT_OK(manager_.CreateActiveFile("t.af", spec, AsBytes("data")));
  // Truncate the container inside its header.
  auto host = api_.HostPath("t.af");
  ASSERT_OK(host.status());
  ASSERT_EQ(truncate(host->c_str(), 6), 0);

  auto handle = api_.OpenFile("t.af", vfs::OpenMode::kRead);
  EXPECT_EQ(handle.status().code(), ErrorCode::kCorrupt);
  EXPECT_EQ(api_.open_handle_count(), 0u);
}

TEST_F(FailureTest, BitflipInHeaderDetectedByCrc) {
  SentinelSpec spec;
  spec.name = "null";
  spec.config["cache"] = "disk";
  ASSERT_OK(manager_.CreateActiveFile("c.af", spec, AsBytes("data")));
  auto host = api_.HostPath("c.af");
  ASSERT_OK(host.status());
  // Flip one bit inside the header body (after the 4-byte magic).
  FILE* f = std::fopen(host->c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 7, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, 7, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);

  auto handle = api_.OpenFile("c.af", vfs::OpenMode::kRead);
  EXPECT_EQ(handle.status().code(), ErrorCode::kCorrupt);
}

TEST_F(FailureTest, SentinelOpenFailurePropagatesPerStrategy) {
  // The remote sentinel with a missing config fails OnOpen; every command
  // strategy must surface that as the CreateFile error and leak nothing.
  for (Strategy strategy : {Strategy::kProcessControl, Strategy::kThread,
                            Strategy::kDirect}) {
    SentinelSpec spec;
    spec.name = "remote";  // missing url/file -> OnOpen fails
    spec.config["cache"] = "none";
    spec.config["strategy"] = std::string(StrategyName(strategy));
    const std::string path =
        std::string("bad-") + std::string(StrategyName(strategy)) + ".af";
    ASSERT_OK(manager_.CreateActiveFile(path, spec));
    auto handle = api_.OpenFile(path, vfs::OpenMode::kRead);
    EXPECT_FALSE(handle.ok()) << StrategyName(strategy);
    EXPECT_EQ(handle.status().code(), ErrorCode::kInvalidArgument)
        << StrategyName(strategy);
    EXPECT_EQ(api_.open_handle_count(), 0u) << StrategyName(strategy);
  }
}

// Lifecycle contract: a failed OnOpen means no session, so OnClose must
// not run (in-process strategies; forked children are unobservable here).
TEST_F(FailureTest, FailedOpenSkipsOnCloseInProcessStrategies) {
  struct LifecycleProbe final : sentinel::Sentinel {
    Status OnOpen(sentinel::SentinelContext&) override {
      opens().fetch_add(1);
      return PermissionDeniedError("probe: always fails");
    }
    Status OnClose(sentinel::SentinelContext&) override {
      closes().fetch_add(1);
      return Status::Ok();
    }
    static std::atomic<int>& opens() {
      static std::atomic<int> count{0};
      return count;
    }
    static std::atomic<int>& closes() {
      static std::atomic<int> count{0};
      return count;
    }
  };
  auto& registry = sentinel::SentinelRegistry::Global();
  if (!registry.Has("lifecycle-probe")) {
    ASSERT_OK(registry.Register("lifecycle-probe",
                                [](const sentinel::SentinelSpec&) {
                                  return std::make_unique<LifecycleProbe>();
                                }));
  }
  for (const char* strategy : {"thread", "direct"}) {
    SentinelSpec spec;
    spec.name = "lifecycle-probe";
    spec.config["strategy"] = strategy;
    const std::string path = std::string("probe-") + strategy + ".af";
    ASSERT_OK(manager_.CreateActiveFile(path, spec));
    const int closes_before = LifecycleProbe::closes().load();
    const int opens_before = LifecycleProbe::opens().load();
    EXPECT_FALSE(api_.OpenFile(path, vfs::OpenMode::kRead).ok());
    EXPECT_EQ(LifecycleProbe::opens().load(), opens_before + 1) << strategy;
    EXPECT_EQ(LifecycleProbe::closes().load(), closes_before) << strategy;
  }
}

TEST_F(FailureTest, RemoteServiceUnmountedMidSession) {
  ASSERT_OK(files_.Put("f", AsBytes("content")));
  SentinelSpec spec;
  spec.name = "remote";
  spec.config["cache"] = "none";
  spec.config["url"] = "sim:server:files";
  spec.config["file"] = "f";
  spec.config["strategy"] = "thread";
  ASSERT_OK(manager_.CreateActiveFile("live.af", spec));
  auto handle = api_.OpenFile("live.af", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());
  Buffer out(7);
  ASSERT_OK(api_.ReadFile(*handle, MutableByteSpan(out)).status());

  // The service disappears; subsequent reads fail with a clean error, the
  // handle stays usable for close.
  ASSERT_OK(net_.Unmount("server", "files"));
  EXPECT_EQ(api_.ReadFile(*handle, MutableByteSpan(out)).status().code(),
            ErrorCode::kNotFound);
  ASSERT_OK(api_.CloseHandle(*handle));
  // Remount for other tests.
  ASSERT_OK(net_.Mount("server", "files", files_));
}

TEST_F(FailureTest, KilledSentinelProcessSurfacesAsClosedNotHang) {
  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "process_control";
  ASSERT_OK(manager_.CreateActiveFile("victim.af", spec, AsBytes("x")));
  auto handle = api_.OpenFile("victim.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());

  // Find and kill the sentinel child (the only child of this process).
  // Killing it mid-session must turn operations into errors, not hangs.
  // We locate it via /proc: children of self.
  std::string children_path =
      "/proc/self/task/" + std::to_string(::gettid()) + "/children";
  FILE* f = std::fopen(children_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  pid_t child = 0;
  ASSERT_EQ(std::fscanf(f, "%d", &child), 1);
  std::fclose(f);
  ASSERT_GT(child, 0);
  ASSERT_EQ(::kill(child, SIGKILL), 0);

  Buffer out(1);
  auto got = api_.ReadFile(*handle, MutableByteSpan(out));
  // The dead sentinel's pipes report EOF, and the stub promises exactly
  // kClosed for that — not a generic failure.
  EXPECT_STATUS_CODE(got.status(), ErrorCode::kClosed);
  // The failed round-trip poisoned the handle: later operations fail fast
  // with kClosed instead of writing into the broken link.
  EXPECT_STATUS_CODE(api_.ReadFile(*handle, MutableByteSpan(out)).status(),
                     ErrorCode::kClosed);
  // Close still completes (reaps the corpse) even though the protocol
  // cannot round-trip.
  (void)api_.CloseHandle(*handle);
  EXPECT_EQ(api_.open_handle_count(), 0u);
}

TEST_F(FailureTest, StalledSentinelSurfacesAsTimeoutNotHang) {
  // The sentinel child stalls 500ms on its first command; the handle's
  // 50ms op deadline must fire first and report exactly kTimeout.
  auto plan = fault::ParsePlan("seed=7;sentinel.dispatch.op=delay:500ms@n1");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));

  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "process_control";
  spec.config["op_timeout_ms"] = "50";
  ASSERT_OK(manager_.CreateActiveFile("slow.af", spec, AsBytes("x")));
  auto handle = api_.OpenFile("slow.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());

  Buffer out(1);
  EXPECT_STATUS_CODE(api_.ReadFile(*handle, MutableByteSpan(out)).status(),
                     ErrorCode::kTimeout);
  // A timed-out round-trip desynchronizes the stream, so the handle is
  // poisoned: the next operation is kClosed immediately, not a late reply.
  EXPECT_STATUS_CODE(api_.ReadFile(*handle, MutableByteSpan(out)).status(),
                     ErrorCode::kClosed);
  (void)api_.CloseHandle(*handle);
  EXPECT_EQ(api_.open_handle_count(), 0u);
}

TEST_F(FailureTest, DroppedHandleIsCleanedUpByApiDestructorPath) {
  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "thread";
  ASSERT_OK(manager_.CreateActiveFile("leak.af", spec, AsBytes("x")));
  auto handle = api_.OpenFile("leak.af", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());
  EXPECT_EQ(api_.open_handle_count(), 1u);
  // Never closed: FileApi teardown (fixture destructor) must join the
  // sentinel thread without deadlocking.  The assertion is simply that
  // this test terminates.
}

TEST_F(FailureTest, WriteToReadOnlySentinelKeepsHandleUsable) {
  ASSERT_OK(files_.Put("ro", AsBytes("stable")));
  SentinelSpec spec;
  spec.name = "merge";
  spec.config["cache"] = "none";
  spec.config["url"] = "sim:server:files";
  spec.config["files"] = "ro";
  ASSERT_OK(manager_.CreateActiveFile("ro.af", spec));
  auto handle = api_.OpenFile("ro.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  EXPECT_EQ(api_.WriteFile(*handle, AsBytes("x")).status().code(),
            ErrorCode::kPermissionDenied);
  // The failed write did not wedge the control channel.
  Buffer out(6);
  auto n = api_.ReadFile(*handle, MutableByteSpan(out));
  ASSERT_OK(n.status());
  EXPECT_EQ(ToString(ByteSpan(out)), "stable");
  ASSERT_OK(api_.CloseHandle(*handle));
}

TEST_F(FailureTest, ZeroByteOperationsAreHarmless) {
  SentinelSpec spec;
  spec.name = "null";
  ASSERT_OK(manager_.CreateActiveFile("z.af", spec, AsBytes("abc")));
  for (const char* strategy : {"process_control", "thread", "direct"}) {
    SentinelSpec s = spec;
    s.config["strategy"] = strategy;
    const std::string path = std::string("z-") + strategy + ".af";
    ASSERT_OK(manager_.CreateActiveFile(path, s, AsBytes("abc")));
    auto handle = api_.OpenFile(path, vfs::OpenMode::kReadWrite);
    ASSERT_OK(handle.status());
    Buffer empty;
    auto r = api_.ReadFile(*handle, MutableByteSpan(empty));
    ASSERT_OK(r.status());
    EXPECT_EQ(*r, 0u);
    auto w = api_.WriteFile(*handle, ByteSpan(empty));
    ASSERT_OK(w.status());
    EXPECT_EQ(*w, 0u);
    ASSERT_OK(api_.CloseHandle(*handle));
  }
}

}  // namespace
}  // namespace afs
