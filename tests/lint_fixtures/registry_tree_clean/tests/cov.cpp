// Coverage text for the clean fixture tree: a fault plan arming the
// site, the way fault_matrix_test embeds real plans.
static const char* kPlan = "seed=1;demo.fault.site=error:io@n1";
