// Clean twin of registry_tree: the same fault site and metric, but the
// site is catalogued in docs/TESTING.md and armed by tests/cov.cpp, and
// the metric row in docs/OBSERVABILITY.md matches the code (via the
// brace-set idiom the doc parser must expand).
#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace fixture {

void Touch() {
  AFS_FAULT_POINT("demo.fault.site");
  obs::Registry::Global().GetCounter("demo.metric.count").Add(1);
  obs::Registry::Global().GetCounter("demo.metric.bytes").Add(8);
}

}  // namespace fixture
