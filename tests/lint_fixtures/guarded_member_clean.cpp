// Clean twin for check_guarded: one member of each exempt kind —
// annotated, justified by allow(), const, and a reference.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace fixture {

class Tracker {
 public:
  explicit Tracker(int& sink) : sink_(sink) {}
  void Bump();

 private:
  Mutex mu_;
  int count_ AFS_GUARDED_BY(mu_) = 0;
  // afs-lint: allow(guarded-member: written once before Bump is callable)
  int high_water_ = 0;
  const int limit_ = 16;
  int& sink_;
};

}  // namespace fixture
