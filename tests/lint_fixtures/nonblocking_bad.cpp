// Seeded violation for check_nonblocking: an AFS_NONBLOCKING function
// reaching an unbounded primitive *transitively* — PumpOnce -> Drain ->
// read(2) — so the test also pins the call-graph traversal, not just the
// direct-call case.
#include "common/thread_annotations.hpp"

namespace fixture {

void Drain(int fd) {
  char byte;
  ::read(fd, &byte, 1);  // parks forever on a silent peer
}

void PumpOnce(int fd) AFS_NONBLOCKING {
  Drain(fd);
}

}  // namespace fixture
