// Seeded violations for check_bounded_queue: an unbounded FIFO container
// and a growable buffer with a consumer-queue name, neither stating a
// bound.
#include <deque>
#include <vector>

#include "common/types.hpp"

namespace fixture {

class Relay {
 public:
  void Enqueue(int v);

 private:
  std::deque<int> inflight_;   // unbounded container — must be flagged
  Buffer outbuf_;              // queue-named growable store — must be flagged
  std::vector<int> samples_;   // plain vector, neutral name — never flagged
};

}  // namespace fixture
