// Seeded violation for check_guarded: a class owning an afs::Mutex with
// a mutable member that is neither annotated nor justified.
#include "common/mutex.hpp"

namespace fixture {

class Tracker {
 public:
  void Bump();

 private:
  Mutex mu_;
  int count_ = 0;  // no AFS_GUARDED_BY, no allow() — must be flagged
};

}  // namespace fixture
