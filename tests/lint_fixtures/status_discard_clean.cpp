// Clean twin for check_status_discard: the same call shapes, but the
// cast-away carries an inline justification and every assignment is
// inspected before the variable is reused.
#include "common/status.hpp"

namespace fixture {

Status Flush() { return Status(); }

void Teardown() {
  // afs-lint: allow(status-discard: teardown flush is advisory)
  (void)Flush();
}

void Sequence() {
  Status st = Flush();
  if (!st.ok()) return;
  st = Flush();
  if (!st.ok()) return;
}

}  // namespace fixture
