// Clean twin for check_nonblocking: the same shape as nonblocking_bad.cpp
// but every wait is bounded — WaitReadable carries a deadline (a traversal
// cut) and waitpid uses WNOHANG — so the check must stay silent.
#include "common/thread_annotations.hpp"

namespace fixture {

class PipeEnd {
 public:
  bool WaitReadable(int timeout_ms);
};

void Drain(PipeEnd& pipe, int child) {
  pipe.WaitReadable(50);
  int wstatus = 0;
  ::waitpid(child, &wstatus, WNOHANG);
}

void PumpOnce(PipeEnd& pipe, int child) AFS_NONBLOCKING {
  Drain(pipe, child);
}

}  // namespace fixture
