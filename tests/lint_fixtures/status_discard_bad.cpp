// Seeded violations for check_status_discard: both flagged shapes —
// the (void)-cast and the assign-then-overwrite with no read between.
#include "common/status.hpp"

namespace fixture {

Status Flush() { return Status(); }

void Teardown() {
  (void)Flush();  // shape 1: cast-away
}

void Sequence() {
  Status st = Flush();
  st = Flush();  // shape 2: overwritten before anyone called st.ok()
  if (!st.ok()) return;
}

}  // namespace fixture
