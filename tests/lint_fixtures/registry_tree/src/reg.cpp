// Seeded registry violations (analyzed with --root at this mini-tree):
//   * fault site `demo.fault.site` — in no catalogue doc and armed by no
//     test (the tree has no tests/ at all): undocumented + uncovered;
//   * metric `demo.metric.count` — missing from docs/OBSERVABILITY.md:
//     undocumented;
//   * docs/OBSERVABILITY.md rows name `demo.orphan.count`, which no code
//     here uses: orphaned.
#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace fixture {

void Touch() {
  AFS_FAULT_POINT("demo.fault.site");
  obs::Registry::Global().GetCounter("demo.metric.count").Add(1);
}

}  // namespace fixture
