// Clean twin for check_bounded_queue: the same shapes with their bounds
// stated inline via allow(), plus a neutral member that is exempt by
// construction.
#include <deque>
#include <vector>

#include "common/types.hpp"

namespace fixture {

class Relay {
 public:
  void Enqueue(int v);

 private:
  // afs-lint: allow(bounded-queue: capped at capacity_ by Enqueue)
  std::deque<int> inflight_;
  // afs-lint: allow(bounded-queue: flushed every tick; writer sheds past 4 KiB)
  Buffer outbuf_;
  std::vector<int> samples_;  // plain vector, neutral name: not a queue
  const std::size_t capacity_ = 64;
};

}  // namespace fixture
