// FTP-like protocol tests: server/client conformance, error replies,
// protocol robustness, and the ftp sentinel end-to-end.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "afs.hpp"
#include "net/ftp_server.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

using net::FtpClient;
using net::FtpServer;
using test::TempDir;

class FtpTest : public ::testing::Test {
 protected:
  FtpTest() : server_(test::UniqueSocketPath(tmp_.path(), "ftp"), store_) {
    EXPECT_TRUE(server_.Start().ok());
  }
  ~FtpTest() override { server_.Stop(); }

  TempDir tmp_;
  net::FileServer store_;
  FtpServer server_;
};

TEST_F(FtpTest, RetrStorSizeDeleList) {
  ASSERT_OK(store_.Put("a.txt", AsBytes("alpha")));
  FtpClient client(server_.socket_path());

  auto data = client.Retr("a.txt");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "alpha");

  ASSERT_OK(client.Stor("b.txt", AsBytes("bravo-bytes")));
  auto size = client.Size("b.txt");
  ASSERT_OK(size.status());
  EXPECT_EQ(*size, 11u);

  auto names = client.List("");
  ASSERT_OK(names.status());
  EXPECT_EQ(names->size(), 2u);

  ASSERT_OK(client.Dele("a.txt"));
  EXPECT_EQ(client.Retr("a.txt").status().code(), ErrorCode::kRemoteError);
  ASSERT_OK(client.Quit());
}

TEST_F(FtpTest, BinaryPayloadsSurvive) {
  FtpClient client(server_.socket_path());
  Buffer binary(1000);
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<std::uint8_t>(i & 0xff);  // includes \n and \0
  }
  ASSERT_OK(client.Stor("bin", ByteSpan(binary)));
  auto back = client.Retr("bin");
  ASSERT_OK(back.status());
  EXPECT_EQ(*back, binary);
}

TEST_F(FtpTest, EmptyFileTransfers) {
  FtpClient client(server_.socket_path());
  ASSERT_OK(client.Stor("empty", {}));
  auto back = client.Retr("empty");
  ASSERT_OK(back.status());
  EXPECT_TRUE(back->empty());
}

TEST_F(FtpTest, ErrorsAreRemoteErrors) {
  FtpClient client(server_.socket_path());
  EXPECT_EQ(client.Retr("nope").status().code(), ErrorCode::kRemoteError);
  EXPECT_EQ(client.Size("nope").status().code(), ErrorCode::kRemoteError);
  EXPECT_EQ(client.Dele("nope").code(), ErrorCode::kRemoteError);
}

TEST_F(FtpTest, ServerSurvivesMalformedCommands) {
  // Speak raw garbage at the server, then verify it still works.
  test::RawUnixClient raw(server_.socket_path());
  ASSERT_GE(raw.fd(), 0);
  ASSERT_TRUE(raw.Send("FROB x\nSTOR\nSTOR a notanumber\nRETR\n"));
  raw.Close();

  ASSERT_OK(store_.Put("still-alive", AsBytes("yes")));
  FtpClient client(server_.socket_path());
  auto data = client.Retr("still-alive");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "yes");
}

TEST_F(FtpTest, ConcurrentClients) {
  ASSERT_OK(store_.Put("shared", AsBytes("content")));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      FtpClient client(server_.socket_path());
      for (int i = 0; i < 20; ++i) {
        if (!client.Retr("shared").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- the ftp sentinel end-to-end -----------------------------------------

class FtpSentinelTest : public FtpTest,
                        public ::testing::WithParamInterface<std::string> {
 protected:
  FtpSentinelTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global()) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  vfs::FileApi api_;
  core::ActiveFileManager manager_;
};

TEST_P(FtpSentinelTest, FetchEditStoreRoundTrip) {
  ASSERT_OK(store_.Put("doc.txt", AsBytes("original remote content")));

  sentinel::SentinelSpec spec;
  spec.name = "ftp";
  spec.config["url"] = "ftp:" + server_.socket_path();
  spec.config["file"] = "doc.txt";
  spec.config["cache"] = "disk";
  spec.config["strategy"] = GetParam();
  ASSERT_OK(manager_.CreateActiveFile("doc.af", spec));

  // Read: the sentinel fetched a local copy.
  auto content = api_.ReadWholeFile("doc.af");
  ASSERT_OK(content.status());
  EXPECT_EQ(ToString(ByteSpan(*content)), "original remote content");

  // Edit: changes are STORed back at close.
  auto handle = api_.OpenFile("doc.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("REWRITTEN")).status());
  ASSERT_OK(api_.CloseHandle(*handle));

  auto server_side = store_.Get("doc.txt");
  ASSERT_OK(server_side.status());
  EXPECT_EQ(ToString(ByteSpan(*server_side)), "REWRITTENremote content");
}

INSTANTIATE_TEST_SUITE_P(Strategies, FtpSentinelTest,
                         ::testing::Values("thread", "direct",
                                           "process_control"),
                         [](const auto& info) { return info.param; });

TEST_F(FtpTest, SentinelRequiresCache) {
  vfs::FileApi api(tmp_.path() + "/root2");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();
  sentinel::SentinelSpec spec;
  spec.name = "ftp";
  spec.config["url"] = "ftp:" + server_.socket_path();
  spec.config["file"] = "x";
  spec.config["cache"] = "none";
  ASSERT_OK(manager.CreateActiveFile("x.af", spec));
  EXPECT_EQ(api.OpenFile("x.af", vfs::OpenMode::kRead).status().code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace afs
