// The fault matrix: deterministic failpoint plans swept across
// {strategy x fault site x fault kind}.  Every cell arms one plan, drives
// a seeded schedule of file operations through an active file, and holds
// the same contract: every operation RETURNS (no hangs), failures carry an
// expected error code, and teardown leaks nothing.  Each cell's trace
// carries the exact AFS_FAULT_PLAN line that replays it.
//
// Run the full sweep with AFS_FAULT_MATRIX=full (the default is a quick
// subset, one seed per cell).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "afs.hpp"
#include "common/faultpoint.hpp"
#include "test_util.hpp"
#include "util/prng.hpp"

namespace afs {
namespace {

using sentinel::SentinelSpec;
using test::TempDir;

// ---- plan parsing and trigger semantics -----------------------------------

TEST(FaultPlanTest, ParsesSitesKindsArgsAndTriggers) {
  auto plan = fault::ParsePlan(
      "seed=42;ipc.pipe.write=error:io@n3;net.socket.call=delay:5ms@p0.25;"
      "core.link.recv=truncate:7;sentinel.dispatch.op=kill@n2");
  ASSERT_OK(plan.status());
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->rules.size(), 4u);

  EXPECT_EQ(plan->rules[0].site, "ipc.pipe.write");
  EXPECT_EQ(plan->rules[0].kind, fault::FaultKind::kError);
  EXPECT_EQ(plan->rules[0].error, ErrorCode::kIoError);
  EXPECT_EQ(plan->rules[0].nth, 3u);

  EXPECT_EQ(plan->rules[1].kind, fault::FaultKind::kDelay);
  EXPECT_EQ(plan->rules[1].delay.count(), 5000);
  EXPECT_EQ(plan->rules[1].nth, 0u);
  EXPECT_DOUBLE_EQ(plan->rules[1].probability, 0.25);

  EXPECT_EQ(plan->rules[2].kind, fault::FaultKind::kTruncate);
  EXPECT_EQ(plan->rules[2].truncate_to, 7u);

  EXPECT_EQ(plan->rules[3].kind, fault::FaultKind::kKill);
  EXPECT_EQ(plan->rules[3].nth, 2u);
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  auto original = fault::ParsePlan(
      "seed=9;a.site=error:timeout@n1;b.site=delay:250us;"
      "c.site=truncate:16@p0.5;d.site=kill@n4");
  ASSERT_OK(original.status());
  auto reparsed = fault::ParsePlan(original->ToString());
  SCOPED_TRACE(original->ToString());
  ASSERT_OK(reparsed.status());
  EXPECT_EQ(reparsed->seed, original->seed);
  ASSERT_EQ(reparsed->rules.size(), original->rules.size());
  for (std::size_t i = 0; i < original->rules.size(); ++i) {
    const fault::FaultRule& a = original->rules[i];
    const fault::FaultRule& b = reparsed->rules[i];
    EXPECT_EQ(b.site, a.site) << i;
    EXPECT_EQ(b.kind, a.kind) << i;
    EXPECT_EQ(b.error, a.error) << i;
    EXPECT_EQ(b.delay.count(), a.delay.count()) << i;
    EXPECT_EQ(b.truncate_to, a.truncate_to) << i;
    EXPECT_EQ(b.nth, a.nth) << i;
    EXPECT_DOUBLE_EQ(b.probability, a.probability) << i;
  }
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(fault::ParsePlan("just-a-site-no-rule").ok());
  EXPECT_FALSE(fault::ParsePlan("x=frobnicate").ok());
  EXPECT_FALSE(fault::ParsePlan("x=error:notacode").ok());
  EXPECT_FALSE(fault::ParsePlan("x=error:io@q7").ok());
  EXPECT_FALSE(fault::ParsePlan("seed=notanumber;x=error:io").ok());
}

TEST(FaultPlanTest, NthTriggerFiresExactlyOnce) {
  auto plan = fault::ParsePlan("seed=1;unit.site=error:timeout@n3");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));
  for (int hit = 1; hit <= 8; ++hit) {
    const Status status = fault::Hit("unit.site");
    if (hit == 3) {
      EXPECT_STATUS_CODE(status, ErrorCode::kTimeout);
    } else {
      EXPECT_OK(status);
    }
  }
  EXPECT_EQ(fault::TriggeredCount(), 1u);
}

TEST(FaultPlanTest, ProbabilityTriggerIsDeterministicPerSeed) {
  auto pattern_for = [](std::uint64_t seed) {
    auto plan = fault::ParsePlan("seed=" + std::to_string(seed) +
                                 ";unit.coin=error:io@p0.5");
    EXPECT_TRUE(plan.ok());
    fault::ScopedFaultPlan scoped(std::move(*plan));
    std::uint64_t bits = 0;
    for (int i = 0; i < 64; ++i) {
      bits = (bits << 1) | (fault::Hit("unit.coin").ok() ? 0u : 1u);
    }
    return bits;
  };
  const std::uint64_t first = pattern_for(123);
  EXPECT_EQ(pattern_for(123), first);   // same seed: identical schedule
  EXPECT_NE(pattern_for(124), first);   // new seed: a different coin
}

TEST(FaultPlanTest, PrefixRuleArmsTheWholeSubsystem) {
  auto plan = fault::ParsePlan("seed=1;ipc.pipe.*=error:closed");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));
  EXPECT_STATUS_CODE(fault::Hit("ipc.pipe.read"), ErrorCode::kClosed);
  EXPECT_STATUS_CODE(fault::Hit("ipc.pipe.write"), ErrorCode::kClosed);
  EXPECT_OK(fault::Hit("ipc.frame.read"));  // different subsystem: unarmed
}

TEST(FaultPlanTest, TruncateSiteShortensButNeverGrowsPayloads) {
  auto plan = fault::ParsePlan("seed=1;unit.cut=truncate:3");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));
  EXPECT_EQ(AFS_FAULT_TRUNCATE("unit.cut", std::size_t{10}), 3u);
  EXPECT_EQ(AFS_FAULT_TRUNCATE("unit.cut", std::size_t{2}), 2u);  // clamped
  EXPECT_EQ(AFS_FAULT_TRUNCATE("unit.other", std::size_t{10}), 10u);
}

TEST(FaultPlanTest, ClearDisarmsEverySite) {
  {
    auto plan = fault::ParsePlan("seed=1;unit.site=error:io");
    ASSERT_OK(plan.status());
    fault::ScopedFaultPlan scoped(std::move(*plan));
    EXPECT_TRUE(fault::Enabled());
    EXPECT_FALSE(fault::Hit("unit.site").ok());
  }
  EXPECT_FALSE(fault::Enabled());
  EXPECT_OK(fault::Hit("unit.site"));
}

TEST(FaultPlanTest, EnvironmentVariableInstallsAPlan) {
  ASSERT_EQ(::unsetenv("AFS_FAULT_PLAN"), 0);
  EXPECT_FALSE(fault::InstallPlanFromEnv());

  ASSERT_EQ(::setenv("AFS_FAULT_PLAN", "seed=5;unit.env=error:busy", 1), 0);
  EXPECT_TRUE(fault::InstallPlanFromEnv());
  EXPECT_STATUS_CODE(fault::Hit("unit.env"), ErrorCode::kBusy);
  fault::ClearPlan();
  ASSERT_EQ(::unsetenv("AFS_FAULT_PLAN"), 0);
}

// ---- the strategy matrix ---------------------------------------------------

// One armed plan against one strategy.  `health` cells must keep serving
// once the plan clears: the probe read after ClearPlan has to succeed.
// That is only provable when the faults fire in the application's own
// process — ClearPlan cannot reach a forked child's inherited copy of the
// plan — or when the probe's success does not depend on the child (EOF on
// a wound-down stream reads as 0 bytes, ok).  The rest are expected to
// end with a dead or poisoned handle; for them the contract is just
// "clean codes, no hangs, nothing leaked".
struct Cell {
  const char* name;
  const char* strategy;
  const char* plan;  // rule list; the runner prepends the seed
  bool health;
  bool quick;  // member of the default (quick) sweep
  // When set, forces the spec's shm_threshold so even the matrix's 4-byte
  // payloads ride the shared-memory ring (docs/SHM_DATA_PLANE.md).  Cells
  // without it run the default data plane.  Note ipc.shm.* sites execute
  // in BOTH processes (the ring is shared), so kill rules never go there —
  // the kill-mid-ring-write cells arm the child-only dispatch/stream sites
  // instead, with the ring carrying the payload when the kill lands.
  const char* shm_threshold = nullptr;
};

// Kill rules are armed ONLY at sites that execute inside forked sentinel
// children (sentinel.dispatch.op under process_control, sentinel.stream.*
// under process); arming them at in-process sites would kill the test
// runner itself.
constexpr Cell kCells[] = {
    // thread strategy: the sentinel is an injected thread.
    {"thread_roundtrip_error", "thread",
     "core.link.roundtrip=error:io@p0.3", true, true},
    // An injected admission shed is transient by contract: the handle is
    // never poisoned and keeps serving once the plan clears.
    {"thread_roundtrip_overloaded", "thread",
     "core.link.roundtrip=error:overloaded@p0.3", true, true},
    {"thread_dispatch_error", "thread",
     "sentinel.dispatch.op=error:remote@p0.3", true, true},
    {"thread_recv_stall", "thread",
     "sentinel.endpoint.recv=delay:400ms@n2", false, false},
    {"thread_endpoint_closed", "thread",
     "sentinel.endpoint.recv=error:closed@n2", false, true},
    // A failed send poisons the handle (RoundTrip cannot know whether the
    // sentinel saw the command), so no health probe after the plan clears.
    {"thread_link_send_error", "thread",
     "core.link.send=error:io@p0.3", false, true},
    // process_control strategy: forked child + 3-pipe control channel.
    {"pc_dispatch_error", "process_control",
     "sentinel.dispatch.op=error:remote@p0.3", false, true},
    {"pc_frame_write_error", "process_control",
     "ipc.frame.write=error:io@p0.25", false, true},
    {"pc_endpoint_data_error", "process_control",
     "sentinel.endpoint.data=error:io@n1", false, true},
    {"pc_endpoint_send_error", "process_control",
     "sentinel.endpoint.send=error:closed@n2", false, true},
    {"pc_dispatch_kill", "process_control",
     "sentinel.dispatch.op=kill@n2", false, true},
    {"pc_dispatch_stall", "process_control",
     "sentinel.dispatch.op=delay:400ms@n1", false, false},
    {"pc_pipe_write_torn", "process_control",
     "ipc.pipe.write=truncate:2@n3", false, false},
    // process strategy: forked child + raw byte-stream pipes.
    {"process_stream_read_error", "process",
     "sentinel.stream.read=error:io@n1", true, true},
    {"process_stream_kill", "process",
     "sentinel.stream.write=kill@n1", false, false},
    {"process_pipe_read_trunc", "process",
     "ipc.pipe.read=truncate:1@p0.5", true, false},
    // loop strategy: the sentinel is a session on a shared event-loop
    // shard.  Every site here executes in the test runner's own process
    // (the loop thread), so kill rules are forbidden — core.loop.crash is
    // the in-process stand-in: it tears the session down mid-command and
    // the handle reads kClosed.
    {"loop_dispatch_error", "loop",
     "sentinel.dispatch.op=error:remote@p0.3", true, true},
    {"loop_crash_midcommand", "loop",
     "core.loop.crash=error:io@n2", false, true},
    {"loop_openack_error", "loop",
     "sentinel.dispatch.openack=error:io@n1", false, true},
    {"loop_link_send_error", "loop",
     "core.link.send=error:io@p0.3", false, true},
    {"loop_dispatch_stall", "loop",
     "sentinel.dispatch.op=delay:400ms@n1", false, false},
    // direct strategy: sentinel calls in the caller's frame.
    {"direct_op_error", "direct",
     "core.direct.op=error:io@p0.5", true, true},
    {"direct_open_error", "direct",
     "core.strategy.open=error:io@n1", false, true},
    {"direct_manager_open_error", "direct",
     "core.manager.open=error:io@n1", false, true},
    // shm data plane (threshold=1: every payload rides the ring).
    // Ring setup fails at open -> the link comes up on pipes and keeps
    // serving: fallback is invisible to the operations.
    {"pc_shm_map_fail_falls_back", "process_control",
     "ipc.shm.map_fail=error:io@n1", true, true, "1"},
    // A write torn mid-ring leaves the announcing control frame without
    // its bytes; both sides must diagnose, never resynchronize wrong.
    {"pc_shm_torn_write", "process_control",
     "ipc.shm.torn_write=truncate:2@n1", false, true, "1"},
    // A stalled ring consumer costs the peer kTimeout, never a hang.
    {"pc_shm_peer_stall", "process_control",
     "ipc.shm.peer_stall=delay:400ms@n1", false, true, "1"},
    {"pc_shm_kill_mid_ring_write", "process_control",
     "sentinel.dispatch.op=kill@n2", false, true, "1"},
    {"process_shm_map_fail_falls_back", "process",
     "ipc.shm.map_fail=error:io@n1", true, true, "1"},
    {"process_shm_torn_write", "process",
     "ipc.shm.torn_write=truncate:2@n1", false, true, "1"},
    {"process_shm_peer_stall", "process",
     "ipc.shm.peer_stall=delay:400ms@n1", true, true, "1"},
    {"process_shm_kill_mid_ring_write", "process",
     "sentinel.stream.write=kill@n1", false, true, "1"},
    // loop sessions are in-process: no ring exists, the shm sites must
    // never fire and the armed rules stay untriggered no-ops.
    {"loop_shm_sites_never_fire", "loop",
     "ipc.shm.map_fail=error:io@n1;ipc.shm.torn_write=truncate:2@n1;"
     "ipc.shm.peer_stall=delay:400ms@n1",
     true, true, "1"},
};

bool FullMatrix() {
  const char* mode = std::getenv("AFS_FAULT_MATRIX");
  return mode != nullptr && std::string_view(mode) == "full";
}

std::vector<std::uint64_t> MatrixSeeds() {
  if (FullMatrix()) return {1, 2, 3, 4};
  return {1};
}

// Any failure a faulted operation reports must be one of these: a code
// that names what went wrong.  kInvalidArgument or a junk value here
// would mean an injected transport fault was misdiagnosed.
bool IsAllowedFailure(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIoError:
    case ErrorCode::kTimeout:
    case ErrorCode::kClosed:
    case ErrorCode::kRemoteError:
    case ErrorCode::kProtocolError:
    case ErrorCode::kInternal:
    case ErrorCode::kUnsupported:  // seek/size under the process strategy
    case ErrorCode::kCorrupt:
    case ErrorCode::kOverloaded:   // admission shed: retryable by contract
      return true;
    default:
      return false;
  }
}

void RunCell(const Cell& cell, std::uint64_t seed, std::size_t cell_index) {
  const std::string plan_text =
      "seed=" + std::to_string(seed) + ";" + cell.plan;
  SCOPED_TRACE(std::string("cell=") + cell.name +
               "  replay: AFS_FAULT_PLAN=\"" + plan_text + "\"");

  TempDir tmp;
  vfs::FileApi api(tmp.path() + "/root");
  sentinels::RegisterBuiltinSentinels();
  core::ActiveFileManager manager(api, sentinel::SentinelRegistry::Global());
  manager.Install();

  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = cell.strategy;
  spec.config["op_timeout_ms"] = "150";
  if (cell.shm_threshold != nullptr) {
    spec.config["shm_threshold"] = cell.shm_threshold;
  }
  ASSERT_OK(manager.CreateActiveFile("cell.af", spec,
                                     AsBytes("0123456789abcdef")));

  auto plan = fault::ParsePlan(plan_text);
  ASSERT_OK(plan.status());
  fault::InstallPlan(std::move(*plan));
  struct Disarm {
    ~Disarm() { fault::ClearPlan(); }
  } disarm;

  auto handle = api.OpenFile("cell.af", vfs::OpenMode::kReadWrite);
  if (!handle.ok()) {
    // A faulted open must fail with a diagnosable code and leak nothing;
    // once the plan clears, the very same open has to work.
    EXPECT_TRUE(IsAllowedFailure(handle.status().code()))
        << handle.status().ToString();
    EXPECT_EQ(api.open_handle_count(), 0u);
    fault::ClearPlan();
    auto retry = api.OpenFile("cell.af", vfs::OpenMode::kReadWrite);
    ASSERT_OK(retry.status());
    ASSERT_OK(api.CloseHandle(*retry));
    EXPECT_EQ(api.open_handle_count(), 0u);
    return;
  }

  // The seeded operation schedule.  Whatever the plan injects, every call
  // must come back — the matrix's job is turning hangs into failures.
  Prng prng(seed * 0x9E3779B97F4A7C15ull + cell_index);
  const int ops = FullMatrix() ? 24 : 12;
  for (int i = 0; i < ops; ++i) {
    SCOPED_TRACE("op #" + std::to_string(i));
    Status status = Status::Ok();
    switch (prng.NextBelow(4)) {
      case 0: {
        Buffer out(4);
        status = api.ReadFile(*handle, MutableByteSpan(out)).status();
        break;
      }
      case 1:
        status = api.WriteFile(*handle, AsBytes("wxyz")).status();
        break;
      case 2:
        status = api.SetFilePointer(*handle,
                                    static_cast<std::int64_t>(
                                        prng.NextBelow(8)),
                                    vfs::SeekOrigin::kBegin)
                     .status();
        break;
      default:
        status = api.GetFileSize(*handle).status();
        break;
    }
    if (!status.ok()) {
      EXPECT_TRUE(IsAllowedFailure(status.code())) << status.ToString();
    }
  }

  fault::ClearPlan();
  if (cell.health) {
    // Transient faults only: with the plan gone the handle still serves.
    Buffer probe(4);
    EXPECT_OK(api.ReadFile(*handle, MutableByteSpan(probe)).status());
  }
  const Status closed = api.CloseHandle(*handle);
  if (!closed.ok()) {
    EXPECT_TRUE(IsAllowedFailure(closed.code())) << closed.ToString();
  }
  EXPECT_EQ(api.open_handle_count(), 0u);
}

TEST(FaultMatrixTest, EveryCellFailsCleanOrNotAtAll) {
  const bool full = FullMatrix();
  for (std::size_t i = 0; i < std::size(kCells); ++i) {
    const Cell& cell = kCells[i];
    if (!full && !cell.quick) continue;
    for (std::uint64_t seed : MatrixSeeds()) {
      RunCell(cell, seed, i);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---- socket transport: retry and bounded failure ---------------------------

class SocketFaultTest : public ::testing::Test {
 protected:
  SocketFaultTest()
      : path_(test::UniqueSocketPath(tmp_.path(), "fault")),
        server_(path_, files_) {
    EXPECT_TRUE(files_.Put("k", AsBytes("v")).ok());
    EXPECT_TRUE(server_.Start().ok());
  }
  ~SocketFaultTest() override { server_.Stop(); }

  TempDir tmp_;
  net::FileServer files_;
  std::string path_;
  net::SocketServer server_;
};

TEST_F(SocketFaultTest, TransientCallFaultIsAbsorbedByRetry) {
  net::SocketClient client(path_);  // default options allow 2 retries
  net::FileClient fc(client);

  auto plan = fault::ParsePlan("seed=3;net.socket.call=error:io@n1");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));

  // First attempt eats the injected kIoError; the bounded retry wins.
  auto got = fc.Get("k");
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(got->data)), "v");
  EXPECT_EQ(fault::TriggeredCount(), 1u);
}

TEST_F(SocketFaultTest, PersistentConnectFaultEndsBoundedNotForever) {
  net::SocketClient::Options options;
  options.max_retries = 2;
  options.retry_backoff = Micros{100};
  net::SocketClient client(path_, options);
  net::FileClient fc(client);

  // Every connect attempt fails: the call must end after the initial try
  // plus max_retries — not spin forever and not mask the code.
  auto plan = fault::ParsePlan("seed=4;net.socket.connect=error:io");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));
  EXPECT_STATUS_CODE(fc.Get("k").status(), ErrorCode::kIoError);
  EXPECT_EQ(fault::TriggeredCount(), 3u);  // 1 try + 2 retries
}

TEST_F(SocketFaultTest, ServerSideDropIsRecoveredByClientRetry) {
  net::SocketClient client(path_);
  net::FileClient fc(client);

  // The server reads the request, then drops the connection without a
  // reply; the client sees EOF mid-call, reconnects, and retries.
  auto plan = fault::ParsePlan("seed=5;net.socket.serve=error:io@n1");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));
  auto got = fc.Get("k");
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(got->data)), "v");
}

TEST_F(SocketFaultTest, AcceptEmfileBacksOffAndRecovers) {
  // Injected descriptor exhaustion on the first accept: the server must
  // park the listening socket and re-arm it from a timer — never spin the
  // loop — and the connection that was shed recovers through the client's
  // ordinary reconnect path once the trigger is spent.
  auto plan = fault::ParsePlan("seed=7;net.accept.emfile=error:overloaded@n1");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));

  net::SocketClient client(path_);  // default options allow 2 retries
  net::FileClient fc(client);
  auto got = fc.Get("k");
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(got->data)), "v");
  EXPECT_EQ(fault::TriggeredCount(), 1u);
}

TEST(SimNetFaultTest, InjectedSimCallFaultSurfacesToCaller) {
  ManualClock clock;
  net::SimNet net(clock);
  net::FileServer files;
  ASSERT_OK(files.Put("f", AsBytes("x")));
  ASSERT_OK(net.AddLink("c", "s", {}));
  ASSERT_OK(net.Mount("s", "files", files));
  auto transport = net.Connect("c", "s", "files");
  net::FileClient fc(*transport);

  auto plan = fault::ParsePlan("seed=6;net.simnet.call=error:busy@n1");
  ASSERT_OK(plan.status());
  fault::ScopedFaultPlan scoped(std::move(*plan));
  EXPECT_STATUS_CODE(fc.Get("f").status(), ErrorCode::kBusy);
  ASSERT_OK(fc.Get("f").status());  // the n1 trigger is spent
}

}  // namespace
}  // namespace afs
