// Exec-mode sentinel tests: the active part as a real external executable
// (AFS_SENTINELD_PATH is injected by CMake as the path to the built
// afs_sentineld binary).  This is the paper's literal launch model.
#include <gtest/gtest.h>

#include "afs.hpp"
#include "net/socket_transport.hpp"
#include "test_util.hpp"

#ifndef AFS_SENTINELD_PATH
#error "AFS_SENTINELD_PATH must be defined by the build"
#endif

namespace afs {
namespace {

using core::ActiveFileManager;
using core::ManagerOptions;
using sentinel::SentinelSpec;
using test::TempDir;

class ExecSentinelTest : public ::testing::Test {
 protected:
  ExecSentinelTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global()) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  SentinelSpec ExecSpec(const std::string& sentinel,
                        const std::string& strategy) {
    SentinelSpec spec;
    spec.name = sentinel;
    spec.config["exec"] = AFS_SENTINELD_PATH;
    spec.config["strategy"] = strategy;
    return spec;
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ActiveFileManager manager_;
};

TEST_F(ExecSentinelTest, ControlModeFullApi) {
  ASSERT_OK(manager_.CreateActiveFile(
      "x.af", ExecSpec("null", "process_control"), AsBytes("0123456789")));
  auto handle = api_.OpenFile("x.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());

  EXPECT_EQ(*api_.GetFileSize(*handle), 10u);
  ASSERT_OK(api_.SetFilePointer(*handle, 5, vfs::SeekOrigin::kBegin).status());
  Buffer out(5);
  ASSERT_OK(api_.ReadFile(*handle, MutableByteSpan(out)).status());
  EXPECT_EQ(ToString(ByteSpan(out)), "56789");
  ASSERT_OK(api_.SetFilePointer(*handle, 0, vfs::SeekOrigin::kBegin).status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("XX")).status());
  ASSERT_OK(api_.CloseHandle(*handle));

  auto data = manager_.ReadDataPart("x.af");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "XX23456789");
}

TEST_F(ExecSentinelTest, StreamModeDeliversDataPart) {
  ASSERT_OK(manager_.CreateActiveFile("s.af", ExecSpec("null", "process"),
                                      AsBytes("exec-streamed")));
  auto content = api_.ReadWholeFile("s.af");
  ASSERT_OK(content.status());
  EXPECT_EQ(ToString(ByteSpan(*content)), "exec-streamed");
}

TEST_F(ExecSentinelTest, StreamModeWritesReachBundle) {
  ASSERT_OK(manager_.CreateActiveFile("w.af", ExecSpec("null", "process")));
  auto handle = api_.OpenFile("w.af", vfs::OpenMode::kWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("from-app")).status());
  ASSERT_OK(api_.CloseHandle(*handle));
  auto data = manager_.ReadDataPart("w.af");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "from-app");
}

TEST_F(ExecSentinelTest, CompressSentinelInExternalProcess) {
  SentinelSpec spec = ExecSpec("compress", "process_control");
  spec.config["codec"] = "rle";
  ASSERT_OK(manager_.CreateActiveFile("c.af", spec));

  std::string text(4000, 'z');
  auto handle = api_.OpenFile("c.af", vfs::OpenMode::kWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes(text)).status());
  ASSERT_OK(api_.CloseHandle(*handle));

  auto stored = manager_.ReadDataPart("c.af");
  ASSERT_OK(stored.status());
  EXPECT_LT(stored->size(), 200u);  // compressed by the external process
  auto roundtrip = api_.ReadWholeFile("c.af");
  ASSERT_OK(roundtrip.status());
  EXPECT_EQ(ToString(ByteSpan(*roundtrip)), text);
}

TEST_F(ExecSentinelTest, RemoteSentinelOverSocketFromExternalProcess) {
  // The external sentinel reaches a remote source through a Unix socket
  // served by THIS process — the full distributed path of the paper, with
  // three genuinely separate protection domains: app, sentinel, server.
  net::FileServer files;
  ASSERT_OK(files.Put("doc", AsBytes("served-bytes")));
  net::SocketServer server(tmp_.path() + "/files.sock", files);
  ASSERT_OK(server.Start());

  SentinelSpec spec = ExecSpec("remote", "process_control");
  spec.config["cache"] = "none";
  spec.config["url"] = "sock:" + tmp_.path() + "/files.sock";
  spec.config["file"] = "doc";
  ASSERT_OK(manager_.CreateActiveFile("r.af", spec));

  auto content = api_.ReadWholeFile("r.af");
  ASSERT_OK(content.status());
  EXPECT_EQ(ToString(ByteSpan(*content)), "served-bytes");

  auto handle = api_.OpenFile("r.af", vfs::OpenMode::kWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("UPDATED")).status());
  ASSERT_OK(api_.CloseHandle(*handle));
  auto server_side = files.Get("doc");
  ASSERT_OK(server_side.status());
  EXPECT_EQ(ToString(ByteSpan(*server_side)), "UPDATEDbytes");
  server.Stop();
}

TEST_F(ExecSentinelTest, MissingExecutableFailsOpenCleanly) {
  SentinelSpec spec;
  spec.name = "null";
  spec.config["exec"] = "/no/such/sentineld";
  spec.config["strategy"] = "process_control";
  ASSERT_OK(manager_.CreateActiveFile("m.af", spec, AsBytes("x")));
  auto handle = api_.OpenFile("m.af", vfs::OpenMode::kRead);
  EXPECT_FALSE(handle.ok());  // banner never arrives; exec failed
  EXPECT_EQ(api_.open_handle_count(), 0u);
}

}  // namespace
}  // namespace afs
