// The plain process strategy with non-trivial sentinels: any command-model
// sentinel runs under the two-pipe stream adapter, with the sequential
// semantics the paper describes for strategy 1.
#include <gtest/gtest.h>

#include "afs.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

using core::ActiveFileManager;
using sentinel::SentinelSpec;
using test::TempDir;

class StreamStrategyTest : public ::testing::Test {
 protected:
  StreamStrategyTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global()) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ActiveFileManager manager_;
};

TEST_F(StreamStrategyTest, CompressFilterOverPipes) {
  SentinelSpec spec;
  spec.name = "compress";
  spec.config["codec"] = "rle";
  spec.config["strategy"] = "process";
  ASSERT_OK(manager_.CreateActiveFile("c.af", spec));

  // Write a run-heavy document through the stream.
  const std::string text(5000, 'q');
  auto handle = api_.OpenFile("c.af", vfs::OpenMode::kWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes(text)).status());
  ASSERT_OK(api_.CloseHandle(*handle));  // sentinel persists at close

  // On disk: compressed image (written by the forked sentinel).
  auto stored = manager_.ReadDataPart("c.af");
  ASSERT_OK(stored.status());
  EXPECT_LT(stored->size(), 300u);
  EXPECT_EQ(ToString(ByteSpan(stored->data(), 4)), "AFC1");

  // A fresh open streams the decompressed plaintext to the application.
  auto reopened = api_.OpenFile("c.af", vfs::OpenMode::kRead);
  ASSERT_OK(reopened.status());
  std::string collected;
  Buffer chunk(512);
  while (true) {
    auto n = api_.ReadFile(*reopened, MutableByteSpan(chunk));
    ASSERT_OK(n.status());
    if (*n == 0) break;
    collected += ToString(ByteSpan(chunk.data(), *n));
  }
  EXPECT_EQ(collected, text);
  ASSERT_OK(api_.CloseHandle(*reopened));
}

TEST_F(StreamStrategyTest, InfiniteGeneratorReadPrefixThenClose) {
  SentinelSpec spec;
  spec.name = "random";
  spec.config["cache"] = "none";
  spec.config["seed"] = "3";
  spec.config["strategy"] = "process";
  ASSERT_OK(manager_.CreateActiveFile("inf.af", spec));

  auto handle = api_.OpenFile("inf.af", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());
  // The sentinel would push forever; take a finite prefix...
  Buffer prefix(8192);
  std::size_t got = 0;
  while (got < prefix.size()) {
    auto n = api_.ReadFile(
        *handle, MutableByteSpan(prefix.data() + got, prefix.size() - got));
    ASSERT_OK(n.status());
    ASSERT_GT(*n, 0u);
    got += *n;
  }
  // ...and close mid-stream: the sentinel must notice (EPIPE) and exit, or
  // this CloseHandle (which waits for the child) would hang.
  ASSERT_OK(api_.CloseHandle(*handle));

  // Determinism: the same prefix arrives under a command strategy.
  SentinelSpec direct = spec;
  direct.config["strategy"] = "direct";
  ASSERT_OK(manager_.CreateActiveFile("inf2.af", direct));
  auto h2 = api_.OpenFile("inf2.af", vfs::OpenMode::kRead);
  ASSERT_OK(h2.status());
  Buffer prefix2(8192);
  std::size_t got2 = 0;
  while (got2 < prefix2.size()) {
    auto n = api_.ReadFile(
        *h2, MutableByteSpan(prefix2.data() + got2, prefix2.size() - got2));
    ASSERT_OK(n.status());
    got2 += *n;
  }
  ASSERT_OK(api_.CloseHandle(*h2));
  EXPECT_EQ(prefix, prefix2);
}

TEST_F(StreamStrategyTest, LoggingSentinelOverPipes) {
  SentinelSpec spec;
  spec.name = "log";
  spec.config["strategy"] = "process";
  ASSERT_OK(manager_.CreateActiveFile("l.af", spec));
  auto handle = api_.OpenFile("l.af", vfs::OpenMode::kWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("record-a")).status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("record-b")).status());
  ASSERT_OK(api_.CloseHandle(*handle));
  auto data = manager_.ReadDataPart("l.af");
  ASSERT_OK(data.status());
  // The 4 KiB pump chunking may merge the two app writes into one sentinel
  // write; both orderings are legal, records are newline-framed either way.
  const std::string text = ToString(ByteSpan(*data));
  EXPECT_NE(text.find("record-a"), std::string::npos);
  EXPECT_NE(text.find("record-b"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// Registry-of-sentinels API behaviour.
TEST(SentinelRegistryTest, RegisterLookupAndErrors) {
  sentinel::SentinelRegistry registry;
  EXPECT_FALSE(registry.Has("x"));
  ASSERT_OK(registry.Register("x", [](const sentinel::SentinelSpec&) {
    return std::make_unique<sentinel::Sentinel>();
  }));
  EXPECT_TRUE(registry.Has("x"));
  EXPECT_EQ(registry
                .Register("x",
                          [](const sentinel::SentinelSpec&) {
                            return std::make_unique<sentinel::Sentinel>();
                          })
                .code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(registry.Register("", nullptr).code(),
            ErrorCode::kInvalidArgument);

  sentinel::SentinelSpec spec;
  spec.name = "x";
  EXPECT_OK(registry.Create(spec).status());
  spec.name = "missing";
  EXPECT_EQ(registry.Create(spec).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"x"}));
}

TEST(SentinelRegistryTest, NullFactoryResultIsInternalError) {
  sentinel::SentinelRegistry registry;
  ASSERT_OK(registry.Register("broken", [](const sentinel::SentinelSpec&) {
    return std::unique_ptr<sentinel::Sentinel>();
  }));
  sentinel::SentinelSpec spec;
  spec.name = "broken";
  EXPECT_EQ(registry.Create(spec).status().code(), ErrorCode::kInternal);
}

TEST(SentinelRegistryTest, BuiltinsAllPresent) {
  sentinel::SentinelRegistry registry;
  sentinels::RegisterBuiltinSentinels(registry);
  for (const char* name :
       {"null", "random", "compress", "audit", "log", "notify", "registry",
        "remote", "ftp", "http", "tee", "merge", "quotes", "inbox", "outbox",
        "pipeline", "policy"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
  // Idempotent re-registration.
  sentinels::RegisterBuiltinSentinels(registry);
  EXPECT_EQ(registry.Names().size(), 17u);
}

}  // namespace
}  // namespace afs
