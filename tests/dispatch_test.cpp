// Dispatch-loop unit tests, using a scripted in-memory endpoint and a
// probe sentinel that records lifecycle calls.
#include <gtest/gtest.h>

#include <deque>

#include "sentinel/dispatch.hpp"
#include "sentinel/stream.hpp"
#include "test_util.hpp"

namespace afs::sentinel {
namespace {

// Endpoint that replays a fixed command script and records responses.
class ScriptedEndpoint final : public SentinelEndpoint {
 public:
  std::deque<ControlMessage> script;
  std::vector<ControlResponse> responses;
  Buffer write_payload;  // returned by AF_GetDataFromAppl

  Result<ControlMessage> AF_GetControl() override {
    if (script.empty()) return ClosedError("script exhausted");
    ControlMessage msg = std::move(script.front());
    script.pop_front();
    return msg;
  }

  Result<Buffer> AF_GetDataFromAppl(std::size_t length) override {
    Buffer out = write_payload;
    out.resize(length, 0);
    return out;
  }

  Status AF_SendResponse(const ControlResponse& response) override {
    responses.push_back(response);
    return Status::Ok();
  }
};

// Sentinel that counts lifecycle events.
class ProbeSentinel final : public Sentinel {
 public:
  Status OnOpen(SentinelContext&) override {
    ++opens;
    return open_status;
  }
  Status OnClose(SentinelContext&) override {
    ++closes;
    return Status::Ok();
  }

  int opens = 0;
  int closes = 0;
  Status open_status = Status::Ok();
};

TEST(DispatchTest, BannerThenCloseLifecycle) {
  ScriptedEndpoint endpoint;
  ControlMessage close;
  close.op = ControlOp::kClose;
  endpoint.script.push_back(close);

  ProbeSentinel probe;
  MemoryDataStore store;
  SentinelContext ctx;
  ctx.cache = &store;

  EXPECT_EQ(RunSentinelLoop(probe, endpoint, ctx), 0);
  EXPECT_EQ(probe.opens, 1);
  EXPECT_EQ(probe.closes, 1);
  ASSERT_EQ(endpoint.responses.size(), 2u);  // banner + close ack
  EXPECT_OK(endpoint.responses[0].status);
  EXPECT_OK(endpoint.responses[1].status);
}

TEST(DispatchTest, FailedOpenSkipsLoopAndOnClose) {
  ScriptedEndpoint endpoint;
  ProbeSentinel probe;
  probe.open_status = PermissionDeniedError("nope");
  MemoryDataStore store;
  SentinelContext ctx;
  ctx.cache = &store;

  EXPECT_EQ(RunSentinelLoop(probe, endpoint, ctx), 0);
  EXPECT_EQ(probe.closes, 0);
  ASSERT_EQ(endpoint.responses.size(), 1u);
  EXPECT_EQ(endpoint.responses[0].status.code(),
            ErrorCode::kPermissionDenied);
}

TEST(DispatchTest, ChannelLossTriggersImplicitClose) {
  ScriptedEndpoint endpoint;  // empty script -> kClosed immediately
  ProbeSentinel probe;
  MemoryDataStore store;
  SentinelContext ctx;
  ctx.cache = &store;

  EXPECT_EQ(RunSentinelLoop(probe, endpoint, ctx), 0);
  EXPECT_EQ(probe.closes, 1);  // side effects still flushed
}

TEST(DispatchTest, WriteThenReadAdvancesPosition) {
  ScriptedEndpoint endpoint;
  endpoint.write_payload = ToBuffer("abcdef");

  ControlMessage write;
  write.op = ControlOp::kWrite;
  write.length = 6;
  endpoint.script.push_back(write);

  ControlMessage seek;
  seek.op = ControlOp::kSeek;
  seek.offset = 0;
  seek.origin = static_cast<std::uint8_t>(SeekOrigin::kBegin);
  endpoint.script.push_back(seek);

  ControlMessage read;
  read.op = ControlOp::kRead;
  read.length = 6;
  endpoint.script.push_back(read);

  ControlMessage close;
  close.op = ControlOp::kClose;
  endpoint.script.push_back(close);

  Sentinel null_sentinel;
  MemoryDataStore store;
  SentinelContext ctx;
  ctx.cache = &store;
  EXPECT_EQ(RunSentinelLoop(null_sentinel, endpoint, ctx), 0);

  ASSERT_EQ(endpoint.responses.size(), 5u);  // banner + 4 ops
  EXPECT_EQ(endpoint.responses[1].number, 6u);                // write count
  EXPECT_EQ(endpoint.responses[2].number, 0u);                // new position
  EXPECT_EQ(ToString(ByteSpan(endpoint.responses[3].payload)), "abcdef");
  EXPECT_EQ(endpoint.responses[3].number, 6u);
}

TEST(DispatchTest, ErrorsBecomeResponsesNotChannelFailures) {
  ScriptedEndpoint endpoint;
  ControlMessage size;
  size.op = ControlOp::kGetSize;
  endpoint.script.push_back(size);
  ControlMessage close;
  close.op = ControlOp::kClose;
  endpoint.script.push_back(close);

  Sentinel null_sentinel;
  SentinelContext ctx;  // NO cache: size must fail with kUnsupported
  EXPECT_EQ(RunSentinelLoop(null_sentinel, endpoint, ctx), 0);
  ASSERT_EQ(endpoint.responses.size(), 3u);
  EXPECT_EQ(endpoint.responses[1].status.code(), ErrorCode::kUnsupported);
  EXPECT_OK(endpoint.responses[2].status);  // loop kept running
}

TEST(DispatchTest, CustomControlRoundTrip) {
  class EchoControlSentinel final : public Sentinel {
   public:
    Result<Buffer> OnControl(SentinelContext&, ByteSpan request) override {
      Buffer out = ToBuffer("echo:");
      out.insert(out.end(), request.begin(), request.end());
      return out;
    }
  };

  ScriptedEndpoint endpoint;
  ControlMessage custom;
  custom.op = ControlOp::kCustom;
  custom.payload = ToBuffer("ping");
  endpoint.script.push_back(custom);
  ControlMessage close;
  close.op = ControlOp::kClose;
  endpoint.script.push_back(close);

  EchoControlSentinel sentinel;
  SentinelContext ctx;
  EXPECT_EQ(RunSentinelLoop(sentinel, endpoint, ctx), 0);
  EXPECT_EQ(ToString(ByteSpan(endpoint.responses[1].payload)), "echo:ping");
}

// ---- stream pump -------------------------------------------------------

// The two directions are tested separately: within one pump run they race
// by design (the reader thread eagerly streams whatever the data part
// holds while the writer loop mutates it — an inherent property of the
// paper's two-pipe model).
TEST(StreamPumpTest, ReaderThreadStreamsDataPartToApp) {
  std::string pushed;
  std::mutex push_mu;
  bool finished = false;

  StreamIo io;
  io.read_from_app = [](MutableByteSpan) -> Result<std::size_t> {
    return std::size_t{0};  // the app writes nothing
  };
  io.write_to_app = [&](ByteSpan data) {
    std::lock_guard<std::mutex> lock(push_mu);
    pushed += ToString(data);
    return Status::Ok();
  };
  io.finish_output = [&] {
    std::lock_guard<std::mutex> lock(push_mu);
    finished = true;
  };

  Sentinel null_sentinel;
  MemoryDataStore store(ToBuffer("preexisting"));
  SentinelContext ctx;
  ctx.cache = &store;
  EXPECT_EQ(RunStreamPump(null_sentinel, io, ctx), 0);
  EXPECT_TRUE(finished);
  EXPECT_EQ(pushed, "preexisting");
}

TEST(StreamPumpTest, WriterLoopStoresAppBytesSequentially) {
  Buffer input = ToBuffer("written-by-app");
  std::size_t input_pos = 0;

  StreamIo io;
  io.read_from_app = [&](MutableByteSpan out) -> Result<std::size_t> {
    const std::size_t n = std::min(out.size(), input.size() - input_pos);
    std::memcpy(out.data(), input.data() + input_pos, n);
    input_pos += n;
    return n;  // 0 at exhaustion = EOF
  };
  io.write_to_app = [](ByteSpan) { return Status::Ok(); };
  io.finish_output = [] {};

  Sentinel null_sentinel;
  MemoryDataStore store;  // empty: the reader direction stays quiet
  SentinelContext ctx;
  ctx.cache = &store;
  EXPECT_EQ(RunStreamPump(null_sentinel, io, ctx), 0);
  EXPECT_EQ(ToString(ByteSpan(store.contents())), "written-by-app");
}

TEST(StreamPumpTest, AppDisappearingStopsPump) {
  StreamIo io;
  io.read_from_app = [](MutableByteSpan) -> Result<std::size_t> {
    return std::size_t{0};  // app gone immediately
  };
  int pushes = 0;
  io.write_to_app = [&](ByteSpan) -> Status {
    if (++pushes > 2) return ClosedError("app closed pipe");
    return Status::Ok();
  };
  io.finish_output = [] {};

  // Random sentinel would push forever; the closed pipe must stop it.
  class InfiniteSentinel final : public Sentinel {
   public:
    Result<std::size_t> OnRead(SentinelContext&, MutableByteSpan out) override {
      std::fill(out.begin(), out.end(), 0x55);
      return out.size();
    }
  };
  InfiniteSentinel sentinel;
  SentinelContext ctx;
  EXPECT_EQ(RunStreamPump(sentinel, io, ctx), 0);
  EXPECT_EQ(pushes, 3);
}

}  // namespace
}  // namespace afs::sentinel
