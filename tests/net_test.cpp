// Network substrate tests: RPC envelope, SimNet routing/latency/bandwidth,
// socket transport (including across fork), and the three protocol servers.
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.hpp"
#include "ipc/process.hpp"
#include "net/file_server.hpp"
#include "net/mail_server.hpp"
#include "net/quote_server.hpp"
#include "net/rpc.hpp"
#include "net/simnet.hpp"
#include "net/socket_transport.hpp"
#include "test_util.hpp"

namespace afs::net {
namespace {

using test::TempDir;

// Handler that echoes the request back.
class EchoHandler final : public RpcHandler {
 public:
  Result<Buffer> Handle(ByteSpan request) override {
    return Buffer(request.begin(), request.end());
  }
};

// Handler that always fails.
class FailingHandler final : public RpcHandler {
 public:
  Result<Buffer> Handle(ByteSpan) override {
    return RemoteError("server says no");
  }
};

TEST(RpcEnvelopeTest, OkRoundTrip) {
  const Buffer env = EncodeResponseEnvelope(Status::Ok(), AsBytes("payload"));
  auto decoded = DecodeResponseEnvelope(ByteSpan(env));
  ASSERT_OK(decoded.status());
  EXPECT_EQ(ToString(ByteSpan(*decoded)), "payload");
}

TEST(RpcEnvelopeTest, ErrorRoundTrip) {
  const Buffer env =
      EncodeResponseEnvelope(NotFoundError("gone"), {});
  auto decoded = DecodeResponseEnvelope(ByteSpan(env));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(decoded.status().message(), "gone");
}

TEST(RpcEnvelopeTest, GarbageIsProtocolError) {
  Buffer junk = {1};
  EXPECT_EQ(DecodeResponseEnvelope(ByteSpan(junk)).status().code(),
            ErrorCode::kProtocolError);
}

TEST(SimNetTest, CallReachesMountedService) {
  ManualClock clock;
  SimNet net(clock);
  EchoHandler echo;
  ASSERT_OK(net.AddLink("client", "server", {}));
  ASSERT_OK(net.Mount("server", "echo", echo));
  auto transport = net.Connect("client", "server", "echo");
  auto reply = transport->Call(AsBytes("ping"));
  ASSERT_OK(reply.status());
  EXPECT_EQ(ToString(ByteSpan(*reply)), "ping");
  EXPECT_GT(net.bytes_carried(), 0u);
}

TEST(SimNetTest, MissingLinkOrServiceFails) {
  ManualClock clock;
  SimNet net(clock);
  EchoHandler echo;
  ASSERT_OK(net.Mount("server", "echo", echo));
  // no link
  auto t1 = net.Connect("client", "server", "echo");
  EXPECT_EQ(t1->Call(AsBytes("x")).status().code(), ErrorCode::kNotFound);
  // link but wrong service
  ASSERT_OK(net.AddLink("client", "server", {}));
  auto t2 = net.Connect("client", "server", "nope");
  EXPECT_EQ(t2->Call(AsBytes("x")).status().code(), ErrorCode::kNotFound);
}

TEST(SimNetTest, RemoteErrorsTravelInsideEnvelope) {
  ManualClock clock;
  SimNet net(clock);
  FailingHandler failing;
  ASSERT_OK(net.AddLink("a", "b", {}));
  ASSERT_OK(net.Mount("b", "svc", failing));
  auto transport = net.Connect("a", "b", "svc");
  auto reply = transport->Call(AsBytes("x"));
  EXPECT_EQ(reply.status().code(), ErrorCode::kRemoteError);
}

TEST(SimNetTest, LatencyIsChargedBothWays) {
  SimNet net(SteadyClock::Instance());
  EchoHandler echo;
  LinkConfig config;
  config.latency = Micros(3000);  // 3ms each way
  ASSERT_OK(net.AddLink("a", "b", config));
  ASSERT_OK(net.Mount("b", "echo", echo));
  auto transport = net.Connect("a", "b", "echo");
  const auto t0 = SteadyClock::Instance().Now();
  ASSERT_OK(transport->Call(AsBytes("x")).status());
  const auto elapsed = SteadyClock::Instance().Now() - t0;
  EXPECT_GE(elapsed.count(), 6000);
}

TEST(SimNetTest, BandwidthDelaysLargeTransfers) {
  SimNet net(SteadyClock::Instance());
  EchoHandler echo;
  LinkConfig config;
  config.bandwidth_bps = 1000 * 1000;  // 1 MB/s
  ASSERT_OK(net.AddLink("a", "b", config));
  ASSERT_OK(net.Mount("b", "echo", echo));
  auto transport = net.Connect("a", "b", "echo");
  // Burn the 64KB burst allowance, then measure a 50KB echo: >= ~100ms
  // total for request+response at 1 MB/s.
  Buffer big(64 * 1024, 7);
  ASSERT_OK(transport->Call(ByteSpan(big)).status());
  const auto t0 = SteadyClock::Instance().Now();
  Buffer body(50 * 1024, 9);
  ASSERT_OK(transport->Call(ByteSpan(body)).status());
  const auto elapsed = SteadyClock::Instance().Now() - t0;
  EXPECT_GE(elapsed.count(), 50000);  // at least the request leg
}

TEST(FileServerTest, PutGetStatDeleteList) {
  FileServer server;
  ASSERT_OK(server.Put("dir/a.txt", AsBytes("alpha")));
  ASSERT_OK(server.Put("dir/b.txt", AsBytes("beta")));
  auto got = server.Get("dir/a.txt");
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(*got)), "alpha");

  FileStat stat = server.Stat("dir/b.txt");
  EXPECT_TRUE(stat.exists);
  EXPECT_EQ(stat.size, 4u);
  EXPECT_GT(stat.revision, 0u);
  EXPECT_FALSE(server.Stat("nope").exists);

  EXPECT_EQ(server.List("dir/").size(), 2u);
  ASSERT_OK(server.Delete("dir/a.txt"));
  EXPECT_EQ(server.List("dir/").size(), 1u);
  EXPECT_EQ(server.Get("dir/a.txt").status().code(), ErrorCode::kNotFound);
}

TEST(FileServerTest, RevisionsIncreaseAndAppendExtends) {
  FileServer server;
  ASSERT_OK(server.Put("f", AsBytes("one")));
  const auto r1 = server.Stat("f").revision;
  ASSERT_OK(server.Append("f", AsBytes("+two")));
  const auto r2 = server.Stat("f").revision;
  EXPECT_GT(r2, r1);
  EXPECT_EQ(ToString(ByteSpan(*server.Get("f"))), "one+two");
}

TEST(FileServerTest, SubscriberSeesChanges) {
  FileServer server;
  std::vector<std::string> changed;
  const auto id = server.Subscribe(
      [&](const std::string& path, std::uint64_t) { changed.push_back(path); });
  ASSERT_OK(server.Put("watched", AsBytes("v1")));
  ASSERT_OK(server.Put("watched", AsBytes("v2")));
  server.Unsubscribe(id);
  ASSERT_OK(server.Put("watched", AsBytes("v3")));
  EXPECT_EQ(changed.size(), 2u);
}

class FileRpcTest : public ::testing::Test {
 protected:
  FileRpcTest() : net_(clock_) {
    EXPECT_TRUE(net_.AddLink("c", "s", {}).ok());
    EXPECT_TRUE(net_.Mount("s", "files", server_).ok());
    transport_ = net_.Connect("c", "s", "files");
  }

  ManualClock clock_;
  FileServer server_;
  SimNet net_;
  std::unique_ptr<Transport> transport_;
};

TEST_F(FileRpcTest, GetOverRpc) {
  ASSERT_OK(server_.Put("x", AsBytes("remote-data")));
  FileClient client(*transport_);
  auto got = client.Get("x");
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(got->data)), "remote-data");
  EXPECT_GT(got->revision, 0u);
}

TEST_F(FileRpcTest, GetRangeClampsAtEof) {
  ASSERT_OK(server_.Put("x", AsBytes("0123456789")));
  FileClient client(*transport_);
  auto got = client.GetRange("x", 6, 100);
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(got->data)), "6789");
  got = client.GetRange("x", 100, 10);
  ASSERT_OK(got.status());
  EXPECT_TRUE(got->data.empty());
}

TEST_F(FileRpcTest, ConditionalGet) {
  ASSERT_OK(server_.Put("x", AsBytes("v1")));
  FileClient client(*transport_);
  auto first = client.Get("x");
  ASSERT_OK(first.status());
  auto unchanged = client.GetIfModified("x", first->revision);
  ASSERT_OK(unchanged.status());
  EXPECT_FALSE(unchanged->has_value());

  ASSERT_OK(server_.Put("x", AsBytes("v2")));
  auto changed = client.GetIfModified("x", first->revision);
  ASSERT_OK(changed.status());
  ASSERT_TRUE(changed->has_value());
  EXPECT_EQ(ToString(ByteSpan((*changed)->data)), "v2");
}

TEST_F(FileRpcTest, PutRangeZeroExtends) {
  FileClient client(*transport_);
  ASSERT_OK(client.PutRange("fresh", 4, AsBytes("tail")).status());
  auto got = client.Get("fresh");
  ASSERT_OK(got.status());
  ASSERT_EQ(got->data.size(), 8u);
  EXPECT_EQ(got->data[0], 0);
  EXPECT_EQ(ToString(ByteSpan(got->data.data() + 4, 4)), "tail");
}

TEST_F(FileRpcTest, PutAppendDeleteListOverRpc) {
  FileClient client(*transport_);
  ASSERT_OK(client.Put("p/one", AsBytes("1")).status());
  ASSERT_OK(client.Append("p/one", AsBytes("1")).status());
  ASSERT_OK(client.Put("p/two", AsBytes("2")).status());
  auto names = client.List("p/");
  ASSERT_OK(names.status());
  EXPECT_EQ(names->size(), 2u);
  auto stat = client.Stat("p/one");
  ASSERT_OK(stat.status());
  EXPECT_EQ(stat->size, 2u);
  ASSERT_OK(client.Delete("p/two"));
  EXPECT_EQ(client.Get("p/two").status().code(), ErrorCode::kNotFound);
}

TEST(QuoteServerTest, WalkIsDeterministicPerSeed) {
  QuoteServer a(7);
  QuoteServer b(7);
  a.AddSymbol("ACME", 10000);
  b.AddSymbol("ACME", 10000);
  a.Tick(10);
  b.Tick(10);
  EXPECT_EQ(a.GetQuote("ACME")->price_cents, b.GetQuote("ACME")->price_cents);
}

TEST(QuoteServerTest, PricesStayPositive) {
  QuoteServer server(3);
  server.AddSymbol("PENNY", 1);
  server.Tick(500);
  EXPECT_GE(server.GetQuote("PENNY")->price_cents, 1);
}

TEST(QuoteServerTest, RpcQuoteAndRender) {
  ManualClock clock;
  SimNet net(clock);
  QuoteServer server(11);
  server.AddSymbol("AAA", 12345);
  server.AddSymbol("BBB", 500);
  ASSERT_OK(net.AddLink("c", "s", {}));
  ASSERT_OK(net.Mount("s", "quotes", server));
  auto transport = net.Connect("c", "s", "quotes");
  QuoteClient client(*transport);
  auto quotes = client.GetQuotes({"AAA", "BBB"});
  ASSERT_OK(quotes.status());
  ASSERT_EQ(quotes->size(), 2u);
  EXPECT_EQ((*quotes)[0].price_cents, 12345);

  const std::string text = RenderQuotesText(*quotes);
  EXPECT_NE(text.find("AAA\t123.45\t"), std::string::npos);
  EXPECT_NE(text.find("BBB\t5.00\t"), std::string::npos);

  auto symbols = client.ListSymbols();
  ASSERT_OK(symbols.status());
  EXPECT_EQ(*symbols, (std::vector<std::string>{"AAA", "BBB"}));
  EXPECT_EQ(client.GetQuotes({"NOPE"}).status().code(), ErrorCode::kNotFound);
}

TEST(MailMessageTest, RenderParseRoundTrip) {
  MailMessage m{"alice@x", "bob@y, carol@z", "Greetings",
                "line one\nline two\n"};
  std::vector<std::string> recipients;
  auto parsed = ParseMessage(RenderMessage(m), &recipients);
  ASSERT_OK(parsed.status());
  EXPECT_EQ(parsed->from, "alice@x");
  EXPECT_EQ(parsed->subject, "Greetings");
  EXPECT_EQ(parsed->body, "line one\nline two\n");
  EXPECT_EQ(recipients, (std::vector<std::string>{"bob@y", "carol@z"}));
}

TEST(MailMessageTest, MissingToFails) {
  EXPECT_EQ(ParseMessage("From: a\nSubject: s\n\nbody", nullptr)
                .status()
                .code(),
            ErrorCode::kProtocolError);
}

TEST(MailMessageTest, UnknownHeaderFails) {
  EXPECT_FALSE(ParseMessage("To: b\nX-Evil: 1\n\nbody", nullptr).ok());
}

TEST(MailServerTest, SendFansOutPerRecipient) {
  MailServer server;
  MailMessage m{"a@x", "", "hi", "body"};
  auto delivered = server.Send(m, {"b@y", "c@z"});
  ASSERT_OK(delivered.status());
  EXPECT_EQ(*delivered, 2u);
  EXPECT_EQ(server.MailboxSize("b@y"), 1u);
  EXPECT_EQ(server.MailboxSize("c@z"), 1u);
  EXPECT_EQ((*server.Mailbox("b@y"))[0].to, "b@y");
}

TEST(MailServerTest, RpcListRetrieveDeleteSend) {
  ManualClock clock;
  SimNet net(clock);
  MailServer server;
  ASSERT_OK(net.AddLink("c", "s", {}));
  ASSERT_OK(net.Mount("s", "mail", server));
  auto transport = net.Connect("c", "s", "mail");
  MailClient client(*transport);

  MailMessage m{"sender@x", "", "subj", "the body"};
  auto delivered = client.Send(m, {"user@here"});
  ASSERT_OK(delivered.status());
  EXPECT_EQ(*delivered, 1u);

  auto sizes = client.List("user@here");
  ASSERT_OK(sizes.status());
  ASSERT_EQ(sizes->size(), 1u);
  auto msg = client.Retrieve("user@here", 0);
  ASSERT_OK(msg.status());
  EXPECT_EQ(msg->subject, "subj");
  EXPECT_EQ(msg->body, "the body");
  ASSERT_OK(client.Delete("user@here", 0));
  EXPECT_EQ(client.Retrieve("user@here", 0).status().code(),
            ErrorCode::kNotFound);
}

TEST(SocketTransportTest, EndToEnd) {
  TempDir tmp;
  EchoHandler echo;
  SocketServer server(test::UniqueSocketPath(tmp.path(), "srv"), echo);
  ASSERT_OK(server.Start());
  SocketClient client(server.socket_path());
  auto reply = client.Call(AsBytes("over-unix-socket"));
  ASSERT_OK(reply.status());
  EXPECT_EQ(ToString(ByteSpan(*reply)), "over-unix-socket");
  EXPECT_EQ(server.requests_served(), 1u);
  server.Stop();
}

TEST(SocketTransportTest, MultipleSequentialCallsReuseConnection) {
  TempDir tmp;
  EchoHandler echo;
  SocketServer server(test::UniqueSocketPath(tmp.path(), "srv"), echo);
  ASSERT_OK(server.Start());
  SocketClient client(server.socket_path());
  for (int i = 0; i < 50; ++i) {
    auto reply = client.Call(AsBytes(std::to_string(i)));
    ASSERT_OK(reply.status());
    EXPECT_EQ(ToString(ByteSpan(*reply)), std::to_string(i));
  }
  EXPECT_EQ(server.requests_served(), 50u);
}

TEST(SocketTransportTest, ConcurrentClients) {
  TempDir tmp;
  EchoHandler echo;
  SocketServer server(test::UniqueSocketPath(tmp.path(), "srv"), echo);
  ASSERT_OK(server.Start());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      SocketClient client(server.socket_path());
      for (int i = 0; i < 20; ++i) {
        const std::string msg = std::to_string(t * 100 + i);
        auto reply = client.Call(AsBytes(msg));
        if (!reply.ok() || ToString(ByteSpan(*reply)) != msg) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 80u);
}

TEST(SocketTransportTest, WorksAcrossFork) {
  TempDir tmp;
  FileServer files;
  ASSERT_OK(files.Put("shared", AsBytes("for-the-child")));
  SocketServer server(test::UniqueSocketPath(tmp.path(), "srv"), files);
  ASSERT_OK(server.Start());

  // The child connects fresh after fork — the scenario the process-based
  // strategies depend on.
  auto child = ipc::SpawnFunction([&]() -> int {
    SocketClient client(server.socket_path());
    FileClient fc(client);
    auto got = fc.Get("shared");
    if (!got.ok()) return 1;
    if (ToString(ByteSpan(got->data)) != "for-the-child") return 2;
    if (!fc.Put("from-child", AsBytes("hello")).ok()) return 3;
    return 0;
  });
  ASSERT_OK(child.status());
  EXPECT_EQ(*child->Wait(), 0);
  // The child's PUT is visible in the parent's server state.
  auto got = files.Get("from-child");
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(*got)), "hello");
}

TEST(SocketTransportTest, ConnectToMissingServerFails) {
  SocketClient client("/tmp/definitely-not-a-socket-afs");
  EXPECT_EQ(client.Call(AsBytes("x")).status().code(), ErrorCode::kIoError);
}

TEST(SocketTransportTest, ServiceDelayIsApplied) {
  TempDir tmp;
  EchoHandler echo;
  SocketServer::Options options;
  options.service_delay = Micros(5000);
  SocketServer server(test::UniqueSocketPath(tmp.path(), "srv"), echo, options);
  ASSERT_OK(server.Start());
  SocketClient client(server.socket_path());
  const auto t0 = SteadyClock::Instance().Now();
  ASSERT_OK(client.Call(AsBytes("x")).status());
  EXPECT_GE((SteadyClock::Instance().Now() - t0).count(), 5000);
}

}  // namespace
}  // namespace afs::net
