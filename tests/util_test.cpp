// Unit tests for util: ring buffer, blocking queue, crc32, prng, strings,
// rate limiter.
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.hpp"
#include "util/blocking_queue.hpp"
#include "util/crc32.hpp"
#include "util/prng.hpp"
#include "util/rate_limiter.hpp"
#include "util/ring_buffer.hpp"
#include "util/strings.hpp"

namespace afs {
namespace {

TEST(RingBufferTest, BasicWriteRead) {
  RingBuffer ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.Write(AsBytes("abc")), 3u);
  EXPECT_EQ(ring.size(), 3u);
  Buffer out(3);
  EXPECT_EQ(ring.Read(MutableByteSpan(out)), 3u);
  EXPECT_EQ(ToString(ByteSpan(out)), "abc");
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, WrapsAround) {
  RingBuffer ring(4);
  Buffer out(4);
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(ring.Write(AsBytes("xy")), 2u);
    EXPECT_EQ(ring.Read(MutableByteSpan(out.data(), 2)), 2u);
    EXPECT_EQ(out[0], 'x');
    EXPECT_EQ(out[1], 'y');
  }
}

TEST(RingBufferTest, PartialWriteWhenFull) {
  RingBuffer ring(4);
  EXPECT_EQ(ring.Write(AsBytes("abcdef")), 4u);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.Write(AsBytes("x")), 0u);
  Buffer out(6);
  EXPECT_EQ(ring.Read(MutableByteSpan(out)), 4u);
  EXPECT_EQ(ToString(ByteSpan(out.data(), 4)), "abcd");
}

TEST(RingBufferTest, PeekDoesNotConsume) {
  RingBuffer ring(8);
  ring.Write(AsBytes("peekme"));
  Buffer out(4);
  EXPECT_EQ(ring.Peek(MutableByteSpan(out)), 4u);
  EXPECT_EQ(ToString(ByteSpan(out)), "peek");
  EXPECT_EQ(ring.size(), 6u);
  EXPECT_EQ(ring.Discard(4), 4u);
  EXPECT_EQ(ring.Read(MutableByteSpan(out.data(), 2)), 2u);
  EXPECT_EQ(ToString(ByteSpan(out.data(), 2)), "me");
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer ring(4);
  ring.Write(AsBytes("ab"));
  ring.Clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.free_space(), 4u);
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(99);
  });
  EXPECT_EQ(q.Pop().value(), 99);
  producer.join();
}

TEST(BlockingQueueTest, BoundedPushBlocks) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));  // full
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)q.Pop();
  });
  EXPECT_TRUE(q.Push(2));  // unblocked by the pop
  consumer.join();
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(q.Pop().value(), 7);  // drains buffered items
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.PopFor(std::chrono::microseconds(5000)).has_value());
}

TEST(BlockingQueueTest, PushForTimesOutWhenFull) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.PushFor(1, std::chrono::microseconds(1000)));
  EXPECT_FALSE(q.PushFor(2, std::chrono::microseconds(5000)));  // stays full
  (void)q.Pop();
  EXPECT_TRUE(q.PushFor(3, std::chrono::microseconds(1000)));
}

TEST(BlockingQueueTest, PushForSucceedsWhenConsumerFreesASlot) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)q.Pop();
  });
  EXPECT_TRUE(q.PushFor(2, std::chrono::seconds(5)));  // woken by the pop
  consumer.join();
}

TEST(BlockingQueueTest, CloseWakesPusherParkedOnFullQueue) {
  // The shutdown-while-full case: a producer blocked on a full queue must
  // observe Close() immediately — not ride out its deadline, and not
  // deadlock a teardown that joins it.
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.PushFor(2, std::chrono::seconds(30)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();  // bounded by the test timeout, not the 30s deadline
  EXPECT_FALSE(q.Push(3));
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(AsBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(AsBytes("")), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = Crc32(AsBytes(data));
  std::uint32_t inc = 0;
  inc = Crc32Update(inc, AsBytes(data.substr(0, 10)));
  inc = Crc32Update(inc, AsBytes(data.substr(10)));
  EXPECT_EQ(inc, whole);
}

TEST(PrngTest, DeterministicForSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(PrngTest, NextBelowRespectsBound) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.NextBelow(17), 17u);
  }
  EXPECT_EQ(prng.NextBelow(0), 0u);
  EXPECT_EQ(prng.NextBelow(1), 0u);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng prng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = prng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, FillCoversWholeSpan) {
  Prng prng(11);
  Buffer buf(37, 0);
  prng.Fill(MutableByteSpan(buf));
  // Statistically impossible for good output to leave long all-zero runs.
  int zeros = 0;
  for (auto b : buf) zeros += (b == 0);
  EXPECT_LT(zeros, 10);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitOnce) {
  auto [k, v] = SplitOnce("key=value=more", '=');
  EXPECT_EQ(k, "key");
  EXPECT_EQ(v, "value=more");
  auto [whole, none] = SplitOnce("nosep", '=');
  EXPECT_EQ(whole, "nosep");
  EXPECT_EQ(none, "");
}

TEST(StringsTest, SplitLinesHandlesCrlfAndTrailingNewline) {
  const auto lines = SplitLines("a\r\nb\nc\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(StringsTest, TrimAndLower) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(ToLowerAscii("MiXeD"), "mixed");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("file.af", ".af"));
  EXPECT_FALSE(EndsWith("af", ".af"));
}

TEST(StringsTest, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(ParseU64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseU64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseU64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(ParseU64("", v));
  EXPECT_FALSE(ParseU64("12x", v));
  EXPECT_FALSE(ParseU64("-1", v));
}

TEST(RateLimiterTest, UnlimitedNeverDelays) {
  ManualClock clock;
  RateLimiter limiter(clock, 0);
  EXPECT_EQ(limiter.ReserveDelay(1 << 30).count(), 0);
}

TEST(RateLimiterTest, DelaysOnceBurstExhausted) {
  ManualClock clock;
  RateLimiter limiter(clock, 1000 * 1000, /*burst=*/1000);  // 1 MB/s
  EXPECT_EQ(limiter.ReserveDelay(1000).count(), 0);  // burst absorbs it
  // Next 1000 bytes must wait ~1ms at 1 MB/s.
  const auto delay = limiter.ReserveDelay(1000);
  EXPECT_GE(delay.count(), 900);
  EXPECT_LE(delay.count(), 1100);
}

TEST(RateLimiterTest, TryReserveReportsDeficitWithoutDebiting) {
  ManualClock clock;
  RateLimiter limiter(clock, 1000 * 1000, /*burst=*/1000);  // 1 MB/s
  Micros retry{0};
  EXPECT_TRUE(limiter.TryReserve(1000, &retry));   // burst absorbs it
  EXPECT_FALSE(limiter.TryReserve(1000, &retry));  // bucket empty
  EXPECT_GT(retry.count(), 0);
  // The refusal did not debit the bucket: after the advertised wait the
  // same reservation is affordable again.
  clock.Advance(retry);
  EXPECT_TRUE(limiter.TryReserve(1000, &retry));
}

TEST(RateLimiterTest, RefillsWithTime) {
  ManualClock clock;
  RateLimiter limiter(clock, 1000 * 1000, /*burst=*/1000);
  (void)limiter.ReserveDelay(1000);
  clock.Advance(Micros(2000));  // 2ms: plenty to refill the burst
  EXPECT_EQ(limiter.ReserveDelay(1000).count(), 0);
}

}  // namespace
}  // namespace afs
