// End-to-end tests of the four implementation strategies (paper Figure 4):
// the same legacy-style file operations, served by a sentinel behind each
// strategy, must behave identically — except where the paper itself says a
// strategy cannot support an operation.
#include <gtest/gtest.h>

#include "afs.hpp"
#include "test_util.hpp"

namespace afs {
namespace {

using core::ActiveFileManager;
using core::ManagerOptions;
using core::Strategy;
using sentinel::SentinelSpec;
using test::TempDir;

class StrategiesTest : public ::testing::TestWithParam<Strategy> {
 protected:
  StrategiesTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global(),
                 ManagerOptions{}) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  SentinelSpec NullSpec(const std::string& cache = "disk") {
    SentinelSpec spec;
    spec.name = "null";
    spec.config["cache"] = cache;
    spec.config["strategy"] = std::string(StrategyName(GetParam()));
    return spec;
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ActiveFileManager manager_;
};

// The command strategies support the full file API.
class CommandStrategiesTest : public StrategiesTest {};

TEST_P(StrategiesTest, WriteThenReadBackSequentially) {
  ASSERT_OK(manager_.CreateActiveFile("a.af", NullSpec()));
  auto handle = api_.OpenFile("a.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());

  const std::string payload = "hello active files";
  auto wrote = api_.WriteFile(*handle, AsBytes(payload));
  ASSERT_OK(wrote.status());
  EXPECT_EQ(*wrote, payload.size());
  ASSERT_OK(api_.CloseHandle(*handle));

  // A fresh open reads back what was written — through a fresh sentinel.
  auto handle2 = api_.OpenFile("a.af", vfs::OpenMode::kRead);
  ASSERT_OK(handle2.status());
  Buffer out(payload.size());
  auto got = api_.ReadFile(*handle2, MutableByteSpan(out));
  ASSERT_OK(got.status());
  EXPECT_EQ(*got, payload.size());
  EXPECT_EQ(ToString(ByteSpan(out)), payload);
  ASSERT_OK(api_.CloseHandle(*handle2));
}

TEST_P(StrategiesTest, DataPartPersistsInBundle) {
  ASSERT_OK(manager_.CreateActiveFile("b.af", NullSpec()));
  auto handle = api_.OpenFile("b.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("persisted")).status());
  ASSERT_OK(api_.CloseHandle(*handle));

  auto data = manager_.ReadDataPart("b.af");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "persisted");
}

TEST_P(StrategiesTest, MemoryCacheWritesBackAtClose) {
  ASSERT_OK(manager_.CreateActiveFile("m.af", NullSpec("memory")));
  auto handle = api_.OpenFile("m.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("in-memory")).status());
  ASSERT_OK(api_.CloseHandle(*handle));

  auto data = manager_.ReadDataPart("m.af");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "in-memory");
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategiesTest,
    ::testing::Values(Strategy::kProcess, Strategy::kProcessControl,
                      Strategy::kThread, Strategy::kDirect),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      return std::string(StrategyName(info.param));
    });

TEST_P(CommandStrategiesTest, SeekSizeAndRandomAccess) {
  ASSERT_OK(manager_.CreateActiveFile("c.af", NullSpec(),
                                      AsBytes("0123456789")));
  auto handle = api_.OpenFile("c.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());

  auto size = api_.GetFileSize(*handle);
  ASSERT_OK(size.status());
  EXPECT_EQ(*size, 10u);

  auto pos = api_.SetFilePointer(*handle, 4, vfs::SeekOrigin::kBegin);
  ASSERT_OK(pos.status());
  EXPECT_EQ(*pos, 4u);

  Buffer out(3);
  auto got = api_.ReadFile(*handle, MutableByteSpan(out));
  ASSERT_OK(got.status());
  EXPECT_EQ(ToString(ByteSpan(out)), "456");

  // Seek relative to current and from the end.
  pos = api_.SetFilePointer(*handle, -2, vfs::SeekOrigin::kCurrent);
  ASSERT_OK(pos.status());
  EXPECT_EQ(*pos, 5u);
  pos = api_.SetFilePointer(*handle, -1, vfs::SeekOrigin::kEnd);
  ASSERT_OK(pos.status());
  EXPECT_EQ(*pos, 9u);
  Buffer last(4);
  got = api_.ReadFile(*handle, MutableByteSpan(last));
  ASSERT_OK(got.status());
  EXPECT_EQ(*got, 1u);  // short read at EOF
  EXPECT_EQ(last[0], '9');

  ASSERT_OK(api_.CloseHandle(*handle));
}

TEST_P(CommandStrategiesTest, SetEndOfFileTruncates) {
  ASSERT_OK(manager_.CreateActiveFile("t.af", NullSpec(),
                                      AsBytes("0123456789")));
  auto handle = api_.OpenFile("t.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.SetFilePointer(*handle, 4, vfs::SeekOrigin::kBegin).status());
  ASSERT_OK(api_.SetEndOfFile(*handle));
  auto size = api_.GetFileSize(*handle);
  ASSERT_OK(size.status());
  EXPECT_EQ(*size, 4u);
  ASSERT_OK(api_.CloseHandle(*handle));

  auto data = manager_.ReadDataPart("t.af");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "0123");
}

TEST_P(CommandStrategiesTest, ReadScatterWorksViaControlChannel) {
  ASSERT_OK(manager_.CreateActiveFile("s.af", NullSpec(),
                                      AsBytes("abcdefghij")));
  auto handle = api_.OpenFile("s.af", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());
  Buffer seg1(4);
  Buffer seg2(6);
  std::vector<MutableByteSpan> segments = {MutableByteSpan(seg1),
                                           MutableByteSpan(seg2)};
  auto got = api_.ReadFileScatter(*handle, segments);
  ASSERT_OK(got.status());
  EXPECT_EQ(*got, 10u);
  EXPECT_EQ(ToString(ByteSpan(seg1)), "abcd");
  EXPECT_EQ(ToString(ByteSpan(seg2)), "efghij");
  ASSERT_OK(api_.CloseHandle(*handle));
}

TEST_P(CommandStrategiesTest, FlushSucceeds) {
  ASSERT_OK(manager_.CreateActiveFile("f.af", NullSpec()));
  auto handle = api_.OpenFile("f.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("x")).status());
  ASSERT_OK(api_.FlushFileBuffers(*handle));
  ASSERT_OK(api_.CloseHandle(*handle));
}

TEST_P(CommandStrategiesTest, UnknownSentinelFailsOpen) {
  // Author a bundle whose sentinel name is not registered (bypassing the
  // manager's authoring check).
  SentinelSpec spec;
  spec.name = "no-such-sentinel";
  auto host = api_.HostPath("u.af");
  ASSERT_OK(host.status());
  ASSERT_OK(core::WriteBundle(*host, spec, {}));

  auto handle = api_.OpenFile("u.af", vfs::OpenMode::kRead);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(api_.open_handle_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CommandStrategies, CommandStrategiesTest,
    ::testing::Values(Strategy::kProcessControl, Strategy::kThread,
                      Strategy::kDirect),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      return std::string(StrategyName(info.param));
    });

// ---- behaviours specific to the plain process strategy ----------------

class PlainProcessTest : public ::testing::Test {
 protected:
  PlainProcessTest()
      : api_(tmp_.path() + "/root"),
        manager_(api_, sentinel::SentinelRegistry::Global(),
                 ManagerOptions{}) {
    sentinels::RegisterBuiltinSentinels();
    manager_.Install();
  }

  TempDir tmp_;
  vfs::FileApi api_;
  ActiveFileManager manager_;
};

TEST_F(PlainProcessTest, SeekAndSizeAreUnsupported) {
  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "process";
  ASSERT_OK(manager_.CreateActiveFile("p.af", spec, AsBytes("data")));
  auto handle = api_.OpenFile("p.af", vfs::OpenMode::kReadWrite);
  ASSERT_OK(handle.status());

  // Paper §4.1: without a control channel these operations cannot travel.
  EXPECT_EQ(api_.SetFilePointer(*handle, 0, vfs::SeekOrigin::kBegin)
                .status()
                .code(),
            ErrorCode::kUnsupported);
  EXPECT_EQ(api_.GetFileSize(*handle).status().code(),
            ErrorCode::kUnsupported);
  ASSERT_OK(api_.CloseHandle(*handle));
}

TEST_F(PlainProcessTest, EagerStreamDeliversDataPart) {
  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "process";
  ASSERT_OK(manager_.CreateActiveFile("e.af", spec, AsBytes("streamed")));
  auto handle = api_.OpenFile("e.af", vfs::OpenMode::kRead);
  ASSERT_OK(handle.status());

  Buffer out(64);
  std::string collected;
  while (true) {
    auto got = api_.ReadFile(*handle, MutableByteSpan(out));
    ASSERT_OK(got.status());
    if (*got == 0) break;  // sentinel closed the read pipe: EOF
    collected += ToString(ByteSpan(out.data(), *got));
  }
  EXPECT_EQ(collected, "streamed");
  ASSERT_OK(api_.CloseHandle(*handle));
}

TEST_F(PlainProcessTest, WritesReachDataPartAfterClose) {
  SentinelSpec spec;
  spec.name = "null";
  spec.config["strategy"] = "process";
  ASSERT_OK(manager_.CreateActiveFile("w.af", spec));
  auto handle = api_.OpenFile("w.af", vfs::OpenMode::kWrite);
  ASSERT_OK(handle.status());
  ASSERT_OK(api_.WriteFile(*handle, AsBytes("via-pipes")).status());
  ASSERT_OK(api_.CloseHandle(*handle));  // waits for the sentinel process

  auto data = manager_.ReadDataPart("w.af");
  ASSERT_OK(data.status());
  EXPECT_EQ(ToString(ByteSpan(*data)), "via-pipes");
}

}  // namespace
}  // namespace afs
